"""Workflow reporting: task CSVs, Gantt extraction, utilization stats.

Reproduces the observability the paper built around its Dask runs: the
per-task statistics CSV (§3.3 step 3e) and the worker-lane Gantt view of
Fig. 2 — rendered here as data (and ASCII) rather than matplotlib, so
benches can assert on it.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .scheduler import TaskRecord

__all__ = [
    "GanttLane",
    "TASK_CSV_COLUMNS",
    "extract_gantt",
    "render_ascii_gantt",
    "format_task_row",
    "write_task_csv",
    "load_task_csv",
    "lost_keys",
    "summarize_records",
]

#: The one statistics-CSV row format shared by every writer (threaded
#: executor, simulated executor, streaming client).  ``duration`` is
#: derived from start/end but written out so the CSV is self-contained
#: for downstream analysis, as the paper's per-task CSVs were.
TASK_CSV_COLUMNS: tuple[str, ...] = (
    "key",
    "worker_id",
    "attempt",
    "start",
    "end",
    "duration",
    "ok",
    "error",
)


def format_task_row(record: TaskRecord) -> list[str]:
    """One CSV row in the shared :data:`TASK_CSV_COLUMNS` format."""
    return [
        record.key,
        record.worker_id,
        str(record.attempt),
        f"{record.start:.6f}",
        f"{record.end:.6f}",
        f"{record.duration:.6f}",
        "true" if record.ok else "false",
        record.error,
    ]


def write_task_csv(records: list[TaskRecord], path: str | Path) -> None:
    """Write the per-task statistics CSV (§3.3 step 3e)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(TASK_CSV_COLUMNS)
        for record in records:
            writer.writerow(format_task_row(record))


@dataclass(frozen=True)
class GanttLane:
    """One worker's processing timeline (a row of Fig. 2)."""

    short_id: str
    intervals: tuple[tuple[float, float], ...]

    @property
    def busy_seconds(self) -> float:
        return sum(e - s for s, e in self.intervals)

    @property
    def finish(self) -> float:
        return self.intervals[-1][1] if self.intervals else 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.intervals)


def extract_gantt(
    records: list[TaskRecord], max_workers: int | None = None, rng=None
) -> list[GanttLane]:
    """Per-worker lanes; optionally a random sample (Fig. 2 shows 10 of 1200)."""
    by_worker: dict[str, list[TaskRecord]] = {}
    for r in records:
        by_worker.setdefault(r.worker_id, []).append(r)
    worker_ids = sorted(by_worker)
    if max_workers is not None and len(worker_ids) > max_workers:
        if rng is None:
            rng = np.random.default_rng(0)
        worker_ids = sorted(
            rng.choice(worker_ids, size=max_workers, replace=False).tolist()
        )
    lanes = []
    for wid in worker_ids:
        recs = sorted(by_worker[wid], key=lambda r: r.start)
        lanes.append(
            GanttLane(
                short_id=wid[-6:],
                intervals=tuple((r.start, r.end) for r in recs),
            )
        )
    return lanes


def render_ascii_gantt(lanes: list[GanttLane], width: int = 100) -> str:
    """ASCII Fig. 2: '#' = processing, '.' = idle/overhead."""
    if not lanes:
        return "(no lanes)"
    t_max = max(lane.finish for lane in lanes)
    if t_max <= 0:
        return "(empty timeline)"
    out_lines = []
    scale = width / t_max
    for lane in lanes:
        row = np.full(width, ".", dtype="<U1")
        for s, e in lane.intervals:
            a = int(s * scale)
            b = max(a + 1, int(e * scale))
            row[a : min(b, width)] = "#"
        out_lines.append(f"{lane.short_id} |{''.join(row)}|")
    return "\n".join(out_lines)


def load_task_csv(path: str | Path) -> list[TaskRecord]:
    """Read back a statistics CSV written by the executors.

    Accepts the shared schema plus older files without the
    ``attempt``/``duration`` columns or with ``True``-cased booleans.
    """
    records = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            records.append(
                TaskRecord(
                    key=row["key"],
                    worker_id=row["worker_id"],
                    start=float(row["start"]),
                    end=float(row["end"]),
                    ok=row["ok"].lower() in ("true", "1"),
                    error=row.get("error", ""),
                    attempt=int(row.get("attempt") or 1),
                )
            )
    return records


def lost_keys(records: list[TaskRecord]) -> list[str]:
    """Task keys with no successful attempt — work the run lost.

    The zero-lost-targets criterion of a fault-tolerant run: with
    retries enabled every injected OOM should recover on a high-memory
    worker and this list should be empty.
    """
    succeeded = {r.key for r in records if r.ok}
    return sorted({r.key for r in records} - succeeded)


def _latency_stats(durations: np.ndarray) -> dict[str, float]:
    return {
        "n": int(durations.size),
        "mean": float(durations.mean()),
        "p50": float(np.percentile(durations, 50)),
        "p95": float(np.percentile(durations, 95)),
        "max": float(durations.max()),
    }


def summarize_records(records: list[TaskRecord]) -> dict:
    """Headline stats of a workflow run.

    Beyond the aggregate counts, the summary separates latency by
    attempt number (``attempt_latency``, keyed ``"1"``, ``"2"``, ... so
    the dict is JSON-ready): retried attempts run on different workers
    — often the high-memory pool — and folding their durations into one
    percentile hides exactly the tail the retry policy creates.  The
    keys that never succeeded are surfaced verbatim in ``lost_keys``
    (``n_lost`` is their count), because "which targets did we lose" is
    the first question after any faulted run.
    """
    if not records:
        return {
            "n_tasks": 0,
            "n_failed": 0,
            "n_failed_keys": 0,
            "n_retried": 0,
            "n_lost": 0,
            "lost_keys": [],
            "makespan": 0.0,
            "mean_duration": 0.0,
            "p95_duration": 0.0,
            "attempt_latency": {},
        }
    durations = np.array([r.duration for r in records])
    by_attempt: dict[int, list[float]] = {}
    for r in records:
        by_attempt.setdefault(r.attempt, []).append(r.duration)
    lost = lost_keys(records)
    return {
        "n_tasks": len(records),
        # Per-attempt failure count; ``n_failed_keys`` is the distinct
        # per-task view the executors' ``n_failed`` properties report.
        "n_failed": sum(1 for r in records if not r.ok),
        "n_failed_keys": len({r.key for r in records if not r.ok}),
        "n_retried": sum(1 for r in records if r.attempt > 1),
        "n_lost": len(lost),
        "lost_keys": lost,
        "makespan": float(max(r.end for r in records)),
        "mean_duration": float(durations.mean()),
        "p95_duration": float(np.percentile(durations, 95)),
        "attempt_latency": {
            str(attempt): _latency_stats(np.array(by_attempt[attempt]))
            for attempt in sorted(by_attempt)
        },
    }
