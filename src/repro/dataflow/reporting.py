"""Workflow reporting: task CSVs, Gantt extraction, utilization stats.

Reproduces the observability the paper built around its Dask runs: the
per-task statistics CSV (§3.3 step 3e) and the worker-lane Gantt view of
Fig. 2 — rendered here as data (and ASCII) rather than matplotlib, so
benches can assert on it.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .scheduler import TaskRecord

__all__ = [
    "GanttLane",
    "extract_gantt",
    "render_ascii_gantt",
    "load_task_csv",
    "summarize_records",
]


@dataclass(frozen=True)
class GanttLane:
    """One worker's processing timeline (a row of Fig. 2)."""

    short_id: str
    intervals: tuple[tuple[float, float], ...]

    @property
    def busy_seconds(self) -> float:
        return sum(e - s for s, e in self.intervals)

    @property
    def finish(self) -> float:
        return self.intervals[-1][1] if self.intervals else 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.intervals)


def extract_gantt(
    records: list[TaskRecord], max_workers: int | None = None, rng=None
) -> list[GanttLane]:
    """Per-worker lanes; optionally a random sample (Fig. 2 shows 10 of 1200)."""
    by_worker: dict[str, list[TaskRecord]] = {}
    for r in records:
        by_worker.setdefault(r.worker_id, []).append(r)
    worker_ids = sorted(by_worker)
    if max_workers is not None and len(worker_ids) > max_workers:
        if rng is None:
            rng = np.random.default_rng(0)
        worker_ids = sorted(
            rng.choice(worker_ids, size=max_workers, replace=False).tolist()
        )
    lanes = []
    for wid in worker_ids:
        recs = sorted(by_worker[wid], key=lambda r: r.start)
        lanes.append(
            GanttLane(
                short_id=wid[-6:],
                intervals=tuple((r.start, r.end) for r in recs),
            )
        )
    return lanes


def render_ascii_gantt(lanes: list[GanttLane], width: int = 100) -> str:
    """ASCII Fig. 2: '#' = processing, '.' = idle/overhead."""
    if not lanes:
        return "(no lanes)"
    t_max = max(lane.finish for lane in lanes)
    if t_max <= 0:
        return "(empty timeline)"
    out_lines = []
    scale = width / t_max
    for lane in lanes:
        row = np.full(width, ".", dtype="<U1")
        for s, e in lane.intervals:
            a = int(s * scale)
            b = max(a + 1, int(e * scale))
            row[a : min(b, width)] = "#"
        out_lines.append(f"{lane.short_id} |{''.join(row)}|")
    return "\n".join(out_lines)


def load_task_csv(path: str | Path) -> list[TaskRecord]:
    """Read back a statistics CSV written by the executors."""
    records = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            records.append(
                TaskRecord(
                    key=row["key"],
                    worker_id=row["worker_id"],
                    start=float(row["start"]),
                    end=float(row["end"]),
                    ok=row["ok"] == "True",
                    error=row.get("error", ""),
                )
            )
    return records


def summarize_records(records: list[TaskRecord]) -> dict[str, float]:
    """Headline stats of a workflow run."""
    if not records:
        return {
            "n_tasks": 0,
            "n_failed": 0,
            "makespan": 0.0,
            "mean_duration": 0.0,
            "p95_duration": 0.0,
        }
    durations = np.array([r.duration for r in records])
    return {
        "n_tasks": len(records),
        "n_failed": sum(1 for r in records if not r.ok),
        "makespan": float(max(r.end for r in records)),
        "mean_duration": float(durations.mean()),
        "p95_duration": float(np.percentile(durations, 95)),
    }
