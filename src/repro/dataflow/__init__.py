"""Dataflow substrate: Dask-like queue/worker model, three executors, reporting."""

from .bubbles import bubble_seconds
from .client import Client, Future, SchedulerService
from .engine import ExecutionResult, ThreadedExecutor, pooled_workers
from .process import ProcessExecutor
from .faults import (
    FaultInjector,
    RetryPolicy,
    is_oom_error,
    straggler_duration_fn,
)
from .reporting import (
    TASK_CSV_COLUMNS,
    GanttLane,
    extract_gantt,
    load_task_csv,
    lost_keys,
    render_ascii_gantt,
    summarize_records,
    write_task_csv,
)
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers
from .shm import EncodedPayload, ShmRef, decode_payload, encode_payload
from .simulated import SimulationResult, simulate_dataflow

__all__ = [
    "Client",
    "Future",
    "SchedulerService",
    "ExecutionResult",
    "ThreadedExecutor",
    "ProcessExecutor",
    "pooled_workers",
    "bubble_seconds",
    "EncodedPayload",
    "ShmRef",
    "encode_payload",
    "decode_payload",
    "FaultInjector",
    "RetryPolicy",
    "is_oom_error",
    "straggler_duration_fn",
    "GanttLane",
    "TASK_CSV_COLUMNS",
    "extract_gantt",
    "load_task_csv",
    "lost_keys",
    "render_ascii_gantt",
    "summarize_records",
    "write_task_csv",
    "TaskQueue",
    "TaskRecord",
    "TaskSpec",
    "WorkerInfo",
    "make_workers",
    "SimulationResult",
    "simulate_dataflow",
]
