"""Dataflow substrate: Dask-like queue/worker model, two executors, reporting."""

from .client import Client, Future, SchedulerService
from .engine import ExecutionResult, ThreadedExecutor
from .reporting import (
    GanttLane,
    extract_gantt,
    load_task_csv,
    render_ascii_gantt,
    summarize_records,
)
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers
from .simulated import SimulationResult, simulate_dataflow

__all__ = [
    "Client",
    "Future",
    "SchedulerService",
    "ExecutionResult",
    "ThreadedExecutor",
    "GanttLane",
    "extract_gantt",
    "load_task_csv",
    "render_ascii_gantt",
    "summarize_records",
    "TaskQueue",
    "TaskRecord",
    "TaskSpec",
    "WorkerInfo",
    "make_workers",
    "SimulationResult",
    "simulate_dataflow",
]
