"""Shared-memory payload transport for the process executor.

The paper's Dask deployment moves feature pickles between scheduler and
workers over the node fabric; at one-node scale the equivalent tax is
pickling every large numpy array through a multiprocessing pipe twice
(parent -> worker payloads, worker -> parent results).  This module
removes that copy from the pipe: a payload is split into

* a *skeleton* — the original object tree with every large ndarray
  replaced by a tiny :class:`ShmRef` placeholder — which still travels
  as a (now small) pickle, and
* one ``multiprocessing.shared_memory`` segment per message holding the
  raw bytes of all extracted arrays back to back.

The receiver attaches the segment, copies each array back out, grafts
it into the skeleton, then closes *and unlinks* the segment.  Receiver
unlinks is the ownership rule everywhere: a segment is consumed exactly
once, by the process the message was addressed to, and the parent
unlinks orphaned payload segments itself when a worker dies mid-task
(see ``repro.dataflow.process``).  Register/unregister pairs land on
the one resource-tracker process the worker pool shares with its
parent, so no "leaked shared_memory" warnings survive a clean run.

Arrays smaller than ``min_bytes`` ride the skeleton pickle — a segment
per 80-byte coordinate stub would cost more in syscalls than it saves
in copying.  Object trees are walked structurally (dict / list / tuple
/ namedtuple / dataclass); anything else is left to the pickle whole.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_MIN_SHM_BYTES",
    "ShmRef",
    "EncodedPayload",
    "encode_payload",
    "decode_payload",
    "unlink_segment",
]

#: Arrays at or above this many bytes move to the shared segment;
#: smaller ones stay inline in the skeleton pickle.  4 KiB ~ one page:
#: below that the pipe copy is cheaper than an shm attach.
DEFAULT_MIN_SHM_BYTES: int = 4096


@dataclass(frozen=True)
class ShmRef:
    """Placeholder for an ndarray extracted into the shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class EncodedPayload:
    """A skeleton plus the name of the segment its arrays live in.

    ``segment=None`` means nothing crossed the size threshold and the
    skeleton is the payload verbatim.  ``nbytes`` is the segment size —
    the transport accounting benchmarks report.
    """

    skeleton: Any
    segment: str | None = None
    nbytes: int = 0


def _walk_encode(
    obj: Any, arrays: list[np.ndarray], refs: list[ShmRef], min_bytes: int
) -> Any:
    """Copy of ``obj`` with large arrays appended to ``arrays``.

    ``refs`` grows in lockstep with ``arrays``; offsets are filled in
    once total size is known.  Unrecognised containers are returned
    unchanged (their arrays ride the pickle).
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes < min_bytes or obj.dtype.hasobject:
            return obj
        arr = np.ascontiguousarray(obj)
        arrays.append(arr)
        # Negative offsets are per-array placeholders (unique even for
        # equal arrays, so the final-offset mapping never collides);
        # they are rewritten to real segment offsets before sending.
        placeholder = ShmRef(
            offset=-len(arrays), shape=tuple(arr.shape), dtype=arr.dtype.str
        )
        refs.append(placeholder)
        return placeholder
    if isinstance(obj, dict):
        return {
            k: _walk_encode(v, arrays, refs, min_bytes)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        items = [_walk_encode(v, arrays, refs, min_bytes) for v in obj]
        if isinstance(obj, list):
            return items
        if hasattr(obj, "_fields"):  # namedtuple
            return type(obj)(*items)
        return tuple(items)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        try:
            for f in dataclasses.fields(obj):
                old = getattr(obj, f.name)
                new = _walk_encode(old, arrays, refs, min_bytes)
                if new is not old:
                    changes[f.name] = new
            if not changes:
                return obj
            return dataclasses.replace(obj, **changes)
        except (TypeError, ValueError):
            # Non-replaceable dataclass (init=False fields, custom
            # __init__): leave it whole; its arrays ride the pickle.
            return obj
    return obj


def _walk_decode(obj: Any, arrays: dict[ShmRef, np.ndarray]) -> Any:
    if isinstance(obj, ShmRef):
        return arrays[obj]
    if isinstance(obj, dict):
        return {k: _walk_decode(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        items = [_walk_decode(v, arrays) for v in obj]
        if isinstance(obj, list):
            return items
        if hasattr(obj, "_fields"):
            return type(obj)(*items)
        return tuple(items)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for f in dataclasses.fields(obj):
            old = getattr(obj, f.name)
            new = _walk_decode(old, arrays)
            if new is not old:
                changes[f.name] = new
        if not changes:
            return obj
        return dataclasses.replace(obj, **changes)
    return obj


def encode_payload(
    obj: Any, min_bytes: int = DEFAULT_MIN_SHM_BYTES
) -> EncodedPayload:
    """Extract large arrays from ``obj`` into one shared segment.

    The sender's mapping is closed before returning — the segment lives
    on under its name until the receiver (or the parent's orphan
    cleanup) unlinks it.
    """
    arrays: list[np.ndarray] = []
    refs: list[ShmRef] = []
    skeleton = _walk_encode(obj, arrays, refs, min_bytes)
    if not arrays:
        return EncodedPayload(skeleton=obj)
    total = sum(a.nbytes for a in arrays)
    seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        offset = 0
        final_refs: dict[ShmRef, ShmRef] = {}
        for arr, ref in zip(arrays, refs):
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=offset
            )
            view[...] = arr
            final_refs[ref] = dataclasses.replace(ref, offset=offset)
            offset += arr.nbytes
            del view
        skeleton = _walk_decode(skeleton, final_refs)
        name = seg.name
    finally:
        seg.close()
    return EncodedPayload(skeleton=skeleton, segment=name, nbytes=total)


def decode_payload(payload: EncodedPayload) -> Any:
    """Rebuild the original object; consumes (unlinks) the segment."""
    if not isinstance(payload, EncodedPayload):
        return payload
    if payload.segment is None:
        return payload.skeleton
    seg = shared_memory.SharedMemory(name=payload.segment)
    try:
        refs: list[ShmRef] = []
        _collect_refs(payload.skeleton, refs)
        arrays = {
            ref: np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=seg.buf,
                offset=ref.offset,
            ).copy()
            for ref in refs
        }
        return _walk_decode(payload.skeleton, arrays)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # already reclaimed by orphan cleanup
            pass


def _collect_refs(obj: Any, out: list[ShmRef]) -> None:
    if isinstance(obj, ShmRef):
        out.append(obj)
    elif isinstance(obj, dict):
        for v in obj.values():
            _collect_refs(v, out)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            _collect_refs(v, out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            _collect_refs(getattr(obj, f.name), out)


def unlink_segment(name: str | None) -> None:
    """Reclaim a segment whose receiver died before consuming it."""
    if name is None:
        return
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
