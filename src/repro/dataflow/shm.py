"""Shared-memory payload transport for the process executor.

The paper's Dask deployment moves feature pickles between scheduler and
workers over the node fabric; at one-node scale the equivalent tax is
pickling every large numpy array through a multiprocessing pipe twice
(parent -> worker payloads, worker -> parent results).  This module
removes that copy from the pipe: a payload is split into

* a *skeleton* — the original object tree with every large ndarray
  replaced by a tiny :class:`ShmRef` placeholder — which still travels
  as a (now small) pickle, and
* one ``multiprocessing.shared_memory`` segment per message holding the
  raw bytes of all extracted arrays back to back.

The receiver attaches the segment, copies each array back out, grafts
it into the skeleton, then closes *and unlinks* the segment.  Receiver
unlinks is the ownership rule everywhere: a segment is consumed exactly
once, by the process the message was addressed to, and the parent
unlinks orphaned payload segments itself when a worker dies mid-task
(see ``repro.dataflow.process``).  Register/unregister pairs land on
the one resource-tracker process the worker pool shares with its
parent, so no "leaked shared_memory" warnings survive a clean run.

Arrays smaller than ``min_bytes`` ride the skeleton pickle — a segment
per 80-byte coordinate stub would cost more in syscalls than it saves
in copying.  Object trees are walked structurally (dict / list / tuple
/ namedtuple / dataclass); anything else is left to the pickle whole.

Arrays that are already *file-backed* (``np.memmap``, e.g. the
memory-mapped disk-index shards of :mod:`repro.msa.diskindex`) never
touch shared memory at all: copying a read-only mapping through
``/dev/shm`` would duplicate bytes every process can already share via
the page cache.  They travel as :class:`MmapRef` placeholders — path +
effective file offset + shape/dtype — and the receiver re-maps the same
file read-only.  The effective offset is computed from the mapping's
base address because a *view* of a memmap inherits the root's
``.offset``/``.filename`` attributes verbatim (they do not account for
the view's displacement into the mapping).
"""

from __future__ import annotations

import dataclasses
import mmap as _mmap
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "DEFAULT_MIN_SHM_BYTES",
    "ShmRef",
    "MmapRef",
    "EncodedPayload",
    "encode_payload",
    "decode_payload",
    "unlink_segment",
]

#: Arrays at or above this many bytes move to the shared segment;
#: smaller ones stay inline in the skeleton pickle.  4 KiB ~ one page:
#: below that the pipe copy is cheaper than an shm attach.
DEFAULT_MIN_SHM_BYTES: int = 4096


@dataclass(frozen=True)
class ShmRef:
    """Placeholder for an ndarray extracted into the shared segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class MmapRef:
    """Placeholder for a file-backed (memory-mapped) ndarray.

    ``offset`` is the *effective* byte offset of the array's first
    element within ``path`` — root offset plus the view's displacement
    into the mapping — so the receiver can re-map exactly the referenced
    region with ``np.memmap(path, dtype, mode="r", offset, shape)``.
    """

    path: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class EncodedPayload:
    """A skeleton plus the name of the segment its arrays live in.

    ``segment=None`` means nothing crossed the size threshold and —
    unless ``has_file_refs`` marks :class:`MmapRef` placeholders to
    resolve — the skeleton is the payload verbatim.  ``nbytes`` is the
    segment size — the transport accounting benchmarks report.
    """

    skeleton: Any
    segment: str | None = None
    nbytes: int = 0
    has_file_refs: bool = False


def _mmap_ref(arr: np.ndarray) -> MmapRef | None:
    """File-backed reference for a (view of a) read-only ``np.memmap``.

    Returns ``None`` when the array cannot be described as a contiguous
    file region (non-memmap, object dtype, strided view, anonymous
    mapping) — those fall through to the regular transport.  The
    effective file offset is recovered from the mapping's base address:
    a memmap view's ``.offset`` attribute is the *root's* offset, so the
    view's displacement must be measured against where the ``mmap``
    buffer actually starts (which is the root offset rounded down to the
    allocation granularity).
    """
    if not isinstance(arr, np.memmap) or arr.dtype.hasobject:
        return None
    filename = getattr(arr, "filename", None)
    if filename is None or not arr.flags["C_CONTIGUOUS"]:
        return None
    base = arr
    while isinstance(base, np.ndarray):
        base = base.base
    if not isinstance(base, _mmap.mmap):
        return None
    mapping_addr = np.frombuffer(base, dtype=np.uint8).ctypes.data
    aligned = arr.offset - arr.offset % _mmap.ALLOCATIONGRANULARITY
    file_offset = aligned + (arr.ctypes.data - mapping_addr)
    return MmapRef(
        path=str(filename),
        offset=int(file_offset),
        shape=tuple(arr.shape),
        dtype=arr.dtype.str,
    )


def _walk_encode(
    obj: Any,
    arrays: list[np.ndarray],
    refs: list[ShmRef],
    file_refs: list[MmapRef],
    min_bytes: int,
) -> Any:
    """Copy of ``obj`` with large arrays appended to ``arrays``.

    ``refs`` grows in lockstep with ``arrays``; offsets are filled in
    once total size is known.  File-backed arrays become
    :class:`MmapRef` placeholders (collected on ``file_refs``) at any
    size — re-mapping shares the page cache, so there is never a reason
    to copy one.  Unrecognised containers are returned unchanged (their
    arrays ride the pickle).
    """
    if isinstance(obj, np.ndarray):
        mref = _mmap_ref(obj)
        if mref is not None:
            file_refs.append(mref)
            return mref
        if obj.nbytes < min_bytes or obj.dtype.hasobject:
            return obj
        arr = np.ascontiguousarray(obj)
        arrays.append(arr)
        # Negative offsets are per-array placeholders (unique even for
        # equal arrays, so the final-offset mapping never collides);
        # they are rewritten to real segment offsets before sending.
        placeholder = ShmRef(
            offset=-len(arrays), shape=tuple(arr.shape), dtype=arr.dtype.str
        )
        refs.append(placeholder)
        return placeholder
    if isinstance(obj, dict):
        return {
            k: _walk_encode(v, arrays, refs, file_refs, min_bytes)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        items = [
            _walk_encode(v, arrays, refs, file_refs, min_bytes) for v in obj
        ]
        if isinstance(obj, list):
            return items
        if hasattr(obj, "_fields"):  # namedtuple
            return type(obj)(*items)
        return tuple(items)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        try:
            for f in dataclasses.fields(obj):
                old = getattr(obj, f.name)
                new = _walk_encode(old, arrays, refs, file_refs, min_bytes)
                if new is not old:
                    changes[f.name] = new
            if not changes:
                return obj
            return dataclasses.replace(obj, **changes)
        except (TypeError, ValueError):
            # Non-replaceable dataclass (init=False fields, custom
            # __init__): leave it whole; its arrays ride the pickle.
            return obj
    return obj


def _walk_decode(
    obj: Any, arrays: dict[ShmRef, np.ndarray], resolve_files: bool = True
) -> Any:
    if resolve_files and isinstance(obj, MmapRef):
        # Re-map the referenced file region read-only: the receiver
        # becomes one more sharer of the same page-cache copy.
        return np.memmap(
            obj.path,
            dtype=np.dtype(obj.dtype),
            mode="r",
            offset=obj.offset,
            shape=obj.shape,
        )
    if isinstance(obj, ShmRef):
        return arrays[obj]
    if isinstance(obj, dict):
        return {
            k: _walk_decode(v, arrays, resolve_files)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        items = [_walk_decode(v, arrays, resolve_files) for v in obj]
        if isinstance(obj, list):
            return items
        if hasattr(obj, "_fields"):
            return type(obj)(*items)
        return tuple(items)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        changes = {}
        for f in dataclasses.fields(obj):
            old = getattr(obj, f.name)
            new = _walk_decode(old, arrays, resolve_files)
            if new is not old:
                changes[f.name] = new
        if not changes:
            return obj
        return dataclasses.replace(obj, **changes)
    return obj


def encode_payload(
    obj: Any, min_bytes: int = DEFAULT_MIN_SHM_BYTES
) -> EncodedPayload:
    """Extract large arrays from ``obj`` into one shared segment.

    File-backed (memory-mapped) arrays are never copied anywhere — they
    become :class:`MmapRef` placeholders pointing at the file region
    they already occupy.  The sender's segment mapping is closed before
    returning — the segment lives on under its name until the receiver
    (or the parent's orphan cleanup) unlinks it.
    """
    arrays: list[np.ndarray] = []
    refs: list[ShmRef] = []
    file_refs: list[MmapRef] = []
    skeleton = _walk_encode(obj, arrays, refs, file_refs, min_bytes)
    if not arrays:
        if file_refs:
            return EncodedPayload(skeleton=skeleton, has_file_refs=True)
        return EncodedPayload(skeleton=obj)
    total = sum(a.nbytes for a in arrays)
    seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        offset = 0
        final_refs: dict[ShmRef, ShmRef] = {}
        for arr, ref in zip(arrays, refs):
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=offset
            )
            view[...] = arr
            final_refs[ref] = dataclasses.replace(ref, offset=offset)
            offset += arr.nbytes
            del view
        skeleton = _walk_decode(skeleton, final_refs, resolve_files=False)
        name = seg.name
    finally:
        seg.close()
    return EncodedPayload(
        skeleton=skeleton,
        segment=name,
        nbytes=total,
        has_file_refs=bool(file_refs),
    )


def decode_payload(payload: EncodedPayload) -> Any:
    """Rebuild the original object; consumes (unlinks) the segment."""
    if not isinstance(payload, EncodedPayload):
        return payload
    if payload.segment is None:
        if payload.has_file_refs:
            return _walk_decode(payload.skeleton, {})
        return payload.skeleton
    seg = shared_memory.SharedMemory(name=payload.segment)
    try:
        refs: list[ShmRef] = []
        _collect_refs(payload.skeleton, refs)
        arrays = {
            ref: np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=seg.buf,
                offset=ref.offset,
            ).copy()
            for ref in refs
        }
        return _walk_decode(payload.skeleton, arrays)
    finally:
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:  # already reclaimed by orphan cleanup
            pass


def _collect_refs(obj: Any, out: list[ShmRef]) -> None:
    if isinstance(obj, ShmRef):
        out.append(obj)
    elif isinstance(obj, dict):
        for v in obj.values():
            _collect_refs(v, out)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            _collect_refs(v, out)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            _collect_refs(getattr(obj, f.name), out)


def unlink_segment(name: str | None) -> None:
    """Reclaim a segment whose receiver died before consuming it."""
    if name is None:
        return
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
