"""Fault tolerance for the dataflow executors: retries and injection.

The paper's deployment survived per-task OOM failures at 6000-worker
scale by re-routing oversized proteins to Summit's 2 TB high-memory
nodes (§3.3).  This module supplies the policy layer both executors
share:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  escalate-to-highmem on OOM-class errors, in the spirit of pilot-job
  fault handling (RADICAL-Pilot) and adaptive multi-stage campaigns
  (IMPRESS);
* :func:`is_oom_error` — the error classifier that decides whether a
  failed attempt should be re-routed to a high-memory worker;
* :class:`FaultInjector` — deterministic, seeded failure injection so
  the retry path is testable and benchable without a real memory wall;
* :func:`straggler_duration_fn` — seeded straggler injection for the
  simulated executor's duration model.

Every injector decision is a pure function of (seed, task key), so runs
are bit-reproducible and the injected set can be enumerated up front.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from .scheduler import TaskSpec, WorkerInfo

__all__ = [
    "RetryPolicy",
    "FaultInjector",
    "is_oom_error",
    "straggler_duration_fn",
]

#: Error strings that mark a memory-class failure: raised exception
#: names (``OutOfMemoryError: ...``, ``MemoryError: ...``) and the
#: bare ``OOM`` marker the injectors and logs use.
_OOM_PATTERN = re.compile(
    r"out[-_ ]?of[-_ ]?memory|memoryerror|\boom\b", re.IGNORECASE
)


def is_oom_error(error: str) -> bool:
    """True when an error string denotes an OOM-class failure."""
    return bool(_OOM_PATTERN.search(error))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with backoff and highmem escalation.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The
    ``attempt``-th failure waits ``backoff_seconds * factor**(attempt-1)``
    before its successor is resubmitted — simulated seconds in the
    simulated executor, wall seconds in the threaded one.  When
    ``escalate_on_oom`` is set, an OOM-class failure re-routes the next
    attempt to a high-memory worker (the paper's §3.3 recovery path);
    other failures retry in place.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    escalate_on_oom: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be non-negative")

    def should_retry(self, attempt: int) -> bool:
        """May a task that just failed its ``attempt``-th try run again?"""
        return attempt < self.max_attempts

    def backoff_for(self, attempt: int) -> float:
        """Delay before resubmitting after the ``attempt``-th failure."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)

    def next_task(self, task: TaskSpec, error: str) -> TaskSpec:
        """The respawned attempt, escalated to highmem on OOM errors."""
        escalate = self.escalate_on_oom and is_oom_error(error)
        return replace(
            task,
            attempt=task.attempt + 1,
            requires_highmem=task.requires_highmem or escalate,
        )


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic seeded OOM injection, usable as a ``failure_fn``.

    A task fails iff its (seed, key) hash lands below ``rate`` — the
    same keys fail on every run, so benches can enumerate the injected
    set with :meth:`injected_keys` and assert exact failure counts.
    With ``spare_highmem`` (the default) injected failures model memory
    pressure: the task succeeds when it lands on a high-memory worker,
    which is what makes escalate-on-OOM retries recover it.
    """

    rate: float
    seed: int = 0
    spare_highmem: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")

    def _roll(self, key: str) -> float:
        digest = hashlib.sha256(f"fault/{self.seed}/{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def injects(self, key: str) -> bool:
        """Does this injector fail the task with the given key?"""
        return self._roll(key) < self.rate

    def injected_keys(self, tasks: Iterable[TaskSpec]) -> list[str]:
        """The exact keys this injector will fail, in task order."""
        return [t.key for t in tasks if self.injects(t.key)]

    def __call__(self, task: TaskSpec, worker: WorkerInfo) -> str | None:
        if not self.injects(task.key):
            return None
        if self.spare_highmem and worker.highmem:
            return None
        return f"OOM (injected): {task.key} exceeded worker memory"


def straggler_duration_fn(
    duration_fn: Callable[[TaskSpec], float],
    rate: float,
    slowdown: float = 10.0,
    seed: int = 0,
) -> Callable[[TaskSpec], float]:
    """Wrap a duration model with seeded straggler injection.

    A deterministic ``rate`` fraction of tasks run ``slowdown``x longer
    — the slow-worker/IO-stall case the greedy descending sort has to
    absorb.  Purely a duration effect; stragglers still succeed.
    """
    if slowdown < 1.0:
        raise ValueError("slowdown must be >= 1")
    injector = FaultInjector(rate=rate, seed=seed)

    def slowed(task: TaskSpec) -> float:
        base = duration_fn(task)
        return base * slowdown if injector.injects(task.key) else base

    return slowed
