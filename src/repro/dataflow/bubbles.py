"""Pipeline-bubble accounting: worker-idle-while-eligible-work-exists.

The PR 4 Gantt traces show the cost of stage barriers as long idle
tails — most workers parked behind a few stragglers while the *next*
stage's work is already ready but not yet dispatchable.  This module
turns that picture into one number, ``pipeline.bubble_seconds``: the
total worker-seconds during which a worker sat idle while at least one
task it was *eligible* to run (same pool, satisfiable memory class) had
all its dependencies resolved but had not started.

The computation is schedule-agnostic — it only needs the task record
stream, the worker set, and the dependency-annotated specs — so the
same function scores a barrier composite and a streaming run, which is
how ``benchmarks/bench_streaming.py`` shows the barrier bubbles
collapsing.

Definitions (all times in the record stream's clock, usually simulated
seconds from makespan start):

* a task's *ready time* is the latest terminal-completion time of its
  dependencies (zero for root tasks): the end of a dependency's
  successful attempt, or of its final failed attempt for
  ``dep_mode="resolved"`` tasks that run on partial results;
* its *waiting interval* is ``[ready, first real start)`` — poisoned /
  unscheduled tasks that never ran contribute nothing;
* a worker's *idle intervals* are the complement of its busy records
  within ``[0, makespan]``;
* the bubble is the sum over workers of the overlap between the
  worker's idle intervals and the union of waiting intervals of task
  classes (pool, requires_highmem) that worker is eligible for.
"""

from __future__ import annotations

from .scheduler import TaskRecord, TaskSpec, WorkerInfo
from .simulated import UNSCHEDULED_WORKER_ID

__all__ = ["bubble_seconds"]

Interval = tuple[float, float]


def _merge(intervals: list[Interval]) -> list[Interval]:
    """Union of intervals as a sorted, disjoint list."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _overlap(a: list[Interval], b: list[Interval]) -> float:
    """Total length of the intersection of two disjoint sorted lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _complement(busy: list[Interval], horizon: float) -> list[Interval]:
    """Idle intervals: [0, horizon] minus the (merged) busy intervals."""
    idle: list[Interval] = []
    cursor = 0.0
    for start, end in busy:
        if start > cursor:
            idle.append((cursor, min(start, horizon)))
        cursor = max(cursor, end)
        if cursor >= horizon:
            return idle
    if cursor < horizon:
        idle.append((cursor, horizon))
    return idle


def _eligible(worker: WorkerInfo, pool: str, highmem: bool) -> bool:
    if highmem and not worker.highmem:
        return False
    if pool and worker.pool and pool != worker.pool:
        return False
    return True


def bubble_seconds(
    records: list[TaskRecord],
    workers: list[WorkerInfo],
    specs: list[TaskSpec],
) -> float:
    """Worker-seconds idle while eligible, dependency-ready work waited.

    ``records`` may contain multiple attempts per key and synthetic
    (``unscheduled``) entries; ``specs`` supplies each key's
    ``depends_on``/``pool``/``requires_highmem``.  Records whose keys
    have no spec are treated as dependency-free root tasks of their
    own (pool-less) class only if present in ``specs`` — unknown keys
    are ignored, so callers can pass a spec subset to scope the
    question ("how long did *inference* work wait?").
    """
    real = [r for r in records if r.worker_id != UNSCHEDULED_WORKER_ID]
    if not real or not workers:
        return 0.0
    makespan = max(r.end for r in real)

    # Per-key timeline facts from the record stream.
    first_start: dict[str, float] = {}
    ok_end: dict[str, float] = {}
    last_end: dict[str, float] = {}
    for r in real:
        if r.key not in first_start or r.start < first_start[r.key]:
            first_start[r.key] = r.start
        if r.ok and (r.key not in ok_end or r.end < ok_end[r.key]):
            ok_end[r.key] = r.end
        if r.key not in last_end or r.end > last_end[r.key]:
            last_end[r.key] = r.end

    # Waiting intervals, grouped by eligibility class.
    waiting: dict[tuple[str, bool], list[Interval]] = {}
    for spec in specs:
        start = first_start.get(spec.key)
        if start is None:
            continue  # never ran (poisoned / unscheduled / restored)
        ready = 0.0
        resolvable = True
        for dep in spec.depends_on:
            done_at = ok_end.get(dep)
            if done_at is None:
                # Failed dependency: a resolved-mode task still ran once
                # the dep was *terminal* — its last attempt's end.
                done_at = last_end.get(dep)
            if done_at is None:
                resolvable = False
                break
            ready = max(ready, done_at)
        if not resolvable or start <= ready:
            continue
        waiting.setdefault((spec.pool, spec.requires_highmem), []).append(
            (ready, min(start, makespan))
        )
    if not waiting:
        return 0.0
    merged_waiting = {cls: _merge(ivs) for cls, ivs in waiting.items()}

    busy_by_worker: dict[str, list[Interval]] = {w.worker_id: [] for w in workers}
    for r in real:
        if r.worker_id in busy_by_worker and r.end > r.start:
            busy_by_worker[r.worker_id].append((r.start, r.end))

    total = 0.0
    for worker in workers:
        eligible = [
            ivs
            for (pool, highmem), ivs in merged_waiting.items()
            if _eligible(worker, pool, highmem)
        ]
        if not eligible:
            continue
        work_exists = _merge([iv for ivs in eligible for iv in ivs])
        idle = _complement(
            _merge(busy_by_worker[worker.worker_id]), makespan
        )
        total += _overlap(idle, work_exists)
    return total
