"""Simulated-time dataflow execution.

Replays the Dask dataflow model against the discrete-event clock: every
worker pulls the next queued task as soon as it frees up, each task
costs ``duration_fn(task)`` simulated seconds plus the per-task dispatch
overhead, and the run ends when the queue drains and all workers idle.

This is the engine behind every walltime/node-hour number the
benchmarks report (Table 1 wall times, Fig. 2 worker Gantt, §4.3/§4.5
workflow costs, the 1000-node scaling study).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Callable

from ..cluster.costmodel import (
    DASK_TASK_OVERHEAD_SECONDS,
    SCHEDULER_STARTUP_SECONDS,
)
from ..cluster.simclock import SimClock
from ..telemetry.metrics import get_metrics
from .faults import RetryPolicy
from .reporting import lost_keys as _lost_keys
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo

__all__ = ["SimulationResult", "simulate_dataflow"]

#: Worker id recorded for tasks no registered worker could ever run
#: (e.g. ``requires_highmem`` with no high-memory workers provisioned).
UNSCHEDULED_WORKER_ID = "unscheduled"


@dataclass
class SimulationResult:
    """Everything a simulated workflow run produced.

    Per-worker analytics (:meth:`worker_records`,
    :meth:`worker_finish_times`) share a lazily built one-pass index
    over the record stream, so extracting a W-row Gantt chart is
    O(R + W) instead of O(W * R) rescans.  The index assumes ``records``
    is not mutated after the first analytics call.
    """

    records: list[TaskRecord]
    workers: list[WorkerInfo]
    makespan_seconds: float
    startup_seconds: float

    def _index(self) -> dict[str, list[TaskRecord]]:
        by_worker = getattr(self, "_by_worker", None)
        if by_worker is None:
            by_worker = {}
            for r in self.records:
                by_worker.setdefault(r.worker_id, []).append(r)
            self._by_worker = by_worker
        return by_worker

    @property
    def walltime_seconds(self) -> float:
        """Job wall time: startup + processing makespan."""
        return self.startup_seconds + self.makespan_seconds

    @property
    def n_failed(self) -> int:
        """Distinct task keys with at least one failed attempt.

        A retried-then-recovered task counts once, however many
        attempts it burned; per-attempt failure counts live in
        :func:`~repro.dataflow.reporting.summarize_records`.
        """
        return len({r.key for r in self.records if not r.ok})

    def lost_keys(self) -> list[str]:
        """Task keys with no successful attempt — lost targets."""
        return _lost_keys(self.records)

    @property
    def walltime_minutes(self) -> float:
        return self.walltime_seconds / 60.0

    def worker_records(self, worker_id: str) -> list[TaskRecord]:
        return list(self._index().get(worker_id, []))

    def worker_finish_times(self) -> dict[str, float]:
        """Last task end per worker — Fig. 2's ragged right edge."""
        return {
            worker_id: max(r.end for r in recs)
            for worker_id, recs in self._index().items()
        }

    def finish_spread_seconds(self) -> float:
        """Max - min of per-worker finish times (load-balance quality)."""
        times = list(self.worker_finish_times().values())
        if not times:
            return 0.0
        return max(times) - min(times)

    def utilization(self) -> float:
        """Busy fraction of worker-time within the makespan."""
        if not self.records or self.makespan_seconds <= 0:
            return 0.0
        busy = sum(r.duration for r in self.records)
        return busy / (len(self.workers) * self.makespan_seconds)

    def node_hours(self, n_nodes: int) -> float:
        return n_nodes * self.walltime_seconds / 3600.0

    def busy_node_hours(self, workers_per_node: int) -> float:
        """Work-conserving node-hours: total busy worker-time only.

        Unlike :meth:`node_hours` this excludes startup and idle-tail
        time, so it extrapolates cleanly from scaled-down runs (a
        20-task run on 96 workers is mostly idle; its *work* is not).
        """
        busy = sum(r.duration for r in self.records)
        return busy / workers_per_node / 3600.0


def simulate_dataflow(
    tasks: list[TaskSpec],
    workers: list[WorkerInfo],
    duration_fn: Callable[[TaskSpec], float],
    sort_descending: bool = True,
    rng=None,
    task_overhead: float = DASK_TASK_OVERHEAD_SECONDS,
    startup: float = SCHEDULER_STARTUP_SECONDS,
    failure_fn: Callable[[TaskSpec, WorkerInfo], str | None] | None = None,
    retry_policy: RetryPolicy | None = None,
) -> SimulationResult:
    """Run the dataflow model to completion in simulated time.

    ``duration_fn`` maps a task to its modelled runtime (seconds).
    ``sort_descending=True`` applies the paper's greedy length sort;
    ``False`` with an ``rng`` shuffles (the baseline).  ``failure_fn``
    may return an error string for (task, worker) pairs that fail —
    e.g. out-of-memory tasks on standard-memory workers — which are
    recorded as failed with a short abort duration.

    Dispatch is memory-aware: ``requires_highmem`` tasks only ever run
    on ``highmem=True`` workers (§3.3's oversized-protein routing).
    With a ``retry_policy``, each failed attempt is recorded and a
    successor resubmitted after the policy's backoff — escalated to a
    high-memory worker on OOM-class errors — until it succeeds or the
    attempt budget is exhausted.  Tasks no registered worker can run
    are drained as failed ``NoEligibleWorker`` records rather than
    stalling the run.
    """
    if not workers:
        raise ValueError("need at least one worker")
    queue = TaskQueue()
    queue.submit_many(list(tasks))
    if sort_descending:
        queue.sort_descending()
    elif rng is not None:
        queue.shuffle(rng)

    # Simulated-run counters, resolved once per run (the per-event cost
    # inside the loop is a plain method call on a bound counter).
    metrics = get_metrics()
    sim_failures = metrics.counter("sim.dataflow.task.failures")
    sim_retries = metrics.counter("sim.dataflow.task.retries")
    sim_escalations = metrics.counter("sim.dataflow.task.oom_escalations")
    sim_unschedulable = metrics.counter("sim.dataflow.task.unschedulable")
    sim_skipped = metrics.counter("sim.dataflow.task.skipped_dependency")

    clock = SimClock()
    records: list[TaskRecord] = []
    idle: list[WorkerInfo] = []

    def wake_idle() -> None:
        """Re-offer the queue to workers parked with nothing eligible."""
        waiting, idle[:] = idle[:], []
        for worker in waiting:
            pull(worker)

    def skip_poisoned(at: float) -> None:
        """Record dependency-poisoned tasks as zero-duration failures."""
        for spec, failed_deps in queue.reap_poisoned():
            sim_skipped.inc()
            sim_failures.inc()
            records.append(
                TaskRecord(
                    key=spec.key,
                    worker_id=UNSCHEDULED_WORKER_ID,
                    start=at,
                    end=at,
                    ok=False,
                    error=(
                        "SkippedDependency: upstream task(s) failed: "
                        + ", ".join(failed_deps)
                    ),
                    attempt=spec.attempt,
                )
            )

    def pull(worker: WorkerInfo) -> None:
        task = queue.pop(worker)
        if task is None:
            idle.append(worker)
            return
        error = failure_fn(task, worker) if failure_fn is not None else None
        start = clock.now + task_overhead
        if error is not None:
            # Failed tasks abort quickly (e.g. OOM on startup).
            duration = min(30.0, duration_fn(task) * 0.1)
        else:
            duration = duration_fn(task)
        end = start + duration

        def finish() -> None:
            records.append(
                TaskRecord(
                    key=task.key,
                    worker_id=worker.worker_id,
                    start=start,
                    end=end,
                    ok=error is None,
                    error=error or "",
                    attempt=task.attempt,
                )
            )
            if error is not None:
                sim_failures.inc()
            if task.attempt > 1:
                sim_retries.inc()
            if error is None:
                # Completing a task may unblock queued dependents that
                # only *other* (idle) workers are eligible for.
                if queue.mark_complete(task.key):
                    wake_idle()
            elif (
                retry_policy is not None
                and retry_policy.should_retry(task.attempt)
            ):
                respawn = retry_policy.next_task(task, error)
                if respawn.requires_highmem and not task.requires_highmem:
                    sim_escalations.inc()

                def resubmit() -> None:
                    queue.submit(respawn)
                    wake_idle()

                clock.schedule(retry_policy.backoff_for(task.attempt), resubmit)
            else:
                # Terminal failure: poison only the downstream chain;
                # a resolved-mode dependent may *promote* instead
                # (relax runs on whichever models survived).
                promoted = queue.mark_failed(task.key)
                skip_poisoned(clock.now)
                if promoted:
                    wake_idle()
            pull(worker)

        clock.schedule(end - clock.now, finish)

    for worker in workers:
        pull(worker)
    makespan = clock.run()
    # Anything still queued could not be placed on any worker (e.g.
    # highmem-only tasks with no highmem workers): fail, don't lose.
    while True:
        task = queue.pop()
        if task is None:
            break
        sim_unschedulable.inc()
        sim_failures.inc()
        records.append(
            TaskRecord(
                key=task.key,
                worker_id=UNSCHEDULED_WORKER_ID,
                start=makespan,
                end=makespan,
                ok=False,
                error="NoEligibleWorker: no worker matches this task's "
                f"placement (pool={task.pool or 'any'!r}, "
                f"highmem={task.requires_highmem})",
                attempt=task.attempt,
            )
        )
        queue.mark_failed(task.key)
    skip_poisoned(makespan)
    for spec, missing in queue.drain_blocked():
        sim_skipped.inc()
        sim_failures.inc()
        records.append(
            TaskRecord(
                key=spec.key,
                worker_id=UNSCHEDULED_WORKER_ID,
                start=makespan,
                end=makespan,
                ok=False,
                error="SkippedDependency: dependency never completed: "
                + ", ".join(missing),
                attempt=spec.attempt,
            )
        )
    return SimulationResult(
        records=records,
        workers=list(workers),
        makespan_seconds=makespan,
        startup_seconds=startup,
    )
