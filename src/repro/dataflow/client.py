"""Client/futures front-end with scheduler-file registration.

Mirrors the Dask deployment mechanics of §3.3 step by step:

1. a :class:`SchedulerService` starts and writes a JSON *scheduler
   file* describing its address;
2. workers read that file and register with the scheduler (one per
   GPU in the paper's layout);
3. the driving script creates a :class:`Client` against the same
   scheduler file, ``map``s the task list (sorted descending by size),
   receives :class:`Future` objects, and appends per-task statistics to
   a CSV as tasks complete.

Execution is in-process threads (the substitute for Summit's node
fabric), but the *protocol* — registration file, client/scheduler
separation, futures, completion callbacks — is the paper's.
"""

from __future__ import annotations

import csv
import json
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .engine import ExecutionResult
from .reporting import TASK_CSV_COLUMNS, format_task_row
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers

__all__ = ["SchedulerService", "Future", "Client"]


class SchedulerService:
    """The scheduler process: owns the queue and the worker registry."""

    def __init__(self, scheduler_file: str | Path) -> None:
        self.scheduler_file = Path(scheduler_file)
        self.address = f"inproc://scheduler-{id(self):x}"
        self.workers: list[WorkerInfo] = []
        self.queue = TaskQueue()
        self._lock = threading.Lock()
        self.scheduler_file.write_text(
            json.dumps({"address": self.address, "type": "repro-scheduler"}),
            encoding="utf-8",
        )

    def register_worker(self, worker: WorkerInfo) -> None:
        """Workers call this after reading the scheduler file (§3.3-2)."""
        with self._lock:
            self.workers.append(worker)

    def spawn_workers(self, n_nodes: int, workers_per_node: int) -> None:
        """Convenience: start one worker per GPU across the allocation."""
        for worker in make_workers(n_nodes, workers_per_node):
            self.register_worker(worker)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def close(self) -> None:
        if self.scheduler_file.exists():
            self.scheduler_file.unlink()


@dataclass
class Future:
    """Handle to one submitted task."""

    key: str
    _event: threading.Event
    _result: list  # single-slot box
    _error: list

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(f"task {self.key} not finished")
        if self._error:
            raise RuntimeError(self._error[0])
        return self._result[0]

    def exception(self) -> str | None:
        self._event.wait()
        return self._error[0] if self._error else None


class Client:
    """The driving script's connection to a scheduler (§3.3 step 3a)."""

    def __init__(self, scheduler_file: str | Path) -> None:
        path = Path(scheduler_file)
        if not path.exists():
            raise FileNotFoundError(
                f"scheduler file {path} not found — start the scheduler first"
            )
        info = json.loads(path.read_text(encoding="utf-8"))
        if info.get("type") != "repro-scheduler":
            raise ValueError(f"{path} is not a repro scheduler file")
        self.scheduler_address = info["address"]
        self._service: SchedulerService | None = None

    def connect(self, service: SchedulerService) -> "Client":
        """Bind to the in-process scheduler service (transport stand-in)."""
        if service.address != self.scheduler_address:
            raise ValueError("scheduler file does not match this service")
        self._service = service
        return self

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[tuple[str, Any, float]],
        sort_descending: bool = True,
        stats_csv: str | Path | None = None,
    ) -> list[Future]:
        """Submit all tasks; returns futures in submission order.

        ``stats_csv`` streams per-task statistics as they complete
        (§3.3 step 3e).  Workers pull greedily from the shared queue.
        """
        if self._service is None:
            raise RuntimeError("client not connected; call connect() first")
        service = self._service
        if service.n_workers == 0:
            raise RuntimeError("no workers registered with the scheduler")
        futures: dict[str, Future] = {}
        for key, payload, size_hint in items:
            if key in futures:
                raise ValueError(f"duplicate task key {key!r}")
            futures[key] = Future(
                key=key, _event=threading.Event(), _result=[], _error=[]
            )
            service.queue.submit(
                TaskSpec(key=key, payload=payload, size_hint=size_hint)
            )
        if sort_descending:
            service.queue.sort_descending()

        lock = threading.Lock()
        records: list[TaskRecord] = []
        csv_fh = csv_writer = None
        if stats_csv:
            csv_fh = open(stats_csv, "w", encoding="utf-8", newline="")
            csv_writer = csv.writer(csv_fh)
            csv_writer.writerow(TASK_CSV_COLUMNS)
        t0 = time.perf_counter()

        def run_worker(worker: WorkerInfo) -> None:
            while True:
                with lock:
                    task = service.queue.pop()
                if task is None:
                    return
                future = futures[task.key]
                start = time.perf_counter() - t0
                try:
                    value = func(task.payload)
                    future._result.append(value)
                    ok, error = True, ""
                except Exception as exc:  # noqa: BLE001 - per-task isolation
                    error = f"{type(exc).__name__}: {exc}"
                    future._error.append(error)
                    ok = False
                end = time.perf_counter() - t0
                record = TaskRecord(
                    key=task.key,
                    worker_id=worker.worker_id,
                    start=start,
                    end=end,
                    ok=ok,
                    error=error,
                )
                with lock:
                    records.append(record)
                    if csv_writer is not None:
                        csv_writer.writerow(format_task_row(record))
                future._event.set()

        threads = [
            threading.Thread(target=run_worker, args=(w,), daemon=True)
            for w in service.workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if csv_fh:
            csv_fh.close()
        self.last_run = ExecutionResult(
            records=sorted(records, key=lambda r: r.start),
            results={
                k: f._result[0] for k, f in futures.items() if f._result
            },
            walltime_seconds=time.perf_counter() - t0,
        )
        return list(futures.values())

    @staticmethod
    def gather(futures: list[Future]) -> list[Any]:
        """Block until all futures resolve; raises on the first failure."""
        return [f.result() for f in futures]
