"""Dataflow scheduler: queue, workers, greedy assignment.

The heart of the Dask deployment in §3.3: a scheduler holds a task
queue; workers (one per GPU) pull the next task the moment they finish
the previous one.  No task placement decisions beyond FIFO — the load
balancing comes entirely from the submission *order* (the paper's
descending-length sort) plus the dataflow execution model.

This module is execution-agnostic: the threaded executor runs real
Python callables, the simulated executor advances a discrete-event
clock with modelled durations.  Both share these task/worker structures
and produce the same :class:`TaskRecord` stream for reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..telemetry.metrics import get_metrics

__all__ = ["TaskSpec", "TaskRecord", "WorkerInfo", "TaskQueue"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a key plus an optional payload/callable.

    ``size_hint`` is what the greedy sort orders by (sequence length in
    the paper's workflows).  ``requires_highmem`` marks tasks that only
    fit a 2 TB high-memory node (§3.3); the queue never hands them to a
    standard worker.  ``attempt`` counts executions of this key — retry
    machinery respawns failed tasks with the counter bumped.
    """

    key: str
    payload: Any = None
    func: Callable[..., Any] | None = None
    size_hint: float = 0.0
    requires_highmem: bool = False
    attempt: int = 1


@dataclass(frozen=True)
class WorkerInfo:
    """A registered worker: one GPU slot on some node."""

    worker_id: str
    node_id: int
    gpu_id: int
    highmem: bool = False

    @property
    def short_id(self) -> str:
        """Shortened UUID-style label, as in the paper's Fig. 2 rows."""
        return self.worker_id[-6:]


@dataclass(frozen=True)
class TaskRecord:
    """Completion record — one row of the workflow's statistics CSV.

    With retries enabled one task key produces several records, one per
    attempt; ``attempt`` disambiguates them (a recovered OOM shows up as
    a failed attempt 1 followed by an ok attempt 2 on a highmem worker).
    """

    key: str
    worker_id: str
    start: float
    end: float
    ok: bool = True
    error: str = ""
    result: Any = None
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TaskQueue:
    """FIFO task queue with optional greedy size ordering.

    ``sort_descending()`` implements the paper's §3.3 step 3c: targets
    sorted in descending size so long tasks start early and short tasks
    fill the tail gaps.

    Tasks live on two deques split by eligibility — standard tasks any
    worker may run, and ``requires_highmem`` tasks only a 2 TB worker
    may take — so every :meth:`pop` is O(1) instead of a scan-and-delete
    over queued highmem tasks.  A monotone submission counter stitches
    the deques back into one global FIFO wherever order across both
    matters (highmem pops, :attr:`tasks`, reordering).
    """

    _standard: deque[tuple[int, TaskSpec]] = field(default_factory=deque)
    _highmem: deque[tuple[int, TaskSpec]] = field(default_factory=deque)
    _seq: int = 0
    # Dispatch counters, re-resolved only when the active registry
    # changes so the hot pop path pays one identity check, not a
    # registry lookup, per dispatch.
    _dispatch_registry: Any = field(default=None, repr=False, compare=False)
    _dispatch_counters: Any = field(default=None, repr=False, compare=False)

    def _count_dispatch(self, task: TaskSpec) -> TaskSpec:
        registry = get_metrics()
        if registry is not self._dispatch_registry:
            self._dispatch_counters = (
                registry.counter("dataflow.dispatch.standard"),
                registry.counter("dataflow.dispatch.highmem"),
            )
            self._dispatch_registry = registry
        self._dispatch_counters[1 if task.requires_highmem else 0].inc()
        return task

    @property
    def tasks(self) -> list[TaskSpec]:
        """Queued tasks in global FIFO order (a read-only snapshot)."""
        return [task for _, task in sorted(self._standard + self._highmem)]

    def submit(self, task: TaskSpec) -> None:
        lane = self._highmem if task.requires_highmem else self._standard
        lane.append((self._seq, task))
        self._seq += 1

    def submit_many(self, tasks: list[TaskSpec]) -> None:
        for task in tasks:
            self.submit(task)

    def _reorder(self, ordered: list[TaskSpec]) -> None:
        self._standard.clear()
        self._highmem.clear()
        self._seq = 0
        self.submit_many(ordered)

    def sort_descending(self) -> None:
        """Greedy load balancing: largest size hints first."""
        self._reorder(
            sorted(self.tasks, key=lambda t: (-t.size_hint, t.key))
        )

    def shuffle(self, rng) -> None:
        """Random order (the baseline the paper argues against)."""
        items = self.tasks
        rng.shuffle(items)
        self._reorder(items)

    def pop(self, worker: WorkerInfo | None = None) -> TaskSpec | None:
        """Next task this worker may run (FIFO among eligible tasks).

        High-memory workers (and the ``worker=None`` legacy form) take
        the oldest task overall; standard workers take the oldest
        standard task, leaving ``requires_highmem`` tasks queued for a
        2 TB node.  Returns ``None`` when no eligible task is queued —
        the queue itself may be non-empty.
        """
        if worker is None or worker.highmem:
            if not self._highmem:
                if not self._standard:
                    return None
                return self._count_dispatch(self._standard.popleft()[1])
            if not self._standard:
                return self._count_dispatch(self._highmem.popleft()[1])
            lane = (
                self._standard
                if self._standard[0][0] < self._highmem[0][0]
                else self._highmem
            )
            return self._count_dispatch(lane.popleft()[1])
        if not self._standard:
            return None
        return self._count_dispatch(self._standard.popleft()[1])

    def __len__(self) -> int:
        return len(self._standard) + len(self._highmem)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return bool(self._standard) or bool(self._highmem)


def make_workers(
    n_nodes: int,
    workers_per_node: int,
    highmem_nodes: int = 0,
) -> list[WorkerInfo]:
    """Spawn worker descriptors: one per GPU per node (§3.3 step 2).

    The last ``highmem_nodes`` nodes are flagged high-memory (the
    paper routed oversized proteins there).
    Worker ids mimic Dask's UUID-suffixed names.
    """
    import hashlib

    workers = []
    for node in range(n_nodes):
        for gpu in range(workers_per_node):
            digest = hashlib.sha256(f"worker/{node}/{gpu}".encode()).hexdigest()
            workers.append(
                WorkerInfo(
                    worker_id=f"tcp-worker-{digest[:12]}",
                    node_id=node,
                    gpu_id=gpu,
                    highmem=node >= n_nodes - highmem_nodes,
                )
            )
    return workers
