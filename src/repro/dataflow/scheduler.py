"""Dataflow scheduler: queue, workers, greedy assignment, dependencies.

The heart of the Dask deployment in §3.3: a scheduler holds a task
queue; workers (one per GPU) pull the next task the moment they finish
the previous one.  No task placement decisions beyond FIFO — the load
balancing comes entirely from the submission *order* (the paper's
descending-length sort) plus the dataflow execution model.

Two placement dimensions extend plain FIFO:

* ``requires_highmem`` tasks only dispatch to 2 TB workers (§3.3's
  oversized-protein routing), and
* ``pool`` routes tasks to a named worker pool — the ParaFold-shaped
  CPU/GPU split the streaming campaign scheduler uses (feature/relax
  tasks on a CPU pool, inference on a GPU pool).

Tasks may also declare ``depends_on`` edges.  A task with unmet
dependencies is *held* (never offered to a worker) until every
predecessor completes; the executors drive this with
:meth:`TaskQueue.mark_complete` / :meth:`TaskQueue.mark_failed`.  A
failed predecessor poisons its downstream chain — dependents are
surfaced through :meth:`TaskQueue.reap_poisoned` so the executors can
record them as skipped, never silently dropped and never a hang.

This module is execution-agnostic: the threaded executor runs real
Python callables, the simulated executor advances a discrete-event
clock with modelled durations.  Both share these task/worker structures
and produce the same :class:`TaskRecord` stream for reporting.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..telemetry.metrics import get_metrics

__all__ = ["TaskSpec", "TaskRecord", "WorkerInfo", "TaskQueue"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a key plus an optional payload/callable.

    ``size_hint`` is what the greedy sort orders by (sequence length in
    the paper's workflows).  ``requires_highmem`` marks tasks that only
    fit a 2 TB high-memory node (§3.3); the queue never hands them to a
    standard worker.  ``attempt`` counts executions of this key — retry
    machinery respawns failed tasks with the counter bumped.

    ``depends_on`` names predecessor task keys: the queue holds this
    task until every one of them resolves.  ``dep_mode`` picks the
    readiness rule — ``"all"`` (default) runs only if every dependency
    *succeeded* and is poisoned by the first failure; ``"resolved"``
    runs once every dependency has terminally resolved either way, and
    is poisoned only when *all* of them failed (the relax stage's rule:
    one surviving model prediction is enough to relax).  ``pool`` names
    the worker pool this task must run on (``""`` = any).
    """

    key: str
    payload: Any = None
    func: Callable[..., Any] | None = None
    size_hint: float = 0.0
    requires_highmem: bool = False
    attempt: int = 1
    depends_on: tuple[str, ...] = ()
    pool: str = ""
    dep_mode: str = "all"


@dataclass(frozen=True)
class WorkerInfo:
    """A registered worker: one GPU slot on some node.

    ``pool`` names the heterogeneous pool the worker belongs to
    (``"cpu"``/``"gpu"`` in the streaming campaign); the empty string
    is the universal pool — such workers take tasks from any pool, and
    pool-less tasks run anywhere.
    """

    worker_id: str
    node_id: int
    gpu_id: int
    highmem: bool = False
    pool: str = ""

    @property
    def short_id(self) -> str:
        """Shortened UUID-style label, as in the paper's Fig. 2 rows."""
        return self.worker_id[-6:]


@dataclass(frozen=True)
class TaskRecord:
    """Completion record — one row of the workflow's statistics CSV.

    With retries enabled one task key produces several records, one per
    attempt; ``attempt`` disambiguates them (a recovered OOM shows up as
    a failed attempt 1 followed by an ok attempt 2 on a highmem worker).
    """

    key: str
    worker_id: str
    start: float
    end: float
    ok: bool = True
    error: str = ""
    result: Any = None
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


class _Blocked:
    """A submitted task waiting on unresolved dependencies."""

    __slots__ = ("spec", "pending", "failed")

    def __init__(
        self, spec: TaskSpec, pending: set[str], failed: set[str]
    ) -> None:
        self.spec = spec
        self.pending = pending
        self.failed = failed


@dataclass
class TaskQueue:
    """FIFO task queue with greedy ordering, placement lanes and deps.

    ``sort_descending()`` implements the paper's §3.3 step 3c: targets
    sorted in descending size so long tasks start early and short tasks
    fill the tail gaps.

    Ready tasks live on per-eligibility-class deques — one lane per
    ``(pool, requires_highmem)`` pair — so every :meth:`pop` is O(lanes)
    instead of a scan over ineligible tasks.  A monotone submission
    counter stitches the lanes back into one global FIFO wherever order
    across lanes matters (pops, :attr:`tasks`, reordering).

    Tasks with unmet ``depends_on`` edges are held in a blocked set and
    promoted into their lane the moment the last dependency resolves
    (:meth:`mark_complete`).  A terminally failed dependency
    (:meth:`mark_failed`) poisons dependents per their ``dep_mode``;
    poisoned tasks — including transitively poisoned descendants — are
    collected for the caller via :meth:`reap_poisoned` so every key
    still produces a record.

    ``finalize`` is an optional hook applied to a task as it enters a
    lane (i.e. once its dependencies are known): the streaming pipeline
    uses it to *raise* ``requires_highmem`` once the feature result
    reveals the MSA depth.  It must be monotone — never clear a flag a
    retry escalation set.

    With ``observe_pressure`` set (the real executors set it; the
    simulated one does not), each submit stamps an enqueue time and
    each dispatch samples the ``dataflow.queue.depth`` gauge and the
    ``dataflow.task.wait_seconds`` histogram, making queue pressure
    under the streaming scheduler visible in ``repro report``.
    """

    _lanes: dict[tuple[str, bool], deque[tuple[int, float, TaskSpec]]] = field(
        default_factory=dict
    )
    _seq: int = 0
    _blocked: dict[str, _Blocked] = field(default_factory=dict)
    _waiters: dict[str, list[str]] = field(default_factory=dict)
    _done: set[str] = field(default_factory=set)
    _failed: set[str] = field(default_factory=set)
    _poisoned: list[tuple[TaskSpec, tuple[str, ...]]] = field(
        default_factory=list
    )
    finalize: Callable[[TaskSpec], TaskSpec] | None = field(
        default=None, repr=False, compare=False
    )
    observe_pressure: bool = False
    # Dispatch instruments, re-resolved only when the active registry
    # changes so the hot pop path pays one identity check, not a
    # registry lookup, per dispatch.
    _dispatch_registry: Any = field(default=None, repr=False, compare=False)
    _dispatch_counters: Any = field(default=None, repr=False, compare=False)

    def _instruments(self):
        registry = get_metrics()
        if registry is not self._dispatch_registry:
            self._dispatch_counters = (
                registry.counter("dataflow.dispatch.standard"),
                registry.counter("dataflow.dispatch.highmem"),
                registry.gauge("dataflow.queue.depth"),
                registry.histogram("dataflow.task.wait_seconds"),
            )
            self._dispatch_registry = registry
        return self._dispatch_counters

    def _count_dispatch(self, task: TaskSpec, enqueued_at: float) -> TaskSpec:
        standard, highmem, depth, wait = self._instruments()
        (highmem if task.requires_highmem else standard).inc()
        if self.observe_pressure:
            depth.set(len(self))
            wait.observe(max(0.0, time.monotonic() - enqueued_at))
        return task

    @property
    def tasks(self) -> list[TaskSpec]:
        """Queued (ready) tasks in global FIFO order (a snapshot).

        Blocked tasks are not included — they are not dispatchable yet.
        """
        entries: list[tuple[int, float, TaskSpec]] = []
        for lane in self._lanes.values():
            entries.extend(lane)
        return [task for _, _, task in sorted(entries, key=lambda e: e[0])]

    @property
    def n_blocked(self) -> int:
        """Tasks held on unresolved dependencies."""
        return len(self._blocked)

    # -- submission ----------------------------------------------------------
    def _enqueue(self, task: TaskSpec, run_finalize: bool = True) -> None:
        if run_finalize and self.finalize is not None:
            task = self.finalize(task)
        lane_key = (task.pool, task.requires_highmem)
        lane = self._lanes.get(lane_key)
        if lane is None:
            lane = self._lanes[lane_key] = deque()
        enqueued_at = time.monotonic() if self.observe_pressure else 0.0
        lane.append((self._seq, enqueued_at, task))
        self._seq += 1

    def submit(self, task: TaskSpec) -> None:
        deps = task.depends_on
        if deps:
            pending = {
                d for d in deps if d not in self._done and d not in self._failed
            }
            failed = {d for d in deps if d in self._failed}
            if pending:
                self._blocked[task.key] = _Blocked(task, pending, failed)
                for dep in pending:
                    self._waiters.setdefault(dep, []).append(task.key)
                return
            if failed and (
                task.dep_mode == "all" or len(failed) == len(deps)
            ):
                self._poison(task, failed)
                return
        self._enqueue(task)

    def submit_many(self, tasks: list[TaskSpec]) -> None:
        for task in tasks:
            self.submit(task)

    # -- dependency resolution -----------------------------------------------
    def satisfy(self, key: str) -> None:
        """Mark ``key`` complete without a task having run (resume path)."""
        self._done.add(key)

    def satisfy_many(self, keys: Iterable[str]) -> None:
        self._done.update(keys)

    def _poison(self, task: TaskSpec, failed_deps: set[str]) -> int:
        self._poisoned.append((task, tuple(sorted(failed_deps))))
        return self._mark(task.key, failed=True)

    def _mark(self, key: str, failed: bool) -> int:
        (self._failed if failed else self._done).add(key)
        promoted = 0
        for waiter_key in self._waiters.pop(key, ()):
            blocked = self._blocked.get(waiter_key)
            if blocked is None:
                continue  # already promoted/poisoned via another dep
            blocked.pending.discard(key)
            if failed:
                blocked.failed.add(key)
            spec = blocked.spec
            if failed and spec.dep_mode == "all":
                del self._blocked[waiter_key]
                promoted += self._poison(spec, blocked.failed)
                continue
            if not blocked.pending:
                del self._blocked[waiter_key]
                if blocked.failed and len(blocked.failed) == len(
                    spec.depends_on
                ):
                    promoted += self._poison(spec, blocked.failed)
                else:
                    self._enqueue(spec)
                    promoted += 1
        return promoted

    def mark_complete(self, key: str) -> int:
        """A task succeeded: promote dependents whose edges all resolved.

        Returns the number of tasks promoted into a lane (callers use a
        non-zero return to wake idle workers).
        """
        return self._mark(key, failed=False)

    def mark_failed(self, key: str) -> int:
        """A task terminally failed: poison/promote dependents.

        ``dep_mode="all"`` dependents are poisoned immediately (and
        their own keys marked failed, cascading down the chain);
        ``dep_mode="resolved"`` dependents are promoted once every edge
        has resolved unless *every* edge failed.  Returns the number of
        tasks promoted.
        """
        return self._mark(key, failed=True)

    def reap_poisoned(self) -> list[tuple[TaskSpec, tuple[str, ...]]]:
        """Drain tasks poisoned by failed dependencies.

        Each entry is ``(spec, failed_dependency_keys)``.  The caller
        records them (``SkippedDependency`` failures) so no key ever
        vanishes from the record stream.
        """
        poisoned, self._poisoned = self._poisoned, []
        return poisoned

    def drain_blocked(self) -> list[tuple[TaskSpec, tuple[str, ...]]]:
        """Remove and return tasks whose dependencies never resolved.

        Each entry is ``(spec, unresolved_dependency_keys)``.  Only
        reachable at end of run when a dependency was never submitted.
        """
        drained = [
            (b.spec, tuple(sorted(b.pending)))
            for b in self._blocked.values()
        ]
        self._blocked.clear()
        self._waiters.clear()
        return drained

    # -- ordering ------------------------------------------------------------
    def _reorder(self, ordered: list[TaskSpec]) -> None:
        for lane in self._lanes.values():
            lane.clear()
        self._seq = 0
        for task in ordered:
            # Already-ready tasks re-enter their lane directly; their
            # dependencies were checked (and finalize applied) on first
            # submission.
            self._enqueue(task, run_finalize=False)

    def sort_descending(self) -> None:
        """Greedy load balancing: largest size hints first.

        Orders the currently *ready* tasks; blocked tasks enqueue in
        dependency-resolution order when promoted.
        """
        self._reorder(
            sorted(self.tasks, key=lambda t: (-t.size_hint, t.key))
        )

    def shuffle(self, rng) -> None:
        """Random order (the baseline the paper argues against)."""
        items = self.tasks
        rng.shuffle(items)
        self._reorder(items)

    # -- dispatch ------------------------------------------------------------
    @staticmethod
    def _eligible(worker: WorkerInfo | None, lane_key: tuple[str, bool]) -> bool:
        if worker is None:
            return True
        pool, needs_highmem = lane_key
        if needs_highmem and not worker.highmem:
            return False
        if pool and worker.pool and pool != worker.pool:
            return False
        return True

    def pop(self, worker: WorkerInfo | None = None) -> TaskSpec | None:
        """Next task this worker may run (FIFO among eligible tasks).

        Eligibility: ``requires_highmem`` tasks need a high-memory
        worker; a task with a ``pool`` needs a worker of that pool (or
        a pool-less worker); the ``worker=None`` legacy form takes the
        oldest task overall.  Returns ``None`` when no eligible task is
        queued — the queue itself may be non-empty.
        """
        best: deque | None = None
        best_seq = -1
        for lane_key, lane in self._lanes.items():
            if not lane or not self._eligible(worker, lane_key):
                continue
            if best is None or lane[0][0] < best_seq:
                best = lane
                best_seq = lane[0][0]
        if best is None:
            return None
        _, enqueued_at, task = best.popleft()
        return self._count_dispatch(task, enqueued_at)

    def schedulable_for(self, workers: list[WorkerInfo]) -> bool:
        """Is any queued task eligible for any of these workers?

        The threaded executor's idle-exit check: with nothing in flight
        and nothing deferred, a worker may only exit once no queued task
        could ever be taken by *any* registered worker — otherwise a
        chain promoted by a peer's completion could strand.
        """
        return any(
            lane and any(self._eligible(w, lane_key) for w in workers)
            for lane_key, lane in self._lanes.items()
        )

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return any(self._lanes.values())


def make_workers(
    n_nodes: int,
    workers_per_node: int,
    highmem_nodes: int = 0,
    pool: str = "",
) -> list[WorkerInfo]:
    """Spawn worker descriptors: one per GPU per node (§3.3 step 2).

    The last ``highmem_nodes`` nodes are flagged high-memory (the
    paper routed oversized proteins there).  ``pool`` labels every
    created worker with a pool name — the name also feeds the id hash,
    so concatenating a CPU pool and a GPU pool never collides ids.
    Worker ids mimic Dask's UUID-suffixed names.
    """
    import hashlib

    workers = []
    for node in range(n_nodes):
        for gpu in range(workers_per_node):
            seed = (
                f"worker/{pool}/{node}/{gpu}" if pool else f"worker/{node}/{gpu}"
            )
            digest = hashlib.sha256(seed.encode()).hexdigest()
            workers.append(
                WorkerInfo(
                    worker_id=f"tcp-worker-{digest[:12]}",
                    node_id=node,
                    gpu_id=gpu,
                    highmem=node >= n_nodes - highmem_nodes,
                    pool=pool,
                )
            )
    return workers
