"""Dataflow scheduler: queue, workers, greedy assignment.

The heart of the Dask deployment in §3.3: a scheduler holds a task
queue; workers (one per GPU) pull the next task the moment they finish
the previous one.  No task placement decisions beyond FIFO — the load
balancing comes entirely from the submission *order* (the paper's
descending-length sort) plus the dataflow execution model.

This module is execution-agnostic: the threaded executor runs real
Python callables, the simulated executor advances a discrete-event
clock with modelled durations.  Both share these task/worker structures
and produce the same :class:`TaskRecord` stream for reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TaskSpec", "TaskRecord", "WorkerInfo", "TaskQueue"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a key plus an optional payload/callable.

    ``size_hint`` is what the greedy sort orders by (sequence length in
    the paper's workflows).  ``requires_highmem`` marks tasks that only
    fit a 2 TB high-memory node (§3.3); the queue never hands them to a
    standard worker.  ``attempt`` counts executions of this key — retry
    machinery respawns failed tasks with the counter bumped.
    """

    key: str
    payload: Any = None
    func: Callable[..., Any] | None = None
    size_hint: float = 0.0
    requires_highmem: bool = False
    attempt: int = 1


@dataclass(frozen=True)
class WorkerInfo:
    """A registered worker: one GPU slot on some node."""

    worker_id: str
    node_id: int
    gpu_id: int
    highmem: bool = False

    @property
    def short_id(self) -> str:
        """Shortened UUID-style label, as in the paper's Fig. 2 rows."""
        return self.worker_id[-6:]


@dataclass(frozen=True)
class TaskRecord:
    """Completion record — one row of the workflow's statistics CSV.

    With retries enabled one task key produces several records, one per
    attempt; ``attempt`` disambiguates them (a recovered OOM shows up as
    a failed attempt 1 followed by an ok attempt 2 on a highmem worker).
    """

    key: str
    worker_id: str
    start: float
    end: float
    ok: bool = True
    error: str = ""
    result: Any = None
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TaskQueue:
    """FIFO task queue with optional greedy size ordering.

    ``sort_descending()`` implements the paper's §3.3 step 3c: targets
    sorted in descending size so long tasks start early and short tasks
    fill the tail gaps.
    """

    tasks: deque[TaskSpec] = field(default_factory=deque)

    def submit(self, task: TaskSpec) -> None:
        self.tasks.append(task)

    def submit_many(self, tasks: list[TaskSpec]) -> None:
        self.tasks.extend(tasks)

    def sort_descending(self) -> None:
        """Greedy load balancing: largest size hints first."""
        ordered = sorted(
            self.tasks, key=lambda t: (-t.size_hint, t.key)
        )
        self.tasks = deque(ordered)

    def shuffle(self, rng) -> None:
        """Random order (the baseline the paper argues against)."""
        items = list(self.tasks)
        rng.shuffle(items)
        self.tasks = deque(items)

    def pop(self, worker: WorkerInfo | None = None) -> TaskSpec | None:
        """Next task this worker may run (FIFO among eligible tasks).

        High-memory workers (and the ``worker=None`` legacy form) take
        the head of the queue; standard workers skip ``requires_highmem``
        tasks, which stay queued for a 2 TB node.  Returns ``None`` when
        no eligible task is queued — the queue itself may be non-empty.
        """
        if not self.tasks:
            return None
        if worker is None or worker.highmem:
            return self.tasks.popleft()
        for i, task in enumerate(self.tasks):
            if not task.requires_highmem:
                del self.tasks[i]
                return task
        return None

    def __len__(self) -> int:
        return len(self.tasks)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return bool(self.tasks)


def make_workers(
    n_nodes: int,
    workers_per_node: int,
    highmem_nodes: int = 0,
) -> list[WorkerInfo]:
    """Spawn worker descriptors: one per GPU per node (§3.3 step 2).

    The last ``highmem_nodes`` nodes are flagged high-memory (the
    paper routed oversized proteins there).
    Worker ids mimic Dask's UUID-suffixed names.
    """
    import hashlib

    workers = []
    for node in range(n_nodes):
        for gpu in range(workers_per_node):
            digest = hashlib.sha256(f"worker/{node}/{gpu}".encode()).hexdigest()
            workers.append(
                WorkerInfo(
                    worker_id=f"tcp-worker-{digest[:12]}",
                    node_id=node,
                    gpu_id=gpu,
                    highmem=node >= n_nodes - highmem_nodes,
                )
            )
    return workers
