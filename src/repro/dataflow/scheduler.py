"""Dataflow scheduler: queue, workers, greedy assignment.

The heart of the Dask deployment in §3.3: a scheduler holds a task
queue; workers (one per GPU) pull the next task the moment they finish
the previous one.  No task placement decisions beyond FIFO — the load
balancing comes entirely from the submission *order* (the paper's
descending-length sort) plus the dataflow execution model.

This module is execution-agnostic: the threaded executor runs real
Python callables, the simulated executor advances a discrete-event
clock with modelled durations.  Both share these task/worker structures
and produce the same :class:`TaskRecord` stream for reporting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TaskSpec", "TaskRecord", "WorkerInfo", "TaskQueue"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a key plus an optional payload/callable.

    ``size_hint`` is what the greedy sort orders by (sequence length in
    the paper's workflows).
    """

    key: str
    payload: Any = None
    func: Callable[..., Any] | None = None
    size_hint: float = 0.0


@dataclass(frozen=True)
class WorkerInfo:
    """A registered worker: one GPU slot on some node."""

    worker_id: str
    node_id: int
    gpu_id: int
    highmem: bool = False

    @property
    def short_id(self) -> str:
        """Shortened UUID-style label, as in the paper's Fig. 2 rows."""
        return self.worker_id[-6:]


@dataclass(frozen=True)
class TaskRecord:
    """Completion record — one row of the workflow's statistics CSV."""

    key: str
    worker_id: str
    start: float
    end: float
    ok: bool = True
    error: str = ""
    result: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TaskQueue:
    """FIFO task queue with optional greedy size ordering.

    ``sort_descending()`` implements the paper's §3.3 step 3c: targets
    sorted in descending size so long tasks start early and short tasks
    fill the tail gaps.
    """

    tasks: deque[TaskSpec] = field(default_factory=deque)

    def submit(self, task: TaskSpec) -> None:
        self.tasks.append(task)

    def submit_many(self, tasks: list[TaskSpec]) -> None:
        self.tasks.extend(tasks)

    def sort_descending(self) -> None:
        """Greedy load balancing: largest size hints first."""
        ordered = sorted(
            self.tasks, key=lambda t: (-t.size_hint, t.key)
        )
        self.tasks = deque(ordered)

    def shuffle(self, rng) -> None:
        """Random order (the baseline the paper argues against)."""
        items = list(self.tasks)
        rng.shuffle(items)
        self.tasks = deque(items)

    def pop(self) -> TaskSpec | None:
        return self.tasks.popleft() if self.tasks else None

    def __len__(self) -> int:
        return len(self.tasks)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return bool(self.tasks)


def make_workers(
    n_nodes: int,
    workers_per_node: int,
    highmem_nodes: int = 0,
) -> list[WorkerInfo]:
    """Spawn worker descriptors: one per GPU per node (§3.3 step 2).

    The last ``highmem_nodes`` nodes are flagged high-memory (the
    paper routed oversized proteins there).
    Worker ids mimic Dask's UUID-suffixed names.
    """
    import hashlib

    workers = []
    for node in range(n_nodes):
        for gpu in range(workers_per_node):
            digest = hashlib.sha256(f"worker/{node}/{gpu}".encode()).hexdigest()
            workers.append(
                WorkerInfo(
                    worker_id=f"tcp-worker-{digest[:12]}",
                    node_id=node,
                    gpu_id=gpu,
                    highmem=node >= n_nodes - highmem_nodes,
                )
            )
    return workers
