"""Real (threaded) dataflow execution.

The same scheduler/queue semantics as the simulated engine, but tasks
are actual Python callables run on a thread pool — one "worker" per
thread.  Used by the examples and integration tests to run the full
pipeline for real, and by anyone adopting the library on an actual
multi-core machine (numpy releases the GIL in the kernels that matter).
"""

from __future__ import annotations

import csv
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers

__all__ = ["ExecutionResult", "ThreadedExecutor"]


@dataclass
class ExecutionResult:
    """Completed run: per-task records + results keyed by task key."""

    records: list[TaskRecord]
    results: dict[str, Any]
    walltime_seconds: float

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if not r.ok)

    def write_csv(self, path: str | Path) -> None:
        """Write the per-task statistics CSV (§3.3 step 3e)."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["key", "worker_id", "start", "end", "ok", "error"])
            for r in self.records:
                writer.writerow(
                    [r.key, r.worker_id, f"{r.start:.6f}", f"{r.end:.6f}", r.ok, r.error]
                )


class ThreadedExecutor:
    """Run a task list on ``n_workers`` threads, dataflow style.

    Mirrors the paper's deployment in miniature: a shared queue, greedy
    descending-size submission order, workers pulling as they free up,
    and a task-record stream identical in shape to the simulated one.
    """

    def __init__(self, n_workers: int = 4) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        self.workers = make_workers(n_nodes=1, workers_per_node=n_workers)

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[tuple[str, Any, float]],
        sort_descending: bool = True,
    ) -> ExecutionResult:
        """Apply ``func`` to items given as (key, payload, size_hint).

        Exceptions inside tasks are captured per task, not raised: a
        proteome run must survive individual OOM-style failures, as the
        paper's did.
        """
        queue = TaskQueue()
        for key, payload, size_hint in items:
            queue.submit(TaskSpec(key=key, payload=payload, size_hint=size_hint))
        if sort_descending:
            queue.sort_descending()

        lock = threading.Lock()
        records: list[TaskRecord] = []
        results: dict[str, Any] = {}
        t0 = time.perf_counter()

        def run_worker(worker: WorkerInfo) -> None:
            while True:
                with lock:
                    task = queue.pop()
                if task is None:
                    return
                start = time.perf_counter() - t0
                ok, error, value = True, "", None
                try:
                    value = func(task.payload)
                except Exception as exc:  # noqa: BLE001 - per-task isolation
                    ok, error = False, f"{type(exc).__name__}: {exc}"
                end = time.perf_counter() - t0
                with lock:
                    records.append(
                        TaskRecord(
                            key=task.key,
                            worker_id=worker.worker_id,
                            start=start,
                            end=end,
                            ok=ok,
                            error=error,
                            result=None,
                        )
                    )
                    if ok:
                        results[task.key] = value

        threads = [
            threading.Thread(target=run_worker, args=(w,), daemon=True)
            for w in self.workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        walltime = time.perf_counter() - t0
        records.sort(key=lambda r: r.start)
        return ExecutionResult(
            records=records, results=results, walltime_seconds=walltime
        )
