"""Real (threaded) dataflow execution.

The same scheduler/queue semantics as the simulated engine, but tasks
are actual Python callables run on a thread pool — one "worker" per
thread.  Used by the examples and integration tests to run the full
pipeline for real, and by anyone adopting the library on an actual
multi-core machine (numpy releases the GIL in the kernels that matter).

Fault tolerance matches the simulated executor: memory-aware dispatch
(``requires_highmem`` tasks only run on highmem workers), per-attempt
records, and optional :class:`~repro.dataflow.faults.RetryPolicy`
retries with escalate-to-highmem on OOM-class failures.

Dependency-driven execution (the streaming campaign scheduler) rides
the same loop: tasks with ``depends_on`` edges are held by the
:class:`~repro.dataflow.scheduler.TaskQueue` until their predecessors
complete, heterogeneous ``pools`` route feature/relax vs inference
work to disjoint worker sets, and a terminally failed predecessor
poisons only its own downstream chain — dependents surface as
``SkippedDependency`` failure records, never a hang.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable

from ..telemetry.metrics import get_metrics
from ..telemetry.tracer import get_tracer
from .faults import RetryPolicy
from .reporting import lost_keys as _lost_keys
from .reporting import write_task_csv
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers
from .simulated import UNSCHEDULED_WORKER_ID

__all__ = ["ExecutionResult", "ThreadedExecutor"]


@dataclass
class ExecutionResult:
    """Completed run: per-task records + results keyed by task key."""

    records: list[TaskRecord]
    results: dict[str, Any]
    walltime_seconds: float
    workers: list[WorkerInfo] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        """Distinct task keys with at least one failed attempt.

        A retried-then-recovered task counts once, however many
        attempts it burned; per-attempt failure counts live on the
        ``<stage>.task.failures`` metric and in
        :func:`~repro.dataflow.reporting.summarize_records`.
        """
        return len({r.key for r in self.records if not r.ok})

    def lost_keys(self) -> list[str]:
        """Task keys with no successful attempt — lost targets."""
        return _lost_keys(self.records)

    def write_csv(self, path: str | Path) -> None:
        """Write the per-task statistics CSV (§3.3 step 3e)."""
        write_task_csv(self.records, path)


class _StageHandles:
    """Per-stage metric handles, resolved once per stage per run."""

    __slots__ = (
        "stage", "latency", "failures", "retries", "escalations",
        "unschedulable", "skipped_dependency",
    )

    def __init__(self, metrics, stage: str) -> None:
        self.stage = stage
        self.latency = metrics.histogram(f"{stage}.task.latency_seconds")
        self.failures = metrics.counter(f"{stage}.task.failures")
        self.retries = metrics.counter(f"{stage}.task.retries")
        self.escalations = metrics.counter(f"{stage}.task.oom_escalations")
        self.unschedulable = metrics.counter(f"{stage}.task.unschedulable")
        self.skipped_dependency = metrics.counter(
            f"{stage}.task.skipped_dependency"
        )


def _stage_handles(
    metrics, stage: str, stage_of: Callable[[TaskSpec], str] | None
) -> Callable[[TaskSpec], _StageHandles]:
    """Metric-handle resolver: fixed stage, or per-task via ``stage_of``."""
    cache: dict[str, _StageHandles] = {stage: _StageHandles(metrics, stage)}
    if stage_of is None:
        fixed = cache[stage]
        return lambda task: fixed

    def resolve(task: TaskSpec) -> _StageHandles:
        name = stage_of(task)
        handles = cache.get(name)
        if handles is None:
            handles = cache[name] = _StageHandles(metrics, name)
        return handles

    return resolve


def submit_items(
    queue: TaskQueue, items: Iterable[tuple[str, Any, float] | TaskSpec]
) -> None:
    """Shared item-intake: tuples become plain specs, specs pass through."""
    for item in items:
        if isinstance(item, TaskSpec):
            queue.submit(item)
        else:
            try:
                key, payload, size_hint = item
            except (TypeError, ValueError):
                raise ValueError(
                    "items must be TaskSpec or (key, payload, size_hint) "
                    f"tuples, got {item!r}"
                ) from None
            queue.submit(
                TaskSpec(key=key, payload=payload, size_hint=size_hint)
            )


def pooled_workers(
    pools: dict[str, int] | None,
    n_workers: int,
    highmem_workers: int,
) -> list[WorkerInfo]:
    """Worker descriptors for one machine, optionally split into pools.

    Without ``pools``: ``n_workers`` pool-less workers.  With pools,
    workers are created per pool in dict order and the total replaces
    ``n_workers``.  Either way the *last* ``highmem_workers`` workers
    are flagged high-memory — callers putting the GPU pool last in the
    dict therefore land highmem slots on GPU workers, matching the
    paper's 2 TB inference nodes.
    """
    if pools:
        workers: list[WorkerInfo] = []
        for pool, count in pools.items():
            if count < 0:
                raise ValueError(f"pool {pool!r} has negative size")
            workers.extend(
                make_workers(n_nodes=1, workers_per_node=count, pool=pool)
            )
        if not workers:
            raise ValueError("pools must provide at least one worker")
    else:
        workers = make_workers(n_nodes=1, workers_per_node=n_workers)
    n = len(workers)
    if not 0 <= highmem_workers <= n:
        raise ValueError("highmem_workers must be in [0, n_workers]")
    return [
        replace(w, highmem=i >= n - highmem_workers)
        for i, w in enumerate(workers)
    ]


def skipped_dependency_error(failed_deps: tuple[str, ...]) -> str:
    """The failure string recorded for a dependency-poisoned task."""
    return (
        "SkippedDependency: upstream task(s) failed: "
        + ", ".join(failed_deps)
    )


class ThreadedExecutor:
    """Run a task list on ``n_workers`` threads, dataflow style.

    Mirrors the paper's deployment in miniature: a shared queue, greedy
    descending-size submission order, workers pulling as they free up,
    and a task-record stream identical in shape to the simulated one.
    The last ``highmem_workers`` threads play the 2 TB high-memory
    nodes' role: only they may run ``requires_highmem`` tasks.

    ``pools`` optionally splits the workers into named pools (e.g.
    ``{"cpu": 4, "gpu": 4}``): tasks carrying a matching
    ``TaskSpec.pool`` only dispatch to workers of that pool, the
    ParaFold-shaped CPU/GPU split the streaming campaign uses.  When
    given, the pool sizes define the worker count.
    """

    def __init__(
        self,
        n_workers: int = 4,
        highmem_workers: int = 0,
        pools: dict[str, int] | None = None,
    ) -> None:
        if pools is None and n_workers < 1:
            raise ValueError("need at least one worker")
        self.workers = pooled_workers(pools, n_workers, highmem_workers)
        self.n_workers = len(self.workers)

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[tuple[str, Any, float] | TaskSpec],
        sort_descending: bool = True,
        retry_policy: RetryPolicy | None = None,
        failure_fn: Callable[[TaskSpec, WorkerInfo], str | None] | None = None,
        pass_spec: bool = False,
        stage: str = "dataflow",
        on_complete: Callable[[TaskRecord, Any], None] | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        stage_of: Callable[[TaskSpec], str] | None = None,
        stage_spans: dict[str, Any] | None = None,
        finalize_fn: Callable[[TaskSpec, dict[str, Any]], TaskSpec] | None = None,
        inject_deps: bool = False,
        preresolved: dict[str, Any] | None = None,
    ) -> ExecutionResult:
        """Apply ``func`` to items given as (key, payload, size_hint).

        Items may also be full :class:`TaskSpec` objects (to set
        ``requires_highmem``, ``pool`` or ``depends_on``).  Exceptions
        inside tasks are captured per task, not raised: a proteome run
        must survive individual OOM-style failures, as the paper's did.
        ``failure_fn`` injects placement-dependent failures before
        ``func`` runs (the testable stand-in for a real per-worker
        memory wall); with a ``retry_policy``, failed attempts respawn —
        escalated to a highmem worker on OOM-class errors — until the
        attempt budget runs out.  With ``pass_spec``, ``func`` receives
        the full :class:`TaskSpec` of the *current attempt* instead of
        just the payload — attempt-dependent behaviour (e.g. a memory
        budget that grows when a retry escalates to highmem) needs the
        live spec.

        ``stage`` labels the telemetry this run emits: every attempt
        becomes a ``task`` span (worker/lane/attempt attributes) under
        the caller's open stage span, and latency/failure/retry counts
        land on dotted ``<stage>.task.*`` metrics.  With the default
        no-op tracer the per-task cost is one branch.

        ``on_complete`` is the per-record completion callback the
        durable run state hangs off: it runs on the worker thread once
        per :class:`TaskRecord` — every attempt, including failed ones,
        dependency-skipped descendants and the end-of-run unschedulable
        drain — with the task's result (``None`` when the attempt
        failed), *before* the record is published to the shared result
        set.  A write-ahead ledger can therefore fsync the completion
        before anyone observes it.  Callback exceptions don't poison
        task accounting; they are collected and re-raised as one
        ``RuntimeError`` after the run drains, since losing durable
        state must be loud.

        ``initializer(*initargs)`` runs once before any task — the
        same hook :class:`~repro.dataflow.process.ProcessExecutor` runs
        once *per worker process*, so stage code that sets up a shared
        context (library suite, model bank) works identically on both
        backends.

        Streaming extensions (all optional, default off):

        * ``stage_of`` maps a task to its stage name so one map call
          spanning several stages still lands metrics on per-stage
          ``<stage>.task.*`` names;
        * ``stage_spans`` maps stage names to open telemetry spans —
          task spans are then recorded post-hoc with that explicit
          parent, so three interleaved stages nest task→stage correctly
          (ambient parenting would tangle them);
        * ``finalize_fn(spec, resolved)`` rewrites a task as it becomes
          ready, with the resolved results of its dependencies
          available (the highmem-routing decision that needs the
          feature result's MSA depth);
        * ``inject_deps`` wraps each dispatched payload as
          ``(payload, {dep_key: result})`` so chain tasks receive their
          predecessors' outputs;
        * ``preresolved`` seeds dependency keys already satisfied (the
          ``--resume`` path) together with their restored values.
        """
        if initializer is not None:
            initializer(*initargs)
        queue = TaskQueue()
        queue.observe_pressure = True
        resolved: dict[str, Any] = dict(preresolved or {})
        if finalize_fn is not None:
            queue.finalize = lambda spec: finalize_fn(spec, resolved)
        if preresolved:
            queue.satisfy_many(preresolved)
        submit_items(queue, items)
        if sort_descending:
            queue.sort_descending()

        cond = threading.Condition()
        records: list[TaskRecord] = []
        results: dict[str, Any] = {}
        callback_errors: list[str] = []
        in_flight = 0
        # Respawned tasks waiting out a retry backoff: (ready_at, seq,
        # task) min-heap.  Parking them here instead of sleeping on the
        # worker thread keeps every worker slot draining other tasks
        # for the whole backoff window.
        deferred: list[tuple[float, int, TaskSpec]] = []
        defer_seq = 0
        tracer = get_tracer()
        metrics = get_metrics()
        handles_for = _stage_handles(metrics, stage, stage_of)
        all_workers = self.workers
        t0 = time.perf_counter()
        trace_base = tracer.now() if tracer.enabled else 0.0

        def notify_complete(record: TaskRecord, value: Any) -> None:
            if on_complete is None:
                return
            try:
                on_complete(record, value if record.ok else None)
            except Exception as exc:  # noqa: BLE001 - surfaced after drain
                with cond:
                    callback_errors.append(
                        f"{record.key}: {type(exc).__name__}: {exc}"
                    )

        def skip_record(
            spec: TaskSpec, error: str, at: float, handles: _StageHandles
        ) -> None:
            """Record a task that never ran (poisoned or unschedulable)."""
            handles.failures.inc()
            record = TaskRecord(
                key=spec.key,
                worker_id=UNSCHEDULED_WORKER_ID,
                start=at,
                end=at,
                ok=False,
                error=error,
                attempt=spec.attempt,
            )
            notify_complete(record, None)
            with cond:
                records.append(record)

        def skip_poisoned(
            poisoned: list[tuple[TaskSpec, tuple[str, ...]]]
        ) -> None:
            at = time.perf_counter() - t0
            for spec, failed_deps in poisoned:
                handles = handles_for(spec)
                handles.skipped_dependency.inc()
                skip_record(
                    spec, skipped_dependency_error(failed_deps), at, handles
                )

        def promote_ready(now: float) -> None:
            """Move backoff-expired respawns onto the queue (holds cond)."""
            promoted = False
            while deferred and deferred[0][0] <= now:
                _, _, respawned = heapq.heappop(deferred)
                queue.submit(respawned)
                promoted = True
            if promoted:
                # A promoted task may only be eligible for *another*
                # worker (highmem escalation) — wake everyone.
                cond.notify_all()

        def run_worker(worker: WorkerInfo) -> None:
            nonlocal in_flight, defer_seq
            while True:
                with cond:
                    while True:
                        promote_ready(time.perf_counter() - t0)
                        task = queue.pop(worker)
                        if task is not None:
                            if inject_deps:
                                deps = {
                                    k: resolved[k]
                                    for k in task.depends_on
                                    if k in resolved
                                }
                            break
                        # No eligible task, nothing running that could
                        # requeue or promote one, nothing waiting out a
                        # backoff, and no queued task *any* worker could
                        # take: the run is over for everyone (tasks no
                        # worker fits — and chains blocked on them — are
                        # drained after join).
                        if (
                            in_flight == 0
                            and not deferred
                            and not queue.schedulable_for(all_workers)
                        ):
                            return
                        # Untimed unless a deferred respawn needs a
                        # wake-up at its ready time: completion/requeue
                        # notifies the condition, so idle workers never
                        # poll.
                        timeout = None
                        if deferred:
                            timeout = max(
                                deferred[0][0]
                                - (time.perf_counter() - t0),
                                0.0,
                            )
                        cond.wait(timeout)
                    in_flight += 1
                handles = handles_for(task)
                exec_task = (
                    replace(task, payload=(task.payload, deps))
                    if inject_deps
                    else task
                )
                start = time.perf_counter() - t0
                ok, error, value = True, "", None
                span_attrs = {
                    "worker": worker.worker_id,
                    "lane": worker.short_id,
                    "attempt": task.attempt,
                    "highmem": worker.highmem,
                    "stage": handles.stage,
                }
                span_cm = (
                    tracer.span("task", task.key, attrs=span_attrs)
                    if stage_spans is None
                    else None
                )
                with span_cm if span_cm is not None else _NULL_CM as span:
                    injected = (
                        failure_fn(task, worker) if failure_fn is not None else None
                    )
                    if injected is not None:
                        ok, error = False, injected
                    else:
                        try:
                            value = (
                                func(exec_task)
                                if pass_spec
                                else func(exec_task.payload)
                            )
                        except Exception as exc:  # noqa: BLE001 - per-task isolation
                            ok, error = False, f"{type(exc).__name__}: {exc}"
                    if span is not None:
                        span.set_attr("ok", ok)
                end = time.perf_counter() - t0
                if stage_spans is not None and tracer.enabled:
                    parent = stage_spans.get(handles.stage)
                    tracer.complete(
                        "task",
                        task.key,
                        trace_base + start,
                        trace_base + end,
                        attrs={**span_attrs, "ok": ok, "error": error},
                        parent_id=(
                            parent.span_id if parent is not None else None
                        ),
                        thread=worker.worker_id,
                    )
                handles.latency.observe(end - start)
                if not ok:
                    handles.failures.inc()
                if task.attempt > 1:
                    handles.retries.inc()
                record = TaskRecord(
                    key=task.key,
                    worker_id=worker.worker_id,
                    start=start,
                    end=end,
                    ok=ok,
                    error=error,
                    result=None,
                    attempt=task.attempt,
                )
                respawn = None
                if (
                    not ok
                    and retry_policy is not None
                    and retry_policy.should_retry(task.attempt)
                ):
                    respawn = retry_policy.next_task(task, error)
                    if respawn.requires_highmem and not task.requires_highmem:
                        handles.escalations.inc()
                        tracer.event(
                            f"{handles.stage}.task.oom_escalation",
                            category="dataflow",
                            attrs={"key": task.key, "attempt": task.attempt},
                        )
                notify_complete(record, value)
                poisoned: list[tuple[TaskSpec, tuple[str, ...]]] = []
                with cond:
                    records.append(record)
                    if ok:
                        results[task.key] = value
                        resolved[task.key] = value
                        queue.mark_complete(task.key)
                    if respawn is not None:
                        backoff = retry_policy.backoff_for(task.attempt)
                        if backoff > 0:
                            # Defer instead of sleeping on this thread:
                            # the slot keeps draining other tasks and
                            # the run stays live via the non-empty heap.
                            defer_seq += 1
                            heapq.heappush(
                                deferred,
                                (
                                    time.perf_counter() - t0 + backoff,
                                    defer_seq,
                                    respawn,
                                ),
                            )
                        else:
                            queue.submit(respawn)
                    elif not ok:
                        # Terminal failure: poison the downstream chain
                        # (and only it) instead of stranding dependents.
                        queue.mark_failed(task.key)
                        poisoned = queue.reap_poisoned()
                    in_flight -= 1
                    cond.notify_all()
                if poisoned:
                    skip_poisoned(poisoned)

        threads = [
            threading.Thread(target=run_worker, args=(w,), daemon=True)
            for w in self.workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        walltime = time.perf_counter() - t0
        # Tasks no worker could take (wrong pool, highmem-only with no
        # highmem workers) are failed, not silently dropped — and their
        # dependents are poisoned with them.
        while True:
            task = queue.pop()
            if task is None:
                break
            handles = handles_for(task)
            handles.unschedulable.inc()
            skip_record(
                task,
                "NoEligibleWorker: no worker matches this task's placement "
                f"(pool={task.pool or 'any'!r}, "
                f"highmem={task.requires_highmem})",
                walltime,
                handles,
            )
            queue.mark_failed(task.key)
        skip_poisoned(queue.reap_poisoned())
        for spec, missing in queue.drain_blocked():
            handles = handles_for(spec)
            handles.skipped_dependency.inc()
            skip_record(
                spec,
                "SkippedDependency: dependency never completed: "
                + ", ".join(missing),
                walltime,
                handles,
            )
        if callback_errors:
            raise RuntimeError(
                f"on_complete callback failed for {len(callback_errors)} "
                "record(s): " + "; ".join(callback_errors[:3])
            )
        records.sort(key=lambda r: r.start)
        return ExecutionResult(
            records=records,
            results=results,
            walltime_seconds=walltime,
            workers=list(self.workers),
        )


class _NullCM:
    """No-op span context for the streaming (post-hoc span) path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CM = _NullCM()
