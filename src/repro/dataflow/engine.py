"""Real (threaded) dataflow execution.

The same scheduler/queue semantics as the simulated engine, but tasks
are actual Python callables run on a thread pool — one "worker" per
thread.  Used by the examples and integration tests to run the full
pipeline for real, and by anyone adopting the library on an actual
multi-core machine (numpy releases the GIL in the kernels that matter).

Fault tolerance matches the simulated executor: memory-aware dispatch
(``requires_highmem`` tasks only run on highmem workers), per-attempt
records, and optional :class:`~repro.dataflow.faults.RetryPolicy`
retries with escalate-to-highmem on OOM-class failures.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable

from ..telemetry.metrics import get_metrics
from ..telemetry.tracer import get_tracer
from .faults import RetryPolicy
from .reporting import lost_keys as _lost_keys
from .reporting import write_task_csv
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo, make_workers
from .simulated import UNSCHEDULED_WORKER_ID

__all__ = ["ExecutionResult", "ThreadedExecutor"]


@dataclass
class ExecutionResult:
    """Completed run: per-task records + results keyed by task key."""

    records: list[TaskRecord]
    results: dict[str, Any]
    walltime_seconds: float
    workers: list[WorkerInfo] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        """Distinct task keys with at least one failed attempt.

        A retried-then-recovered task counts once, however many
        attempts it burned; per-attempt failure counts live on the
        ``<stage>.task.failures`` metric and in
        :func:`~repro.dataflow.reporting.summarize_records`.
        """
        return len({r.key for r in self.records if not r.ok})

    def lost_keys(self) -> list[str]:
        """Task keys with no successful attempt — lost targets."""
        return _lost_keys(self.records)

    def write_csv(self, path: str | Path) -> None:
        """Write the per-task statistics CSV (§3.3 step 3e)."""
        write_task_csv(self.records, path)


class ThreadedExecutor:
    """Run a task list on ``n_workers`` threads, dataflow style.

    Mirrors the paper's deployment in miniature: a shared queue, greedy
    descending-size submission order, workers pulling as they free up,
    and a task-record stream identical in shape to the simulated one.
    The last ``highmem_workers`` threads play the 2 TB high-memory
    nodes' role: only they may run ``requires_highmem`` tasks.
    """

    def __init__(self, n_workers: int = 4, highmem_workers: int = 0) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if not 0 <= highmem_workers <= n_workers:
            raise ValueError("highmem_workers must be in [0, n_workers]")
        self.n_workers = n_workers
        self.workers = [
            replace(w, highmem=i >= n_workers - highmem_workers)
            for i, w in enumerate(make_workers(n_nodes=1, workers_per_node=n_workers))
        ]

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[tuple[str, Any, float] | TaskSpec],
        sort_descending: bool = True,
        retry_policy: RetryPolicy | None = None,
        failure_fn: Callable[[TaskSpec, WorkerInfo], str | None] | None = None,
        pass_spec: bool = False,
        stage: str = "dataflow",
        on_complete: Callable[[TaskRecord, Any], None] | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> ExecutionResult:
        """Apply ``func`` to items given as (key, payload, size_hint).

        Items may also be full :class:`TaskSpec` objects (to set
        ``requires_highmem``).  Exceptions inside tasks are captured per
        task, not raised: a proteome run must survive individual
        OOM-style failures, as the paper's did.  ``failure_fn`` injects
        placement-dependent failures before ``func`` runs (the testable
        stand-in for a real per-worker memory wall); with a
        ``retry_policy``, failed attempts respawn — escalated to a
        highmem worker on OOM-class errors — until the attempt budget
        runs out.  With ``pass_spec``, ``func`` receives the full
        :class:`TaskSpec` of the *current attempt* instead of just the
        payload — attempt-dependent behaviour (e.g. a memory budget that
        grows when a retry escalates to highmem) needs the live spec.

        ``stage`` labels the telemetry this run emits: every attempt
        becomes a ``task`` span (worker/lane/attempt attributes) under
        the caller's open stage span, and latency/failure/retry counts
        land on dotted ``<stage>.task.*`` metrics.  With the default
        no-op tracer the per-task cost is one branch.

        ``on_complete`` is the per-record completion callback the
        durable run state hangs off: it runs on the worker thread once
        per :class:`TaskRecord` — every attempt, including failed ones
        and the end-of-run unschedulable drain — with the task's result
        (``None`` when the attempt failed), *before* the record is
        published to the shared result set.  A write-ahead ledger can
        therefore fsync the completion before anyone observes it.
        Callback exceptions don't poison task accounting; they are
        collected and re-raised as one ``RuntimeError`` after the run
        drains, since losing durable state must be loud.

        ``initializer(*initargs)`` runs once before any task — the
        same hook :class:`~repro.dataflow.process.ProcessExecutor` runs
        once *per worker process*, so stage code that sets up a shared
        context (library suite, model bank) works identically on both
        backends.
        """
        if initializer is not None:
            initializer(*initargs)
        queue = TaskQueue()
        for item in items:
            if isinstance(item, TaskSpec):
                queue.submit(item)
            else:
                try:
                    key, payload, size_hint = item
                except (TypeError, ValueError):
                    raise ValueError(
                        "items must be TaskSpec or (key, payload, size_hint) "
                        f"tuples, got {item!r}"
                    ) from None
                queue.submit(
                    TaskSpec(key=key, payload=payload, size_hint=size_hint)
                )
        if sort_descending:
            queue.sort_descending()

        cond = threading.Condition()
        records: list[TaskRecord] = []
        results: dict[str, Any] = {}
        callback_errors: list[str] = []
        in_flight = 0
        # Respawned tasks waiting out a retry backoff: (ready_at, seq,
        # task) min-heap.  Parking them here instead of sleeping on the
        # worker thread keeps every worker slot draining other tasks
        # for the whole backoff window.
        deferred: list[tuple[float, int, TaskSpec]] = []
        defer_seq = 0
        tracer = get_tracer()
        metrics = get_metrics()
        # Created eagerly so a clean run still exports zeroed counters.
        latency = metrics.histogram(f"{stage}.task.latency_seconds")
        failures = metrics.counter(f"{stage}.task.failures")
        retries = metrics.counter(f"{stage}.task.retries")
        escalations = metrics.counter(f"{stage}.task.oom_escalations")
        unschedulable = metrics.counter(f"{stage}.task.unschedulable")
        t0 = time.perf_counter()

        def notify_complete(record: TaskRecord, value: Any) -> None:
            if on_complete is None:
                return
            try:
                on_complete(record, value if record.ok else None)
            except Exception as exc:  # noqa: BLE001 - surfaced after drain
                with cond:
                    callback_errors.append(
                        f"{record.key}: {type(exc).__name__}: {exc}"
                    )

        def promote_ready(now: float) -> None:
            """Move backoff-expired respawns onto the queue (holds cond)."""
            promoted = False
            while deferred and deferred[0][0] <= now:
                _, _, respawned = heapq.heappop(deferred)
                queue.submit(respawned)
                promoted = True
            if promoted:
                # A promoted task may only be eligible for *another*
                # worker (highmem escalation) — wake everyone.
                cond.notify_all()

        def run_worker(worker: WorkerInfo) -> None:
            nonlocal in_flight, defer_seq
            while True:
                with cond:
                    while True:
                        promote_ready(time.perf_counter() - t0)
                        task = queue.pop(worker)
                        if task is not None:
                            break
                        # No eligible task, nothing running that could
                        # requeue one and nothing waiting out a backoff:
                        # only ineligible (highmem) tasks or nothing at
                        # all remain for this worker.
                        if in_flight == 0 and not deferred:
                            return
                        # Untimed unless a deferred respawn needs a
                        # wake-up at its ready time: completion/requeue
                        # notifies the condition, so idle workers never
                        # poll.
                        timeout = None
                        if deferred:
                            timeout = max(
                                deferred[0][0]
                                - (time.perf_counter() - t0),
                                0.0,
                            )
                        cond.wait(timeout)
                    in_flight += 1
                start = time.perf_counter() - t0
                ok, error, value = True, "", None
                with tracer.span(
                    "task",
                    task.key,
                    attrs={
                        "worker": worker.worker_id,
                        "lane": worker.short_id,
                        "attempt": task.attempt,
                        "highmem": worker.highmem,
                        "stage": stage,
                    },
                ) as span:
                    injected = (
                        failure_fn(task, worker) if failure_fn is not None else None
                    )
                    if injected is not None:
                        ok, error = False, injected
                    else:
                        try:
                            value = func(task) if pass_spec else func(task.payload)
                        except Exception as exc:  # noqa: BLE001 - per-task isolation
                            ok, error = False, f"{type(exc).__name__}: {exc}"
                    if span is not None:
                        span.set_attr("ok", ok)
                end = time.perf_counter() - t0
                latency.observe(end - start)
                if not ok:
                    failures.inc()
                if task.attempt > 1:
                    retries.inc()
                record = TaskRecord(
                    key=task.key,
                    worker_id=worker.worker_id,
                    start=start,
                    end=end,
                    ok=ok,
                    error=error,
                    result=None,
                    attempt=task.attempt,
                )
                respawn = None
                if (
                    not ok
                    and retry_policy is not None
                    and retry_policy.should_retry(task.attempt)
                ):
                    respawn = retry_policy.next_task(task, error)
                    if respawn.requires_highmem and not task.requires_highmem:
                        escalations.inc()
                        tracer.event(
                            f"{stage}.task.oom_escalation",
                            category="dataflow",
                            attrs={"key": task.key, "attempt": task.attempt},
                        )
                notify_complete(record, value)
                with cond:
                    records.append(record)
                    if ok:
                        results[task.key] = value
                    if respawn is not None:
                        backoff = retry_policy.backoff_for(task.attempt)
                        if backoff > 0:
                            # Defer instead of sleeping on this thread:
                            # the slot keeps draining other tasks and
                            # the run stays live via the non-empty heap.
                            defer_seq += 1
                            heapq.heappush(
                                deferred,
                                (
                                    time.perf_counter() - t0 + backoff,
                                    defer_seq,
                                    respawn,
                                ),
                            )
                        else:
                            queue.submit(respawn)
                    in_flight -= 1
                    cond.notify_all()

        threads = [
            threading.Thread(target=run_worker, args=(w,), daemon=True)
            for w in self.workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        walltime = time.perf_counter() - t0
        # Tasks no worker could take (highmem-only, no highmem workers)
        # are failed, not silently dropped.
        while True:
            task = queue.pop()
            if task is None:
                break
            unschedulable.inc()
            failures.inc()
            record = TaskRecord(
                key=task.key,
                worker_id=UNSCHEDULED_WORKER_ID,
                start=walltime,
                end=walltime,
                ok=False,
                error="NoEligibleWorker: task requires a high-memory worker",
                attempt=task.attempt,
            )
            notify_complete(record, None)
            records.append(record)
        if callback_errors:
            raise RuntimeError(
                f"on_complete callback failed for {len(callback_errors)} "
                "record(s): " + "; ".join(callback_errors[:3])
            )
        records.sort(key=lambda r: r.start)
        return ExecutionResult(
            records=records,
            results=results,
            walltime_seconds=walltime,
            workers=list(self.workers),
        )
