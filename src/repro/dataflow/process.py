"""Process-backed dataflow execution: escape the GIL.

The paper's deployment (§3) is one Dask scheduler process driving N
worker *processes* across Summit nodes; :class:`ProcessExecutor` is
that shape on one machine.  The parent owns the scheduler state — the
same :class:`~repro.dataflow.scheduler.TaskQueue` /
:class:`~repro.dataflow.scheduler.TaskRecord` /
:class:`~repro.dataflow.faults.RetryPolicy` semantics as
:class:`~repro.dataflow.engine.ThreadedExecutor` — and each worker is a
separate OS process pulling :class:`TaskSpec` messages over a duplex
pipe, so numpy kernels that hold the GIL (and everything else) scale
across cores and memory buses.

Transport: large arrays inside payloads and results move through
``multiprocessing.shared_memory`` segments (see
:mod:`repro.dataflow.shm`) instead of being pickled through the pipe;
only a small skeleton message crosses the connection.

Fault tolerance matches the threaded engine — per-attempt records,
highmem gating, OOM escalation, non-blocking backoff via a deferral
heap — plus the failure class only process isolation can survive: a
worker that *dies* (kill -9, hard crash, exitcode != 0) is detected by
the parent through pipe EOF, its in-flight task is requeued through the
retry policy, and its orphaned payload segment is reclaimed.  All
bookkeeping callbacks (``on_complete`` — the durable ledger — and the
telemetry spans/metrics derived from records) run in the parent, so
``--state-dir``/``--resume`` and the task observer work unchanged.

Workers run ``initializer(*initargs)`` once at startup before their
first task — the hook stage code uses to rehydrate a shared context
(library suite with its frozen k-mer index, model bank) exactly once
per process instead of once per task.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from dataclasses import replace
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Iterable

from ..telemetry.metrics import MetricsRegistry, get_metrics, set_metrics
from ..telemetry.tracer import get_tracer, set_tracer
from .engine import (
    ExecutionResult,
    _stage_handles,
    pooled_workers,
    skipped_dependency_error,
    submit_items,
)
from .faults import RetryPolicy
from .scheduler import TaskQueue, TaskRecord, TaskSpec, WorkerInfo
from .shm import decode_payload, encode_payload, unlink_segment
from .simulated import UNSCHEDULED_WORKER_ID

__all__ = ["ProcessExecutor"]

#: Safety-net poll interval: worker death is event-driven (pipe EOF),
#: so this only bounds how stale the parent's view can get if an OS
#: swallows a wakeup.
_LIVENESS_POLL_SECONDS = 1.0


def _worker_main(
    conn: Connection,
    func: Callable[[Any], Any],
    pass_spec: bool,
    initializer: Callable[..., None] | None,
    initargs: tuple,
) -> None:
    """Worker process body: pull tasks, run, push results.

    Telemetry is re-rooted first: a forked child inherits the parent's
    registries *and their lock state*, so a fresh registry/null tracer
    both avoids inheriting a mid-acquire lock and gives per-task
    counter deltas a clean zero baseline.  Deltas ride each result
    message back; the parent merges them, which is how worker-side
    instrumentation (cache hits, Verlet rebuilds) still lands on the
    campaign's metrics.
    """
    registry = set_metrics(MetricsRegistry())
    set_tracer(None)
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent went away; nothing useful left to do
        if message[0] == "stop":
            break
        spec: TaskSpec = message[1]
        spec = replace(spec, payload=decode_payload(spec.payload))
        before = registry.counter_values()
        started = time.perf_counter()
        ok, error, value = True, "", None
        try:
            value = func(spec) if pass_spec else func(spec.payload)
        except BaseException as exc:  # noqa: BLE001 - per-task isolation
            ok, error = False, f"{type(exc).__name__}: {exc}"
            if not isinstance(exc, Exception):
                # KeyboardInterrupt/SystemExit: report, then die so the
                # parent sees a worker loss rather than a hung pipe.
                conn.send(
                    ("done", spec.key, spec.attempt, False, error, None, {},
                     time.perf_counter() - started)
                )
                raise
        delta = registry.delta(before, registry.counter_values())
        encoded = encode_payload(value) if ok else None
        conn.send(
            (
                "done",
                spec.key,
                spec.attempt,
                ok,
                error,
                encoded,
                delta,
                time.perf_counter() - started,
            )
        )
    conn.close()


class _WorkerSlot:
    """Parent-side view of one worker process."""

    __slots__ = ("info", "process", "conn", "current", "dispatched_at",
                 "payload_segment")

    def __init__(self, info: WorkerInfo, process, conn: Connection) -> None:
        self.info = info
        self.process = process
        self.conn = conn
        self.current: TaskSpec | None = None
        self.dispatched_at = 0.0
        self.payload_segment: str | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ProcessExecutor:
    """Run a task list on ``n_workers`` processes, dataflow style.

    Drop-in sibling of :class:`~repro.dataflow.engine.ThreadedExecutor`
    — same constructor shape, same :meth:`map` contract, same
    :class:`ExecutionResult` — but each worker is an OS process, so CPU
    work scales past the GIL.  The last ``highmem_workers`` processes
    play the 2 TB high-memory nodes' role: only they are handed
    ``requires_highmem`` tasks.

    ``pools`` optionally splits workers into named pools (see
    :class:`~repro.dataflow.engine.ThreadedExecutor`): tasks carrying a
    matching ``TaskSpec.pool`` only dispatch to that pool's processes —
    the streaming campaign's CPU/GPU split.

    ``start_method`` defaults to ``fork`` where available (workers
    inherit the parent's heap copy-on-write, so spawning is cheap even
    with a multi-GB library suite loaded) and falls back to ``spawn``;
    either way ``func``/``initializer``/``initargs`` must be picklable
    module-level callables — closures that work on the threaded backend
    will not cross a process boundary.
    """

    def __init__(
        self,
        n_workers: int = 4,
        highmem_workers: int = 0,
        start_method: str | None = None,
        shm_min_bytes: int | None = None,
        pools: dict[str, int] | None = None,
    ) -> None:
        if pools is None and n_workers < 1:
            raise ValueError("need at least one worker")
        self.workers = pooled_workers(pools, n_workers, highmem_workers)
        self.n_workers = len(self.workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.shm_min_bytes = shm_min_bytes

    # -- internals -----------------------------------------------------------
    def _encode(self, payload: Any):
        if self.shm_min_bytes is None:
            return encode_payload(payload)
        return encode_payload(payload, min_bytes=self.shm_min_bytes)

    def map(
        self,
        func: Callable[[Any], Any],
        items: Iterable[tuple[str, Any, float] | TaskSpec],
        sort_descending: bool = True,
        retry_policy: RetryPolicy | None = None,
        failure_fn: Callable[[TaskSpec, WorkerInfo], str | None] | None = None,
        pass_spec: bool = False,
        stage: str = "dataflow",
        on_complete: Callable[[TaskRecord, Any], None] | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        stage_of: Callable[[TaskSpec], str] | None = None,
        stage_spans: dict[str, Any] | None = None,
        finalize_fn: Callable[[TaskSpec, dict[str, Any]], TaskSpec] | None = None,
        inject_deps: bool = False,
        preresolved: dict[str, Any] | None = None,
    ) -> ExecutionResult:
        """Apply ``func`` to items on the worker-process pool.

        The contract is :meth:`ThreadedExecutor.map`'s — per-task
        exception isolation, injected failures via ``failure_fn``
        (evaluated parent-side against the chosen worker, before
        dispatch), retry/escalation via ``retry_policy``, per-record
        ``on_complete`` — with two process-specific additions:

        * ``initializer(*initargs)`` runs once in every worker before
          its first task;
        * a worker process that dies mid-task surfaces as a failed
          attempt with a ``WorkerLost:`` error, requeued through the
          retry policy like any other failure (counted on
          ``<stage>.worker.lost``).  Losing *every* worker fails the
          remaining tasks loudly instead of hanging.

        ``on_complete`` and the task observer always run in the parent
        process — the write-ahead ledger keeps its single-writer,
        fsync-before-publish ordering without any cross-process
        coordination.

        The streaming extensions (``stage_of``/``stage_spans``/
        ``finalize_fn``/``inject_deps``/``preresolved``) carry the
        :meth:`ThreadedExecutor.map` contract verbatim; dependency
        injection and finalization happen parent-side at dispatch, so
        worker processes see ordinary ``(payload, deps)`` payloads over
        the usual shared-memory transport.
        """
        queue = TaskQueue()
        queue.observe_pressure = True
        resolved: dict[str, Any] = dict(preresolved or {})
        if finalize_fn is not None:
            queue.finalize = lambda spec: finalize_fn(spec, resolved)
        if preresolved:
            queue.satisfy_many(preresolved)
        submit_items(queue, items)
        if sort_descending:
            queue.sort_descending()

        records: list[TaskRecord] = []
        results: dict[str, Any] = {}
        callback_errors: list[str] = []
        deferred: list[tuple[float, int, TaskSpec]] = []
        defer_seq = 0
        tracer = get_tracer()
        metrics = get_metrics()
        handles_for = _stage_handles(metrics, stage, stage_of)
        lost_workers = metrics.counter(f"{stage}.worker.lost")

        ctx = multiprocessing.get_context(self.start_method)
        if self.start_method == "fork":
            # Start the resource tracker *before* forking: children then
            # inherit the one tracker process, so a segment registered
            # by its creator and unregistered by its consumer (always a
            # different process here) balances in a single cache instead
            # of warning at shutdown from two.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        slots: list[_WorkerSlot] = []
        for info in self.workers:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, func, pass_spec, initializer, initargs),
                daemon=True,
                name=f"repro-{stage}-{info.short_id}",
            )
            process.start()
            child_conn.close()
            slots.append(_WorkerSlot(info, process, parent_conn))
        by_conn = {slot.conn: slot for slot in slots}

        t0 = time.perf_counter()
        trace_base = tracer.now() if tracer.enabled else 0.0

        def now() -> float:
            return time.perf_counter() - t0

        def notify_complete(record: TaskRecord, value: Any) -> None:
            if on_complete is None:
                return
            try:
                on_complete(record, value if record.ok else None)
            except Exception as exc:  # noqa: BLE001 - surfaced after drain
                callback_errors.append(
                    f"{record.key}: {type(exc).__name__}: {exc}"
                )

        def skip_record(
            spec: TaskSpec, error: str, at: float, handles
        ) -> None:
            """Record a task that never ran (poisoned or unschedulable)."""
            handles.failures.inc()
            record = TaskRecord(
                key=spec.key,
                worker_id=UNSCHEDULED_WORKER_ID,
                start=at,
                end=at,
                ok=False,
                error=error,
                attempt=spec.attempt,
            )
            notify_complete(record, None)
            records.append(record)

        def skip_poisoned(
            poisoned: list[tuple[TaskSpec, tuple[str, ...]]]
        ) -> None:
            at = now()
            for spec, failed_deps in poisoned:
                handles = handles_for(spec)
                handles.skipped_dependency.inc()
                skip_record(
                    spec, skipped_dependency_error(failed_deps), at, handles
                )

        def complete(
            task: TaskSpec,
            worker: WorkerInfo,
            start: float,
            end: float,
            ok: bool,
            error: str,
            value: Any,
        ) -> None:
            """Record one finished attempt; schedule its retry if due."""
            nonlocal defer_seq
            handles = handles_for(task)
            handles.latency.observe(end - start)
            if not ok:
                handles.failures.inc()
            if task.attempt > 1:
                handles.retries.inc()
            record = TaskRecord(
                key=task.key,
                worker_id=worker.worker_id,
                start=start,
                end=end,
                ok=ok,
                error=error,
                result=None,
                attempt=task.attempt,
            )
            if tracer.enabled:
                parent = (
                    stage_spans.get(handles.stage)
                    if stage_spans is not None
                    else None
                )
                tracer.complete(
                    "task",
                    task.key,
                    trace_base + start,
                    trace_base + end,
                    attrs={
                        "worker": worker.worker_id,
                        "lane": worker.short_id,
                        "attempt": task.attempt,
                        "highmem": worker.highmem,
                        "stage": handles.stage,
                        "ok": ok,
                        "error": error,
                    },
                    parent_id=parent.span_id if parent is not None else None,
                    thread=worker.worker_id,
                )
            respawn = None
            if (
                not ok
                and retry_policy is not None
                and retry_policy.should_retry(task.attempt)
            ):
                respawn = retry_policy.next_task(task, error)
                if respawn.requires_highmem and not task.requires_highmem:
                    handles.escalations.inc()
                    tracer.event(
                        f"{handles.stage}.task.oom_escalation",
                        category="dataflow",
                        attrs={"key": task.key, "attempt": task.attempt},
                    )
            notify_complete(record, value)
            records.append(record)
            if ok:
                results[task.key] = value
                resolved[task.key] = value
                queue.mark_complete(task.key)
            if respawn is not None:
                backoff = retry_policy.backoff_for(task.attempt)
                if backoff > 0:
                    defer_seq += 1
                    heapq.heappush(
                        deferred, (now() + backoff, defer_seq, respawn)
                    )
                else:
                    queue.submit(respawn)
            elif not ok:
                # Terminal failure: poison the downstream chain (and
                # only it) — dependents become SkippedDependency
                # records instead of stranding in the blocked set.
                queue.mark_failed(task.key)
                skip_poisoned(queue.reap_poisoned())

        def handle_worker_loss(slot: _WorkerSlot) -> None:
            """A worker died: reclaim its segment, requeue its task."""
            slot.process.join(timeout=0.5)
            exitcode = slot.process.exitcode
            try:
                slot.conn.close()
            except OSError:
                pass
            del by_conn[slot.conn]
            task = slot.current
            slot.current = None
            unlink_segment(slot.payload_segment)
            slot.payload_segment = None
            slot.process = None  # marks the slot dead
            if task is None:
                return
            lost_workers.inc()
            tracer.event(
                f"{stage}.worker.lost",
                category="dataflow",
                attrs={
                    "worker": slot.info.worker_id,
                    "key": task.key,
                    "exitcode": exitcode,
                },
            )
            complete(
                task,
                slot.info,
                slot.dispatched_at,
                now(),
                ok=False,
                error=(
                    f"WorkerLost: worker process {slot.info.short_id} "
                    f"exited with code {exitcode} mid-task"
                ),
                value=None,
            )

        try:
            while True:
                t = now()
                while deferred and deferred[0][0] <= t:
                    _, _, respawned = heapq.heappop(deferred)
                    queue.submit(respawned)
                # Dispatch to every idle live worker (injected failures
                # complete synchronously, freeing the slot for the next
                # eligible task in the same pass).
                progressed = True
                while progressed:
                    progressed = False
                    for slot in slots:
                        if not slot.alive or slot.current is not None:
                            continue
                        task = queue.pop(slot.info)
                        if task is None:
                            continue
                        progressed = True
                        injected = (
                            failure_fn(task, slot.info)
                            if failure_fn is not None
                            else None
                        )
                        if injected is not None:
                            t = now()
                            complete(
                                task, slot.info, t, t,
                                ok=False, error=injected, value=None,
                            )
                            continue
                        payload = task.payload
                        if inject_deps:
                            # Predecessor results ride the payload as
                            # ``(payload, {dep_key: result})`` — the
                            # spec kept on ``slot.current`` stays the
                            # original so retries re-inject fresh.
                            payload = (
                                payload,
                                {
                                    k: resolved[k]
                                    for k in task.depends_on
                                    if k in resolved
                                },
                            )
                        encoded = self._encode(payload)
                        try:
                            slot.conn.send(
                                ("task", replace(
                                    task, payload=encoded, func=None
                                ))
                            )
                        except (BrokenPipeError, OSError):
                            slot.current = task
                            slot.payload_segment = encoded.segment
                            slot.dispatched_at = now()
                            handle_worker_loss(slot)
                            continue
                        slot.current = task
                        slot.payload_segment = encoded.segment
                        slot.dispatched_at = now()
                # "Active" = not yet collected by handle_worker_loss.
                # Deliberately NOT is_alive(): a worker killed mid-task
                # must stay in ``busy`` until its pipe EOF is consumed,
                # or the loop could break with its task still in flight.
                active = [s for s in slots if s.process is not None]
                busy = [s for s in active if s.current is not None]
                if not busy and not deferred:
                    # Nothing running, nothing waiting out a backoff and
                    # the dispatch pass found nothing eligible: only
                    # unschedulable tasks (or none) remain.
                    break
                if not active:
                    break
                timeout = _LIVENESS_POLL_SECONDS
                if deferred:
                    timeout = min(timeout, max(deferred[0][0] - now(), 0.0))
                ready = connection_wait(
                    [s.conn for s in active], timeout=timeout
                )
                for conn in ready:
                    slot = by_conn.get(conn)
                    if slot is None:
                        continue
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        handle_worker_loss(slot)
                        continue
                    if message[0] != "done":  # pragma: no cover - protocol
                        continue
                    (_, key, attempt, ok, error, encoded_value, delta,
                     _worker_seconds) = message
                    task = slot.current
                    slot.current = None
                    slot.payload_segment = None
                    if task is None or task.key != key:  # pragma: no cover
                        continue
                    value = (
                        decode_payload(encoded_value) if ok else None
                    )
                    for name, moved in (delta or {}).items():
                        if moved:
                            metrics.counter(name).inc(moved)
                    complete(
                        task, slot.info, slot.dispatched_at, now(),
                        ok=ok, error=error, value=value,
                    )
        finally:
            for slot in slots:
                if not slot.alive:
                    continue
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for slot in slots:
                if slot.process is None:
                    continue
                slot.process.join(timeout=5.0)
                if slot.process.is_alive():  # pragma: no cover - hung worker
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
                try:
                    slot.conn.close()
                except OSError:
                    pass

        walltime = now()
        # Drain: tasks no surviving worker could take — wrong pool,
        # highmem-only without a live highmem worker, or anything left
        # after every worker process died — are failed, not silently
        # dropped, and their dependents are poisoned with them.
        leftovers = [task for _, _, task in sorted(deferred)]
        while True:
            task = queue.pop()
            if task is None:
                break
            leftovers.append(task)
        any_alive = any(s.process is not None for s in slots)
        for task in leftovers:
            handles = handles_for(task)
            handles.unschedulable.inc()
            error = (
                "NoEligibleWorker: no worker matches this task's placement "
                f"(pool={task.pool or 'any'!r}, "
                f"highmem={task.requires_highmem})"
                if any_alive
                else "WorkerLost: no live worker processes remain"
            )
            skip_record(task, error, walltime, handles)
            queue.mark_failed(task.key)
        skip_poisoned(queue.reap_poisoned())
        for spec, missing in queue.drain_blocked():
            handles = handles_for(spec)
            handles.skipped_dependency.inc()
            skip_record(
                spec,
                "SkippedDependency: dependency never completed: "
                + ", ".join(missing),
                walltime,
                handles,
            )
        if callback_errors:
            raise RuntimeError(
                f"on_complete callback failed for {len(callback_errors)} "
                "record(s): " + "; ".join(callback_errors[:3])
            )
        records.sort(key=lambda r: r.start)
        return ExecutionResult(
            records=records,
            results=results,
            walltime_seconds=walltime,
            workers=list(self.workers),
        )
