"""Procedural native-structure generation.

Every synthetic protein has a hidden "native" structure, generated
deterministically from its family's fold seed.  Members of one family
share a fold topology and diverge structurally in proportion to their
sequence divergence — which is what makes the paper's structural
annotation experiment (§4.6) mechanically real: a predicted structure of
a hypothetical protein aligns well against library structures of its
(possibly unrecognisably diverged) family.

The surrogate predictor (:mod:`repro.fold.model`) refines a decoy toward
this hidden native; the reproduction's "ground truth" TM-scores in
Fig. 3 are computed against it.
"""

from __future__ import annotations

import numpy as np

from ..sequences.generator import (
    ProteinRecord,
    SequenceUniverse,
    rng_for,
    stable_hash,
)
from ..structure.protein import Structure
from .geometry import build_ca_chain, compact_chain, ss_segments, torsions_for_segments

__all__ = ["smooth_chain_noise", "NativeFactory"]


def smooth_chain_noise(
    n: int,
    rng: np.random.Generator,
    sigma: float,
    window: int = 11,
) -> np.ndarray:
    """Spatially correlated (N, 3) displacement noise along a chain.

    White per-residue noise is smoothed with a moving average along the
    sequence, so displacements are locally coherent — segments move
    together, as real model error does (whole loops and domains shift,
    individual atoms do not teleport).  The output is rescaled so its
    per-residue RMS displacement equals ``sigma``.
    """
    if n <= 0:
        return np.zeros((0, 3))
    raw = rng.normal(0.0, 1.0, size=(n, 3))
    if window > 1 and n > 1:
        w = min(window, n)
        kernel = np.ones(w) / w
        padded = np.vstack(
            [raw[0] * np.ones((w // 2, 3)), raw, raw[-1] * np.ones((w // 2, 3))]
        )
        smooth = np.empty_like(raw)
        for axis in range(3):
            smooth[:, axis] = np.convolve(padded[:, axis], kernel, mode="valid")[:n]
        raw = smooth
    rms = np.sqrt((raw**2).sum(axis=1).mean())
    if rms < 1e-12:
        return np.zeros((n, 3))
    return raw * (sigma / rms)


class NativeFactory:
    """Deterministic factory (and cache) for hidden native structures.

    Parameters
    ----------
    universe:
        The sequence universe that owns the families.
    compaction_steps:
        Gradient steps used when folding a topology from scratch;
        member-level perturbations use a quarter of this to re-settle.
    """

    def __init__(
        self, universe: SequenceUniverse, compaction_steps: int | None = None
    ) -> None:
        self.universe = universe
        self.compaction_steps = compaction_steps
        self._fold_cache: dict[tuple[int, int], np.ndarray] = {}
        self._ss_cache: dict[tuple[int, int], np.ndarray] = {}
        self._native_cache: dict[str, Structure] = {}

    # -- Fold topologies -----------------------------------------------------
    def family_fold(self, fold_seed: int, length: int) -> np.ndarray:
        """The canonical Calpha fold of a family at a given chain length.

        Deterministic in ``(fold_seed, length)``; nearby lengths share
        the same secondary-structure prefix, so small indel differences
        between family members perturb rather than replace the fold.
        """
        key = (fold_seed, length)
        cached = self._fold_cache.get(key)
        if cached is not None:
            return cached
        rng = rng_for(fold_seed, "fold")
        helix_bias = float(rng.uniform(0.15, 0.85))  # fold class (alpha/beta mix)
        segments = ss_segments(length, rng, helix_bias=helix_bias)
        angles, torsions, labels = torsions_for_segments(segments, rng)
        chain = build_ca_chain(angles, torsions)
        folded = compact_chain(chain, rng, n_steps=self.compaction_steps)
        self._fold_cache[key] = folded
        self._ss_cache[key] = labels
        return folded

    def ss_labels(self, fold_seed: int, length: int) -> np.ndarray:
        """Per-residue secondary structure labels (0=H, 1=E, 2=C)."""
        key = (fold_seed, length)
        if key not in self._ss_cache:
            self.family_fold(fold_seed, length)
        return self._ss_cache[key]

    def member_fold(
        self, fold_seed: int, natural_length: int, target_length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Family fold adapted to a member's length; returns (ca, labels).

        The canonical fold is built once at the family's *natural*
        (ancestor) length; members are derived from it by truncation or
        by appending an extension — never by re-folding from scratch at
        the member length.  Re-folding would be chaotic: the collapse is
        strongly nonlinear, so two members differing by a single indel
        could land in different topologies, destroying the family-fold
        coherence the structural-annotation experiment (§4.6) relies on.
        """
        base = self.family_fold(fold_seed, natural_length)
        labels = self.ss_labels(fold_seed, natural_length)
        if target_length == natural_length:
            return base, labels
        if target_length < natural_length:
            return base[:target_length], labels[:target_length]
        # Extension: continue the chain with coil geometry from the last
        # residues, then push any created overlaps out.  The core fold
        # is preserved; the extension dangles, as real disordered or
        # repeat extensions do.
        rng = rng_for(fold_seed, "extension", target_length)
        extra = target_length - natural_length
        segments = ss_segments(extra, rng, helix_bias=0.4)
        angles, torsions, ext_labels = torsions_for_segments(segments, rng)
        coords = np.vstack([base, np.zeros((extra, 3))])
        from .geometry import CA_BOND, resolve_overlaps

        for i in range(natural_length, target_length):
            a, b, c = coords[i - 3], coords[i - 2], coords[i - 1]
            bc = c - b
            bc /= max(np.linalg.norm(bc), 1e-9)
            normal = np.cross(b - a, bc)
            nn = np.linalg.norm(normal)
            if nn < 1e-9:
                normal = np.cross(bc, [0.0, 0.0, 1.0])
                nn = max(np.linalg.norm(normal), 1e-9)
            normal /= nn
            m = np.cross(normal, bc)
            k = i - natural_length
            ang = np.pi - angles[k]
            tor = torsions[k]
            d = CA_BOND * np.array(
                [np.cos(ang), np.sin(ang) * np.cos(tor), np.sin(ang) * np.sin(tor)]
            )
            coords[i] = c + d[0] * bc + d[1] * m + d[2] * normal
        coords = resolve_overlaps(coords)
        return coords, np.concatenate([labels, ext_labels])

    # -- Natives ----------------------------------------------------------------
    def native(self, record: ProteinRecord) -> Structure:
        """The hidden native structure of a protein record."""
        cached = self._native_cache.get(record.record_id)
        if cached is not None:
            return cached
        length = record.length
        if record.family_id is None:
            # Orphan: a fold of its own, keyed by the record itself.
            fold_seed = stable_hash("orphan-fold", record.record_id)
            ca = self.family_fold(fold_seed, length)
            labels = self.ss_labels(fold_seed, length)
        else:
            fam = self.universe.family(record.family_id)
            base, labels = self.member_fold(fam.fold_seed, fam.length, length)
            # Structural divergence tracks sequence divergence: perturb
            # with smooth noise then briefly re-settle the geometry.
            rng = rng_for(fam.fold_seed, "member", record.record_id)
            sigma = 2.5 * record.divergence
            ca = base + smooth_chain_noise(length, rng, sigma=sigma)
            if sigma > 0.05:
                ca = compact_chain(ca, rng, n_steps=40)
        structure = Structure(
            record_id=record.record_id,
            encoded=record.encoded,
            ca=ca,
            model_name="native",
        )
        # Stash SS labels for the error model without widening Structure.
        self._native_cache[record.record_id] = structure
        self._label_for_record = getattr(self, "_label_for_record", {})
        self._label_for_record[record.record_id] = labels
        return structure

    def native_ss_labels(self, record: ProteinRecord) -> np.ndarray:
        """SS labels aligned with :meth:`native` output for the record."""
        self.native(record)
        return self._label_for_record[record.record_id]

    def clear_cache(self) -> None:
        self._fold_cache.clear()
        self._ss_cache.clear()
        self._native_cache.clear()
        if hasattr(self, "_label_for_record"):
            self._label_for_record.clear()
