"""Recycle control: distogram convergence and adaptive recycle caps.

Implements the ColabFold-style early stopping the paper adopted
(§3.2.2): after each recycle, compare the model's residue-contact
distogram with the previous recycle's; stop when the mean change drops
below the preset's tolerance.  The recycle cap is 20 but tapers toward 6
as sequence length grows past 500 AA.

The signature is the hot path of the recycling loop — it runs once per
recycle per (model, target) pair — so :func:`distogram_signature`
computes the pairwise distances with the Gram-matrix identity
``d_ij^2 = |x_i|^2 + |x_j|^2 - 2 x_i.x_j`` (one BLAS GEMM plus O(L^2)
elementwise work) instead of materialising the (L, L, 3) broadcast
temporary, and writes into a caller-supplied buffer when one is given.
:class:`RecycleController` keeps two ping-pong buffers so a whole
recycling loop allocates its distograms exactly twice.
:func:`distogram_signature_reference` retains the broadcast version as
the numerical reference for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    MAX_RECYCLES,
    MIN_RECYCLES_LONG_SEQUENCE,
    RECYCLE_TAPER_START_LENGTH,
)
from ..telemetry.metrics import get_metrics
from ..telemetry.tracer import get_tracer

__all__ = [
    "distogram_signature",
    "distogram_signature_reference",
    "distogram_change",
    "adaptive_recycle_cap",
    "RecycleController",
]

#: Longest sequences get their distogram subsampled to this many rows so
#: the convergence check stays O(400^2) regardless of chain length.
_MAX_DISTOGRAM_DIM: int = 400


def _subsample(ca: np.ndarray) -> np.ndarray:
    arr = np.asarray(ca, dtype=np.float64)
    n = arr.shape[0]
    if n > _MAX_DISTOGRAM_DIM:
        stride = int(np.ceil(n / _MAX_DISTOGRAM_DIM))
        arr = arr[::stride]
    return arr


def distogram_signature(
    ca: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Pairwise-distance signature used for the convergence check.

    The real implementation compares predicted distance *distributions*;
    the mean absolute change of the pairwise distance matrix is the same
    convergence signal at Calpha resolution.  Chains longer than 400
    residues are subsampled with a uniform stride.

    Distances come from ``|x_i|^2 + |x_j|^2 - 2 x_i.x_j``: one GEMM and
    O(L^2) elementwise passes, no (L, L, 3) temporary.  ``out`` may
    supply a reusable (m, m) float64 buffer; a fresh array is allocated
    when it is absent or the wrong shape.
    """
    arr = _subsample(ca)
    m = arr.shape[0]
    if (
        out is None
        or out.shape != (m, m)
        or out.dtype != np.float64
        or not out.flags.c_contiguous
    ):
        out = np.empty((m, m))
    arr = np.ascontiguousarray(arr)
    np.dot(arr, arr.T, out=out)
    sq = np.einsum("ij,ij->i", arr, arr)
    out *= -2.0
    out += sq[:, None]
    out += sq[None, :]
    # Cancellation can leave tiny negatives where distances vanish; the
    # diagonal is zero by definition.
    np.maximum(out, 0.0, out=out)
    np.sqrt(out, out=out)
    np.fill_diagonal(out, 0.0)
    return out


def distogram_signature_reference(ca: np.ndarray) -> np.ndarray:
    """Broadcast-temporary implementation, kept as numerical reference."""
    arr = _subsample(ca)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distogram_change(previous: np.ndarray, current: np.ndarray) -> float:
    """Mean absolute distance change between consecutive recycles."""
    if previous.shape != current.shape:
        raise ValueError("distogram shapes differ between recycles")
    return float(np.abs(current - previous).mean())


def adaptive_recycle_cap(
    length: int,
    max_recycles: int = MAX_RECYCLES,
    min_recycles: int = MIN_RECYCLES_LONG_SEQUENCE,
    taper_start: int = RECYCLE_TAPER_START_LENGTH,
    taper_end: int = 2500,
) -> int:
    """Recycle cap, reduced progressively for long sequences (§3.2.2)."""
    if length <= taper_start:
        return max_recycles
    frac = min(1.0, (length - taper_start) / (taper_end - taper_start))
    return int(round(max_recycles - frac * (max_recycles - min_recycles)))


@dataclass
class RecycleController:
    """Stateful convergence monitor for one prediction.

    ``tolerance=None`` reproduces the official presets: run exactly
    ``cap`` recycles with no early stop.  Two distogram buffers ping-pong
    between "current" and "previous", so the loop stops allocating after
    its second update.
    """

    tolerance: float | None
    cap: int
    n_recycles: int = 0
    last_change: float = float("inf")
    _previous: np.ndarray | None = None
    _spare: np.ndarray | None = None

    def update(self, ca: np.ndarray) -> bool:
        """Record one finished recycle; True if recycling should stop."""
        self.n_recycles += 1
        sig = distogram_signature(ca, out=self._spare)
        if self._previous is not None:
            self.last_change = distogram_change(self._previous, sig)
        # Yesterday's signature becomes the next update's scratch buffer.
        self._spare = self._previous
        self._previous = sig
        if self.n_recycles >= self.cap:
            self._record_stop("cap")
            return True
        if self.tolerance is None:
            return False
        if self.n_recycles >= 2 and self.last_change < self.tolerance:
            self._record_stop("early")
            return True
        return False

    def _record_stop(self, reason: str) -> None:
        """Telemetry for one finished recycling loop (once per model)."""
        metrics = get_metrics()
        metrics.counter(
            "fold.recycle.early_stops"
            if reason == "early"
            else "fold.recycle.cap_stops"
        ).inc()
        metrics.counter("fold.recycle.total").inc(self.n_recycles)
        metrics.histogram(
            "fold.recycle.count", buckets=tuple(float(i) for i in range(1, 21))
        ).observe(self.n_recycles)
        get_tracer().event(
            "fold.recycle.stop",
            category="fold",
            attrs={
                "reason": reason,
                "recycles": self.n_recycles,
                # inf (no second recycle ran) is not valid JSON
                "last_change": (
                    self.last_change
                    if np.isfinite(self.last_change)
                    else None
                ),
            },
        )
