"""Recycle control: distogram convergence and adaptive recycle caps.

Implements the ColabFold-style early stopping the paper adopted
(§3.2.2): after each recycle, compare the model's residue-contact
distogram with the previous recycle's; stop when the mean change drops
below the preset's tolerance.  The recycle cap is 20 but tapers toward 6
as sequence length grows past 500 AA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    MAX_RECYCLES,
    MIN_RECYCLES_LONG_SEQUENCE,
    RECYCLE_TAPER_START_LENGTH,
)

__all__ = ["distogram_signature", "distogram_change", "adaptive_recycle_cap", "RecycleController"]

#: Longest sequences get their distogram subsampled to this many rows so
#: the convergence check stays O(400^2) regardless of chain length.
_MAX_DISTOGRAM_DIM: int = 400


def distogram_signature(ca: np.ndarray) -> np.ndarray:
    """Pairwise-distance signature used for the convergence check.

    The real implementation compares predicted distance *distributions*;
    the mean absolute change of the pairwise distance matrix is the same
    convergence signal at Calpha resolution.  Chains longer than 400
    residues are subsampled with a uniform stride.
    """
    arr = np.asarray(ca, dtype=np.float64)
    n = arr.shape[0]
    if n > _MAX_DISTOGRAM_DIM:
        stride = int(np.ceil(n / _MAX_DISTOGRAM_DIM))
        arr = arr[::stride]
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distogram_change(previous: np.ndarray, current: np.ndarray) -> float:
    """Mean absolute distance change between consecutive recycles."""
    if previous.shape != current.shape:
        raise ValueError("distogram shapes differ between recycles")
    return float(np.abs(current - previous).mean())


def adaptive_recycle_cap(
    length: int,
    max_recycles: int = MAX_RECYCLES,
    min_recycles: int = MIN_RECYCLES_LONG_SEQUENCE,
    taper_start: int = RECYCLE_TAPER_START_LENGTH,
    taper_end: int = 2500,
) -> int:
    """Recycle cap, reduced progressively for long sequences (§3.2.2)."""
    if length <= taper_start:
        return max_recycles
    frac = min(1.0, (length - taper_start) / (taper_end - taper_start))
    return int(round(max_recycles - frac * (max_recycles - min_recycles)))


@dataclass
class RecycleController:
    """Stateful convergence monitor for one prediction.

    ``tolerance=None`` reproduces the official presets: run exactly
    ``cap`` recycles with no early stop.
    """

    tolerance: float | None
    cap: int
    n_recycles: int = 0
    last_change: float = float("inf")
    _previous: np.ndarray | None = None

    def update(self, ca: np.ndarray) -> bool:
        """Record one finished recycle; True if recycling should stop."""
        self.n_recycles += 1
        sig = distogram_signature(ca)
        if self._previous is not None:
            self.last_change = distogram_change(self._previous, sig)
        self._previous = sig
        if self.n_recycles >= self.cap:
            return True
        if self.tolerance is None:
            return False
        return self.n_recycles >= 2 and self.last_change < self.tolerance
