"""Surrogate structure prediction: procedural natives + recycling model."""

from .complexes import (
    ComplexPrediction,
    ComplexPredictor,
    interface_contacts,
    pair_interacts,
)
from .confidence import plddt_from_errors, ptms_estimate
from .difficulty import irreducible_error, refinement_rate, target_difficulty
from .generator import NativeFactory, smooth_chain_noise
from .geometry import (
    build_ca_chain,
    compact_chain,
    ss_segments,
    target_radius_of_gyration,
    torsions_for_segments,
)
from .memory import (
    fits_standard_worker,
    highmem_worker_memory_bytes,
    inference_memory_bytes,
    needs_highmem_node,
    standard_worker_memory_bytes,
)
from .model import (
    OutOfMemoryError,
    Prediction,
    PredictionConfig,
    SurrogateFoldModel,
    default_model_bank,
)
from .recycling import (
    RecycleController,
    adaptive_recycle_cap,
    distogram_change,
    distogram_signature,
)

__all__ = [
    "ComplexPrediction",
    "ComplexPredictor",
    "interface_contacts",
    "pair_interacts",
    "plddt_from_errors",
    "ptms_estimate",
    "irreducible_error",
    "refinement_rate",
    "target_difficulty",
    "NativeFactory",
    "smooth_chain_noise",
    "build_ca_chain",
    "compact_chain",
    "ss_segments",
    "target_radius_of_gyration",
    "torsions_for_segments",
    "fits_standard_worker",
    "highmem_worker_memory_bytes",
    "inference_memory_bytes",
    "needs_highmem_node",
    "standard_worker_memory_bytes",
    "OutOfMemoryError",
    "Prediction",
    "PredictionConfig",
    "SurrogateFoldModel",
    "default_model_bank",
    "RecycleController",
    "adaptive_recycle_cap",
    "distogram_change",
    "distogram_signature",
]
