"""Confidence estimation: pLDDT and pTMS.

AlphaFold's confidence heads are well calibrated but not perfect; the
paper selects the top model per target by pTMS and reports quality
distributions over pLDDT/pTMS thresholds (70 and 0.6).  The surrogate
derives both scores from the model's true residual error with calibrated
estimation noise, so confidence correlates strongly — but not exactly —
with true quality, matching how the scores behave in practice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["plddt_from_errors", "ptms_estimate"]


def plddt_from_errors(
    per_residue_error: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Per-residue pLDDT in [0, 100] from coordinate errors (Angstrom).

    The mapping is a saturating error->confidence curve anchored so that
    ~0.4 Angstrom residues score ~92, the high-quality threshold of 70
    falls near 1.6 Angstrom, and the curve compresses slowly into the
    tail (badly wrong residues still score 15-35, as AlphaFold's do),
    plus ~4-point estimation noise.
    """
    err = np.asarray(per_residue_error, dtype=np.float64)
    if (err < 0).any():
        raise ValueError("errors must be non-negative")
    base = 100.0 / (1.0 + (err / 4.0) ** 1.15)
    noisy = base + rng.normal(0.0, 4.0, size=err.shape)
    return np.clip(noisy, 0.0, 100.0)


#: pTMS reads systematically below the realised TM-score — AlphaFold's
#: pTM head is well documented to be conservative.
_PTMS_CALIBRATION: float = 0.88


def ptms_estimate(true_tm: float, rng: np.random.Generator) -> float:
    """Predicted TM-score: conservative estimate of the true TM-score.

    Noise shrinks near the extremes (a confidently right or confidently
    wrong model is easy to recognise), mirroring pTMS calibration plots.
    """
    if not 0.0 <= true_tm <= 1.0:
        raise ValueError("true_tm must be in [0, 1]")
    sigma = 0.015 + 0.09 * true_tm * (1.0 - true_tm)
    return float(
        np.clip(_PTMS_CALIBRATION * true_tm + rng.normal(0.0, sigma), 0.0, 1.0)
    )
