"""Protein-complex prediction (the AF2Complex extension, paper §5).

The paper's optimizations were folded into AF2Complex, which
generalises AlphaFold to predict protein-protein complexes and scores
candidate interactions with an interface metric — opening the door to
all-vs-all interactome screens whose cost grows quadratically in the
proteome size (the paper's closing argument for HPC).

The surrogate mirrors that design:

* a hidden *interactome* over the family universe decides which pairs
  truly interact (deterministic from the family pair);
* interacting pairs have a hidden docked pose: chain B rigidly placed
  against chain A with a real steric interface;
* prediction folds both chains (reusing the monomer machinery, with
  paired-MSA depth = the weaker chain's depth) and predicts the
  inter-chain placement with an error that shrinks with paired depth —
  non-interacting pairs get no pose signal and land apart or clashed;
* an interface score (iScore-like) summarises predicted inter-chain
  contact confidence; it separates true interactions from random pairs,
  which is the property interactome screens rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..msa.features import FeatureBundle
from ..sequences.generator import ProteinRecord, rng_for, stable_hash
from ..structure.protein import Structure
from .difficulty import target_difficulty
from .generator import NativeFactory

from .model import PredictionConfig, SurrogateFoldModel

__all__ = [
    "ComplexPrediction",
    "pair_interacts",
    "ComplexPredictor",
    "interface_contacts",
]

#: Fraction of family pairs that truly interact.
_INTERACTION_PROBABILITY: float = 0.12

#: Inter-chain contact distance (Calpha-Calpha), Angstrom.
_CONTACT_CUTOFF: float = 8.0


def pair_interacts(record_a: ProteinRecord, record_b: ProteinRecord) -> bool:
    """Hidden interactome: does this pair truly form a complex?

    Deterministic and symmetric in the pair's family identities;
    orphan chains never have known partners.
    """
    if record_a.family_id is None or record_b.family_id is None:
        return False
    lo, hi = sorted((record_a.family_id, record_b.family_id))
    return (
        stable_hash("interactome", lo, hi, modulus=10_000)
        < _INTERACTION_PROBABILITY * 10_000
    )


def interface_contacts(
    ca_a: np.ndarray, ca_b: np.ndarray, cutoff: float = _CONTACT_CUTOFF
) -> int:
    """Number of inter-chain Calpha contact pairs within ``cutoff``."""
    if ca_a.shape[0] == 0 or ca_b.shape[0] == 0:
        return 0
    tree = cKDTree(ca_b)
    counts = tree.query_ball_point(ca_a, cutoff, return_length=True)
    return int(np.sum(counts))


@dataclass(frozen=True)
class ComplexPrediction:
    """One predicted two-chain complex."""

    structure: Structure  # concatenated chains
    chain_break: int  # index of chain B's first residue
    interface_score: float  # in [0, 1]; high = confident interface
    n_interface_contacts: int
    ptms_a: float
    ptms_b: float
    truly_interacting: bool  # hidden ground truth, for evaluation only

    @property
    def chain_a(self) -> np.ndarray:
        return self.structure.ca[: self.chain_break]

    @property
    def chain_b(self) -> np.ndarray:
        return self.structure.ca[self.chain_break :]


class ComplexPredictor:
    """Two-chain complex prediction on top of the monomer surrogate."""

    def __init__(self, factory: NativeFactory, model_index: int = 2) -> None:
        self.factory = factory
        self.monomer = SurrogateFoldModel(factory, model_index)

    # -- Hidden native pose ---------------------------------------------------
    def native_pose(
        self, record_a: ProteinRecord, record_b: ProteinRecord
    ) -> tuple[np.ndarray, np.ndarray]:
        """The hidden docked pose (ca_a, ca_b_docked) of a true pair.

        Chain B is rotated by a pair-specific rotation and translated
        along a pair-specific direction until the closest inter-chain
        Calpha distance reaches ~4.5 Angstrom: a real steric interface.
        """
        nat_a = self.factory.native(record_a).ca
        nat_b = self.factory.native(record_b).ca
        rng = rng_for(0, "complex-pose", record_a.record_id, record_b.record_id)
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis) + 1e-12
        angle = float(rng.uniform(0, 2 * np.pi))
        k = axis
        c, s = np.cos(angle), np.sin(angle)
        b_centered = nat_b - nat_b.mean(axis=0)
        rotated = (
            b_centered * c
            + np.cross(k, b_centered) * s
            + np.outer(b_centered @ k, k) * (1 - c)
        )
        direction = rng.normal(size=3)
        direction /= np.linalg.norm(direction) + 1e-12
        center_a = nat_a.mean(axis=0)
        # March chain B inward along the approach axis until contact.
        lo_t, hi_t = 0.0, 400.0
        for _ in range(40):  # bisection on the closest-approach distance
            mid = 0.5 * (lo_t + hi_t)
            candidate = rotated + center_a + direction * mid
            d_min = float(cKDTree(candidate).query(nat_a, k=1)[0].min())
            if d_min < 4.5:
                lo_t = mid
            else:
                hi_t = mid
        docked = rotated + center_a + direction * hi_t
        return nat_a, docked

    # -- Prediction --------------------------------------------------------------
    def predict(
        self,
        features_a: FeatureBundle,
        features_b: FeatureBundle,
        config: PredictionConfig | None = None,
    ) -> ComplexPrediction:
        """Predict the complex of two targets.

        The paired-MSA signal is only as deep as the weaker chain
        (AF2Complex pairs orthologs across species); placement error
        shrinks with that paired depth for true pairs and stays large
        for non-pairs.
        """
        cfg = config or PredictionConfig(
            recycle_tolerance=0.5, max_recycles=20, adaptive_cap=True
        )
        record_a, record_b = features_a.record, features_b.record
        pred_a = self.monomer.predict(features_a, cfg)
        pred_b = self.monomer.predict(features_b, cfg)
        interacting = pair_interacts(record_a, record_b)
        rng = rng_for(
            0, "complex-predict", record_a.record_id, record_b.record_id
        )
        paired_depth = min(features_a.effective_depth, features_b.effective_depth)
        pair_difficulty = target_difficulty(
            paired_depth, record_a.length + record_b.length
        )
        if interacting:
            nat_a, docked_b = self.native_pose(record_a, record_b)
            # Interface placement error: rotation about the interface
            # center plus translation, shrinking with paired depth.
            scale = 0.25 + 0.75 * pair_difficulty
            center = 0.5 * (nat_a.mean(axis=0) + docked_b.mean(axis=0))
            axis = rng.normal(size=3)
            axis /= np.linalg.norm(axis) + 1e-12
            angle = float(rng.normal(0.0, 0.5 * scale))
            c, s = np.cos(angle), np.sin(angle)
            v = docked_b - center
            swung = (
                v * c + np.cross(axis, v) * s + np.outer(v @ axis, axis) * (1 - c)
            )
            placed_b = (
                swung
                + center
                + rng.normal(0.0, 2.0 * scale, size=3)
            )
        else:
            # No pose signal: the model drifts chain B to a spurious,
            # loosely packed placement (often barely touching).
            nat_a = self.factory.native(record_a).ca
            nat_b = self.factory.native(record_b).ca
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction) + 1e-12
            span = float(
                np.ptp(nat_a, axis=0).max() + np.ptp(nat_b, axis=0).max()
            )
            placed_b = (
                nat_b
                - nat_b.mean(axis=0)
                + nat_a.mean(axis=0)
                + direction * (0.75 * span + rng.uniform(0, 15))
            )
        # Monomer-level error fields ride on top of the placement.
        err_a = pred_a.structure.ca - self.factory.native(record_a).ca
        err_b = pred_b.structure.ca - self.factory.native(record_b).ca
        ca = np.vstack([nat_a + err_a, placed_b + err_b])
        plddt = np.concatenate(
            [np.asarray(pred_a.structure.plddt), np.asarray(pred_b.structure.plddt)]
        )
        chain_break = record_a.length
        structure = Structure(
            record_id=f"{record_a.record_id}+{record_b.record_id}",
            encoded=np.concatenate([record_a.encoded, record_b.encoded]),
            ca=ca,
            plddt=plddt,
            model_name=f"complex_{self.monomer.name}",
        )
        n_contacts = interface_contacts(ca[:chain_break], ca[chain_break:])
        # iScore-like interface confidence: contact count saturates,
        # weighted by interface residue confidence, plus estimation noise.
        contact_term = n_contacts / (n_contacts + 12.0)
        conf_term = float(plddt.mean()) / 100.0
        score = float(
            np.clip(
                0.75 * contact_term * conf_term**0.5
                + rng.normal(0.0, 0.03),
                0.0,
                1.0,
            )
        )
        return ComplexPrediction(
            structure=structure,
            chain_break=chain_break,
            interface_score=score,
            n_interface_contacts=n_contacts,
            ptms_a=pred_a.ptms,
            ptms_b=pred_b.ptms,
            truly_interacting=interacting,
        )
