"""The surrogate structure predictor (AlphaFold2 stand-in).

One :class:`SurrogateFoldModel` corresponds to one of AlphaFold's five
model heads.  ``predict`` runs the full recycling loop of the paper's
§3.2.2:

* the initial state is a decoy — the hidden native distorted by a
  smooth, secondary-structure-weighted error field whose magnitude is
  set by target difficulty (shallow MSA -> big initial error),
* each recycle contracts the error geometrically at the difficulty-
  dependent refinement rate, with a difficulty-dependent floor it can
  never beat,
* after each recycle the controller compares distogram signatures and
  early-stops when the preset's tolerance is met (adaptive presets) or
  runs the fixed recycle count (official presets),
* the finished model gets pLDDT/pTMS confidence scores derived from its
  true residual error plus calibrated estimation noise.

Memory is checked up front: a task that does not fit its worker's
memory budget raises :class:`OutOfMemoryError`, which the workflow layer
records as a failed task — reproducing the casp14 OOM losses in Table 1
and the routing of oversized proteins to high-memory nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..msa.features import FeatureBundle
from ..sequences.generator import rng_for
from ..structure.protein import Structure
from ..structure.tmscore import tm_score
from .confidence import plddt_from_errors, ptms_estimate
from .difficulty import irreducible_error, refinement_rate, target_difficulty
from .generator import NativeFactory, smooth_chain_noise
from .memory import inference_memory_bytes, standard_worker_memory_bytes
from .recycling import RecycleController, adaptive_recycle_cap

__all__ = [
    "PredictionConfig",
    "Prediction",
    "OutOfMemoryError",
    "SurrogateFoldModel",
    "default_model_bank",
]


def _rotate_tail(
    coords: np.ndarray, hinge: int, axis: np.ndarray, angle: float
) -> None:
    """Rotate ``coords[hinge+1:]`` about the hinge residue (Rodrigues),
    in place.

    Models the inter-domain orientation error: the chain stays connected
    at the hinge while everything downstream swings as a rigid body.
    Rows up to the hinge are untouched, so chained hinge rotations share
    one working array instead of copying the whole chain per hinge.
    """
    if hinge >= coords.shape[0] - 1 or abs(angle) < 1e-12:
        return
    k = axis / (np.linalg.norm(axis) + 1e-12)
    c, s = np.cos(angle), np.sin(angle)
    v = coords[hinge + 1 :] - coords[hinge]
    coords[hinge + 1 :] = (
        coords[hinge]
        + v * c
        + np.cross(k, v) * s
        + np.outer(v @ k, k) * (1.0 - c)
    )


class OutOfMemoryError(RuntimeError):
    """An inference task exceeded its worker's memory budget."""

    def __init__(self, record_id: str, needed: int, budget: int) -> None:
        super().__init__(
            f"{record_id}: inference needs {needed / 2**30:.1f} GiB, "
            f"worker budget is {budget / 2**30:.1f} GiB"
        )
        self.record_id = record_id
        self.needed = needed
        self.budget = budget


@dataclass(frozen=True)
class PredictionConfig:
    """Inference-time knobs, normally derived from a preset."""

    n_ensembles: int = 1
    recycle_tolerance: float | None = None  # None = fixed-count recycling
    max_recycles: int = 3
    adaptive_cap: bool = False  # taper cap with length (custom presets)
    memory_budget_bytes: int | None = None  # None = standard worker share
    kingdom_bias: float = 0.0

    def recycle_cap(self, length: int) -> int:
        if self.adaptive_cap:
            return adaptive_recycle_cap(length, max_recycles=self.max_recycles)
        return self.max_recycles


@dataclass(frozen=True)
class Prediction:
    """One finished inference task: structure + confidence + provenance."""

    structure: Structure
    ptms: float
    mean_plddt: float
    n_recycles: int
    model_name: str
    difficulty: float
    true_tm: float  # hidden ground truth; benches use it, rankers must not

    @property
    def record_id(self) -> str:
        return self.structure.record_id


class SurrogateFoldModel:
    """One of the five model heads.

    ``model_index`` 0 and 1 consume structural templates (§3.2.1: only
    two of the five models use template features); the rest are
    sequence/MSA-only.
    """

    def __init__(self, factory: NativeFactory, model_index: int) -> None:
        if not 0 <= model_index < 5:
            raise ValueError("model_index must be in [0, 5)")
        self.factory = factory
        self.model_index = model_index
        self.uses_templates = model_index < 2

    @property
    def name(self) -> str:
        return f"model_{self.model_index + 1}"

    def predict(
        self, features: FeatureBundle, config: PredictionConfig
    ) -> Prediction:
        record = features.record
        length = record.length
        budget = (
            config.memory_budget_bytes
            if config.memory_budget_bytes is not None
            else standard_worker_memory_bytes()
        )
        needed = inference_memory_bytes(
            length, config.n_ensembles, features.msa_depth
        )
        if needed > budget:
            raise OutOfMemoryError(record.record_id, needed, budget)

        native = self.factory.native(record)
        ss_labels = self.factory.native_ss_labels(record)
        template_identity = (
            features.best_template_identity if self.uses_templates else 0.0
        )
        difficulty = target_difficulty(
            features.effective_depth,
            length,
            template_identity=template_identity,
            kingdom_bias=config.kingdom_bias,
        )
        rng = rng_for(0, "predict", record.record_id, self.model_index)
        # Per-head personality: heads differ slightly in where they start
        # and how fast they refine, which is what makes a 5-model
        # ensemble worth ranking.
        head_scale = float(rng.uniform(0.85, 1.2))
        rho = refinement_rate(difficulty) * float(rng.uniform(0.92, 1.05))
        rho = min(rho, 0.96)
        floor = irreducible_error(difficulty) * float(rng.uniform(0.75, 1.3))

        # --- Local error component (drives pLDDT) ------------------------
        # AlphaFold's first pass already lands near the converged answer;
        # recycling closes the remaining *gap* above the irreducible
        # floor.  Ensembling (casp14 preset) shaves a little off the gap
        # — which is why casp14 barely beats reduced_dbs in Table 1
        # despite 8x the compute.
        gap0 = floor * (0.35 + 1.3 * difficulty) * head_scale
        gap0 /= 1.0 + 0.006 * (config.n_ensembles - 1)
        sigma0 = floor + gap0
        field = smooth_chain_noise(length, rng, sigma=1.0, window=7)
        ss_weight = np.where(ss_labels == 2, 1.5, np.where(ss_labels == 0, 0.8, 1.0))
        field = field * ss_weight[:, None]
        field_rms = np.sqrt((field**2).sum(axis=1).mean())
        field /= max(field_rms, 1e-9)

        # --- Inter-domain orientation error (drives pTMS) -----------------
        # pLDDT is a local score and pTMS a global one: AlphaFold's
        # characteristic failure on multi-domain proteins is correct
        # domains in the wrong relative orientation — high pLDDT, low
        # pTMS.  Longer chains carry more domains; each extra domain gets
        # a rotation about its hinge whose magnitude shrinks per recycle
        # toward a difficulty-dependent floor.
        #
        # The domain architecture (count, hinge positions) belongs to the
        # *target*, so it is drawn from a record-keyed stream: if each
        # model head drew its own, picking the best of five would
        # systematically select the head with the fewest domains.
        target_rng = rng_for(0, "target-domains", record.record_id)
        n_domains = 1 + int(target_rng.poisson(max(0, length - 60) / 170.0))
        lo, hi = length // 5, length - length // 5
        boundaries = np.sort(
            target_rng.choice(np.arange(lo, hi), size=n_domains - 1, replace=False)
        ) if n_domains > 1 and hi - lo >= n_domains else np.empty(0, dtype=np.int64)
        dom_axes = rng.normal(size=(len(boundaries), 3))
        dom_axes /= np.linalg.norm(dom_axes, axis=1, keepdims=True) + 1e-12
        theta_floor = np.deg2rad(35.0 + 65.0 * difficulty) * rng.uniform(
            0.8, 1.4, size=len(boundaries)
        )
        theta0 = theta_floor * (1.3 + 1.2 * difficulty)

        # One working buffer per prediction: each recycle assembles into
        # it and rotates hinge tails in place instead of copying the full
        # chain once per hinge.  The controller only keeps distogram
        # signatures, never the coordinates, so reuse is safe.
        local = np.empty_like(native.ca)
        work = np.empty_like(native.ca)

        def assemble(sigma: float, theta_scale: float, churn_sigma: float) -> tuple[np.ndarray, np.ndarray]:
            """Build model coordinates; returns (coords, local_error)."""
            np.multiply(field, sigma, out=local)
            if churn_sigma > 0:
                np.add(
                    local,
                    smooth_chain_noise(length, rng, sigma=churn_sigma, window=7),
                    out=local,
                )
            coords = np.add(native.ca, local, out=work)
            # Hinge rotations applied tail-first so each boundary rotates
            # everything downstream of it about the hinge residue.
            for b, axis, t0, tf in zip(
                boundaries, dom_axes, theta0, theta_floor
            ):
                angle = tf + (t0 - tf) * theta_scale
                _rotate_tail(coords, int(b), axis, float(angle))
            return coords, np.linalg.norm(local, axis=1)

        controller = RecycleController(
            tolerance=config.recycle_tolerance,
            cap=max(1, config.recycle_cap(length)),
        )
        sigma = sigma0
        theta_scale = 1.0
        # Hard targets churn between conformations each recycle (the
        # network keeps exploring), which is what holds their distogram
        # change above the early-stop tolerance and makes them the
        # targets that run to the recycle cap — the §4.2 mechanism.
        churn = float(
            np.clip(0.015 + 0.45 * max(0.0, difficulty - 0.45) ** 1.3, 0.015, 0.5)
        )
        coords, local_err = assemble(sigma, theta_scale, 0.0)
        while True:
            stop = controller.update(coords)
            if stop:
                break
            # One recycle: contract both error components toward the
            # floors they can never beat, plus difficulty-driven churn.
            sigma = floor + (sigma - floor) * rho
            theta_scale *= rho
            coords, local_err = assemble(sigma, theta_scale, churn * sigma)

        plddt = plddt_from_errors(local_err, rng)
        true_tm = tm_score(coords, native.ca)
        ptms = ptms_estimate(true_tm, rng)
        structure = Structure(
            record_id=record.record_id,
            encoded=record.encoded,
            ca=coords,
            plddt=plddt,
            model_name=self.name,
        )
        return Prediction(
            structure=structure,
            ptms=ptms,
            mean_plddt=float(plddt.mean()),
            n_recycles=controller.n_recycles,
            model_name=self.name,
            difficulty=difficulty,
            true_tm=true_tm,
        )


def default_model_bank(factory: NativeFactory) -> list[SurrogateFoldModel]:
    """The standard five-model ensemble."""
    return [SurrogateFoldModel(factory, i) for i in range(5)]
