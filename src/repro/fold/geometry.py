"""Calpha-trace geometry: internal-coordinate chain building and
compaction into globular folds.

The surrogate predictor needs *plausible* protein geometry — correct
consecutive Calpha spacing (~3.8 Angstrom), secondary-structure-like
local geometry, globular compactness, and no steric overlap — because
every downstream metric the paper reports (clashes, bumps, TM-score,
radius of gyration scaling) is a geometric property.

Chains are built residue-by-residue with the NeRF (natural extension
reference frame) construction from virtual Calpha bond angles and
torsions, then relaxed into a compact globule by a short gradient
descent on a coarse potential (bond springs + excluded volume +
radius-of-gyration pull + local-geometry retention).  Excluded-volume
pairs come from a KD-tree so the step cost stays near O(N log N).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "CA_BOND",
    "SecondaryStructure",
    "ss_segments",
    "torsions_for_segments",
    "build_ca_chain",
    "target_radius_of_gyration",
    "compact_chain",
]

#: Consecutive Calpha-Calpha distance, Angstrom.
CA_BOND: float = 3.8

#: Minimum non-bonded Calpha separation enforced during compaction.  Kept
#: above the bump cutoff (3.6) so *natives* are violation-free; model
#: errors are what introduce clashes/bumps, as in the real pipeline.
_EXCLUDED_RADIUS: float = 4.1


@dataclass(frozen=True)
class SecondaryStructure:
    """Virtual Calpha-trace geometry of one secondary-structure type."""

    name: str
    angle_deg: float
    torsion_deg: float
    angle_jitter: float
    torsion_jitter: float


#: Canonical Calpha virtual angles/torsions (Levitt-style coarse values).
HELIX = SecondaryStructure("H", 91.0, 50.0, 3.0, 6.0)
STRAND = SecondaryStructure("E", 124.0, -170.0, 6.0, 15.0)
COIL = SecondaryStructure("C", 105.0, 0.0, 25.0, 180.0)

_SS_BY_NAME = {"H": HELIX, "E": STRAND, "C": COIL}


def ss_segments(
    length: int, rng: np.random.Generator, helix_bias: float = 0.45
) -> list[tuple[str, int]]:
    """Partition ``length`` residues into H/E/C segments.

    Segment types and lengths follow rough natural statistics: helices
    ~12 residues, strands ~6, coils ~5, with coil linkers between
    regular elements.  ``helix_bias`` sets the helix:strand ratio of the
    fold class (all-alpha vs all-beta vs mixed folds).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    segments: list[tuple[str, int]] = []
    remaining = length
    want_regular = True
    while remaining > 0:
        if want_regular:
            if rng.random() < helix_bias:
                seg_len = int(np.clip(rng.normal(12, 4), 5, 25))
                kind = "H"
            else:
                seg_len = int(np.clip(rng.normal(6, 2), 3, 12))
                kind = "E"
        else:
            seg_len = int(np.clip(rng.normal(5, 3), 1, 15))
            kind = "C"
        seg_len = min(seg_len, remaining)
        segments.append((kind, seg_len))
        remaining -= seg_len
        want_regular = not want_regular
    return segments


def torsions_for_segments(
    segments: list[tuple[str, int]], rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand segments into per-residue (angles, torsions, ss_labels).

    Angles/torsions are in radians; ``ss_labels`` is an int array with
    0=H, 1=E, 2=C for downstream error modelling (coil regions are the
    least confidently predicted).
    """
    label_code = {"H": 0, "E": 1, "C": 2}
    angles: list[np.ndarray] = []
    torsions: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    for kind, seg_len in segments:
        ss = _SS_BY_NAME[kind]
        # Virtual Calpha angles in real chains stay within ~[75, 155]
        # degrees; clipping keeps d(i, i+2) above the bump cutoff so
        # natives are violation-free by construction.
        angles.append(
            np.deg2rad(
                np.clip(
                    rng.normal(ss.angle_deg, ss.angle_jitter, size=seg_len),
                    72.0,
                    155.0,
                )
            )
        )
        torsions.append(
            np.deg2rad(rng.normal(ss.torsion_deg, ss.torsion_jitter, size=seg_len))
        )
        labels.append(np.full(seg_len, label_code[kind], dtype=np.int8))
    return (
        np.concatenate(angles),
        np.concatenate(torsions),
        np.concatenate(labels),
    )


def build_ca_chain(angles: np.ndarray, torsions: np.ndarray) -> np.ndarray:
    """Build an (N, 3) Calpha trace from virtual internal coordinates.

    ``angles[i]`` and ``torsions[i]`` position residue ``i`` relative to
    its three predecessors (NeRF construction); the first three entries
    are ignored beyond seeding the frame.
    """
    angles = np.asarray(angles, dtype=np.float64)
    torsions = np.asarray(torsions, dtype=np.float64)
    n = angles.size
    if torsions.size != n:
        raise ValueError("angles and torsions must have the same length")
    coords = np.zeros((max(n, 1), 3), dtype=np.float64)
    if n >= 2:
        coords[1] = [CA_BOND, 0.0, 0.0]
    if n >= 3:
        theta = np.pi - angles[2]
        coords[2] = coords[1] + CA_BOND * np.array(
            [np.cos(theta), np.sin(theta), 0.0]
        )
    for i in range(3, n):
        a, b, c = coords[i - 3], coords[i - 2], coords[i - 1]
        bc = c - b
        bc /= np.linalg.norm(bc)
        ab = b - a
        normal = np.cross(ab, bc)
        nn = np.linalg.norm(normal)
        if nn < 1e-9:  # collinear history; pick any perpendicular
            normal = np.cross(bc, [0.0, 0.0, 1.0])
            nn = np.linalg.norm(normal)
            if nn < 1e-9:
                normal = np.cross(bc, [0.0, 1.0, 0.0])
                nn = np.linalg.norm(normal)
        normal /= nn
        m = np.cross(normal, bc)
        ang = np.pi - angles[i]
        tor = torsions[i]
        d = CA_BOND * np.array(
            [
                np.cos(ang),
                np.sin(ang) * np.cos(tor),
                np.sin(ang) * np.sin(tor),
            ]
        )
        coords[i] = c + d[0] * bc + d[1] * m + d[2] * normal
    return coords[:n]


def target_radius_of_gyration(n_residues: int) -> float:
    """Empirical globular-protein radius of gyration, Angstrom.

    The well-known scaling Rg ~ 2.2 * N^0.38 for folded monomers.
    """
    return 2.2 * float(n_residues) ** 0.38


def compact_chain(
    coords: np.ndarray,
    rng: np.random.Generator,
    n_steps: int | None = None,
    step_size: float = 0.12,
    rg_gain: float = 0.5,
    local_window: int = 4,
) -> np.ndarray:
    """Relax a Calpha trace into a compact, clash-free globule.

    Gradient descent on four coarse terms:

    * bond springs holding consecutive Calpha at :data:`CA_BOND`,
    * KD-tree excluded volume pushing non-bonded pairs past 4.1 Angstrom,
    * a radius-of-gyration pull toward the globular target (only active
      while the chain is too extended),
    * retention springs on short-range (i, i+2..i+window) distances so
      secondary-structure geometry survives compaction.

    Returns a new array; the input is not modified.
    """
    x = np.array(coords, dtype=np.float64)
    n = x.shape[0]
    if n < 5:
        return x
    if n_steps is None:
        # Longer chains start further from globularity; scale the budget.
        n_steps = max(120, int(4.0 * n**0.62))
    target_rg = target_radius_of_gyration(n)
    idx = np.arange(n)
    # Local-geometry reference distances (i, i+k) for k=2..local_window.
    local_refs: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for k in range(2, local_window + 1):
        i0 = idx[:-k]
        j0 = idx[k:]
        d0 = np.linalg.norm(x[j0] - x[i0], axis=1)
        local_refs.append((i0, j0, d0))
    for step in range(n_steps):
        grad = np.zeros_like(x)
        # Bond term.
        delta = x[1:] - x[:-1]
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, 1e-9, out=dist)
        coef = 2.0 * (dist - CA_BOND) / dist
        f = coef[:, None] * delta
        grad[1:] += f
        grad[:-1] -= f
        # Excluded volume via KD-tree.
        tree = cKDTree(x)
        pairs = tree.query_pairs(_EXCLUDED_RADIUS, output_type="ndarray")
        if pairs.size:
            nonadj = (pairs[:, 1] - pairs[:, 0]) > 2
            pairs = pairs[nonadj]
        if pairs.size:
            pi, pj = pairs[:, 0], pairs[:, 1]
            dvec = x[pj] - x[pi]
            d = np.linalg.norm(dvec, axis=1)
            np.maximum(d, 1e-9, out=d)
            # Quadratic wall: push apart with force ~ overlap.
            c = -2.0 * 4.0 * (_EXCLUDED_RADIUS - d) / d
            fv = c[:, None] * dvec
            np.add.at(grad, pi, -fv)
            np.add.at(grad, pj, fv)
        # Radius-of-gyration pull (compaction), only when too extended.
        # Exact gradient of k*(Rg - T)^2 with k chosen so each step moves
        # atoms inward by a fixed fraction of their centered radius —
        # without the n-scaling, long chains would never collapse.
        # The pull is released in the final quarter so excluded-volume
        # overlaps created during collapse can anneal out (natives must
        # be violation-free; model *errors* are what add clashes).
        center = x.mean(axis=0)
        centered = x - center
        rg = np.sqrt((centered**2).sum(axis=1).mean())
        if rg > target_rg and step < 3 * n_steps // 4:
            grad += rg_gain * (rg - target_rg) / rg**2 * centered
        # Local geometry retention: dE/dx_j = 2k(d - d0) * (x_j - x_i)/d.
        for i0, j0, d0 in local_refs:
            dvec = x[j0] - x[i0]
            d = np.linalg.norm(dvec, axis=1)
            np.maximum(d, 1e-9, out=d)
            c = 2.0 * 0.3 * (d - d0) / d
            fv = c[:, None] * dvec
            np.add.at(grad, j0, fv)
            np.add.at(grad, i0, -fv)
        # Gradient step with a norm clip for stability.
        gnorm = np.linalg.norm(grad, axis=1, keepdims=True)
        np.clip(gnorm, 1.0, None, out=gnorm)
        x -= step_size * grad / gnorm * np.minimum(gnorm, 5.0)
        # Tiny annealed jitter helps escape knots early on.
        if step < n_steps // 3:
            x += rng.normal(0.0, 0.02, size=x.shape)
    return resolve_overlaps(x)


def resolve_overlaps(
    coords: np.ndarray,
    min_distance: float = 3.75,
    max_sweeps: int = 200,
) -> np.ndarray:
    """Deterministically push residual non-bonded overlaps apart.

    Gradient descent occasionally leaves a few threaded contacts below
    the bump cutoff; this projection pass separates every non-adjacent
    pair (|i - j| > 2) to at least ``min_distance`` by symmetric
    displacement along the pair axis, sweeping until clean.  Natives
    must be violation-free by construction — model *error* is the only
    source of clashes/bumps in the pipeline, as in the paper.
    """
    x = np.array(coords, dtype=np.float64)
    n = x.shape[0]
    if n < 4:
        return x
    for _ in range(max_sweeps):
        tree = cKDTree(x)
        pairs = tree.query_pairs(min_distance - 1e-9, output_type="ndarray")
        if pairs.size:
            pairs = pairs[(pairs[:, 1] - pairs[:, 0]) > 2]
        if pairs.size == 0:
            break
        for i, j in pairs:
            dvec = x[j] - x[i]
            d = np.linalg.norm(dvec)
            if d < 1e-9:
                dvec = np.array([1.0, 0.0, 0.0])
                d = 1.0
            push = 0.5 * (min_distance - d) * 1.05 / d
            x[i] -= push * dvec
            x[j] += push * dvec
    return x
