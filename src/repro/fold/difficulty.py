"""Target difficulty: the bridge from MSA features to prediction quality.

AlphaFold's accuracy is famously driven by MSA depth: deep alignments
give near-experimental models, shallow ones (orphans, fast-evolving
families) give poor ones, and the challenging targets are precisely the
ones that benefit from long recycling (paper §3.2.2, §4.2).  The
surrogate encodes that causal chain in one scalar ``difficulty`` in
(0, 1): 0 = trivially easy (deep MSA, short chain), 1 = hopeless orphan.
"""

from __future__ import annotations

import numpy as np

__all__ = ["target_difficulty", "refinement_rate", "irreducible_error"]


def target_difficulty(
    effective_depth: float,
    length: int,
    template_identity: float = 0.0,
    kingdom_bias: float = 0.0,
) -> float:
    """Difficulty in [0.05, 0.98] from MSA depth, length and templates.

    * Depth term: saturating decay — the first few effective sequences
      help enormously, hundreds add little (the empirical Neff curve).
    * Length term: very long chains are harder at fixed depth.
    * Templates: a good template cuts difficulty for the two heads that
      consume it (callers pass ``template_identity`` only for those).
    * ``kingdom_bias`` shifts whole proteomes (plants are harder, §4.3.1).
    """
    if effective_depth < 0:
        raise ValueError("effective_depth must be non-negative")
    if length < 1:
        raise ValueError("length must be positive")
    depth_term = 1.0 / (1.0 + (effective_depth / 8.0) ** 0.8)
    length_term = float(np.clip((length - 400.0) / 2200.0, 0.0, 0.22))
    d = depth_term + length_term + kingdom_bias
    d *= 1.0 - 0.45 * float(np.clip(template_identity, 0.0, 1.0))
    return float(np.clip(d, 0.05, 0.98))


def refinement_rate(difficulty: float) -> float:
    """Per-recycle error retention factor rho in (0, 1).

    Each recycle multiplies the structural error by ``rho``: easy
    targets (rho ~ 0.3) converge in 2-3 recycles, hard ones (rho ~ 0.9)
    are still improving at the recycle cap — reproducing the paper's
    observation that nearly all large pTMS gains came from targets that
    ran ~19-20 recycles (§4.2).
    """
    d = float(np.clip(difficulty, 0.0, 1.0))
    return float(np.clip(0.22 + 0.60 * d, 0.05, 0.95))


def irreducible_error(difficulty: float) -> float:
    """Asymptotic *local* per-residue error (Angstrom RMS).

    Even infinite recycling cannot beat the information in the MSA; hard
    targets plateau at a large local error (wrong local structure), easy
    ones approach crystallographic agreement.  Global (inter-domain)
    error is modelled separately in :mod:`repro.fold.model`.
    """
    d = float(np.clip(difficulty, 0.0, 1.0))
    return 0.4 + 14.0 * d**2.6
