"""Inference memory model and out-of-memory behaviour.

The paper hits two memory walls: (a) the ``casp14`` preset's 8-ensemble
runs blow past worker memory for the 8 longest benchmark sequences
(Table 1 footnote c), and (b) proteome sequences beyond ~2500 AA need
Summit's 2 TB high-memory nodes (§3.3).  Both walls fall out of one
quadratic-in-length memory model calibrated so a single-ensemble run
fits a standard worker up to ~2500 AA.
"""

from __future__ import annotations

from ..constants import (
    SUMMIT_GPUS_PER_NODE,
    SUMMIT_HIGHMEM_NODE_MEMORY_BYTES,
    SUMMIT_NODE_MEMORY_BYTES,
)

__all__ = [
    "inference_memory_bytes",
    "standard_worker_memory_bytes",
    "highmem_worker_memory_bytes",
    "fits_standard_worker",
    "needs_highmem_node",
]

#: Fixed runtime footprint: weights, JAX buffers, framework overhead.
_BASE_BYTES: int = 2 * 2**30

#: Pair-representation coefficient, bytes per residue^2 per ensemble.
#: Calibrated so (a) the 8-ensemble casp14 preset hits the standard
#: worker's memory wall between 800 and 880 residues — the Table 1
#: benchmark's designed long tail then loses exactly its 8 largest
#: sequences — and (b) single-ensemble runs fit standard workers to
#: ~2400 AA, with longer proteome sequences routed to high-memory nodes.
_PAIR_BYTES_PER_L2: float = 14_500.0

#: MSA-representation coefficient, bytes per residue per MSA row.
_MSA_BYTES_PER_CELL: float = 25_000.0


def inference_memory_bytes(
    length: int, n_ensembles: int = 1, msa_depth: int = 128
) -> int:
    """Peak host memory of one inference task."""
    if length < 1 or n_ensembles < 1:
        raise ValueError("length and n_ensembles must be positive")
    pair = _PAIR_BYTES_PER_L2 * float(length) ** 2 * n_ensembles
    msa = _MSA_BYTES_PER_CELL * float(length) * min(msa_depth, 512)
    return int(_BASE_BYTES + pair + msa)


def standard_worker_memory_bytes() -> int:
    """Host memory share of one worker (one GPU) on a standard node."""
    return SUMMIT_NODE_MEMORY_BYTES // SUMMIT_GPUS_PER_NODE


def highmem_worker_memory_bytes() -> int:
    """Host memory share of one worker on a 2 TB high-memory node."""
    return SUMMIT_HIGHMEM_NODE_MEMORY_BYTES // SUMMIT_GPUS_PER_NODE


def fits_standard_worker(
    length: int, n_ensembles: int = 1, msa_depth: int = 128
) -> bool:
    return inference_memory_bytes(length, n_ensembles, msa_depth) <= (
        standard_worker_memory_bytes()
    )


def needs_highmem_node(
    length: int, n_ensembles: int = 1, msa_depth: int = 128
) -> bool:
    """True when the task only fits a high-memory node worker."""
    need = inference_memory_bytes(length, n_ensembles, msa_depth)
    return need > standard_worker_memory_bytes() and need <= (
        highmem_worker_memory_bytes()
    )
