"""Proteome-scale analyses: structural annotation and novelty detection."""

from .annotation import AnnotationCensus, AnnotationHit, annotate_structures
from .novelty import NoveltyCandidate, find_novel_candidates

__all__ = [
    "AnnotationCensus",
    "AnnotationHit",
    "annotate_structures",
    "NoveltyCandidate",
    "find_novel_candidates",
]
