"""Structure-based functional annotation of hypothetical proteins (§4.6).

The paper aligns predicted structures of the 559 *D. vulgaris* proteins
annotated as "hypothetical" against the pdb70 library (APoc global
TM-score alignment) and finds that 239 have a structural match with
TM >= 0.6 — 215 of them at < 20% sequence identity and 112 at < 10%,
i.e. far below where sequence methods work.  Structure outlives
sequence, so predicted structures can transfer annotations that HMMs
cannot.

This module runs the same census against the synthetic fold library.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..structure.library import FoldHit, FoldLibrary
from ..structure.protein import Structure

__all__ = ["AnnotationHit", "AnnotationCensus", "annotate_structures"]

#: Alignment TM-score above which annotation transfer is trusted.
ANNOTATION_TM_THRESHOLD: float = 0.60


@dataclass(frozen=True)
class AnnotationHit:
    """One hypothetical protein with its best structural match."""

    record_id: str
    tm_score: float
    sequence_identity: float
    annotation: str
    matched_entry_id: str


@dataclass
class AnnotationCensus:
    """The §4.6 headline numbers."""

    n_queries: int
    hits: list[AnnotationHit]
    best_tm_per_query: dict[str, float]

    @property
    def n_annotated(self) -> int:
        """Queries with a trusted structural match (paper: 239/559)."""
        return len(self.hits)

    def n_below_identity(self, threshold: float) -> int:
        """Annotated queries whose match is below a sequence identity
        threshold (paper: 215 below 20%, 112 below 10%)."""
        return sum(1 for h in self.hits if h.sequence_identity < threshold)

    def summary(self) -> dict[str, float]:
        return {
            "n_queries": self.n_queries,
            "n_annotated": self.n_annotated,
            "n_below_20pct_identity": self.n_below_identity(0.20),
            "n_below_10pct_identity": self.n_below_identity(0.10),
        }


def annotate_structures(
    structures: dict[str, Structure],
    library: FoldLibrary,
    tm_threshold: float = ANNOTATION_TM_THRESHOLD,
    max_candidates: int | None = 40,
) -> AnnotationCensus:
    """Search every query structure against the fold library.

    Returns the census of trusted matches; queries whose best TM-score
    falls below ``tm_threshold`` stay unannotated (and are candidates
    for the novelty analysis).
    """
    hits: list[AnnotationHit] = []
    best_tm: dict[str, float] = {}
    for record_id, structure in structures.items():
        found: FoldHit | None = library.best_hit(
            structure, max_candidates=max_candidates
        )
        if found is None:
            best_tm[record_id] = 0.0
            continue
        best_tm[record_id] = found.tm_score
        if found.tm_score >= tm_threshold:
            hits.append(
                AnnotationHit(
                    record_id=record_id,
                    tm_score=found.tm_score,
                    sequence_identity=found.sequence_identity,
                    annotation=found.entry.annotation,
                    matched_entry_id=found.entry.entry_id,
                )
            )
    return AnnotationCensus(
        n_queries=len(structures), hits=hits, best_tm_per_query=best_tm
    )
