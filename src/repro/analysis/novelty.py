"""Novel-fold / novel-assembly candidate detection (§4.6).

The paper's most intriguing find: predicted structures with *very high*
model confidence (over 98% of residues above pLDDT 90) but *very poor*
structural matches to everything experimental (top TM-score 0.358) —
high-confidence structures nobody has seen, i.e. leads for new folds,
quaternary arrangements and enzymatic pathways.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..structure.protein import Structure

__all__ = ["NoveltyCandidate", "find_novel_candidates"]

#: Residue-level confidence bar (paper: pLDDT > 90 for > 98% of residues).
NOVELTY_PLDDT_CUTOFF: float = 90.0
NOVELTY_RESIDUE_FRACTION: float = 0.98

#: Structural-match bar: no library hit at or above this TM-score.
NOVELTY_TM_CUTOFF: float = 0.40


@dataclass(frozen=True)
class NoveltyCandidate:
    """A high-confidence structure with no experimental analogue."""

    record_id: str
    frac_residues_ultra_confident: float
    best_library_tm: float


def find_novel_candidates(
    structures: dict[str, Structure],
    best_tm_per_query: dict[str, float],
    plddt_cutoff: float = NOVELTY_PLDDT_CUTOFF,
    residue_fraction: float = NOVELTY_RESIDUE_FRACTION,
    tm_cutoff: float = NOVELTY_TM_CUTOFF,
) -> list[NoveltyCandidate]:
    """Filter for the confident-but-unmatched signature.

    ``best_tm_per_query`` is the per-query best library TM-score from
    :func:`repro.analysis.annotation.annotate_structures`.
    """
    out: list[NoveltyCandidate] = []
    for record_id, structure in structures.items():
        if structure.plddt is None:
            continue
        frac = float((np.asarray(structure.plddt) > plddt_cutoff).mean())
        if frac < residue_fraction:
            continue
        tm = best_tm_per_query.get(record_id, 0.0)
        if tm >= tm_cutoff:
            continue
        out.append(
            NoveltyCandidate(
                record_id=record_id,
                frac_residues_ultra_confident=frac,
                best_library_tm=tm,
            )
        )
    out.sort(key=lambda c: c.best_library_tm)
    return out
