"""Inference presets (paper §3.2.2, Table 1).

Two official AlphaFold presets plus the paper's two custom ones:

=============  =========  ========================  ============
preset         ensembles  recycling                 origin
=============  =========  ========================  ============
reduced_db     1          fixed 3                   official
casp14         8          fixed 3                   official
genome         1          adaptive, tol 0.5, <=20   this paper
super          1          adaptive, tol 0.1, <=20   this paper
=============  =========  ========================  ============

The custom presets stop recycling early when the inter-recycle
distogram change falls below the tolerance, and taper the recycle cap
from 20 down to 6 as sequence length grows past 500 AA.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants as C
from ..fold.model import PredictionConfig

__all__ = ["Preset", "PRESETS", "get_preset"]


@dataclass(frozen=True)
class Preset:
    """A named inference configuration."""

    name: str
    description: str
    n_ensembles: int
    recycle_tolerance: float | None
    max_recycles: int
    adaptive_cap: bool
    official: bool

    def config(
        self,
        kingdom_bias: float = 0.0,
        memory_budget_bytes: int | None = None,
    ) -> PredictionConfig:
        """Materialise the matching :class:`PredictionConfig`."""
        return PredictionConfig(
            n_ensembles=self.n_ensembles,
            recycle_tolerance=self.recycle_tolerance,
            max_recycles=self.max_recycles,
            adaptive_cap=self.adaptive_cap,
            kingdom_bias=kingdom_bias,
            memory_budget_bytes=memory_budget_bytes,
        )


PRESETS: dict[str, Preset] = {
    "reduced_db": Preset(
        name="reduced_db",
        description="Official single-ensemble preset, 3 fixed recycles "
        "(DeepMind's proteome-scale choice)",
        n_ensembles=C.REDUCED_DBS_ENSEMBLES,
        recycle_tolerance=None,
        max_recycles=C.OFFICIAL_PRESET_RECYCLES,
        adaptive_cap=False,
        official=True,
    ),
    "casp14": Preset(
        name="casp14",
        description="Official competition preset: 8 ensembles, 3 recycles "
        "(~8x compute)",
        n_ensembles=C.CASP14_ENSEMBLES,
        recycle_tolerance=None,
        max_recycles=C.OFFICIAL_PRESET_RECYCLES,
        adaptive_cap=False,
        official=True,
    ),
    "genome": Preset(
        name="genome",
        description="This paper's proteome preset: adaptive recycling, "
        "distogram tolerance 0.5, cap 20 tapering to 6",
        n_ensembles=1,
        recycle_tolerance=C.GENOME_RECYCLE_TOLERANCE,
        max_recycles=C.MAX_RECYCLES,
        adaptive_cap=True,
        official=False,
    ),
    "super": Preset(
        name="super",
        description="Stringent adaptive preset: distogram tolerance 0.1",
        n_ensembles=1,
        recycle_tolerance=C.SUPER_RECYCLE_TOLERANCE,
        max_recycles=C.MAX_RECYCLES,
        adaptive_cap=True,
        official=False,
    ),
}


def get_preset(name: str) -> Preset:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; options: {sorted(PRESETS)}"
        ) from None
