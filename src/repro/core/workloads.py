"""Benchmark workload builders.

Deterministic generators for the evaluation sets the paper uses:

* the 559-sequence *D. vulgaris* preset benchmark (Table 1): lengths
  29-1266 with mean ~202 and a designed long tail whose 8 largest
  members exceed the casp14 preset's memory wall;
* the CASP14-like set: 19 targets with "crystal" natives for Fig. 3/4,
  and the 160-model census of §4.4 (five models for each of 32 targets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as C
from ..fold.generator import NativeFactory
from ..fold.memory import fits_standard_worker
from ..fold.model import Prediction, PredictionConfig, SurrogateFoldModel
from ..msa.databases import LibrarySuite, build_suite
from ..msa.features import FeatureBundle, generate_features
from ..sequences.generator import ProteinRecord, SequenceUniverse, rng_for
from ..sequences.proteome import Proteome, species_family_base
from ..structure.protein import Structure

__all__ = [
    "benchmark_set",
    "benchmark_suite",
    "oversized_records",
    "CaspTarget",
    "casp_targets",
]

#: The designed long tail of the Table 1 benchmark: ten sequences from
#: 720 to 1266 residues.  Eight exceed the ~850-residue casp14 memory
#: wall (8 ensembles), reproducing the paper's eight OOM losses.
_LONG_TAIL_LENGTHS: tuple[int, ...] = (
    720, 800, 880, 920, 980, 1040, 1100, 1160, 1210, 1266,
)


def benchmark_set(
    universe: SequenceUniverse | None = None,
    seed: int = 0,
    n_sequences: int = C.BENCHMARK_SET_SIZE,
) -> Proteome:
    """The 559-sequence *D. vulgaris* benchmark workload (Table 1).

    Bulk lengths are lognormal, clipped to [29, 700]; the ten-sequence
    designed tail runs to 1266.  Mean lands near the paper's 202 AA.
    Family assignment reuses the *D. vulgaris* family block so the same
    library suite serves proteome and benchmark runs.
    """
    if universe is None:
        universe = SequenceUniverse(seed)
    rng = rng_for(seed, "benchmark-set")
    n_bulk = n_sequences - len(_LONG_TAIL_LENGTHS)
    if n_bulk < 0:
        raise ValueError("n_sequences smaller than the designed long tail")
    bulk = np.clip(
        np.round(rng.lognormal(5.05, 0.52, size=n_bulk)),
        C.BENCHMARK_MIN_LENGTH,
        700,
    ).astype(int)
    # Anchor the extremes the paper quotes (min 29).
    if n_bulk:
        bulk[0] = C.BENCHMARK_MIN_LENGTH
    lengths = list(bulk) + list(_LONG_TAIL_LENGTHS)
    base = species_family_base("D_vulgaris")
    pool = max(1, int(n_sequences * 0.6))
    records: list[ProteinRecord] = []
    for i, length in enumerate(lengths):
        fid = base + int(rng.integers(0, pool))
        fam = universe.family_length(fid, int(length))
        divergence = float(rng.uniform(0.05, 0.45))
        encoded = universe.member(fam, divergence, member_seed=50_000 + i, indel_rate=0.0)
        records.append(
            ProteinRecord(
                record_id=f"DvH_bench_{i:04d}",
                encoded=encoded,
                species="D_vulgaris",
                family_id=fid,
                divergence=divergence,
                annotated=fam.annotated,
            )
        )
    return Proteome("D_vulgaris", records)


def oversized_records(
    proteome: Proteome, n_ensembles: int = 8, msa_depth: int = 128
) -> list[str]:
    """Record ids whose inference exceeds a standard worker's memory.

    At the casp14 preset's 8 ensembles the Table 1 benchmark returns
    exactly its 8 designed long-tail members — the sequences the paper
    lost to OOM without high-memory routing, and the ones a
    fault-tolerant run must recover on 2 TB nodes.
    """
    return [
        r.record_id
        for r in proteome
        if not fits_standard_worker(r.length, n_ensembles, msa_depth)
    ]


def benchmark_suite(
    universe: SequenceUniverse,
    seed: int = 0,
    n_sequences: int = C.BENCHMARK_SET_SIZE,
) -> LibrarySuite:
    """Library suite matching :func:`benchmark_set`'s family pool."""
    pool = max(1, int(n_sequences * 0.6))
    return build_suite(
        universe, ["D_vulgaris"], seed=seed, family_pool=pool
    )


@dataclass(frozen=True)
class CaspTarget:
    """One CASP-like evaluation target: native + unrelaxed model(s)."""

    record: ProteinRecord
    native: Structure
    models: tuple[Prediction, ...]
    features: FeatureBundle

    @property
    def best_model(self) -> Prediction:
        return max(self.models, key=lambda p: p.ptms)


def casp_targets(
    n_targets: int = C.CASP_TARGETS_WITH_CRYSTALS,
    models_per_target: int = 5,
    seed: int = 11,
    include_outlier: bool = True,
    max_recycles: int = 3,
) -> list[CaspTarget]:
    """A CASP14-like evaluation set with known natives.

    Lengths span ~70-950 residues (CASP targets range widely); one
    optional large outlier target plays T1080's role in Fig. 4.  Model
    quality spans the CASP14 AlphaFold range: mostly good, a few poor.
    The default (19 targets x 5 models) rounds to the paper's Fig. 3
    set; ``casp_targets(32)`` approximates the 160-model census of §4.4.
    """
    if n_targets < 1 or models_per_target < 1:
        raise ValueError("need at least one target and one model")
    universe = SequenceUniverse(seed, annotated_fraction=0.9)
    # CASP targets come from their own family block, with purpose-built
    # libraries so MSA depth (and thus model quality) varies
    # target-to-target as in CASP.
    from ..msa.databases import build_library

    rng = rng_for(seed, "casp-lengths")
    base = 90_000_000
    lengths = np.clip(
        np.round(rng.lognormal(5.35, 0.45, size=n_targets)), 70, 950
    ).astype(int)
    if include_outlier:
        lengths[-1] = 1438  # the T1080-like giant
    family_ids = [base + i for i in range(n_targets)]
    # CASP14's AlphaFold models were mostly excellent: the library
    # multiplicities here are deeper than the proteome defaults so the
    # evaluation set skews high-quality, with a few shallow-MSA stragglers.
    suite = LibrarySuite(
        uniref=build_library(
            universe, "uniref90_casp", family_ids, seed,
            members_per_multiplicity=1.2, max_members_per_family=48,
            noise_entries=100,
            modeled_bytes=300_000_000_000, files_per_search=16,
        ),
        bfd=build_library(
            universe, "bfd_casp", family_ids, seed + 1,
            members_per_multiplicity=3.0, max_members_per_family=96,
            noise_entries=300,
            modeled_bytes=1_700_000_000_000, files_per_search=256,
        ),
        mgnify=build_library(
            universe, "mgnify_casp", family_ids, seed + 2,
            members_per_multiplicity=1.5, max_members_per_family=48,
            noise_entries=100,
            modeled_bytes=120_000_000_000, files_per_search=32,
        ),
        pdb_seqs=build_library(
            universe, "pdb_seqres_casp", family_ids, seed + 3,
            members_per_multiplicity=0.15, max_members_per_family=4,
            noise_entries=20, modeled_bytes=40_000_000_000,
            files_per_search=8, annotated_only=True,
        ),
    )
    factory = NativeFactory(universe)
    bank = [SurrogateFoldModel(factory, i) for i in range(models_per_target)]
    config = PredictionConfig(
        n_ensembles=1,
        recycle_tolerance=None,
        max_recycles=max_recycles,
        memory_budget_bytes=2**60,  # evaluation runs never OOM
    )
    targets: list[CaspTarget] = []
    for i, (fid, length) in enumerate(zip(family_ids, lengths)):
        fam = universe.family_length(fid, int(length))
        divergence = float(rng.uniform(0.03, 0.3))
        record = ProteinRecord(
            record_id=f"T{1024 + i}",
            encoded=universe.member(fam, divergence, member_seed=i, indel_rate=0.0),
            species="casp14",
            family_id=fid,
            divergence=divergence,
            annotated=True,
        )
        features = generate_features(record, suite)
        models = tuple(m.predict(features, config) for m in bank)
        targets.append(
            CaspTarget(
                record=record,
                native=factory.native(record),
                models=models,
                features=features,
            )
        )
    return targets
