"""Streaming campaign plumbing: specs, finalizers, simulation, analysis.

The barrier pipeline runs three stage-wide maps with hard joins between
them; the streaming schedule submits the whole campaign as per-sequence
dependency chains

    feature(s) → inference(s, model) × 5 → relax(s)

onto one executor with heterogeneous pools — feature/relax tasks on the
``"cpu"`` pool, inference on the ``"gpu"`` pool, the ParaFold shape —
so each sequence flows to its next stage the moment it is ready.  This
module holds everything schedule-specific that is *not* executor
machinery: building the spec DAG, the highmem finalizer that fires once
a feature result reveals its MSA depth, the unified streaming
simulation, and the makespan / time-to-first-structure / barrier
composite analysis the benchmarks report.

Key conventions (shared with :mod:`repro.core.stagework`):

* task keys are stage-prefixed (``feature/<rid>``,
  ``inference/<rid>/<model>``, ``relax/<rid>``) so feature and relax —
  both keyed by record id — stay distinct in one map call;
* the relax spec's ``dep_mode="resolved"`` runs it once all five
  inference deps are *terminal*, on whichever predictions survived —
  matching the barrier stage's tolerance of OOM-lost models — and
  poisons it only when all five failed (exactly the records the barrier
  path would have dropped from ``top_models``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterable

from ..cluster.costmodel import SCHEDULER_STARTUP_SECONDS
from ..dataflow.faults import RetryPolicy
from ..dataflow.scheduler import TaskRecord, TaskSpec, WorkerInfo
from ..dataflow.simulated import SimulationResult, simulate_dataflow
from ..fold.memory import inference_memory_bytes

__all__ = [
    "STREAM_STAGES",
    "stage_of",
    "build_campaign_specs",
    "make_inference_finalizer",
    "simulate_streaming_campaign",
    "time_to_first_structure_seconds",
    "barrier_composite",
]

STREAM_STAGES = ("feature", "inference", "relax")

#: Pool routing, the ParaFold split: CPU-bound MSA search and (here)
#: relaxation on one pool, accelerator-bound inference on the other.
STAGE_POOLS = {"feature": "cpu", "inference": "gpu", "relax": "cpu"}


def stage_of(spec: TaskSpec) -> str:
    """Stage name from a streaming spec's prefixed key."""
    return spec.key.partition("/")[0]


def build_campaign_specs(
    records: Iterable[Any],
    model_names: list[str],
    bias_fn: Callable[[Any], float],
) -> list[TaskSpec]:
    """The campaign DAG: one chain of 1 + N + 1 specs per sequence.

    ``records`` are sequence records (``record_id``/``length``/
    ``species``); ``model_names`` the model bank's names in bank order
    (which fixes relax's tie-break order); ``bias_fn`` maps a record to
    its kingdom bias.  Inference payloads carry ``(model_index, bias)``
    only — the feature bundle arrives later via dependency injection —
    and inference ``requires_highmem`` is left False here because MSA
    depth is unknown until the feature task runs; the
    :func:`make_inference_finalizer` hook raises it at promotion time.
    """
    specs: list[TaskSpec] = []
    for record in records:
        rid = record.record_id
        feature_key = f"feature/{rid}"
        specs.append(
            TaskSpec(
                key=feature_key,
                payload=record,
                size_hint=record.length,
                pool=STAGE_POOLS["feature"],
            )
        )
        bias = bias_fn(record)
        inference_keys: list[str] = []
        for model_index, name in enumerate(model_names):
            key = f"inference/{rid}/{name}"
            inference_keys.append(key)
            specs.append(
                TaskSpec(
                    key=key,
                    payload=(model_index, bias),
                    size_hint=record.length,
                    pool=STAGE_POOLS["inference"],
                    depends_on=(feature_key,),
                )
            )
        specs.append(
            TaskSpec(
                key=f"relax/{rid}",
                payload=None,
                size_hint=record.length,
                pool=STAGE_POOLS["relax"],
                depends_on=tuple(inference_keys),
                dep_mode="resolved",
            )
        )
    return specs


def make_inference_finalizer(
    n_ensembles: int,
    std_budget: int,
    use_highmem_routing: bool,
) -> Callable[[TaskSpec, dict[str, Any]], TaskSpec]:
    """The enqueue-time highmem router for streaming inference tasks.

    The barrier pipeline decides ``requires_highmem`` between stages,
    when every feature bundle (hence MSA depth) is in hand.  Streaming
    has no such point — so the queue's finalize hook makes the same
    decision per chain, the moment the feature dependency resolves and
    the task is promoted to runnable.  Raise-only: an already-escalated
    retry is never demoted, whatever the bundle says.
    """

    def finalize(spec: TaskSpec, resolved: dict[str, Any]) -> TaskSpec:
        if (
            not use_highmem_routing
            or spec.requires_highmem
            or not spec.key.startswith("inference/")
        ):
            return spec
        bundle = resolved.get(spec.depends_on[0]) if spec.depends_on else None
        if bundle is None:
            return spec
        needed = inference_memory_bytes(
            bundle.length, n_ensembles, bundle.msa_depth
        )
        if needed > std_budget:
            return replace(spec, requires_highmem=True)
        return spec

    return finalize


def simulate_streaming_campaign(
    specs: list[TaskSpec],
    workers: list[WorkerInfo],
    durations: dict[str, float],
    failure_fn: Callable[[TaskSpec, WorkerInfo], str | None] | None = None,
    retry_policy: RetryPolicy | None = None,
    startup: float = SCHEDULER_STARTUP_SECONDS,
) -> SimulationResult:
    """The whole campaign through one dependency-driven simulation.

    One scheduler, one startup charge (the barrier path pays three),
    pooled workers, tasks held until predecessors complete.  ``specs``
    is the :func:`build_campaign_specs` DAG and ``durations`` maps
    prefixed keys to modelled seconds — typically the same per-stage
    cost-model values the barrier simulations use, which makes the two
    schedules' makespans directly comparable.
    """
    return simulate_dataflow(
        specs,
        workers,
        lambda t: durations.get(t.key, 0.0),
        failure_fn=failure_fn,
        retry_policy=retry_policy,
        startup=startup,
    )


def time_to_first_structure_seconds(
    records: list[TaskRecord], startup: float = 0.0
) -> float:
    """APACE's latency metric: when does the first relaxed structure land?

    The earliest successful ``relax/`` completion in the record stream,
    plus the scheduler ``startup`` charge when the stream's clock
    starts after it.  Returns 0.0 when no structure completed.
    """
    ends = [
        r.end
        for r in records
        if r.ok and r.key.startswith("relax/")
    ]
    if not ends:
        return 0.0
    return startup + min(ends)


def barrier_composite(
    stage_sims: list[tuple[str, SimulationResult]],
    specs: list[TaskSpec],
) -> tuple[list[TaskRecord], list[WorkerInfo], list[TaskSpec]]:
    """Stitch per-stage barrier simulations onto one campaign timeline.

    Returns ``(records, workers, specs)`` in a shared clock and
    namespace, ready for :func:`repro.dataflow.bubbles.bubble_seconds`
    and :func:`time_to_first_structure_seconds`:

    * each stage's records shift by the cumulative walltime of the
      stages before it (startup included — the barrier path really pays
      it per stage), and their keys gain the stage prefix so they line
      up with the streaming spec DAG;
    * each stage's workers get stage-scoped ids (two stages may reuse
      worker ids) and ``pool=<stage>``, with the specs' pools rewritten
      to match — a feature worker idling in its stage's tail is *not*
      eligible for ready inference work, exactly the constraint the
      barrier schedule imposes, and the bubble accounting then charges
      the inference pool for idling through the whole feature stage.
    """
    records: list[TaskRecord] = []
    workers: list[WorkerInfo] = []
    offset = 0.0
    for stage, sim in stage_sims:
        offset += sim.startup_seconds
        for r in sim.records:
            records.append(
                replace(
                    r,
                    key=f"{stage}/{r.key}",
                    worker_id=f"{stage}/{r.worker_id}",
                    start=r.start + offset,
                    end=r.end + offset,
                )
            )
        for w in sim.workers:
            workers.append(
                replace(w, worker_id=f"{stage}/{w.worker_id}", pool=stage)
            )
        offset += sim.makespan_seconds
    stage_specs = [replace(s, pool=stage_of(s)) for s in specs]
    return records, workers, stage_specs
