"""Campaign statistics: the summary numbers the paper reports.

Table 1 rows, the §4.2 improvement-concentration analysis, and the
§4.3.1 proteome confidence summaries all reduce to functions of the
per-target top-model predictions collected here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import HIGH_QUALITY_PLDDT, HIGH_QUALITY_PTMS, ULTRA_HIGH_PLDDT
from ..fold.model import Prediction

__all__ = [
    "PresetBenchmarkRow",
    "benchmark_row",
    "ImprovementConcentration",
    "improvement_concentration",
    "ProteomeSummary",
    "summarize_proteome",
]


@dataclass(frozen=True)
class PresetBenchmarkRow:
    """One row of Table 1."""

    preset: str
    mean_plddt: float
    mean_ptms: float
    count: int
    walltime_minutes: float
    frac_plddt_high: float
    frac_ptms_high: float
    mean_recycles: float

    def as_tuple(self) -> tuple:
        return (
            self.preset,
            round(self.mean_plddt, 1),
            round(self.mean_ptms, 3),
            self.count,
            round(self.walltime_minutes, 1),
        )


def benchmark_row(
    preset: str,
    top_models: dict[str, Prediction],
    walltime_minutes: float,
) -> PresetBenchmarkRow:
    """Aggregate one preset run into its Table 1 row."""
    preds = list(top_models.values())
    if not preds:
        raise ValueError("no predictions to summarise")
    plddt = np.array([p.mean_plddt for p in preds])
    ptms = np.array([p.ptms for p in preds])
    recycles = np.array([p.n_recycles for p in preds])
    return PresetBenchmarkRow(
        preset=preset,
        mean_plddt=float(plddt.mean()),
        mean_ptms=float(ptms.mean()),
        count=len(preds),
        walltime_minutes=walltime_minutes,
        frac_plddt_high=float((plddt > HIGH_QUALITY_PLDDT).mean()),
        frac_ptms_high=float((ptms > HIGH_QUALITY_PTMS).mean()),
        mean_recycles=float(recycles.mean()),
    )


@dataclass(frozen=True)
class ImprovementConcentration:
    """§4.2: how concentrated are a preset's pTMS gains?

    The paper finds ~45% of the super preset's total pTMS gain comes
    from the 5% of targets improving by >= 0.1, and ~74% from the 12%
    improving by >= 0.05 — with those models recycling nearly to the cap.
    """

    mean_delta: float
    frac_targets_gain_010: float
    share_of_gain_from_010: float
    frac_targets_gain_005: float
    share_of_gain_from_005: float
    mean_recycles_of_big_gainers: float


def improvement_concentration(
    baseline: dict[str, Prediction],
    improved: dict[str, Prediction],
) -> ImprovementConcentration:
    """Compare two preset runs target-by-target (§4.2 analysis)."""
    common = sorted(set(baseline) & set(improved))
    if not common:
        raise ValueError("no common targets between runs")
    deltas = np.array([improved[k].ptms - baseline[k].ptms for k in common])
    recycles = np.array([improved[k].n_recycles for k in common])
    total_gain = float(np.clip(deltas, 0.0, None).sum())
    big = deltas >= 0.1
    mid = deltas >= 0.05

    def share(mask: np.ndarray) -> float:
        if total_gain <= 0:
            return 0.0
        return float(deltas[mask & (deltas > 0)].sum() / total_gain)

    return ImprovementConcentration(
        mean_delta=float(deltas.mean()),
        frac_targets_gain_010=float(big.mean()),
        share_of_gain_from_010=share(big),
        frac_targets_gain_005=float(mid.mean()),
        share_of_gain_from_005=share(mid),
        mean_recycles_of_big_gainers=float(recycles[big].mean()) if big.any() else 0.0,
    )


@dataclass(frozen=True)
class ProteomeSummary:
    """§4.3.1-style proteome confidence summary."""

    n_targets: int
    frac_targets_plddt_high: float
    residue_coverage_plddt_high: float
    residue_coverage_plddt_ultra: float
    frac_targets_ptms_high: float
    mean_recycles: float


def summarize_proteome(top_models: dict[str, Prediction]) -> ProteomeSummary:
    preds = list(top_models.values())
    if not preds:
        raise ValueError("no predictions to summarise")
    plddt_means = np.array([p.mean_plddt for p in preds])
    ptms = np.array([p.ptms for p in preds])
    recycles = np.array([p.n_recycles for p in preds])
    all_res = np.concatenate(
        [np.asarray(p.structure.plddt) for p in preds if p.structure.plddt is not None]
    )
    return ProteomeSummary(
        n_targets=len(preds),
        frac_targets_plddt_high=float((plddt_means > HIGH_QUALITY_PLDDT).mean()),
        residue_coverage_plddt_high=float((all_res > HIGH_QUALITY_PLDDT).mean()),
        residue_coverage_plddt_ultra=float((all_res > ULTRA_HIGH_PLDDT).mean()),
        frac_targets_ptms_high=float((ptms > HIGH_QUALITY_PTMS).mean()),
        mean_recycles=float(recycles.mean()),
    )
