"""Task-ordering strategies and load-balance analysis.

The paper's load balancing is a single design choice — submit tasks in
descending sequence-length order and let the dataflow model do the rest
(§3.3 step 3c).  This module makes that choice explicit and comparable:
it implements the paper's greedy sort plus the alternatives one would
consider (random, ascending, true LPT with lookahead), and the metrics
that judge them (makespan, finish spread, utilization).  The ablation
benchmark shows why descending-sort-plus-dataflow was the right call:
it captures nearly all of LPT's benefit with none of its coordination
cost.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..dataflow.scheduler import TaskSpec
from ..dataflow.simulated import SimulationResult

__all__ = [
    "ORDERINGS",
    "order_tasks",
    "lpt_bound",
    "OrderingEvaluation",
    "evaluate_ordering",
]


def _descending(tasks: list[TaskSpec], rng) -> list[TaskSpec]:
    """The paper's greedy heuristic: longest first (§3.3)."""
    return sorted(tasks, key=lambda t: (-t.size_hint, t.key))


def _ascending(tasks: list[TaskSpec], rng) -> list[TaskSpec]:
    """Worst case for the tail: longest tasks start last."""
    return sorted(tasks, key=lambda t: (t.size_hint, t.key))


def _random(tasks: list[TaskSpec], rng) -> list[TaskSpec]:
    out = list(tasks)
    rng.shuffle(out)
    return out


def _submission(tasks: list[TaskSpec], rng) -> list[TaskSpec]:
    """As submitted (proteome file order)."""
    return list(tasks)


#: Named ordering strategies for ablation studies.
ORDERINGS: dict[str, Callable[[list[TaskSpec], np.random.Generator], list[TaskSpec]]] = {
    "descending": _descending,
    "ascending": _ascending,
    "random": _random,
    "submission": _submission,
}


def order_tasks(
    tasks: Sequence[TaskSpec],
    strategy: str,
    rng: np.random.Generator | None = None,
) -> list[TaskSpec]:
    """Apply a named ordering strategy."""
    try:
        fn = ORDERINGS[strategy]
    except KeyError:
        raise KeyError(
            f"unknown ordering {strategy!r}; options: {sorted(ORDERINGS)}"
        ) from None
    return fn(list(tasks), rng if rng is not None else np.random.default_rng(0))


def lpt_bound(durations: Sequence[float], n_workers: int) -> float:
    """Makespan of the LPT (longest processing time) list schedule.

    LPT with global knowledge is the classical 4/3-approximation to the
    optimal makespan; the dataflow model with descending submission
    order *is* LPT, so this doubles as the theoretical reference the
    ablation compares against.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    heap = [0.0] * n_workers
    heapq.heapify(heap)
    for d in sorted(durations, reverse=True):
        heapq.heapreplace(heap, heap[0] + d)
    return max(heap)


@dataclass(frozen=True)
class OrderingEvaluation:
    """Load-balance metrics of one simulated run."""

    strategy: str
    makespan_seconds: float
    finish_spread_seconds: float
    utilization: float
    lpt_ratio: float  # makespan / LPT lower-reference (>= ~1.0)


def evaluate_ordering(
    strategy: str,
    result: SimulationResult,
    durations: Sequence[float],
) -> OrderingEvaluation:
    """Score a finished simulation against the LPT reference."""
    reference = lpt_bound(durations, len(result.workers))
    return OrderingEvaluation(
        strategy=strategy,
        makespan_seconds=result.makespan_seconds,
        finish_spread_seconds=result.finish_spread_seconds(),
        utilization=result.utilization(),
        lpt_ratio=result.makespan_seconds / reference if reference > 0 else 1.0,
    )
