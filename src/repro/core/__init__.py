"""Core pipeline: presets, workloads, three-stage deployment, statistics."""

from .pipeline import (
    FeatureStageResult,
    InferenceStageResult,
    PipelineResult,
    ProteomePipeline,
    RelaxStageResult,
    kingdom_bias_for,
)
from .presets import PRESETS, Preset, get_preset
from .stats import (
    ImprovementConcentration,
    PresetBenchmarkRow,
    ProteomeSummary,
    benchmark_row,
    improvement_concentration,
    summarize_proteome,
)
from .workloads import (
    CaspTarget,
    benchmark_set,
    benchmark_suite,
    casp_targets,
    oversized_records,
)

__all__ = [
    "FeatureStageResult",
    "InferenceStageResult",
    "PipelineResult",
    "ProteomePipeline",
    "RelaxStageResult",
    "kingdom_bias_for",
    "PRESETS",
    "Preset",
    "get_preset",
    "ImprovementConcentration",
    "PresetBenchmarkRow",
    "ProteomeSummary",
    "benchmark_row",
    "improvement_concentration",
    "summarize_proteome",
    "CaspTarget",
    "benchmark_set",
    "benchmark_suite",
    "casp_targets",
    "oversized_records",
]
