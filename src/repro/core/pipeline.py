"""The three-stage proteome pipeline (the paper's deployment, end to end).

Stage 1 — **feature generation** on Andes (CPU): MSA search against the
replicated libraries; costs follow the I/O-contention-aware model.

Stage 2 — **model inference** on Summit (GPU): five surrogate models per
target via the dataflow executor, greedy descending-length order, OOM
tasks routed to high-memory nodes.

Stage 3 — **geometry optimisation** on Summit (GPU): single-pass
restrained minimisation of each top-ranked model.

Each stage produces both *scientific* output (features, predictions,
relaxed structures — computed for real by the surrogate substrates) and
*operational* output (a simulated-time workflow run with per-task
records, wall time and node-hours, from the calibrated cost model).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..cache import FeatureCache
from ..cluster.costmodel import (
    feature_task_seconds,
    inference_task_seconds,
    relax_task_seconds,
)
from ..cluster.machine import ANDES, SUMMIT, MachineSpec
from ..constants import REDUCED_DATASET_BYTES
from ..dataflow.bubbles import bubble_seconds as compute_bubble_seconds
from ..dataflow.engine import ExecutionResult, ThreadedExecutor
from ..dataflow.faults import RetryPolicy, is_oom_error
from ..dataflow.process import ProcessExecutor
from ..dataflow.scheduler import TaskRecord, TaskSpec, WorkerInfo, make_workers
from ..dataflow.simulated import SimulationResult, simulate_dataflow
from ..fold.generator import NativeFactory
from ..fold.memory import (
    highmem_worker_memory_bytes,
    inference_memory_bytes,
    standard_worker_memory_bytes,
)
from ..fold.model import Prediction, SurrogateFoldModel
from ..iosim.replication import ReplicationPlan, paper_plan
from ..msa.databases import LibrarySuite
from ..msa.diskindex import attach_suite_index
from ..msa.features import FeatureBundle, FeatureGenConfig
from ..relax.batch import relax_many
from ..relax.protocols import RelaxOutcome
from ..runstate import RunState
from ..sequences.proteome import SPECIES, Proteome
from ..structure.protein import Structure
from ..telemetry.metrics import get_metrics
from ..telemetry.session import TelemetrySession
from ..telemetry.tracer import get_tracer, spans_from_records
from . import stagework, streaming
from .presets import Preset, get_preset

__all__ = [
    "FeatureStageResult",
    "InferenceStageResult",
    "RelaxStageResult",
    "PipelineResult",
    "ProteomePipeline",
    "kingdom_bias_for",
]


def _raise_on_failures(
    records: list[TaskRecord],
    stage: str,
    allow: "callable[[str], bool] | None" = None,
) -> None:
    """Surface unexpected task failures from a threaded stage run.

    The executor isolates exceptions per task; failures the stage has no
    recovery story for (anything the ``allow`` classifier does not
    claim, e.g. non-OOM errors in inference) must not be silently
    dropped from the results dict — re-raise them here, as the seed's
    inline loops would have.
    """
    unexpected = [
        r
        for r in records
        if not r.ok and (allow is None or not allow(r.error))
    ]
    if unexpected:
        summary = "; ".join(
            f"{r.key}: {r.error}" for r in unexpected[:3]
        )
        raise RuntimeError(
            f"{stage} stage: {len(unexpected)} task(s) failed — {summary}"
        )


def kingdom_bias_for(species: str) -> float:
    """Difficulty bias by kingdom: plant proteomes model harder (§4.3.1)."""
    spec = SPECIES.get(species)
    if spec is None:
        return 0.0
    return 0.08 if spec.kingdom == "plant" else 0.0


def _assemble_inference(
    features: dict[str, FeatureBundle],
    bank: list[SurrogateFoldModel],
    preset: Preset,
    preds_by_key: dict[str, Prediction],
) -> tuple[
    dict[str, list[Prediction]], list[tuple[str, str]], dict[str, float]
]:
    """Group per-(target, model) predictions, shared by both schedules.

    Returns ``(predictions, oom_failures, sim_durations)`` — missing
    keys are OOM losses whose simulated duration falls back to the
    preset's recycle cap, exactly the barrier stage's accounting.  One
    function serves the barrier and streaming paths so grouping /
    tie-break / duration logic cannot drift between them.
    """
    predictions: dict[str, list[Prediction]] = {}
    oom: list[tuple[str, str]] = []
    durations: dict[str, float] = {}
    for record_id, bundle in features.items():
        bias = kingdom_bias_for(bundle.record.species)
        for model in bank:
            key = f"{record_id}/{model.name}"
            pred = preds_by_key.get(key)
            if pred is None:
                oom.append((record_id, model.name))
                durations[key] = inference_task_seconds(
                    bundle.length,
                    preset.config(kingdom_bias=bias).recycle_cap(
                        bundle.length
                    ),
                    preset.n_ensembles,
                )
            else:
                predictions.setdefault(record_id, []).append(pred)
                durations[key] = inference_task_seconds(
                    bundle.length, pred.n_recycles, preset.n_ensembles
                )
    return predictions, oom, durations


@dataclass
class FeatureStageResult:
    """Output of the CPU feature-generation campaign."""

    features: dict[str, FeatureBundle]
    simulation: SimulationResult
    n_nodes: int
    machine: MachineSpec
    plan: ReplicationPlan
    #: Counter movement on the metrics registry during this stage run
    #: (the ``stage.task.event``-named deltas this stage produced).
    stage_metrics: dict[str, float] = field(default_factory=dict)
    #: The threaded run that computed the features for real.
    execution: ExecutionResult | None = None

    @property
    def cache_hits(self) -> int:
        """Feature-cache hits this stage (thin view over the metrics)."""
        return int(self.stage_metrics.get("feature.cache.hits", 0))

    @property
    def cache_misses(self) -> int:
        """Feature-cache misses this stage (thin view over the metrics)."""
        return int(self.stage_metrics.get("feature.cache.misses", 0))

    @property
    def skipped_resume(self) -> int:
        """Tasks restored from the run-state ledger instead of computed."""
        return int(self.stage_metrics.get("feature.task.skipped_resume", 0))

    @property
    def node_hours(self) -> float:
        return self.simulation.node_hours(self.n_nodes)


@dataclass
class InferenceStageResult:
    """Output of the GPU inference campaign."""

    predictions: dict[str, list[Prediction]]
    top_models: dict[str, Prediction]
    oom_failures: list[tuple[str, str]]  # (record_id, model_name)
    simulation: SimulationResult
    n_nodes: int
    machine: MachineSpec
    preset: Preset
    #: Counter movement on the metrics registry during this stage run.
    stage_metrics: dict[str, float] = field(default_factory=dict)
    #: The threaded run that computed the predictions for real.
    execution: ExecutionResult | None = None

    @property
    def skipped_resume(self) -> int:
        """Tasks restored from the run-state ledger instead of computed."""
        return int(self.stage_metrics.get("inference.task.skipped_resume", 0))

    @property
    def node_hours(self) -> float:
        return self.simulation.node_hours(self.n_nodes)

    def mean_top_plddt(self) -> float:
        vals = [p.mean_plddt for p in self.top_models.values()]
        return float(np.mean(vals)) if vals else 0.0

    def mean_top_ptms(self) -> float:
        vals = [p.ptms for p in self.top_models.values()]
        return float(np.mean(vals)) if vals else 0.0

    def mean_recycles(self) -> float:
        vals = [p.n_recycles for p in self.top_models.values()]
        return float(np.mean(vals)) if vals else 0.0


@dataclass
class RelaxStageResult:
    """Output of the GPU geometry-optimisation campaign."""

    outcomes: dict[str, RelaxOutcome]
    simulation: SimulationResult
    n_nodes: int
    machine: MachineSpec
    #: Counter movement on the metrics registry during this stage run.
    stage_metrics: dict[str, float] = field(default_factory=dict)
    #: The threaded run that computed the relaxations for real.
    execution: ExecutionResult | None = None

    @property
    def verlet_rebuilds(self) -> int:
        """Neighbour-list rebuilds this stage (thin view over metrics)."""
        return int(self.stage_metrics.get("relax.verlet.rebuilds", 0))

    @property
    def verlet_reuses(self) -> int:
        """Neighbour-list reuses this stage (thin view over metrics)."""
        return int(self.stage_metrics.get("relax.verlet.reuses", 0))

    @property
    def skipped_resume(self) -> int:
        """Tasks restored from the run-state ledger instead of computed."""
        return int(self.stage_metrics.get("relax.task.skipped_resume", 0))

    @property
    def node_hours(self) -> float:
        return self.simulation.node_hours(self.n_nodes)


@dataclass
class PipelineResult:
    """The whole campaign."""

    feature_stage: FeatureStageResult
    inference_stage: InferenceStageResult
    relax_stage: RelaxStageResult
    #: Which scheduler produced this result: ``"barrier"`` (three
    #: sequential stage maps) or ``"streaming"`` (one dependency-driven
    #: dataflow over pooled workers).  Scientific outputs are
    #: bit-identical either way; the operational numbers below differ.
    schedule: str = "barrier"
    #: Unified dependency-driven campaign simulation (streaming runs
    #: only): one scheduler startup, CPU/GPU pools, chains overlapping
    #: in time.  ``None`` under the barrier schedule, whose operational
    #: model is the three per-stage simulations.
    streaming_simulation: SimulationResult | None = None
    #: Worker-idle-while-eligible-work-exists seconds over the whole
    #: campaign timeline (see :mod:`repro.dataflow.bubbles`), computed
    #: for whichever schedule ran.  Also exported as the
    #: ``pipeline.bubble_seconds`` gauge.
    bubble_seconds: float = 0.0
    #: When the first relaxed structure lands on the campaign timeline
    #: (APACE's latency lens).  Barrier: after the full feature and
    #: inference stages.  Streaming: as soon as the first chain drains.
    time_to_first_structure_seconds: float = 0.0

    @property
    def total_node_hours(self) -> float:
        return (
            self.feature_stage.node_hours
            + self.inference_stage.node_hours
            + self.relax_stage.node_hours
        )

    @property
    def campaign_walltime_seconds(self) -> float:
        """Modelled campaign wall time under the schedule that ran."""
        if self.streaming_simulation is not None:
            return self.streaming_simulation.walltime_seconds
        return (
            self.feature_stage.simulation.walltime_seconds
            + self.inference_stage.simulation.walltime_seconds
            + self.relax_stage.simulation.walltime_seconds
        )


@dataclass
class ProteomePipeline:
    """Orchestrates the three decoupled workflows.

    Parameters mirror the paper's deployment: library replication plan,
    preset choice, node counts per stage, and the cutoff separating
    standard from high-memory inference workers.
    """

    preset_name: str = "genome"
    feature_nodes: int = 24
    inference_nodes: int = 32
    inference_highmem_nodes: int = 2
    relax_nodes: int = 8
    feature_machine: MachineSpec = field(default_factory=lambda: ANDES)
    gpu_machine: MachineSpec = field(default_factory=lambda: SUMMIT)
    replication_plan: ReplicationPlan | None = None
    feature_config: FeatureGenConfig | None = None
    #: Route memory-hungry tasks to 2 TB nodes.  The paper did this for
    #: its proteome runs (§3.3); the Table 1 casp14 benchmark did *not*,
    #: which is why its eight longest sequences were lost to OOM.
    use_highmem_routing: bool = True
    #: Threads for the *real* per-record work (feature search, model
    #: inference, relaxation), run through :class:`ThreadedExecutor` with
    #: the same task decomposition the operational simulation uses.
    #: 0 = auto (one per core, capped at 8); numpy releases the GIL in
    #: the kernels that dominate, so threads scale the science for real.
    compute_workers: int = 0
    #: Executor backend for the real per-record work: ``"threaded"``
    #: (default; workers are threads, scales where numpy drops the GIL)
    #: or ``"process"`` (workers are OS processes pulling tasks over
    #: pipes with shared-memory array transport — scales all Python
    #: work past the GIL and survives a worker being killed outright).
    #: Stage decomposition, retry/highmem semantics, the durable-state
    #: callback and the task observer are identical on both: callbacks
    #: always run in this (the coordinating) process.
    executor_backend: str = "threaded"
    #: Campaign scheduler: ``"barrier"`` (default — three sequential
    #: stage maps, each joining before the next) or ``"streaming"``
    #: (the whole campaign as per-sequence dependency chains on one
    #: executor with CPU/GPU worker pools; each sequence flows to its
    #: next stage the moment its predecessors finish).  Outputs are
    #: bit-identical; streaming collapses the stage-boundary bubbles
    #: and time-to-first-structure.
    schedule: str = "barrier"
    #: Directory of sharded, memory-mapped k-mer index artifacts
    #: (``repro index build`` / :func:`repro.msa.diskindex.build_disk_index`).
    #: When set, the feature stage attaches every suite library to its
    #: on-disk index before dispatch: the artifact is opened (built
    #: first if absent, quarantined + rebuilt if corrupt) and workers
    #: share the memory-mapped postings through the page cache instead
    #: of rebuilding a CSR index per process (``msa.index.rebuild``
    #: stays zero when the artifact was prebuilt).
    index_dir: str | Path | None = None
    #: Optional content-addressed cache for the feature stage.
    feature_cache: FeatureCache | None = None
    #: Optional telemetry session.  When set, :meth:`run` activates its
    #: tracer/metrics for the whole campaign and (if the session has a
    #: ``run_dir``) exports ``manifest.json`` + ``trace.json`` +
    #: ``metrics.json`` on completion.  Stage methods always emit spans
    #: and metrics to whatever tracer/registry is active; without a
    #: session that is the no-op tracer and the default registry.
    telemetry: TelemetrySession | None = None
    #: Durable campaign state (write-ahead completion ledger + artifact
    #: store).  When set, every stage filters its task list against the
    #: ledger before submission — already-completed keys are restored
    #: from the artifact store, counted on ``<stage>.task.skipped_resume``
    #: and never recomputed — and records completions durably as results
    #: land, so a killed campaign resumes where it died.
    run_state: RunState | None = None
    #: Observer called once per task attempt, *after* the run state (if
    #: any) has durably recorded it: ``observer(stage, record, value)``.
    #: The CLI's fault-injection kill switch hangs off this; it runs on
    #: executor worker threads, so keep it cheap and thread-safe.
    task_observer: Callable[[str, TaskRecord, Any], None] | None = None

    def _extend_sim_spans(self, tracer, sim, span, stage: str) -> None:
        """Attach a stage's simulated task spans to the active trace.

        Each ``simulate_dataflow`` run starts its clock at 0, but the
        campaign's stages executed sequentially; a cumulative offset
        places every stage after the previous one on the simulated
        timeline, so lanes never overlap and trace-derived utilization
        stays physical.  (``_run_stages`` resets the offset per run.)
        """
        offset = getattr(self, "_sim_offset", 0.0)
        tracer.extend(
            spans_from_records(
                sim.records,
                parent=span,
                clock="sim",
                offset=offset,
                attrs={"stage": stage},
            )
        )
        self._sim_offset = offset + sim.walltime_seconds

    def _executor(
        self, n_items: int, highmem_workers: int = 0
    ) -> ThreadedExecutor | ProcessExecutor:
        n = self.compute_workers
        if n <= 0:
            n = max(1, min(8, os.cpu_count() or 1))
        n = min(n, max(1, n_items))
        highmem = min(highmem_workers, n)
        if self.executor_backend == "process":
            return ProcessExecutor(n, highmem_workers=highmem)
        if self.executor_backend != "threaded":
            raise ValueError(
                f"unknown executor backend {self.executor_backend!r}; "
                "expected 'threaded' or 'process'"
            )
        return ThreadedExecutor(n, highmem_workers=highmem)

    # -- Durable state -------------------------------------------------------
    def _restore_completed(self, stage: str, keys: list[str]) -> dict[str, Any]:
        """Artifacts for this stage's already-ledgered keys (resume path).

        Counts the skips on ``<stage>.task.skipped_resume`` so stage
        metrics, the telemetry export, and the provenance manifest all
        agree on how much work the ledger saved.
        """
        if self.run_state is None:
            return {}
        restored = self.run_state.restore(stage, keys)
        if restored:
            get_metrics().counter(f"{stage}.task.skipped_resume").inc(
                len(restored)
            )
            get_tracer().event(
                f"{stage}.resume.skipped",
                category="runstate",
                attrs={"n_skipped": len(restored)},
            )
        return restored

    def _stage_callback(
        self, stage: str
    ) -> Callable[[TaskRecord, Any], None] | None:
        """Executor ``on_complete``: durable record first, observer second."""
        state, observer = self.run_state, self.task_observer
        if state is None and observer is None:
            return None
        persist = state.on_complete(stage) if state is not None else None

        def callback(record: TaskRecord, value: Any) -> None:
            if persist is not None:
                persist(record, value)
            if observer is not None:
                observer(stage, record, value)

        return callback

    # -- Stage 1 -----------------------------------------------------------
    def run_feature_stage(
        self, proteome: Proteome, suite: LibrarySuite
    ) -> FeatureStageResult:
        """MSA search for every target; Andes CPU workflow.

        The searches themselves run on the threaded executor — one task
        per target, the same decomposition the simulated workflow uses —
        and consult :attr:`feature_cache` when one is configured.
        """
        plan = self.replication_plan or paper_plan(REDUCED_DATASET_BYTES)
        contention = plan.contention()
        dataset_fraction = suite.total_modeled_bytes / 2.1e12
        records = list(proteome)
        tasks = [
            TaskSpec(
                key=record.record_id,
                payload=record,
                size_hint=record.length,
            )
            for record in records
        ]
        tracer = get_tracer()
        metrics = get_metrics()
        counters_before = metrics.counter_values()
        with tracer.span(
            "stage",
            "features",
            ambient=True,
            attrs={
                "n_tasks": len(tasks),
                "machine": self.feature_machine.name,
                "n_nodes": self.feature_nodes,
            },
        ) as span:
            if self.index_dir is not None:
                # Swap every library onto its memory-mapped disk-index
                # artifact before any worker starts (or forks): workers
                # then share one page-cache copy of the postings and
                # never rebuild a CSR index per process.
                attach_suite_index(suite, self.index_dir)
            restored = self._restore_completed(
                "feature", [t.key for t in tasks]
            )
            pending = [t for t in tasks if t.key not in restored]
            execution = self._executor(len(pending)).map(
                stagework.feature_task,
                pending,
                stage="feature",
                on_complete=self._stage_callback("feature"),
                initializer=stagework.init_feature_stage,
                initargs=(suite, self.feature_config, self.feature_cache),
            )
            _raise_on_failures(execution.records, "feature generation")
            bundles = {**restored, **execution.results}
            features = {r.record_id: bundles[r.record_id] for r in records}
            # One search job per concurrent slot: the plan's replica layout
            # bounds useful concurrency regardless of node count.  Never
            # exceed the plan's slot count — running more concurrent
            # searches than replicas support breaks the §3.2.1 contention
            # bound the cost model assumes.
            n_workers = min(plan.n_concurrent_jobs, self.feature_nodes * 4)
            n_nodes = min(self.feature_nodes, n_workers)
            per_node = -(-n_workers // n_nodes)  # ceil
            workers = make_workers(n_nodes, per_node)[:n_workers]

            def duration(task: TaskSpec) -> float:
                return feature_task_seconds(
                    int(task.size_hint),
                    dataset_fraction=max(dataset_fraction, 1e-3),
                    io_contention=contention,
                )

            sim = simulate_dataflow(tasks, workers, duration)
            if span is not None:
                span.set_attr("n_workers", n_workers)
                span.set_attr("sim_walltime_seconds", sim.walltime_seconds)
                span.set_attr("n_skipped_resume", len(restored))
            if tracer.enabled:
                self._extend_sim_spans(tracer, sim, span, "features")
        return FeatureStageResult(
            features=features,
            simulation=sim,
            n_nodes=self.feature_nodes,
            machine=self.feature_machine,
            plan=plan,
            stage_metrics=metrics.delta(
                counters_before, metrics.counter_values()
            ),
            execution=execution,
        )

    # -- Stage 2 -----------------------------------------------------------
    def run_inference_stage(
        self,
        features: dict[str, FeatureBundle],
        factory: NativeFactory,
        preset_name: str | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> InferenceStageResult:
        """Five models per target on the dataflow executor.

        Tasks are (model, target) pairs — the paper's decomposition for
        load balance (§3.3).  With highmem routing, tasks that exceed
        standard worker memory are flagged ``requires_highmem`` and only
        dispatch to high-memory workers; tasks that exceed even those
        fail for real — their simulation records carry ``ok=False``, so
        ``n_failed`` matches ``oom_failures``, as the casp14 benchmark
        rows did.  A ``retry_policy`` additionally re-runs OOM-failed
        attempts on high-memory workers (provisioned even when routing
        is off, since escalation needs somewhere to escalate to).
        """
        preset = get_preset(preset_name or self.preset_name)
        tracer = get_tracer()
        metrics = get_metrics()
        counters_before = metrics.counter_values()
        bank = [SurrogateFoldModel(factory, i) for i in range(5)]
        tasks: list[TaskSpec] = []
        memory_needed: dict[str, int] = {}
        std_budget = standard_worker_memory_bytes()
        hm_budget = highmem_worker_memory_bytes()
        highmem_nodes = (
            self.inference_highmem_nodes
            if (self.use_highmem_routing or retry_policy is not None)
            else 0
        )
        for record_id, bundle in features.items():
            bias = kingdom_bias_for(bundle.record.species)
            needed = inference_memory_bytes(
                bundle.length, preset.n_ensembles, bundle.msa_depth
            )
            requires_highmem = self.use_highmem_routing and needed > std_budget
            for model in bank:
                key = f"{record_id}/{model.name}"
                memory_needed[key] = needed
                # Payload carries the model *index*, not the model: the
                # worker-side bank (stagework.init_inference_stage) owns
                # the factory, so a process worker never re-pickles it
                # per task.  The budget follows the current attempt's
                # placement class (see stagework.inference_task), so
                # ``model.predict`` raises OOM exactly when the paper's
                # deployment would have lost (or re-routed) the task.
                tasks.append(
                    TaskSpec(
                        key=key,
                        payload=(bundle, model.model_index, bias),
                        size_hint=bundle.length,
                        requires_highmem=requires_highmem,
                    )
                )

        # Escalation needs a highmem slot in the executor whenever the
        # simulation provisions highmem nodes or routing is on; backoff
        # is an operational (simulated-time) concern, so the science
        # executor retries immediately.
        exec_policy = (
            replace(retry_policy, backoff_seconds=0.0)
            if retry_policy is not None
            else None
        )
        exec_highmem = 1 if (self.use_highmem_routing or highmem_nodes > 0) else 0
        with tracer.span(
            "stage",
            "inference",
            ambient=True,
            attrs={
                "n_tasks": len(tasks),
                "preset": preset.name,
                "machine": self.gpu_machine.name,
                "n_nodes": self.inference_nodes,
                "highmem_nodes": highmem_nodes,
            },
        ) as span:
            restored = self._restore_completed(
                "inference", [t.key for t in tasks]
            )
            pending = [t for t in tasks if t.key not in restored]
            execution = self._executor(
                len(pending), highmem_workers=exec_highmem
            ).map(
                stagework.inference_task,
                pending,
                retry_policy=exec_policy,
                pass_spec=True,
                stage="inference",
                on_complete=self._stage_callback("inference"),
                initializer=stagework.init_inference_stage,
                initargs=(factory, preset.name),
            )
            _raise_on_failures(
                execution.records, "inference", allow=is_oom_error
            )

            preds_by_key = {**restored, **execution.results}
            predictions, oom, durations = _assemble_inference(
                features, bank, preset, preds_by_key
            )
            if oom:
                metrics.counter("inference.oom.lost_tasks").inc(len(oom))
            workers = make_workers(
                self.inference_nodes,
                self.gpu_machine.gpus_per_node,
                highmem_nodes=highmem_nodes,
            )

            def oom_failure(task: TaskSpec, worker: WorkerInfo) -> str | None:
                budget = hm_budget if worker.highmem else std_budget
                if memory_needed[task.key] > budget:
                    return (
                        f"OutOfMemoryError: {task.key} needs "
                        f"{memory_needed[task.key] / 2**30:.1f} GiB, worker "
                        f"budget is {budget / 2**30:.1f} GiB"
                    )
                return None

            sim = simulate_dataflow(
                tasks,
                workers,
                lambda t: durations[t.key],
                failure_fn=oom_failure,
                retry_policy=retry_policy,
            )
            if span is not None:
                span.set_attr("n_workers", len(workers))
                span.set_attr("sim_walltime_seconds", sim.walltime_seconds)
                span.set_attr("n_oom_failures", len(oom))
                span.set_attr("n_skipped_resume", len(restored))
            if tracer.enabled:
                self._extend_sim_spans(tracer, sim, span, "inference")
        top = {
            rid: max(preds, key=lambda p: p.ptms)
            for rid, preds in predictions.items()
            if preds
        }
        return InferenceStageResult(
            predictions=predictions,
            top_models=top,
            oom_failures=oom,
            simulation=sim,
            n_nodes=self.inference_nodes,
            machine=self.gpu_machine,
            preset=preset,
            stage_metrics=metrics.delta(
                counters_before, metrics.counter_values()
            ),
            execution=execution,
        )

    # -- Stage 3 -----------------------------------------------------------
    def run_relax_stage(
        self, structures: dict[str, Structure]
    ) -> RelaxStageResult:
        """Single-pass GPU relaxation of the top models (§3.4).

        The science is :func:`repro.relax.batch.relax_many`: systems
        prepared once, minimisations run on the threaded executor, one
        task per structure — the same decomposition the simulated
        workflow uses.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        counters_before = metrics.counter_values()
        with tracer.span(
            "stage",
            "relax",
            ambient=True,
            attrs={
                "n_tasks": len(structures),
                "machine": self.gpu_machine.name,
                "n_nodes": self.relax_nodes,
            },
        ) as span:
            restored = self._restore_completed("relax", list(structures))
            pending = {
                key: structure
                for key, structure in structures.items()
                if key not in restored
            }
            batch = relax_many(
                pending,
                device="gpu",
                executor=self._executor(len(pending)),
                on_complete=self._stage_callback("relax"),
            )
            outcomes: dict[str, RelaxOutcome] = {**restored, **batch.outcomes}
            tasks = [
                TaskSpec(
                    key=record_id, payload=structure, size_hint=len(structure)
                )
                for record_id, structure in structures.items()
            ]
            durations = {
                record_id: relax_task_seconds(
                    outcome.n_heavy_atoms, outcome.n_minimizations, device="gpu"
                )
                for record_id, outcome in outcomes.items()
            }
            workers = make_workers(
                self.relax_nodes, self.gpu_machine.gpus_per_node
            )
            sim = simulate_dataflow(tasks, workers, lambda t: durations[t.key])
            if span is not None:
                span.set_attr("n_workers", len(workers))
                span.set_attr("sim_walltime_seconds", sim.walltime_seconds)
                span.set_attr("n_skipped_resume", len(restored))
            if tracer.enabled:
                self._extend_sim_spans(tracer, sim, span, "relax")
        return RelaxStageResult(
            outcomes=outcomes,
            simulation=sim,
            n_nodes=self.relax_nodes,
            machine=self.gpu_machine,
            stage_metrics=metrics.delta(
                counters_before, metrics.counter_values()
            ),
            execution=batch.execution,
        )

    # -- Streaming schedule --------------------------------------------------
    def _streaming_executor(
        self, n_items: int
    ) -> ThreadedExecutor | ProcessExecutor:
        """Pooled executor for a streaming campaign.

        Splits the compute workers into the ParaFold shape — a CPU pool
        (feature + relax tasks) and a GPU pool (inference) — with the
        high-memory slot landing in the GPU pool, where the 2 TB
        inference nodes live.  A single worker cannot split; it serves
        both pools (pool-less workers match any lane).
        """
        n = self.compute_workers
        if n <= 0:
            n = max(1, min(8, os.cpu_count() or 1))
        n = min(n, max(1, n_items))
        highmem = 1 if self.use_highmem_routing else 0
        if self.executor_backend == "process":
            cls: Any = ProcessExecutor
        elif self.executor_backend == "threaded":
            cls = ThreadedExecutor
        else:
            raise ValueError(
                f"unknown executor backend {self.executor_backend!r}; "
                "expected 'threaded' or 'process'"
            )
        if n < 2:
            return cls(1, highmem_workers=highmem)
        cpu = max(1, n // 2)
        return cls(pools={"cpu": cpu, "gpu": n - cpu}, highmem_workers=highmem)

    def _streaming_callback(
        self,
    ) -> Callable[[TaskRecord, Any], None] | None:
        """Per-record callback that de-prefixes keys before persistence.

        Streaming task keys carry their stage prefix
        (``inference/P001/model_3``); the ledger, artifact store and
        task observer all speak the barrier path's bare per-stage keys
        (``P001/model_3`` under stage ``inference``).  Stripping here
        keeps the on-disk state byte-compatible across schedules, so a
        barrier campaign can resume a killed streaming one and vice
        versa.
        """
        state, observer = self.run_state, self.task_observer
        if state is None and observer is None:
            return None
        persists = {
            stage: (state.on_complete(stage) if state is not None else None)
            for stage in streaming.STREAM_STAGES
        }

        def callback(record: TaskRecord, value: Any) -> None:
            stage, bare = stagework.split_streaming_key(record.key)
            bare_record = replace(record, key=bare)
            persist = persists.get(stage)
            if persist is not None:
                persist(bare_record, value)
            if observer is not None:
                observer(stage, bare_record, value)

        return callback

    def _run_streaming(
        self,
        proteome: Proteome,
        suite: LibrarySuite,
        factory: NativeFactory,
    ) -> PipelineResult:
        """The whole campaign as one dependency-driven dataflow.

        One executor map over every ``feature → inference×5 → relax``
        chain: tasks are held until their predecessors complete, CPU
        and GPU pools run concurrently, and each sequence's relaxation
        can finish while another sequence's MSA search is still
        running.  Scientific outputs are bit-identical to
        :meth:`_run_stages` (same task functions, same tie-breaks, same
        budgets); the per-stage *simulations* are also computed exactly
        as the barrier path computes them — so node-hour accounting is
        schedule-invariant — plus one unified dependency-driven
        simulation that models the streaming timeline itself.
        """
        plan = self.replication_plan or paper_plan(REDUCED_DATASET_BYTES)
        contention = plan.contention()
        dataset_fraction = suite.total_modeled_bytes / 2.1e12
        preset = get_preset(self.preset_name)
        records = list(proteome)
        rids = [r.record_id for r in records]
        bank = [SurrogateFoldModel(factory, i) for i in range(5)]
        model_names = [m.name for m in bank]
        std_budget = standard_worker_memory_bytes()
        hm_budget = highmem_worker_memory_bytes()
        tracer = get_tracer()
        metrics = get_metrics()
        counters_before = metrics.counter_values()

        specs = streaming.build_campaign_specs(
            records, model_names, lambda r: kingdom_bias_for(r.species)
        )
        if self.index_dir is not None:
            attach_suite_index(suite, self.index_dir)

        # Resume: restore every stage's ledgered keys up front; their
        # results seed the dependency-resolution map, so chains resume
        # mid-flight (a ledgered feature feeds a pending inference).
        restored_f = self._restore_completed("feature", rids)
        restored_i = self._restore_completed(
            "inference",
            [f"{rid}/{name}" for rid in rids for name in model_names],
        )
        restored_r = self._restore_completed("relax", rids)
        preresolved: dict[str, Any] = {}
        preresolved.update(
            {f"feature/{k}": v for k, v in restored_f.items()}
        )
        preresolved.update(
            {f"inference/{k}": v for k, v in restored_i.items()}
        )
        preresolved.update({f"relax/{k}": v for k, v in restored_r.items()})
        pending = [s for s in specs if s.key not in preresolved]
        n_tasks_of = {
            stage: sum(1 for s in specs if streaming.stage_of(s) == stage)
            for stage in streaming.STREAM_STAGES
        }

        # Three *sibling* stage spans stay open for the whole map: task
        # spans parent onto their stage explicitly (the thread-stack
        # rule would nest interleaved stages into each other).
        stage_spans = None
        if tracer.enabled:
            parent = tracer.current_span()
            stage_spans = {
                stage: tracer.start_span(
                    "stage",
                    label,
                    parent=parent,
                    stacked=False,
                    attrs={
                        "n_tasks": n_tasks_of[stage],
                        "schedule": "streaming",
                    },
                )
                for stage, label in (
                    ("feature", "features"),
                    ("inference", "inference"),
                    ("relax", "relax"),
                )
            }
        try:
            execution = self._streaming_executor(len(pending)).map(
                stagework.streaming_task,
                pending,
                pass_spec=True,
                stage="dataflow",
                stage_of=streaming.stage_of,
                stage_spans=stage_spans,
                finalize_fn=streaming.make_inference_finalizer(
                    preset.n_ensembles, std_budget, self.use_highmem_routing
                ),
                inject_deps=True,
                preresolved=preresolved,
                on_complete=self._streaming_callback(),
                initializer=stagework.init_streaming,
                initargs=(
                    suite,
                    self.feature_config,
                    self.feature_cache,
                    factory,
                    preset.name,
                ),
            )

            records_of: dict[str, list[TaskRecord]] = {
                stage: [] for stage in streaming.STREAM_STAGES
            }
            for r in execution.records:
                stage, _ = stagework.split_streaming_key(r.key)
                if stage in records_of:
                    records_of[stage].append(r)
            _raise_on_failures(records_of["feature"], "feature generation")
            _raise_on_failures(
                records_of["inference"], "inference", allow=is_oom_error
            )
            _raise_on_failures(
                records_of["relax"],
                "relax",
                allow=lambda e: e.startswith("SkippedDependency"),
            )

            def value_of(key: str) -> Any:
                if key in execution.results:
                    return execution.results[key]
                return preresolved.get(key)

            features = {
                rid: value_of(f"feature/{rid}") for rid in rids
            }
            preds_by_key = {}
            for rid in rids:
                for name in model_names:
                    pred = value_of(f"inference/{rid}/{name}")
                    if pred is not None:
                        preds_by_key[f"{rid}/{name}"] = pred
            predictions, oom, inference_durations = _assemble_inference(
                features, bank, preset, preds_by_key
            )
            if oom:
                metrics.counter("inference.oom.lost_tasks").inc(len(oom))
            top = {
                rid: max(preds, key=lambda p: p.ptms)
                for rid, preds in predictions.items()
                if preds
            }
            outcomes: dict[str, RelaxOutcome] = {}
            for rid in top:
                outcome = value_of(f"relax/{rid}")
                if outcome is not None:
                    outcomes[rid] = outcome

            # -- Operational model, barrier-identical per stage ---------
            # (node-hour accounting must not depend on the schedule).
            self._sim_offset = 0.0
            feature_tasks = [
                TaskSpec(
                    key=record.record_id,
                    payload=record,
                    size_hint=record.length,
                )
                for record in records
            ]
            n_feature_workers = min(
                plan.n_concurrent_jobs, self.feature_nodes * 4
            )
            feature_nodes = min(self.feature_nodes, n_feature_workers)
            per_node = -(-n_feature_workers // feature_nodes)  # ceil
            feature_workers = make_workers(feature_nodes, per_node)[
                :n_feature_workers
            ]

            def feature_duration(task: TaskSpec) -> float:
                return feature_task_seconds(
                    int(task.size_hint),
                    dataset_fraction=max(dataset_fraction, 1e-3),
                    io_contention=contention,
                )

            feature_sim = simulate_dataflow(
                feature_tasks, feature_workers, feature_duration
            )

            memory_needed = {}
            inference_tasks = []
            for rid in rids:
                bundle = features[rid]
                needed = inference_memory_bytes(
                    bundle.length, preset.n_ensembles, bundle.msa_depth
                )
                for name in model_names:
                    key = f"{rid}/{name}"
                    memory_needed[key] = needed
                    inference_tasks.append(
                        TaskSpec(
                            key=key,
                            payload=None,
                            size_hint=bundle.length,
                            requires_highmem=(
                                self.use_highmem_routing
                                and needed > std_budget
                            ),
                        )
                    )
            highmem_nodes = (
                self.inference_highmem_nodes
                if self.use_highmem_routing
                else 0
            )
            inference_workers = make_workers(
                self.inference_nodes,
                self.gpu_machine.gpus_per_node,
                highmem_nodes=highmem_nodes,
            )

            def oom_failure(task: TaskSpec, worker: WorkerInfo) -> str | None:
                bare = task.key.partition("/")[2] or task.key
                needed = memory_needed.get(
                    bare if task.key.startswith("inference/") else task.key
                )
                if needed is None:
                    return None
                budget = hm_budget if worker.highmem else std_budget
                if needed > budget:
                    return (
                        f"OutOfMemoryError: {task.key} needs "
                        f"{needed / 2**30:.1f} GiB, worker budget is "
                        f"{budget / 2**30:.1f} GiB"
                    )
                return None

            inference_sim = simulate_dataflow(
                inference_tasks,
                inference_workers,
                lambda t: inference_durations[t.key],
                failure_fn=oom_failure,
            )

            relax_tasks = [
                TaskSpec(
                    key=rid,
                    payload=top[rid].structure,
                    size_hint=len(top[rid].structure),
                )
                for rid in top
            ]
            relax_durations = {
                rid: relax_task_seconds(
                    outcome.n_heavy_atoms,
                    outcome.n_minimizations,
                    device="gpu",
                )
                for rid, outcome in outcomes.items()
            }
            relax_workers = make_workers(
                self.relax_nodes, self.gpu_machine.gpus_per_node
            )
            relax_sim = simulate_dataflow(
                relax_tasks, relax_workers, lambda t: relax_durations[t.key]
            )

            # -- Unified streaming simulation + bubble/TTFS -------------
            sim_specs = []
            for s in specs:
                if streaming.stage_of(s) == "inference":
                    bare = s.key.partition("/")[2]
                    s = replace(
                        s,
                        requires_highmem=(
                            self.use_highmem_routing
                            and memory_needed[bare] > std_budget
                        ),
                    )
                sim_specs.append(s)
            durations_all: dict[str, float] = {}
            for task in feature_tasks:
                durations_all[f"feature/{task.key}"] = feature_duration(task)
            for key, seconds in inference_durations.items():
                durations_all[f"inference/{key}"] = seconds
            for rid, seconds in relax_durations.items():
                durations_all[f"relax/{rid}"] = seconds
            cpu_pool = make_workers(feature_nodes, per_node, pool="cpu")[
                :n_feature_workers
            ]
            gpu_pool = make_workers(
                self.inference_nodes,
                self.gpu_machine.gpus_per_node,
                highmem_nodes=highmem_nodes,
                pool="gpu",
            )
            streaming_sim = streaming.simulate_streaming_campaign(
                sim_specs,
                cpu_pool + gpu_pool,
                durations_all,
                failure_fn=oom_failure,
            )
            bubble = compute_bubble_seconds(
                streaming_sim.records, streaming_sim.workers, sim_specs
            )
            ttfs = streaming.time_to_first_structure_seconds(
                streaming_sim.records,
                startup=streaming_sim.startup_seconds,
            )
            metrics.gauge("pipeline.bubble_seconds").set(bubble)
            metrics.gauge("pipeline.time_to_first_structure_seconds").set(
                ttfs
            )

            if stage_spans is not None:
                for stage, sim, label, skipped in (
                    ("feature", feature_sim, "features", len(restored_f)),
                    ("inference", inference_sim, "inference", len(restored_i)),
                    ("relax", relax_sim, "relax", len(restored_r)),
                ):
                    span = stage_spans[stage]
                    span.set_attr("n_workers", len(sim.workers))
                    span.set_attr(
                        "sim_walltime_seconds", sim.walltime_seconds
                    )
                    span.set_attr("n_skipped_resume", skipped)
                    self._extend_sim_spans(tracer, sim, span, label)
                stage_spans["inference"].set_attr("n_oom_failures", len(oom))
        finally:
            if stage_spans is not None:
                for span in stage_spans.values():
                    tracer.finish_span(span)

        stage_metrics = metrics.delta(
            counters_before, metrics.counter_values()
        )
        feature_stage = FeatureStageResult(
            features=features,
            simulation=feature_sim,
            n_nodes=self.feature_nodes,
            machine=self.feature_machine,
            plan=plan,
            stage_metrics=stage_metrics,
            execution=execution,
        )
        inference_stage = InferenceStageResult(
            predictions=predictions,
            top_models=top,
            oom_failures=oom,
            simulation=inference_sim,
            n_nodes=self.inference_nodes,
            machine=self.gpu_machine,
            preset=preset,
            stage_metrics=stage_metrics,
            execution=execution,
        )
        relax_stage = RelaxStageResult(
            outcomes=outcomes,
            simulation=relax_sim,
            n_nodes=self.relax_nodes,
            machine=self.gpu_machine,
            stage_metrics=stage_metrics,
            execution=execution,
        )
        return PipelineResult(
            feature_stage=feature_stage,
            inference_stage=inference_stage,
            relax_stage=relax_stage,
            schedule="streaming",
            streaming_simulation=streaming_sim,
            bubble_seconds=bubble,
            time_to_first_structure_seconds=ttfs,
        )

    # -- Full campaign -------------------------------------------------------
    def _run_stages(
        self,
        proteome: Proteome,
        suite: LibrarySuite,
        factory: NativeFactory,
    ) -> PipelineResult:
        self._sim_offset = 0.0
        feature_stage = self.run_feature_stage(proteome, suite)
        inference_stage = self.run_inference_stage(
            feature_stage.features, factory
        )
        relax_stage = self.run_relax_stage(
            {
                rid: pred.structure
                for rid, pred in inference_stage.top_models.items()
            }
        )
        # Score the barrier schedule's bubbles on the same dependency
        # DAG the streaming scheduler executes: per-stage simulations
        # stitched onto one timeline, workers scoped to their stage —
        # the idle-while-ready-work-waited seconds the barriers cost.
        specs = streaming.build_campaign_specs(
            list(proteome),
            [m.name for m in (SurrogateFoldModel(factory, i) for i in range(5))],
            lambda r: kingdom_bias_for(r.species),
        )
        composite_records, composite_workers, composite_specs = (
            streaming.barrier_composite(
                [
                    ("feature", feature_stage.simulation),
                    ("inference", inference_stage.simulation),
                    ("relax", relax_stage.simulation),
                ],
                specs,
            )
        )
        bubble = compute_bubble_seconds(
            composite_records, composite_workers, composite_specs
        )
        ttfs = streaming.time_to_first_structure_seconds(composite_records)
        metrics = get_metrics()
        metrics.gauge("pipeline.bubble_seconds").set(bubble)
        metrics.gauge("pipeline.time_to_first_structure_seconds").set(ttfs)
        return PipelineResult(
            feature_stage=feature_stage,
            inference_stage=inference_stage,
            relax_stage=relax_stage,
            schedule="barrier",
            bubble_seconds=bubble,
            time_to_first_structure_seconds=ttfs,
        )

    def _run_campaign(
        self,
        proteome: Proteome,
        suite: LibrarySuite,
        factory: NativeFactory,
    ) -> PipelineResult:
        if self.schedule == "streaming":
            return self._run_streaming(proteome, suite, factory)
        if self.schedule != "barrier":
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                "expected 'barrier' or 'streaming'"
            )
        return self._run_stages(proteome, suite, factory)

    def run(
        self,
        proteome: Proteome,
        suite: LibrarySuite,
        factory: NativeFactory | None = None,
    ) -> PipelineResult:
        if factory is None:
            raise ValueError(
                "pass the NativeFactory built on the same universe as the "
                "proteome — predictions are meaningless otherwise"
            )
        session = self.telemetry
        if session is None:
            return self._run_campaign(proteome, suite, factory)
        with session.activate():
            tracer = session.tracer
            t_start = tracer.now()
            with tracer.span(
                "run",
                "proteome_campaign",
                ambient=True,
                attrs={
                    "preset": self.preset_name,
                    "n_targets": len(proteome),
                    "schedule": self.schedule,
                },
            ):
                result = self._run_campaign(proteome, suite, factory)
            wall_seconds = tracer.now() - t_start
        state = self.run_state
        session.annotate(
            preset=self.preset_name,
            n_targets=len(proteome),
            schedule=result.schedule,
            library_fingerprint=suite.fingerprint(),
            resume={
                "enabled": state is not None,
                "resumed": bool(state is not None and state.resumed),
                "skipped": {
                    "features": result.feature_stage.skipped_resume,
                    "inference": result.inference_stage.skipped_resume,
                    "relax": result.relax_stage.skipped_resume,
                },
            },
            wall_seconds=wall_seconds,
            sim_walltime_seconds={
                "features": result.feature_stage.simulation.walltime_seconds,
                "inference": result.inference_stage.simulation.walltime_seconds,
                "relax": result.relax_stage.simulation.walltime_seconds,
            },
            campaign_walltime_seconds=result.campaign_walltime_seconds,
            bubble_seconds=result.bubble_seconds,
            time_to_first_structure_seconds=(
                result.time_to_first_structure_seconds
            ),
            node_hours=result.total_node_hours,
        )
        if session.run_dir is not None:
            session.export()
        return result
