"""Per-task stage functions, shaped for cross-process execution.

The pipeline's stages used to hand the executor closures over local
state (the library suite, the model bank, the preset).  A closure works
on the threaded backend but cannot cross a process boundary, so the
process executor forces the split this module encodes:

* a module-level **task function** per stage — picklable by reference,
  taking only what rides in the :class:`~repro.dataflow.scheduler.TaskSpec`
  payload — and
* a module-level **initializer** per stage that stashes the heavy
  shared state (suite, model bank, cache) into the process-local
  :data:`_CTX` dict.

:class:`~repro.dataflow.engine.ThreadedExecutor` runs the initializer
once up front; :class:`~repro.dataflow.process.ProcessExecutor` runs it
once per worker process.  Either way the task functions read the same
``_CTX`` keys, so the pipeline drives both backends through one code
path.  Under the default ``fork`` start method the initargs are
inherited copy-on-write rather than pickled; under ``spawn`` they
travel by pickle — which is why :class:`~repro.msa.kmer.KmerIndex`
ships its frozen CSR arrays but not its derived lookup table, and
:class:`~repro.cache.FeatureCache` reduces to its directory path.

With a pipeline ``index_dir``, the suite that reaches the initializer
already carries :class:`~repro.msa.diskindex.DiskKmerIndex` instances:
forked workers inherit the read-only mappings copy-on-write and
spawned workers re-attach by manifest path (its ``__getstate__`` ships
no postings), so no worker ever rebuilds — or even receives — a CSR
index.  Without one, the index builds lazily inside the first feature
task a process runs, so the per-process build cost is visible in that
task's merged ``msa.index.rebuild`` counter delta rather than hidden
in initializer time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from ..fold.memory import (
    highmem_worker_memory_bytes,
    standard_worker_memory_bytes,
)
from ..fold.model import SurrogateFoldModel
from ..msa.features import generate_features
from ..relax.protocols import SinglePassRelaxProtocol
from .presets import get_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import FeatureCache
    from ..dataflow.scheduler import TaskSpec
    from ..fold.generator import NativeFactory
    from ..fold.model import Prediction
    from ..msa.databases import LibrarySuite
    from ..msa.features import FeatureBundle, FeatureGenConfig
    from ..relax.protocols import RelaxOutcome

__all__ = [
    "init_feature_stage",
    "feature_task",
    "init_inference_stage",
    "inference_task",
    "init_streaming",
    "streaming_task",
    "streaming_key",
    "split_streaming_key",
]

#: Process-local stage context, filled by the stage initializers.  One
#: stage runs at a time per process, so a single dict is unambiguous.
_CTX: dict[str, Any] = {}


# -- Stage 1: feature generation ---------------------------------------------
def init_feature_stage(
    suite: "LibrarySuite",
    config: "FeatureGenConfig | None",
    cache: "FeatureCache | None",
) -> None:
    """Install the search context; one call serves every feature task.

    Pre-warms the suite fingerprint memo here so each worker (or the
    one fork parent) pays the content hash once, not once per cache
    key computation.
    """
    suite.fingerprint()
    _CTX["suite"] = suite
    _CTX["feature_config"] = config
    _CTX["feature_cache"] = cache


def feature_task(record) -> "FeatureBundle":
    """MSA search for one target against the installed suite."""
    return generate_features(
        record,
        _CTX["suite"],
        _CTX["feature_config"],
        cache=_CTX["feature_cache"],
    )


# -- Stage 2: model inference -------------------------------------------------
def init_inference_stage(factory: "NativeFactory", preset_name: str) -> None:
    """Build the five-model bank and memory budgets once per process."""
    _CTX["bank"] = [SurrogateFoldModel(factory, i) for i in range(5)]
    _CTX["preset"] = get_preset(preset_name)
    _CTX["std_budget"] = standard_worker_memory_bytes()
    _CTX["hm_budget"] = highmem_worker_memory_bytes()


def inference_task(spec: "TaskSpec") -> "Prediction":
    """One (target, model) prediction; needs the live spec.

    The payload is ``(bundle, model_index, kingdom_bias)``; the memory
    budget follows the *current attempt's* placement class
    (``spec.requires_highmem``), so a retry escalated to a high-memory
    worker predicts under the 2 TB budget its new home provides.
    """
    bundle, model_index, bias = spec.payload
    model = _CTX["bank"][model_index]
    budget = _CTX["hm_budget"] if spec.requires_highmem else _CTX["std_budget"]
    config = _CTX["preset"].config(
        kingdom_bias=bias, memory_budget_bytes=budget
    )
    return model.predict(bundle, config)


# -- Streaming: all three stages through one dependency-driven map ------------
def streaming_key(stage: str, key: str) -> str:
    """Stage-prefixed task key (``feature/P001``, ``inference/P001/m3``).

    The prefix keeps feature and relax keys — both bare record ids —
    distinct inside one campaign-wide map call; the streaming callback
    strips it again before records reach the ledger, so on-disk state
    stays byte-compatible with barrier runs (cross-schedule resume).
    """
    return f"{stage}/{key}"


def split_streaming_key(key: str) -> tuple[str, str]:
    """Invert :func:`streaming_key` → ``(stage, bare_key)``."""
    stage, _, bare = key.partition("/")
    return stage, bare


def init_streaming(
    suite: "LibrarySuite",
    config: "FeatureGenConfig | None",
    cache: "FeatureCache | None",
    factory: "NativeFactory",
    preset_name: str,
) -> None:
    """Install every stage's context at once for a streaming campaign.

    A streaming worker may be handed a feature task, then an inference
    task, then a relax minimisation — there is no per-stage worker
    lifetime to hang separate initializers on — so this composes the
    per-stage initializers plus the relax protocol into one call.
    """
    init_feature_stage(suite, config, cache)
    init_inference_stage(factory, preset_name)
    _CTX["relax_protocol"] = SinglePassRelaxProtocol(device="gpu")


def streaming_task(spec: "TaskSpec") -> "FeatureBundle | Prediction | RelaxOutcome":
    """Dispatch one streaming chain task by its stage prefix.

    The payload arrives as ``(stage_payload, deps)`` — the executor's
    ``inject_deps`` wrapping — where ``deps`` maps resolved dependency
    keys to their results:

    * ``feature/<rid>``: payload is the sequence record; no deps.
    * ``inference/<rid>/<model>``: payload is ``(model_index, bias)``;
      the single dep is the feature bundle.  Reuses
      :func:`inference_task` verbatim (same budget-by-placement rule),
      so predictions are bit-identical to the barrier stage.
    * ``relax/<rid>``: payload is empty; deps are the five model
      predictions, possibly short of five when some were lost to OOM
      (``dep_mode="resolved"``).  Top-model selection is the barrier
      stage's ``max(..., key=ptms)`` over predictions in bank order —
      the dependency tuple preserves bank order, so ties break
      identically.
    """
    payload, deps = spec.payload
    stage, _ = split_streaming_key(spec.key)
    if stage == "feature":
        return feature_task(payload)
    if stage == "inference":
        bundle = deps[spec.depends_on[0]]
        model_index, bias = payload
        return inference_task(
            replace(spec, payload=(bundle, model_index, bias))
        )
    if stage == "relax":
        preds = [deps[k] for k in spec.depends_on if k in deps]
        if not preds:  # pragma: no cover - queue poisons this case first
            raise RuntimeError(f"{spec.key}: no surviving predictions")
        top = max(preds, key=lambda p: p.ptms)
        protocol: SinglePassRelaxProtocol = _CTX["relax_protocol"]
        return protocol.run_prepared(protocol.prepare(top.structure))
    raise ValueError(f"unknown streaming stage in key {spec.key!r}")
