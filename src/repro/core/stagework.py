"""Per-task stage functions, shaped for cross-process execution.

The pipeline's stages used to hand the executor closures over local
state (the library suite, the model bank, the preset).  A closure works
on the threaded backend but cannot cross a process boundary, so the
process executor forces the split this module encodes:

* a module-level **task function** per stage — picklable by reference,
  taking only what rides in the :class:`~repro.dataflow.scheduler.TaskSpec`
  payload — and
* a module-level **initializer** per stage that stashes the heavy
  shared state (suite, model bank, cache) into the process-local
  :data:`_CTX` dict.

:class:`~repro.dataflow.engine.ThreadedExecutor` runs the initializer
once up front; :class:`~repro.dataflow.process.ProcessExecutor` runs it
once per worker process.  Either way the task functions read the same
``_CTX`` keys, so the pipeline drives both backends through one code
path.  Under the default ``fork`` start method the initargs are
inherited copy-on-write rather than pickled; under ``spawn`` they
travel by pickle — which is why :class:`~repro.msa.kmer.KmerIndex`
ships its frozen CSR arrays but not its derived lookup table, and
:class:`~repro.cache.FeatureCache` reduces to its directory path.

With a pipeline ``index_dir``, the suite that reaches the initializer
already carries :class:`~repro.msa.diskindex.DiskKmerIndex` instances:
forked workers inherit the read-only mappings copy-on-write and
spawned workers re-attach by manifest path (its ``__getstate__`` ships
no postings), so no worker ever rebuilds — or even receives — a CSR
index.  Without one, the index builds lazily inside the first feature
task a process runs, so the per-process build cost is visible in that
task's merged ``msa.index.rebuild`` counter delta rather than hidden
in initializer time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..fold.memory import (
    highmem_worker_memory_bytes,
    standard_worker_memory_bytes,
)
from ..fold.model import SurrogateFoldModel
from ..msa.features import generate_features
from .presets import get_preset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import FeatureCache
    from ..dataflow.scheduler import TaskSpec
    from ..fold.generator import NativeFactory
    from ..fold.model import Prediction
    from ..msa.databases import LibrarySuite
    from ..msa.features import FeatureBundle, FeatureGenConfig

__all__ = [
    "init_feature_stage",
    "feature_task",
    "init_inference_stage",
    "inference_task",
]

#: Process-local stage context, filled by the stage initializers.  One
#: stage runs at a time per process, so a single dict is unambiguous.
_CTX: dict[str, Any] = {}


# -- Stage 1: feature generation ---------------------------------------------
def init_feature_stage(
    suite: "LibrarySuite",
    config: "FeatureGenConfig | None",
    cache: "FeatureCache | None",
) -> None:
    """Install the search context; one call serves every feature task.

    Pre-warms the suite fingerprint memo here so each worker (or the
    one fork parent) pays the content hash once, not once per cache
    key computation.
    """
    suite.fingerprint()
    _CTX["suite"] = suite
    _CTX["feature_config"] = config
    _CTX["feature_cache"] = cache


def feature_task(record) -> "FeatureBundle":
    """MSA search for one target against the installed suite."""
    return generate_features(
        record,
        _CTX["suite"],
        _CTX["feature_config"],
        cache=_CTX["feature_cache"],
    )


# -- Stage 2: model inference -------------------------------------------------
def init_inference_stage(factory: "NativeFactory", preset_name: str) -> None:
    """Build the five-model bank and memory budgets once per process."""
    _CTX["bank"] = [SurrogateFoldModel(factory, i) for i in range(5)]
    _CTX["preset"] = get_preset(preset_name)
    _CTX["std_budget"] = standard_worker_memory_bytes()
    _CTX["hm_budget"] = highmem_worker_memory_bytes()


def inference_task(spec: "TaskSpec") -> "Prediction":
    """One (target, model) prediction; needs the live spec.

    The payload is ``(bundle, model_index, kingdom_bias)``; the memory
    budget follows the *current attempt's* placement class
    (``spec.requires_highmem``), so a retry escalated to a high-memory
    worker predicts under the 2 TB budget its new home provides.
    """
    bundle, model_index, bias = spec.payload
    model = _CTX["bank"][model_index]
    budget = _CTX["hm_budget"] if spec.requires_highmem else _CTX["std_budget"]
    config = _CTX["preset"].config(
        kingdom_bias=bias, memory_budget_bytes=budget
    )
    return model.predict(bundle, config)
