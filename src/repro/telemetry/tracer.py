"""Span tracing: the substrate under every timing number we export.

The paper's observability artefacts — per-task CSVs, the Fig. 2 worker
Gantt, stage node-hour accounting — are all *interval* data: something
started, something ended, on some worker, inside some larger phase.  A
:class:`Span` is exactly that interval; a :class:`Tracer` produces them
nested (``run > stage > task > attempt``) with monotonic timestamps and
arbitrary attributes (worker id, lane, attempt number).

Design constraints, in order:

1. **Hot paths pay one branch when tracing is off.**  The module-level
   :data:`NULL_TRACER` is installed by default; its methods return
   immediately (``span()`` hands back one shared, reusable no-op
   context manager).  Instrumented code calls
   ``get_tracer().event(...)`` unconditionally — no ``if enabled``
   litter at call sites, no measurable cost in BENCH_relax/BENCH_fold.
2. **Simulated time is first-class.**  A tracer takes an explicit
   ``clock`` callable; ``Tracer(clock=lambda: sim.now)`` timestamps
   spans in :class:`~repro.cluster.simclock.SimClock` seconds, so the
   operational (simulated) timeline exports through the same pipeline
   as wall time.  :func:`spans_from_records` converts an executor's
   :class:`~repro.dataflow.scheduler.TaskRecord` stream — threaded or
   simulated — into finished task spans directly.
3. **Cross-thread nesting works.**  Span context is a thread-local
   stack, but a span opened with ``ambient=True`` (the pipeline's run
   and stage spans) becomes the parent fallback for spans opened on
   *other* threads with an empty local stack — which is exactly how
   :class:`~repro.dataflow.engine.ThreadedExecutor` worker threads hang
   their task spans under the stage that submitted them.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "spans_from_records",
]


@dataclass
class Span:
    """One timed interval in the ``run > stage > task > attempt`` tree.

    ``category`` is the level name ("run", "stage", "task", ...);
    ``name`` identifies the instance ("inference", "P0001/model_3").
    ``attrs`` carry worker/lane/attempt labels into the exporters.
    ``end`` stays ``None`` while the span is open.
    """

    name: str
    category: str
    start: float
    span_id: int
    parent_id: int | None = None
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    thread: str = ""

    @property
    def duration(self) -> float:
        """Span length in clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


@dataclass(frozen=True)
class TraceEventRecord:
    """A zero-duration instant (e.g. a recycle early-stop decision)."""

    name: str
    category: str
    timestamp: float
    parent_id: int | None
    attrs: dict[str, Any]
    thread: str


class _NullSpanContext:
    """Shared reusable no-op context manager (one allocation, ever)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The default tracer: every operation is an immediate return.

    Instrumentation sites call methods on whatever :func:`get_tracer`
    returns; with this installed the cost per event is one global read
    plus one no-op method call — the "one branch per event" budget the
    benchmark throughput numbers are guarded against.
    """

    enabled = False

    def span(
        self,
        category: str,
        name: str = "",
        attrs: dict[str, Any] | None = None,
        ambient: bool = False,
    ) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(
        self,
        name: str,
        category: str = "event",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        return None

    def complete(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        attrs: dict[str, Any] | None = None,
        parent_id: int | None = None,
        thread: str = "",
    ) -> None:
        return None

    def extend(self, spans: Iterable[Span]) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects nested spans and instants against one monotonic clock.

    ``clock`` defaults to :func:`time.perf_counter` rebased so the
    trace starts at 0; pass ``clock=lambda: sim.now`` to record in
    simulated seconds.  All mutation is lock-protected — executor
    worker threads and the coordinating thread append concurrently.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        if clock is None:
            t0 = time.perf_counter()

            def clock() -> float:
                return time.perf_counter() - t0
        self._clock = clock
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._ambient: list[Span] = []
        self.spans: list[Span] = []
        self.events: list[TraceEventRecord] = []

    # -- context -------------------------------------------------------------
    def now(self) -> float:
        return float(self._clock())

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        """Innermost open span on this thread, else the ambient span."""
        stack = self._stack()
        if stack:
            return stack[-1]
        with self._lock:
            return self._ambient[-1] if self._ambient else None

    # -- spans ---------------------------------------------------------------
    def start_span(
        self,
        category: str,
        name: str = "",
        attrs: dict[str, Any] | None = None,
        ambient: bool = False,
        parent: Span | None = None,
        stacked: bool = True,
    ) -> Span:
        """Open a span; by default nested under the current span.

        ``parent`` pins the parent explicitly (overriding thread/ambient
        context) and ``stacked=False`` keeps the span off this thread's
        open-span stack — together they let several sibling spans stay
        open concurrently under one parent, the shape the streaming
        scheduler needs for its three interleaved stage spans.
        """
        if parent is None:
            parent = self.current_span()
        with self._lock:
            span = Span(
                name=name or category,
                category=category,
                start=self.now(),
                span_id=next(self._ids),
                parent_id=parent.span_id if parent is not None else None,
                attrs=dict(attrs) if attrs else {},
                thread=threading.current_thread().name,
            )
            self.spans.append(span)
            if ambient:
                self._ambient.append(span)
        if stacked:
            self._stack().append(span)
        return span

    def finish_span(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            if span.end is None:
                span.end = self.now()
            if self._ambient and self._ambient[-1] is span:
                self._ambient.pop()

    @contextmanager
    def span(
        self,
        category: str,
        name: str = "",
        attrs: dict[str, Any] | None = None,
        ambient: bool = False,
    ) -> Iterator[Span]:
        span = self.start_span(category, name, attrs, ambient=ambient)
        try:
            yield span
        finally:
            self.finish_span(span)

    def complete(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        attrs: dict[str, Any] | None = None,
        parent_id: int | None = None,
        thread: str = "",
    ) -> Span:
        """Record an already-finished span with explicit timestamps.

        The bridge from record streams (simulated runs, replayed CSVs)
        into the span world; ``parent_id=None`` hangs it under the
        caller's current span, if any.
        """
        if end < start:
            raise ValueError("span cannot end before it starts")
        if parent_id is None:
            parent = self.current_span()
            parent_id = parent.span_id if parent is not None else None
        with self._lock:
            span = Span(
                name=name,
                category=category,
                start=float(start),
                span_id=next(self._ids),
                parent_id=parent_id,
                end=float(end),
                attrs=dict(attrs) if attrs else {},
                thread=thread or threading.current_thread().name,
            )
            self.spans.append(span)
        return span

    # -- instants ------------------------------------------------------------
    def event(
        self,
        name: str,
        category: str = "event",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        parent = self.current_span()
        with self._lock:
            self.events.append(
                TraceEventRecord(
                    name=name,
                    category=category,
                    timestamp=self.now(),
                    parent_id=parent.span_id if parent is not None else None,
                    attrs=dict(attrs) if attrs else {},
                    thread=threading.current_thread().name,
                )
            )

    def extend(self, spans: Iterable[Span]) -> None:
        """Attach externally built finished spans (e.g. simulated runs)."""
        with self._lock:
            self.spans.extend(spans)

    # -- introspection -------------------------------------------------------
    def children_of(self, span: Span) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span.span_id]


#: The process-wide active tracer.  A plain module global (not a
#: context/thread-local): executor worker threads must see the tracer
#: the coordinating thread installed.
_ACTIVE: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The active tracer; :data:`NULL_TRACER` unless one is installed."""
    return _ACTIVE


def set_tracer(tracer: NullTracer | Tracer | None) -> None:
    """Install ``tracer`` globally (``None`` restores the no-op)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: NullTracer | Tracer) -> Iterator[NullTracer | Tracer]:
    """Temporarily install ``tracer``, restoring the previous on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


#: Ids for record-derived spans; disjoint from live-tracer ids and
#: shared across calls so merged span lists never collide.
_RECORD_SPAN_IDS = itertools.count(1_000_000)


def spans_from_records(
    records: list,
    category: str = "task",
    parent: Span | None = None,
    clock: str = "sim",
    offset: float = 0.0,
    attrs: dict[str, Any] | None = None,
) -> list[Span]:
    """Convert a :class:`TaskRecord` stream into finished task spans.

    Works for both executors' record lists — the simulated run's
    timestamps are simulated seconds, the threaded run's are wall
    seconds since the run started; ``clock`` labels which, so exporters
    can keep the timelines apart.  Worker id and lane (the Fig. 2 row
    label) ride along as attributes; ``attrs`` adds extra labels to
    every span.  ``offset`` shifts the timestamps — each record stream
    starts its clock at 0, so a caller merging several sequential runs
    (the pipeline's three stages) offsets each by the simulated time
    already elapsed, keeping one coherent timeline per trace.
    """
    ids = _RECORD_SPAN_IDS
    parent_id = parent.span_id if parent is not None else None
    extra = attrs or {}
    spans = []
    for record in records:
        spans.append(
            Span(
                name=record.key,
                category=category,
                start=float(record.start) + offset,
                end=float(record.end) + offset,
                span_id=next(ids),
                parent_id=parent_id,
                attrs={
                    "worker": record.worker_id,
                    "lane": record.worker_id[-6:],
                    "attempt": record.attempt,
                    "ok": record.ok,
                    "error": record.error,
                    "clock": clock,
                    **extra,
                },
                thread=record.worker_id,
            )
        )
    return spans
