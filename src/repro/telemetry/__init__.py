"""Unified telemetry: span tracing, metrics, Chrome-trace export.

The observability subsystem the paper's deployment insight rests on
(per-task CSVs, the Fig. 2 worker Gantt, stage node-hour accounting),
rebuilt as one zero-dependency substrate instead of four generations of
ad-hoc result-dataclass counters:

* :mod:`~repro.telemetry.tracer` — nested spans
  (``run > stage > task > attempt``) with worker/lane attributes and
  explicit-clock support (simulated time is first-class);
* :mod:`~repro.telemetry.metrics` — counters, gauges and fixed-bucket
  histograms under dotted ``stage.task.event`` names;
* :mod:`~repro.telemetry.export` — Chrome ``trace_event`` JSON,
  metrics JSON/CSV, and the per-run ``manifest.json``;
* :mod:`~repro.telemetry.session` — the per-run bundle the pipeline
  activates and exports;
* :mod:`~repro.telemetry.report` — ``repro report <run_dir>``.

Instrumented call sites go through :func:`get_tracer` /
:func:`get_metrics`; with nothing installed the tracer is a no-op
(one branch per event) and the metrics land in a default registry.
"""

from .export import (
    SIM_PID,
    WALL_PID,
    build_manifest,
    chrome_trace,
    lanes_from_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_manifest,
    write_metrics_csv,
    write_metrics_json,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from .report import RunArtifacts, load_run, render_report
from .session import TelemetrySession
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    spans_from_records,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "spans_from_records",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "WALL_PID",
    "SIM_PID",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "lanes_from_trace",
    "write_metrics_json",
    "write_metrics_csv",
    "build_manifest",
    "write_manifest",
    "TelemetrySession",
    "RunArtifacts",
    "load_run",
    "render_report",
]
