"""TelemetrySession: one run's tracer + metrics + export directory.

The pipeline-facing bundle: construct one pointed at a run directory,
``activate()`` it around the work (installs its tracer and registry as
the process-wide actives), then ``export()`` writes the three
artifacts the acceptance contract names —

* ``manifest.json`` — provenance: preset, seed, library fingerprint,
  git describe, wall/sim time;
* ``trace.json``    — Chrome trace-event spans (run > stage > task >
  attempt) with worker/lane attributes;
* ``metrics.json``  — the flat counter/gauge/histogram dump (plus a
  ``metrics.csv`` convenience copy).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .export import (
    write_chrome_trace,
    write_manifest,
    write_metrics_csv,
    write_metrics_json,
)
from .metrics import MetricsRegistry, use_metrics
from .tracer import Span, Tracer, use_tracer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Everything one instrumented run records, and where it lands."""

    def __init__(
        self,
        run_dir: str | Path | None = None,
        clock=None,
    ) -> None:
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.extra_spans: list[Span] = []
        self.manifest_fields: dict[str, Any] = {}

    @contextmanager
    def activate(self) -> Iterator["TelemetrySession"]:
        """Install this session's tracer and registry globally."""
        with use_tracer(self.tracer), use_metrics(self.metrics):
            yield self

    def add_spans(self, spans: list[Span]) -> None:
        """Attach externally built spans (e.g. simulated-run records)."""
        self.extra_spans.extend(spans)

    def annotate(self, **fields: Any) -> None:
        """Stash manifest fields as the run learns them."""
        self.manifest_fields.update(fields)

    def export(self, **manifest_fields: Any) -> dict[str, Path]:
        """Write manifest/trace/metrics under :attr:`run_dir`."""
        if self.run_dir is None:
            raise ValueError("session has no run_dir to export into")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        fields = {**self.manifest_fields, **manifest_fields}
        paths = {
            "manifest": self.run_dir / "manifest.json",
            "trace": self.run_dir / "trace.json",
            "metrics": self.run_dir / "metrics.json",
            "metrics_csv": self.run_dir / "metrics.csv",
        }
        write_manifest(paths["manifest"], **fields)
        write_chrome_trace(
            paths["trace"],
            list(self.tracer.spans) + self.extra_spans,
            events=list(self.tracer.events),
        )
        write_metrics_json(paths["metrics"], self.metrics)
        write_metrics_csv(paths["metrics_csv"], self.metrics)
        return paths
