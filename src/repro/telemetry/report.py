"""``repro report``: summarize an exported telemetry run directory.

Reads the three artifacts a :class:`~repro.telemetry.session.
TelemetrySession` export produces and renders the questions the paper
answered with its per-task CSVs and Fig. 2: where did the time go per
stage, how evenly did workers run, and what did the counters see
(cache hits, retries, OOMs, Verlet rebuilds).  Pure artifact
consumption — no live pipeline objects — so it works on any run
directory, including ones shipped from another machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .export import SIM_PID, WALL_PID, lanes_from_trace, validate_chrome_trace

__all__ = ["RunArtifacts", "load_run", "render_report"]


@dataclass
class RunArtifacts:
    """Parsed contents of one exported run directory."""

    run_dir: Path
    manifest: dict = field(default_factory=dict)
    trace: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def stage_spans(self) -> list[dict]:
        """Stage-category complete events, in start order."""
        spans = [
            e
            for e in self.trace.get("traceEvents", ())
            if e.get("ph") == "X" and e.get("cat") == "stage"
        ]
        return sorted(spans, key=lambda e: e["ts"])


def load_run(run_dir: str | Path) -> RunArtifacts:
    """Load and schema-check a run directory's artifacts."""
    run_dir = Path(run_dir)
    artifacts = RunArtifacts(run_dir=run_dir)
    for name in ("manifest", "trace", "metrics"):
        path = run_dir / f"{name}.json"
        if not path.exists():
            raise FileNotFoundError(f"missing telemetry artifact: {path}")
        setattr(artifacts, name, json.loads(path.read_text(encoding="utf-8")))
    errors = validate_chrome_trace(artifacts.trace)
    if errors:
        raise ValueError(
            f"{run_dir / 'trace.json'} is not a valid Chrome trace: "
            + "; ".join(errors[:3])
        )
    return artifacts


def _utilization_lines(
    lanes: dict[str, list[tuple[float, float]]], label: str
) -> list[str]:
    if not lanes:
        return []
    finishes = {
        lane: intervals[-1][1] for lane, intervals in lanes.items() if intervals
    }
    if not finishes:
        return []
    makespan = max(finishes.values())
    busy = {
        lane: sum(e - s for s, e in intervals)
        for lane, intervals in lanes.items()
    }
    total_busy = sum(busy.values())
    util = (
        total_busy / (len(lanes) * makespan) if makespan > 0 else 0.0
    )
    spread = max(finishes.values()) - min(finishes.values())
    lines = [
        f"{label}: {len(lanes)} worker lanes, makespan {makespan:.2f} s, "
        f"utilization {util:.1%}, finish spread {spread:.2f} s"
    ]
    ranked = sorted(busy.items(), key=lambda kv: -kv[1])
    for lane, seconds in ranked[:5]:
        n = len(lanes[lane])
        lines.append(
            f"  {lane[-24:]:>24}  {seconds:10.2f} s busy  {n:5d} task(s)"
        )
    if len(ranked) > 5:
        lines.append(f"  ... and {len(ranked) - 5} more lanes")
    return lines


def render_report(artifacts: RunArtifacts) -> str:
    """The human-readable stage/worker/counter summary."""
    lines: list[str] = []
    manifest = artifacts.manifest
    lines.append(f"run: {artifacts.run_dir}")
    for key in (
        "preset",
        "seed",
        "species",
        "n_targets",
        "library_fingerprint",
        "git_describe",
        "repro_version",
        "wall_seconds",
        "sim_walltime_seconds",
    ):
        if key in manifest:
            lines.append(f"  {key:22} {manifest[key]}")
    stages = artifacts.stage_spans()
    if stages:
        lines.append("")
        lines.append("stages (wall clock):")
        for span in stages:
            args = span.get("args", {})
            extras = ", ".join(
                f"{k}={args[k]}"
                for k in ("n_tasks", "n_workers", "sim_walltime_seconds")
                if k in args
            )
            lines.append(
                f"  {span['name']:<12} {span['dur'] / 1e6:9.3f} s"
                + (f"  ({extras})" if extras else "")
            )
    for pid, label in ((WALL_PID, "wall tasks"), (SIM_PID, "simulated tasks")):
        util = _utilization_lines(
            lanes_from_trace(artifacts.trace, category="task", pid=pid), label
        )
        if util:
            lines.append("")
            lines.extend(util)
    counters = artifacts.metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<40} {value:g}")
    gauges = artifacts.metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<40} {value:g}")
    histograms = artifacts.metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name, hist in sorted(histograms.items()):
            if not hist.get("count"):
                continue
            mean = hist["sum"] / hist["count"]
            lines.append(
                f"  {name:<40} n={hist['count']:<6d} "
                f"mean={mean:.4g} min={hist['min']:.4g} "
                f"max={hist['max']:.4g}"
            )
    return "\n".join(lines)
