"""Metrics registry: counters, gauges, fixed-bucket histograms.

One shared substrate for every count the pipeline used to keep in
bespoke dataclass fields — feature-cache hits, OOM retries, Verlet
rebuilds, per-stage task latencies.  Names follow the dotted
``stage.task.event`` convention documented in DESIGN.md §9
(``feature.cache.hits``, ``inference.task.latency_seconds``,
``relax.verlet.rebuilds``, ...), so a flat metrics dump stays greppable
and stage deltas are a prefix filter.

Everything is lock-protected: executor worker threads, the feature
cache and the coordinating thread all increment concurrently.  A
module-global default registry is always installed — counting is cheap
enough to leave on (one dict hit + one add under a lock), and it means
``FeatureCache`` hit/miss accounting works with zero setup — while
:func:`use_metrics` swaps in a session-scoped registry for runs that
export their numbers.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

#: Latency histogram edges (seconds): log-spaced from sub-millisecond
#: kernels to multi-minute simulated tasks; values above the last edge
#: land in the implicit +Inf bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that may move both ways (queue depth, workers busy)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``buckets`` are the upper edges of the finite buckets; an implicit
    +Inf bucket catches the overflow.  ``observe`` is O(log buckets).
    """

    __slots__ = (
        "name", "buckets", "_counts", "_sum", "_count",
        "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...],
        lock: threading.Lock,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket edge")
        edges = tuple(float(b) for b in buckets)
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_right(self.buckets, value)
        # `bisect_right` puts values equal to an edge in the next
        # bucket; shift them back so edges are inclusive upper bounds.
        if idx > 0 and value == self.buckets[idx - 1]:
            idx -= 1
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the covering bucket.

        Exact enough for latency reporting (the export keeps the raw
        bucket counts, so any consumer can re-derive finer answers).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0
            for edge, n in zip(self.buckets, self._counts):
                cumulative += n
                if cumulative >= target:
                    return edge
            return self._max

    def _payload(self) -> dict:
        """JSON body; caller must hold the (non-reentrant) shared lock."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }

    def to_dict(self) -> dict:
        with self._lock:
            return self._payload()


class MetricsRegistry:
    """Named metrics, created on first touch, exported as one snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation / access ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, self._counters)
                metric = self._counters[name] = Counter(name, self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, self._gauges)
                metric = self._gauges[name] = Gauge(name, self._lock)
            return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, self._histograms)
                metric = self._histograms[name] = Histogram(
                    name, buckets, self._lock
                )
            return metric

    def _check_free(self, name: str, own: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered as another type"
                )

    # -- snapshots -----------------------------------------------------------
    def counter_values(self, prefix: str = "") -> dict[str, float]:
        """Current counter values, optionally filtered by name prefix."""
        with self._lock:
            return {
                name: c._value
                for name, c in self._counters.items()
                if name.startswith(prefix)
            }

    @staticmethod
    def delta(
        before: dict[str, float], after: dict[str, float]
    ) -> dict[str, float]:
        """Counter movement between two :meth:`counter_values` snapshots."""
        return {
            name: value - before.get(name, 0.0)
            for name, value in after.items()
            if value - before.get(name, 0.0) != 0.0
        }

    def snapshot(self) -> dict:
        """Everything, JSON-ready: the ``metrics.json`` payload body."""
        with self._lock:
            counters = {n: c._value for n, c in self._counters.items()}
            gauges = {n: g._value for n, g in self._gauges.items()}
            histograms = {
                n: h._payload() for n, h in self._histograms.items()
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


#: Process-wide active registry; a real one by default, so counting
#: instrumentation (cache hits, Verlet rebuilds) always lands somewhere.
_ACTIVE = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The active registry (never ``None``)."""
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` installs a fresh one)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Temporarily install ``registry``, restoring the previous on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
