"""Exporters: Chrome trace-event JSON, metrics dumps, run manifests.

``trace.json`` follows the Chrome ``trace_event`` format (the
"JSON Object Format": a top-level object with a ``traceEvents`` list),
loadable directly in ``chrome://tracing`` or Perfetto — the replacement
for the ASCII Gantt as the primary Fig. 2 view.  Span timestamps are
kept as *fractional* microseconds so a trace → lanes round trip
reproduces busy-seconds to float precision, which the Fig. 2 benchmark
asserts against the legacy :func:`~repro.dataflow.reporting.extract_gantt`
path.

Layout conventions:

* one ``pid`` per clock domain — ``pid=1`` wall-clock spans, ``pid=2``
  simulated-time spans (labelled via ``process_name`` metadata), so the
  two timelines never interleave on one axis;
* one ``tid`` (lane) per worker, named after the worker id; spans with
  no worker attribute (run/stage) land on lane 0 ("pipeline");
* spans export as ``ph="X"`` complete events, tracer instants as
  ``ph="i"`` thread-scoped instant events.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .tracer import Span, TraceEventRecord, Tracer

__all__ = [
    "WALL_PID",
    "SIM_PID",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "lanes_from_trace",
    "write_metrics_json",
    "write_metrics_csv",
    "build_manifest",
    "write_manifest",
]

#: pid per clock domain (see module docstring).
WALL_PID = 1
SIM_PID = 2
_PID_NAMES = {WALL_PID: "wall clock (s)", SIM_PID: "simulated clock (s)"}

#: Lane for spans with no worker attribute (run/stage coordination).
_PIPELINE_TID = 0


def _lane_key(span: Span) -> str | None:
    worker = span.attrs.get("worker")
    return str(worker) if worker is not None else None


def chrome_trace(
    spans: Iterable[Span],
    events: Iterable[TraceEventRecord] = (),
    metadata: dict[str, Any] | None = None,
) -> dict:
    """Assemble the Chrome trace-event JSON object.

    Worker lanes get stable ``tid`` numbers in first-seen order per
    clock domain, plus ``thread_name`` metadata rows so the viewer
    shows worker ids instead of bare numbers.  Open spans (``end is
    None``) are skipped — a trace is exported after its run finishes.
    """
    trace_events: list[dict] = []
    lanes: dict[tuple[int, str], int] = {}

    def pid_for(attrs: dict[str, Any]) -> int:
        return SIM_PID if attrs.get("clock") == "sim" else WALL_PID

    def tid_for(pid: int, lane: str | None) -> int:
        if lane is None:
            return _PIPELINE_TID
        key = (pid, lane)
        if key not in lanes:
            lanes[key] = len([k for k in lanes if k[0] == pid]) + 1
        return lanes[key]

    for span in spans:
        if span.end is None:
            continue
        pid = pid_for(span.attrs)
        tid = tid_for(pid, _lane_key(span))
        args = {k: v for k, v in span.attrs.items() if k != "clock"}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        trace_events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for event in events:
        pid = pid_for(event.attrs)
        tid = tid_for(pid, event.attrs.get("worker"))
        trace_events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.timestamp * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(event.attrs),
            }
        )
    used_pids = {e["pid"] for e in trace_events}
    for pid in sorted(used_pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _PID_NAMES.get(pid, f"pid {pid}")},
            }
        )
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _PIPELINE_TID,
                "args": {"name": "pipeline"},
            }
        )
    for (pid, lane), tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span] | Tracer,
    events: Iterable[TraceEventRecord] | None = None,
    metadata: dict[str, Any] | None = None,
) -> dict:
    """Write ``trace.json``; accepts a tracer or an explicit span list."""
    if isinstance(spans, Tracer):
        tracer = spans
        spans = list(tracer.spans)
        if events is None:
            events = list(tracer.events)
    trace = chrome_trace(spans, events or (), metadata)
    Path(path).write_text(json.dumps(trace), encoding="utf-8")
    return trace


def validate_chrome_trace(trace: dict) -> list[str]:
    """Schema check; returns a list of violations (empty = valid).

    Checks the subset of the trace-event contract our exporter and the
    CI smoke rely on: the JSON Object Format envelope, required keys
    per phase, non-negative timestamps/durations, and integer pids and
    tids.
    """
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["trace must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} must be an integer")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        if not isinstance(event.get("cat"), str):
            errors.append(f"{where}: missing cat")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant scope must be t/p/g")
    return errors


def lanes_from_trace(
    trace: dict, category: str = "task", pid: int | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Per-worker busy intervals recovered from an exported trace.

    Returns ``{worker_id: [(start_s, end_s), ...]}`` sorted by start,
    using the ``thread_name`` metadata to translate lane numbers back
    to worker ids.  This is the Fig. 2 Gantt, re-derived from the
    artifact instead of the in-memory run — the benchmark asserts it
    matches the legacy record-based extraction.
    """
    names: dict[tuple[int, int], str] = {}
    for event in trace.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[(event["pid"], event["tid"])] = event["args"]["name"]
    lanes: dict[str, list[tuple[float, float]]] = {}
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "X" or event.get("cat") != category:
            continue
        if pid is not None and event.get("pid") != pid:
            continue
        lane = names.get(
            (event["pid"], event["tid"]), f"tid-{event['tid']}"
        )
        start = event["ts"] / 1e6
        lanes.setdefault(lane, []).append((start, start + event["dur"] / 1e6))
    return {lane: sorted(spans) for lane, spans in sorted(lanes.items())}


def write_metrics_json(
    path: str | Path, registry: MetricsRegistry
) -> dict:
    """Write the flat metrics dump (``metrics.json``)."""
    payload = registry.snapshot()
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")
    return payload


def write_metrics_csv(path: str | Path, registry: MetricsRegistry) -> None:
    """Scalar metrics as CSV (histograms reduced to summary stats)."""
    snapshot = registry.snapshot()
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "kind", "value"])
        for name, value in snapshot["counters"].items():
            writer.writerow([name, "counter", repr(value)])
        for name, value in snapshot["gauges"].items():
            writer.writerow([name, "gauge", repr(value)])
        for name, hist in snapshot["histograms"].items():
            for stat in ("count", "sum", "min", "max"):
                writer.writerow(
                    [f"{name}.{stat}", "histogram", repr(hist[stat])]
                )


def build_manifest(**fields: Any) -> dict:
    """Assemble the per-run ``manifest.json`` payload.

    Standard keys (library/git/python provenance) are filled in here;
    callers add run-specific ones (preset, seed, fingerprints, wall and
    simulated times).  Everything must be JSON-serializable.
    """
    import platform
    import subprocess

    from .. import __version__

    manifest: dict[str, Any] = {
        "schema": "repro.telemetry.manifest/1",
        "repro_version": __version__,
        "python": platform.python_version(),
    }
    try:
        import numpy

        manifest["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep
        pass
    try:
        describe = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if describe.returncode == 0:
            manifest["git_describe"] = describe.stdout.strip()
    except Exception:  # git missing / not a checkout: provenance degrades
        pass
    manifest.update(fields)
    return manifest


def write_manifest(path: str | Path, **fields: Any) -> dict:
    manifest = build_manifest(**fields)
    Path(path).write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return manifest
