"""repro: proteome-scale protein structure prediction workflows.

A full reproduction of Gao et al., "Proteome-scale Deployment of Protein
Structure Prediction Workflows on the Summit Supercomputer" (IPDPS
Workshops 2022), with every hardware/data-gated dependency replaced by a
synthetic substrate that exercises the same code paths (see DESIGN.md).

Subpackages
-----------
``sequences``  synthetic proteomes, families, FASTA I/O
``structure``  structure model, TM-score/SPECS, alignment, fold library
``msa``        k-mer homology search, sequence libraries, features
``fold``       surrogate AlphaFold2: recycling, confidence, memory model
``relax``      molecular-mechanics relaxation, violations, protocols
``cluster``    Summit/Andes machine models, batch scheduler, cost model
``dataflow``   Dask-like scheduler/worker/client (threaded + simulated)
``iosim``      parallel-filesystem contention and replication model
``core``       the paper's pipeline: presets, stages, deployment plans
``analysis``   proteome summaries, structural annotation, novelty
"""

__version__ = "1.0.0"

from . import constants
from .cache import CacheStats, FeatureCache

__all__ = ["constants", "CacheStats", "FeatureCache", "__version__"]
