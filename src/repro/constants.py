"""Paper-quoted constants and physical parameters.

Every number that the paper states explicitly lives here, with a comment
pointing at the section it came from, so that benchmarks and tests refer
to a single source of truth instead of scattering magic numbers.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Structural violation definitions (paper §3.2.3, after Tress et al. CASP6)
# --------------------------------------------------------------------------

#: A "clash": Calpha-Calpha pairwise distance below this value (Angstrom).
CLASH_CUTOFF_ANGSTROM: float = 1.9

#: A "bump": Calpha-Calpha pairwise distance below this value (Angstrom).
BUMP_CUTOFF_ANGSTROM: float = 3.6

#: A model is "clashed" if it has more than this many clashes ...
MAX_CLASHES_FOR_CLEAN_MODEL: int = 4

#: ... or more than this many bumps.
MAX_BUMPS_FOR_CLEAN_MODEL: int = 50

# --------------------------------------------------------------------------
# Relaxation protocol (paper §3.2.3)
# --------------------------------------------------------------------------

#: Energy-difference convergence criterion for minimization (kcal/mol).
RELAX_ENERGY_TOLERANCE_KCAL: float = 2.39

#: Harmonic positional restraint force constant on heavy atoms
#: (kcal / mol / Angstrom^2).
RELAX_RESTRAINT_K: float = 10.0

# --------------------------------------------------------------------------
# Recycling control (paper §3.2.2, after ColabFold)
# --------------------------------------------------------------------------

#: Distogram-change early-stop threshold for the ``genome`` preset.
GENOME_RECYCLE_TOLERANCE: float = 0.5

#: Distogram-change early-stop threshold for the ``super`` preset.
SUPER_RECYCLE_TOLERANCE: float = 0.1

#: Upper bound on the number of recycles in the custom presets.
MAX_RECYCLES: int = 20

#: Floor the adaptive recycle cap never goes below for long sequences.
MIN_RECYCLES_LONG_SEQUENCE: int = 6

#: Length (AA) beyond which the recycle cap is reduced progressively.
RECYCLE_TAPER_START_LENGTH: int = 500

#: Fixed recycle count used by the official AlphaFold presets.
OFFICIAL_PRESET_RECYCLES: int = 3

#: Ensemble counts for the official presets.
REDUCED_DBS_ENSEMBLES: int = 1
CASP14_ENSEMBLES: int = 8

#: Sequences above this length are excluded from proteome runs (§3.2.2).
MAX_PROTEOME_SEQUENCE_LENGTH: int = 2500

# --------------------------------------------------------------------------
# Quality thresholds (paper §4.2, §4.3.1)
# --------------------------------------------------------------------------

#: pLDDT above this is considered a high-quality (local) model.
HIGH_QUALITY_PLDDT: float = 70.0

#: pLDDT above this is considered ultra-high confidence.
ULTRA_HIGH_PLDDT: float = 90.0

#: pTMS above this is considered a high-quality global model.
HIGH_QUALITY_PTMS: float = 0.60

# --------------------------------------------------------------------------
# Sequence-library storage (paper §3.2.1)
# --------------------------------------------------------------------------

#: Full sequence-library dataset size (UniProt+MGnify+BFD+PDB), bytes.
FULL_DATASET_BYTES: int = 2_100_000_000_000  # 2.1 TB

#: Reduced dataset (deduplicated BFD) size, bytes.
REDUCED_DATASET_BYTES: int = 420_000_000_000  # 420 GB

#: Number of replicated library copies placed on the parallel filesystem.
LIBRARY_REPLICA_COUNT: int = 24

#: Concurrent search jobs sharing one library replica.
JOBS_PER_LIBRARY_REPLICA: int = 4

# --------------------------------------------------------------------------
# Machines (paper §3)
# --------------------------------------------------------------------------

#: Approximate Summit node count.
SUMMIT_NODE_COUNT: int = 4600

#: GPUs per Summit node.
SUMMIT_GPUS_PER_NODE: int = 6

#: CPU cores per Summit node usable by jsrun (2x POWER9, 21 cores each
#: available to jobs).
SUMMIT_CORES_PER_NODE: int = 42

#: Main memory per standard Summit node, bytes (512 GB usable DDR4).
SUMMIT_NODE_MEMORY_BYTES: int = 512 * 2**30

#: Main memory of the Summit high-memory nodes (2 TB DDR4).
SUMMIT_HIGHMEM_NODE_MEMORY_BYTES: int = 2 * 2**40

#: GPU memory of a V100 on Summit (16 GB HBM2).
SUMMIT_GPU_MEMORY_BYTES: int = 16 * 2**30

#: Andes node count.
ANDES_NODE_COUNT: int = 704

#: Cores per Andes node (2x 16-core AMD EPYC 7302).
ANDES_CORES_PER_NODE: int = 32

#: Main memory per Andes node (256 GB).
ANDES_NODE_MEMORY_BYTES: int = 256 * 2**30

# --------------------------------------------------------------------------
# AlphaFold model ensemble (paper §3.3)
# --------------------------------------------------------------------------

#: Number of distinct DL models, each producing one structure per target.
NUM_AF2_MODELS: int = 5

#: Number of models that consume structural-template features (§3.2.1).
NUM_TEMPLATE_MODELS: int = 2

# --------------------------------------------------------------------------
# Species catalog (paper §4): number of final top-ranked predicted
# structures reported per species.
# --------------------------------------------------------------------------

SPECIES_STRUCTURE_COUNTS: dict[str, int] = {
    "P_mercurii": 3446,
    "R_rubrum": 3849,
    "D_vulgaris": 3205,
    "S_divinum": 25134,
}

#: Total predicted sequences across the four proteomes (paper abstract).
TOTAL_SEQUENCES: int = 35634  # note: paper counts 35,634 incl. benchmark runs

# --------------------------------------------------------------------------
# Benchmark workload shapes (paper §4.2, §4.1)
# --------------------------------------------------------------------------

#: Size of the D. vulgaris preset benchmark set.
BENCHMARK_SET_SIZE: int = 559

#: Length range and mean of the benchmark set.
BENCHMARK_MIN_LENGTH: int = 29
BENCHMARK_MAX_LENGTH: int = 1266
BENCHMARK_MEAN_LENGTH: int = 202

#: Mean length of the full D. vulgaris proteome (§4.1).
D_VULGARIS_MEAN_LENGTH: int = 328

#: CASP14-like evaluation set sizes (§4.4).
CASP_TARGETS_WITH_CRYSTALS: int = 19
CASP_TOTAL_MODELS: int = 160

# --------------------------------------------------------------------------
# Reported resource costs, used for cost-model calibration, not asserted
# exactly by any test (§4.1, §4.3.1, §4.5, Table 1).
# --------------------------------------------------------------------------

#: D. vulgaris: feature generation node-hours on Andes.
DVULGARIS_FEATURE_NODE_HOURS: float = 240.0

#: D. vulgaris: inference node-hours on Summit.
DVULGARIS_INFERENCE_NODE_HOURS: float = 400.0

#: S. divinum: feature generation node-hours on Andes.
SDIVINUM_FEATURE_NODE_HOURS: float = 2000.0

#: S. divinum: inference node-hours on Summit.
SDIVINUM_INFERENCE_NODE_HOURS: float = 3000.0

#: Table 1 wall times in minutes (reduced_db / genome / super presets on
#: 32 nodes; casp14 lower bound on 91 nodes).
TABLE1_WALLTIME_MINUTES: dict[str, float] = {
    "reduced_db": 44.0,
    "genome": 50.0,
    "super": 58.0,
    "casp14": 150.0,
}

#: Fraction of super-preset walltime attributed to overhead (§4.2).
SUPER_PRESET_OVERHEAD_FRACTION: float = 0.16

#: Genome-scale relaxation: 3205 structures in 22.89 minutes on 48 workers.
GENOME_RELAX_MINUTES: float = 22.89
GENOME_RELAX_WORKERS: int = 48

#: Largest Dask deployment reported: 1000 nodes, 6000 workers.
MAX_DEPLOYED_NODES: int = 1000
MAX_DEPLOYED_WORKERS: int = 6000
