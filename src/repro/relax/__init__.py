"""Geometry optimisation: force field, minimiser, violation census, protocols."""

from .forcefield import ForceField, ForceFieldParams
from .hydrogens import MMSystem, prepare_system
from .minimize import MinimizationResult, minimize_system
from .protocols import (
    AlphaFoldRelaxProtocol,
    RelaxOutcome,
    SinglePassRelaxProtocol,
    relax_structure,
)
from .violations import (
    ViolationReport,
    count_violations,
    is_clashed,
    violating_pairs,
)

__all__ = [
    "ForceField",
    "ForceFieldParams",
    "MMSystem",
    "prepare_system",
    "MinimizationResult",
    "minimize_system",
    "AlphaFoldRelaxProtocol",
    "RelaxOutcome",
    "SinglePassRelaxProtocol",
    "relax_structure",
    "ViolationReport",
    "count_violations",
    "is_clashed",
    "violating_pairs",
]
