"""Geometry optimisation: force field, minimiser, violation census, protocols."""

from .batch import BatchRelaxResult, relax_many
from .forcefield import ForceField, ForceFieldParams, ReferenceForceField
from .hydrogens import MMSystem, prepare_system
from .minimize import MinimizationResult, minimize_system
from .protocols import (
    AlphaFoldRelaxProtocol,
    PreparedRelax,
    RelaxOutcome,
    SinglePassRelaxProtocol,
    relax_structure,
)
from .violations import (
    ViolationReport,
    count_violations,
    is_clashed,
    violating_pairs,
)

__all__ = [
    "BatchRelaxResult",
    "relax_many",
    "ForceField",
    "ForceFieldParams",
    "ReferenceForceField",
    "MMSystem",
    "prepare_system",
    "MinimizationResult",
    "minimize_system",
    "AlphaFoldRelaxProtocol",
    "PreparedRelax",
    "RelaxOutcome",
    "SinglePassRelaxProtocol",
    "relax_structure",
    "ViolationReport",
    "count_violations",
    "is_clashed",
    "violating_pairs",
]
