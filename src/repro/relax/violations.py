"""Structural violation detection: clashes and bumps.

Paper §3.2.3, following the CASP assessment definitions (Tress et al.):

* clash — a Calpha-Calpha pairwise distance < 1.9 Angstrom,
* bump — a Calpha-Calpha pairwise distance < 3.6 Angstrom,
* a model is "clashed" if it has more than 4 clashes or more than 50
  bumps.

Pairs closer than 3 in sequence are excluded: bonded neighbours sit at
~3.8 Angstrom by definition and (i, i+2) distances are set by the
backbone angle, so only genuinely non-local contacts count — the same
convention the CASP assessors use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..constants import (
    BUMP_CUTOFF_ANGSTROM,
    CLASH_CUTOFF_ANGSTROM,
    MAX_BUMPS_FOR_CLEAN_MODEL,
    MAX_CLASHES_FOR_CLEAN_MODEL,
)
from ..structure.protein import Structure

__all__ = ["ViolationReport", "count_violations", "violating_pairs", "is_clashed"]

#: Minimum sequence separation for a pair to count as a contact.
MIN_SEQUENCE_SEPARATION: int = 3


@dataclass(frozen=True)
class ViolationReport:
    """Clash/bump census of one structure."""

    n_clashes: int
    n_bumps: int

    @property
    def clean(self) -> bool:
        """True when the model passes the CASP "not clashed" criterion."""
        return (
            self.n_clashes <= MAX_CLASHES_FOR_CLEAN_MODEL
            and self.n_bumps <= MAX_BUMPS_FOR_CLEAN_MODEL
        )


def violating_pairs(
    ca: np.ndarray,
    cutoff: float = BUMP_CUTOFF_ANGSTROM,
    min_separation: int = MIN_SEQUENCE_SEPARATION,
) -> np.ndarray:
    """(K, 2) residue index pairs closer than ``cutoff`` Angstrom.

    Uses a KD-tree so the census stays fast at proteome scale.
    """
    arr = np.asarray(ca, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError("ca must be (N, 3)")
    if arr.shape[0] < 2:
        return np.empty((0, 2), dtype=np.int64)
    pairs = cKDTree(arr).query_pairs(cutoff, output_type="ndarray")
    if pairs.size == 0:
        return pairs.reshape(0, 2).astype(np.int64)
    keep = (pairs[:, 1] - pairs[:, 0]) >= min_separation
    return pairs[keep].astype(np.int64)


def count_violations(structure: Structure | np.ndarray) -> ViolationReport:
    """Count clashes and bumps of a structure (or raw Calpha array).

    Note that every clash is also a bump (1.9 < 3.6); the counts are
    reported the way the paper quotes them, with clashes included in the
    bump total's distance census but tallied separately.
    """
    ca = structure.ca if isinstance(structure, Structure) else np.asarray(structure)
    pairs = violating_pairs(ca, cutoff=BUMP_CUTOFF_ANGSTROM)
    if pairs.shape[0] == 0:
        return ViolationReport(0, 0)
    dist = np.linalg.norm(ca[pairs[:, 0]] - ca[pairs[:, 1]], axis=1)
    n_clashes = int((dist < CLASH_CUTOFF_ANGSTROM).sum())
    n_bumps = int((dist < BUMP_CUTOFF_ANGSTROM).sum()) - n_clashes
    return ViolationReport(n_clashes=n_clashes, n_bumps=n_bumps)


def is_clashed(structure: Structure | np.ndarray) -> bool:
    """CASP criterion: more than 4 clashes or more than 50 bumps."""
    return not count_violations(structure).clean
