"""Restrained energy minimisation.

One "energy minimisation calculation" in the paper's sense: L-BFGS on
the force-field energy with an unlimited step budget, run until the
energy difference between successive rounds falls below the paper's
convergence criterion of 2.39 kcal/mol.  The non-bonded neighbour list
is managed as a Verlet list between rounds: the KD-tree rebuild is
skipped while no particle has moved more than half the 0.5 A skin since
the last build (restraints keep motion tiny, so most rounds reuse the
list), and each round is smooth for the optimizer either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from ..constants import RELAX_ENERGY_TOLERANCE_KCAL
from ..telemetry.metrics import get_metrics
from .forcefield import ForceField, ForceFieldParams
from .hydrogens import MMSystem

__all__ = ["MinimizationResult", "minimize_system"]

#: L-BFGS-B settings shared by both drivers.  ``ftol``/``gtol`` are the
#: values ``scipy.optimize.minimize`` was called with historically;
#: ``factr`` is scipy's own ftol -> factr conversion.
_LBFGS_M = 10
_LBFGS_FTOL = 1e-10
_LBFGS_GTOL = 1e-8
_LBFGS_FACTR = _LBFGS_FTOL / np.finfo(float).eps
_LBFGS_MAXLS = 20
_LBFGS_MAXFUN = 15_000


def _scipy_lbfgs_round(fun, x0, maxiter):
    res = scipy_minimize(
        fun,
        x0,
        jac=True,
        method="L-BFGS-B",
        options={
            "maxiter": maxiter,
            "ftol": _LBFGS_FTOL,
            "gtol": _LBFGS_GTOL,
        },
    )
    return res.x, float(res.fun), int(res.nit)


def _raw_lbfgs_round(fun, x0, maxiter):
    """Drive scipy's Fortran ``setulb`` reverse-communication loop
    directly, skipping the ``ScalarFunction`` wrapper (finite checks,
    memoisation, defensive copies) that costs as much per evaluation as
    the force-field kernel itself on mid-sized systems.  Same routine,
    same parameters, unbounded problem: the iterates are bit-identical
    to :func:`scipy.optimize.minimize`'s."""
    n = x0.size
    m = _LBFGS_M
    x = np.array(x0, dtype=np.float64)
    bound = np.zeros(n)
    nbd = np.zeros(n, dtype=np.int32)
    f = np.array(0.0)
    g = np.zeros(n)
    wa = np.zeros(2 * m * n + 5 * n + 11 * m * m + 8 * m)
    iwa = np.zeros(3 * n, dtype=np.int32)
    task = np.zeros(2, dtype=np.int32)
    ln_task = np.zeros(2, dtype=np.int32)
    lsave = np.zeros(4, dtype=np.int32)
    isave = np.zeros(44, dtype=np.int32)
    dsave = np.zeros(29)
    nit = 0
    nfev = 0
    while True:
        _setulb(
            m, x, bound, bound, nbd, f, g, _LBFGS_FACTR, _LBFGS_GTOL,
            wa, iwa, task, lsave, isave, dsave, _LBFGS_MAXLS, ln_task,
        )
        if task[0] == 3:  # FG: evaluate f and g at the current x
            f, g = fun(x)
            nfev += 1
        elif task[0] == 1:  # NEW_X: one iteration done
            nit += 1
            if nit >= maxiter or nfev > _LBFGS_MAXFUN:
                task[0] = 5  # STOP
                task[1] = 504
        else:
            break
    return x, float(f), nit


def _probe_raw_lbfgsb():
    """Use the raw driver only if this scipy exposes the expected
    ``setulb`` API *and* it reproduces ``scipy.optimize.minimize`` on a
    check problem; otherwise fall back to the public interface."""
    global _setulb
    try:
        from scipy.optimize import _lbfgsb

        _setulb = _lbfgsb.setulb
    except (ImportError, AttributeError):  # pragma: no cover
        return _scipy_lbfgs_round

    def quad(v):
        d = v - np.array([1.0, -2.0, 0.5, 3.0])
        return float(d @ d), 2.0 * d

    x0 = np.zeros(4)
    try:
        x_raw, f_raw, _ = _raw_lbfgs_round(quad, x0, 50)
        x_ref, f_ref, _ = _scipy_lbfgs_round(quad, x0, 50)
    except Exception:  # pragma: no cover - any API drift
        return _scipy_lbfgs_round
    if np.array_equal(x_raw, x_ref) and f_raw == f_ref:
        return _raw_lbfgs_round
    return _scipy_lbfgs_round  # pragma: no cover


_setulb = None
_lbfgs_round = _probe_raw_lbfgsb()


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one energy minimisation calculation."""

    system: MMSystem
    initial_energy: float
    final_energy: float
    n_steps: int  # optimizer iterations across all rounds
    n_rounds: int  # outer rounds (list rebuild or reuse + L-BFGS pass)
    converged: bool
    n_neighbor_rebuilds: int = 0  # KD-tree builds (incl. construction)
    n_neighbor_reuses: int = 0  # rounds that reused the Verlet list

    @property
    def energy_drop(self) -> float:
        return self.initial_energy - self.final_energy


def minimize_system(
    system: MMSystem,
    params: ForceFieldParams | None = None,
    energy_tolerance: float = RELAX_ENERGY_TOLERANCE_KCAL,
    max_rounds: int = 30,
    max_steps_per_round: int = 400,
) -> MinimizationResult:
    """Minimise a prepared system to the paper's convergence criterion.

    Rounds of L-BFGS with a frozen neighbour list run until the energy
    improvement of a full round drops below ``energy_tolerance``
    (2.39 kcal/mol), mirroring the unlimited-steps single-minimisation
    protocol of §3.2.3.  The initial energy is taken from the first
    round's first L-BFGS evaluation (which is at the start point), so no
    separate full evaluation is spent on it.
    """
    ff = ForceField(system, params)
    x = system.particles.copy()
    shape = x.shape
    initial_energy: float | None = None
    prev_energy = np.inf
    total_steps = 0
    converged = False
    n_rounds = 0
    for _ in range(max_rounds):
        n_rounds += 1
        ff.ensure_neighbors(x)

        def fun(flat: np.ndarray) -> tuple[float, np.ndarray]:
            nonlocal initial_energy
            e, g = ff.energy_and_gradient(flat.reshape(shape))
            if initial_energy is None:
                # L-BFGS-B evaluates the start point first; that is
                # exactly the seed's separate "initial energy" call.
                initial_energy = e
            return e, g.ravel()

        x_flat, energy, nit = _lbfgs_round(fun, x.ravel(), max_steps_per_round)
        x = x_flat.reshape(shape)
        total_steps += nit
        if n_rounds == 1:
            # Round 1 converges against the start-point energy, exactly
            # as when it was computed with a dedicated call up front.
            assert initial_energy is not None
            prev_energy = initial_energy
        if prev_energy - energy < energy_tolerance:
            converged = True
            prev_energy = min(prev_energy, energy)
            break
        prev_energy = energy
    assert initial_energy is not None
    # One registry update per minimisation (not per round): the Verlet
    # economics and step totals the RelaxStageResult thin views and
    # metrics.json report — MinimizationResult keeps its own fields.
    metrics = get_metrics()
    metrics.counter("relax.verlet.rebuilds").inc(ff.n_rebuilds)
    metrics.counter("relax.verlet.reuses").inc(ff.n_reuses)
    metrics.counter("relax.minimize.count").inc()
    metrics.counter("relax.minimize.steps").inc(total_steps)
    return MinimizationResult(
        system=system.with_particles(x),
        initial_energy=float(initial_energy),
        final_energy=float(prev_energy),
        n_steps=total_steps,
        n_rounds=n_rounds,
        converged=converged,
        n_neighbor_rebuilds=ff.n_rebuilds,
        n_neighbor_reuses=ff.n_reuses,
    )
