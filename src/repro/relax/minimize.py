"""Restrained energy minimisation.

One "energy minimisation calculation" in the paper's sense: L-BFGS on
the force-field energy with an unlimited step budget, run until the
energy difference between successive rounds falls below the paper's
convergence criterion of 2.39 kcal/mol.  The non-bonded neighbour list
is rebuilt between rounds (a standard neighbour-list scheme), so each
round is smooth for the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize as scipy_minimize

from ..constants import RELAX_ENERGY_TOLERANCE_KCAL
from .forcefield import ForceField, ForceFieldParams
from .hydrogens import MMSystem

__all__ = ["MinimizationResult", "minimize_system"]


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of one energy minimisation calculation."""

    system: MMSystem
    initial_energy: float
    final_energy: float
    n_steps: int  # optimizer iterations across all rounds
    n_rounds: int  # neighbour-list rebuild rounds
    converged: bool

    @property
    def energy_drop(self) -> float:
        return self.initial_energy - self.final_energy


def minimize_system(
    system: MMSystem,
    params: ForceFieldParams | None = None,
    energy_tolerance: float = RELAX_ENERGY_TOLERANCE_KCAL,
    max_rounds: int = 30,
    max_steps_per_round: int = 400,
) -> MinimizationResult:
    """Minimise a prepared system to the paper's convergence criterion.

    Rounds of L-BFGS with a frozen neighbour list run until the energy
    improvement of a full round drops below ``energy_tolerance``
    (2.39 kcal/mol), mirroring the unlimited-steps single-minimisation
    protocol of §3.2.3.
    """
    ff = ForceField(system, params)
    x = system.particles.copy()
    shape = x.shape
    initial_energy = ff.energy(x)
    prev_energy = initial_energy
    total_steps = 0
    converged = False
    n_rounds = 0
    for _ in range(max_rounds):
        n_rounds += 1
        ff.rebuild_neighbors(x)

        def fun(flat: np.ndarray) -> tuple[float, np.ndarray]:
            e, g = ff.energy_and_gradient(flat.reshape(shape))
            return e, g.ravel()

        res = scipy_minimize(
            fun,
            x.ravel(),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": max_steps_per_round, "ftol": 1e-10, "gtol": 1e-8},
        )
        x = res.x.reshape(shape)
        total_steps += int(res.nit)
        energy = float(res.fun)
        if prev_energy - energy < energy_tolerance:
            converged = True
            prev_energy = min(prev_energy, energy)
            break
        prev_energy = energy
    return MinimizationResult(
        system=system.with_particles(x),
        initial_energy=float(initial_energy),
        final_energy=float(prev_energy),
        n_steps=total_steps,
        n_rounds=n_rounds,
        converged=converged,
    )
