"""Molecular-mechanics system preparation ("add hydrogens").

The paper's relaxation protocol (§3.2.3) assigns force-field parameters
and adds hydrogen atoms before minimising.  At the reproduction's
Calpha+CB resolution the *interacting particles* are the Calpha trace
and one pseudo-side-chain center per residue; hydrogens and the full
heavy-atom census are carried as bookkeeping because they size the
system for the cost model (Fig. 4 plots runtime against heavy atoms).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sequences.alphabet import heavy_atom_count, hydrogen_count
from ..structure.protein import Structure, pseudo_cb

__all__ = ["MMSystem", "prepare_system"]


@dataclass
class MMSystem:
    """A prepared minimisation system.

    ``particles`` stacks Calpha coordinates (first N rows) and pseudo-CB
    coordinates (next N rows).  ``reference`` holds the restraint anchor
    positions — the unrelaxed input coordinates, per AlphaFold's
    protocol of restraining all non-hydrogen atoms to their predicted
    positions.
    """

    structure: Structure
    particles: np.ndarray = field(repr=False)
    reference: np.ndarray = field(repr=False)
    n_residues: int
    n_heavy_atoms: int
    n_hydrogens: int

    @property
    def ca(self) -> np.ndarray:
        return self.particles[: self.n_residues]

    @property
    def cb(self) -> np.ndarray:
        return self.particles[self.n_residues :]

    def with_particles(self, particles: np.ndarray) -> "MMSystem":
        return MMSystem(
            structure=self.structure,
            particles=np.asarray(particles, dtype=np.float64),
            reference=self.reference,
            n_residues=self.n_residues,
            n_heavy_atoms=self.n_heavy_atoms,
            n_hydrogens=self.n_hydrogens,
        )

    def to_structure(self, model_name: str | None = None) -> Structure:
        """Extract the relaxed structure (Calpha trace + original pLDDT)."""
        return self.structure.with_coordinates(
            self.ca.copy(),
            model_name=model_name
            if model_name is not None
            else self.structure.model_name,
        )


def prepare_system(
    structure: Structure,
    cb_noise_sigma: float = 0.25,
    rng: np.random.Generator | None = None,
) -> MMSystem:
    """Assign particles, add hydrogens, and anchor restraints.

    ``cb_noise_sigma`` models the predictor's side-chain placement error
    on top of the backbone: the minimiser's geometry terms then pull CB
    back toward ideal placement, which is the mechanism behind the small
    SPECS-score gains after relaxation (paper Fig. 3, right panel).
    """
    ca = np.asarray(structure.ca, dtype=np.float64)
    cb = pseudo_cb(ca)
    if cb_noise_sigma > 0:
        noise_rng = rng if rng is not None else np.random.default_rng(0)
        cb = cb + noise_rng.normal(0.0, cb_noise_sigma, size=cb.shape)
    particles = np.vstack([ca, cb])
    return MMSystem(
        structure=structure,
        particles=particles,
        reference=particles.copy(),
        n_residues=len(structure),
        n_heavy_atoms=heavy_atom_count(structure.encoded),
        n_hydrogens=hydrogen_count(structure.encoded),
    )
