"""Relaxation protocols: the original AlphaFold loop vs our single pass.

The paper's geometry-optimisation contribution (§3.2.3) is twofold:

1. **Protocol simplification** — AlphaFold minimises, then *checks for
   violations and re-minimises* while any are found.  Because the force
   field already destabilises non-physical contacts, the extra passes
   rarely change anything; our protocol runs exactly one minimisation.
2. **Device move** — AlphaFold runs OpenMM on CPU; ours runs the same
   minimisation on the GPU (one core + one GPU per task, six tasks per
   Summit node).

Both protocols share the identical force field and convergence
criterion, so relaxed quality is equivalent (Fig. 3) while cost differs
(Fig. 4).  Device runtimes are *modelled* (see
``repro.cluster.costmodel``); the protocol records everything the model
needs (system size, passes, steps).
"""

from __future__ import annotations

from dataclasses import dataclass


from ..sequences.generator import rng_for
from ..structure.protein import Structure
from .forcefield import ForceFieldParams
from .hydrogens import MMSystem, prepare_system

from .minimize import MinimizationResult, minimize_system
from .violations import ViolationReport, count_violations

__all__ = [
    "RelaxOutcome",
    "PreparedRelax",
    "SinglePassRelaxProtocol",
    "AlphaFoldRelaxProtocol",
    "relax_structure",
]


@dataclass(frozen=True)
class RelaxOutcome:
    """Everything a relaxation run produced and what it cost.

    ``device`` and the size/step counters feed the runtime cost model;
    quality metrics are computed by the caller against ground truth.
    """

    structure: Structure
    violations_before: ViolationReport
    violations_after: ViolationReport
    n_minimizations: int
    total_steps: int
    n_heavy_atoms: int
    n_hydrogens: int
    device: str
    final_energy: float
    converged: bool


@dataclass(frozen=True)
class PreparedRelax:
    """A structure made ready to minimise: system built, census taken.

    Splitting preparation from minimisation lets
    :func:`repro.relax.batch.relax_many` prepare every system once up
    front and push only the minimisations through the executor.
    """

    structure: Structure
    system: MMSystem
    violations_before: ViolationReport


class SinglePassRelaxProtocol:
    """The paper's optimised protocol: one minimisation, no violation loop.

    Parameters
    ----------
    device:
        ``"gpu"`` (the paper's Summit deployment) or ``"cpu"`` (the
        Andes variant benchmarked in Fig. 4).
    """

    name = "optimized_single_pass"

    def __init__(
        self,
        device: str = "gpu",
        params: ForceFieldParams | None = None,
        cb_noise_sigma: float = 0.25,
    ) -> None:
        if device not in ("gpu", "cpu"):
            raise ValueError("device must be 'gpu' or 'cpu'")
        self.device = device
        self.params = params
        self.cb_noise_sigma = cb_noise_sigma

    def prepare(self, structure: Structure) -> PreparedRelax:
        """Take the violation census and build the MM system (CB noise
        drawn from the structure-keyed stream, so preparation order
        never matters)."""
        return PreparedRelax(
            structure=structure,
            system=prepare_system(
                structure,
                cb_noise_sigma=self.cb_noise_sigma,
                rng=rng_for(
                    0, "relax-cb", structure.record_id, structure.model_name
                ),
            ),
            violations_before=count_violations(structure),
        )

    def run_prepared(self, prepared: PreparedRelax) -> RelaxOutcome:
        """Minimise an already-prepared system."""
        system = prepared.system
        result = minimize_system(system, params=self.params)
        relaxed = result.system.to_structure()
        return RelaxOutcome(
            structure=relaxed,
            violations_before=prepared.violations_before,
            violations_after=count_violations(relaxed),
            n_minimizations=1,
            total_steps=result.n_steps,
            n_heavy_atoms=system.n_heavy_atoms,
            n_hydrogens=system.n_hydrogens,
            device=self.device,
            final_energy=result.final_energy,
            converged=result.converged,
        )

    def run(self, structure: Structure) -> RelaxOutcome:
        return self.run_prepared(self.prepare(structure))


class AlphaFoldRelaxProtocol:
    """The original AlphaFold protocol: minimise-check-repeat on CPU.

    After each minimisation the protocol quantifies violations; if any
    remain it perturbs slightly and minimises again, up to
    ``max_attempts``.  The paper's observation — reproduced here — is
    that the repeats rarely improve anything, because the first
    minimisation already took the system to the force field's local
    minimum; they only add runtime.
    """

    name = "alphafold_original"

    def __init__(
        self,
        params: ForceFieldParams | None = None,
        max_attempts: int = 8,
        cb_noise_sigma: float = 0.25,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.device = "cpu"
        self.params = params
        self.max_attempts = max_attempts
        self.cb_noise_sigma = cb_noise_sigma

    def run(self, structure: Structure) -> RelaxOutcome:
        before = count_violations(structure)
        rng = rng_for(0, "relax-af2", structure.record_id, structure.model_name)
        system = prepare_system(
            structure,
            cb_noise_sigma=self.cb_noise_sigma,
            rng=rng_for(0, "relax-cb", structure.record_id, structure.model_name),
        )
        total_steps = 0
        n_minimizations = 0
        result: MinimizationResult | None = None
        prev_violations: int | None = None
        for _attempt in range(self.max_attempts):
            result = minimize_system(system, params=self.params)
            n_minimizations += 1
            total_steps += result.n_steps
            report = count_violations(result.system.ca)
            remaining = report.n_clashes + report.n_bumps
            if remaining == 0:
                system = result.system
                break
            if prev_violations is not None and remaining >= prev_violations:
                # No progress: the restraints have won; further passes
                # cannot help.  (Typical models stop here after 2
                # passes; large violation-riddled models — the T1080
                # story — keep making marginal progress and burn the
                # full attempt budget.)
                system = result.system
                break
            prev_violations = remaining
            # Violations remain but shrinking: perturb and retry, as
            # the original pipeline does.  The perturbation is tiny —
            # the restraints would veto anything larger.
            perturbed = result.system.particles + rng.normal(
                0.0, 0.05, size=result.system.particles.shape
            )
            system = result.system.with_particles(perturbed)
        assert result is not None
        relaxed = result.system.to_structure()
        return RelaxOutcome(
            structure=relaxed,
            violations_before=before,
            violations_after=count_violations(relaxed),
            n_minimizations=n_minimizations,
            total_steps=total_steps,
            n_heavy_atoms=result.system.n_heavy_atoms,
            n_hydrogens=result.system.n_hydrogens,
            device=self.device,
            final_energy=result.final_energy,
            converged=result.converged,
        )


def relax_structure(
    structure: Structure, method: str = "gpu", **kwargs
) -> RelaxOutcome:
    """Convenience dispatcher: ``"gpu"``/``"cpu"`` single pass or ``"af2"``."""
    if method in ("gpu", "cpu"):
        return SinglePassRelaxProtocol(device=method, **kwargs).run(structure)
    if method == "af2":
        return AlphaFoldRelaxProtocol(**kwargs).run(structure)
    raise ValueError(f"unknown relaxation method {method!r}")
