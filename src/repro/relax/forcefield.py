"""Coarse molecular-mechanics force field for restrained relaxation.

Mirrors the *structure* of the AlphaFold relaxation Hamiltonian at
Calpha+CB resolution (energies in nominal kcal/mol, distances in
Angstrom):

* **bonds** — springs holding consecutive Calpha at 3.8 A and each CB at
  1.53 A from its Calpha;
* **geometry** — a spring pulling each CB toward the ideal virtual-CB
  position implied by the local backbone frame (the stand-in for the
  full bonded/torsional terms that idealise side-chain geometry);
* **excluded volume** — a quadratic wall that strongly destabilises
  non-physical contacts, "beyond those defined by Calpha-Calpha
  distances" as the paper puts it: this is the term that removes
  clashes and bumps;
* **restraints** — harmonic positional restraints on all particles with
  the paper's force constant k = 10 kcal/mol/A^2, anchoring the model to
  its predicted coordinates so only small perturbations occur.

Two evaluators share these semantics:

* :class:`ForceField` — the production kernel.  All terms are folded
  into one fused pass over a preallocated difference matrix (dense
  anchor rows + bond rows + neighbour-pair rows), squared norms come
  from one elementwise square and a single BLAS matrix-vector product,
  and the pair-force scatter is a single weighted ``np.bincount`` over
  ravelled ``3*index+axis`` keys instead of ``np.add.at``.  The
  restraint and CB-geometry springs acting on the same CB particle are
  combined into one anchored quadratic (identical by completing the
  square).  L-BFGS calls this hundreds of times per round, so per-call
  allocations are limited to the returned gradient copy.
* :class:`ReferenceForceField` — the original straight-line
  implementation, kept verbatim as the numerical reference.  A
  hypothesis property pins :class:`ForceField` to it at
  ``rtol <= 1e-9``; the benchmark suite measures speedup against it.

The non-bonded pair list is built with a KD-tree and managed as a
Verlet list: pairs are collected out to ``radius + skin`` (0.5 A skin)
and the list remains valid — guaranteed to contain every pair inside
the repulsion radius — until some particle has moved more than half the
skin since the build.  :meth:`ForceField.ensure_neighbors` performs the
displacement check and skips the KD-tree rebuild while the list is
still valid (restraints keep motion tiny, so most minimisation rounds
reuse the list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..constants import RELAX_RESTRAINT_K
from ..structure.protein import CA_CA_BOND_LENGTH, pseudo_cb
from .hydrogens import MMSystem

__all__ = [
    "ForceFieldParams",
    "ForceField",
    "ReferenceForceField",
    "NEIGHBOR_SKIN",
]

#: Distance below which non-bonded Calpha pairs are penalised.  Sits
#: just above the bump cutoff (3.6) so minimisation pushes bumps out —
#: but the k=10 restraints win for mild bumps, which is why relaxation
#: reduces rather than eliminates them (paper §4.4).
_CA_REPULSION_RADIUS: float = 3.8

#: Repulsion radius for pairs involving a CB particle.
_CB_REPULSION_RADIUS: float = 3.0

#: Ideal Calpha-CB bond length.
_CB_BOND_LENGTH: float = 1.53

#: Verlet-list skin (A).  Pairs are harvested out to ``radius + skin``;
#: while no particle has moved more than ``skin / 2`` since the build,
#: two particles can close on each other by at most ``skin``, so every
#: pair now inside its repulsion radius was inside ``radius + skin`` at
#: build time and is guaranteed to be on the list.
NEIGHBOR_SKIN: float = 0.5

#: Numerical floor applied to pair distances before division.
_DIST_FLOOR: float = 1e-9


@dataclass(frozen=True)
class ForceFieldParams:
    """Force constants (kcal/mol/A^2) of the relaxation Hamiltonian."""

    k_bond: float = 120.0
    k_cb_bond: float = 60.0
    k_cb_geometry: float = 25.0
    k_repulsion: float = 40.0
    k_restraint: float = RELAX_RESTRAINT_K


def _candidate_pairs(
    particles: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """KD-tree pair harvest with chain/bond exclusions applied.

    Returns ``(pairs, radii)`` where ``pairs`` is (P, 2) int64 and
    ``radii`` the per-pair repulsion radius.  Shared by both force-field
    implementations so they agree on neighbour semantics exactly.
    """
    tree = cKDTree(particles)
    pairs = tree.query_pairs(
        _CA_REPULSION_RADIUS + NEIGHBOR_SKIN, output_type="ndarray"
    )
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0)
    i, j = pairs[:, 0], pairs[:, 1]
    both_ca = (i < n) & (j < n)
    # Exclusions: bonded/near neighbours along the chain, and each
    # residue's own CA-CB pair (that is a bond, not a contact).
    res_i = np.where(i < n, i, i - n)
    res_j = np.where(j < n, j, j - n)
    sep = np.abs(res_j - res_i)
    keep = np.where(both_ca, sep >= 3, sep >= 2)
    pairs = pairs[keep]
    radii = np.where(both_ca[keep], _CA_REPULSION_RADIUS, _CB_REPULSION_RADIUS)
    return pairs.astype(np.int64), radii


class ForceField:
    """Fused-kernel energy/gradient evaluator bound to one :class:`MMSystem`.

    The neighbour list is built at construction (or via
    :meth:`rebuild_neighbors` / :meth:`ensure_neighbors`) and reused
    across evaluations within one minimisation round.  The evaluation
    itself runs over preallocated buffers laid out at list-build time:

    * rows ``[0, 2n)`` of the difference matrix hold each particle's
      offset from its combined restraint/geometry anchor,
    * rows ``[2n, 2n+B)`` hold bond vectors (CA-CA then CA-CB),
    * the remaining ``P`` rows hold neighbour-pair vectors gathered with
      one ``np.take`` on precomputed flat indices.

    One squared-elementwise pass plus a BLAS ``dot`` against ``ones(3)``
    produces every squared length; the dense-row energy falls out of a
    single ``dot`` between the gradient block and the difference block.
    Pair forces scatter through one weighted ``np.bincount``.

    ``n_rebuilds`` / ``n_reuses`` count Verlet-list builds and
    displacement-check hits for benchmark reporting.
    """

    def __init__(
        self, system: MMSystem, params: ForceFieldParams | None = None
    ) -> None:
        self.system = system
        self.params = params or ForceFieldParams()
        self.n = system.n_residues
        self._pairs: np.ndarray | None = None
        self._radii: np.ndarray | None = None
        self.n_rebuilds = 0
        self.n_reuses = 0
        self.rebuild_neighbors(system.particles)

    # -- Neighbour-list management ------------------------------------------
    def rebuild_neighbors(self, particles: np.ndarray) -> None:
        """Rebuild the non-bonded pair list at the given coordinates.

        Also freezes the CB idealisation targets at the current backbone
        frame, so the energy surface within one round is exactly
        quadratic in CB and the analytic gradient is exact (the frame is
        refreshed at every rebuild, like the neighbour list).

        Pairs whose build-time separation exceeds ``radius + skin`` are
        dropped: while the list is valid (no particle moved more than
        half the skin) they cannot come inside the repulsion radius, so
        they contribute exact zeros and only cost time.
        """
        x = np.asarray(particles, dtype=np.float64)
        n = self.n
        pairs, radii = _candidate_pairs(x, n)
        if pairs.shape[0]:
            d = np.linalg.norm(x[pairs[:, 1]] - x[pairs[:, 0]], axis=1)
            keep = d < radii + NEIGHBOR_SKIN
            pairs, radii = pairs[keep], radii[keep]
        self._pairs = pairs
        self._radii = radii
        self._build_positions = x.copy()
        self.n_rebuilds += 1
        self._layout_buffers()
        self._refresh_cb_frame(x)

    def ensure_neighbors(self, particles: np.ndarray) -> bool:
        """Rebuild the pair list only if the Verlet skin has been spent.

        Returns ``True`` if a rebuild happened.  Either way the CB
        idealisation frame is refreshed at the given coordinates, so a
        reused list changes nothing about per-round energy semantics
        except skipping the KD-tree pass.
        """
        x = np.asarray(particles, dtype=np.float64)
        moved = x - self._build_positions
        max_sq = float(np.einsum("ij,ij->i", moved, moved).max())
        if max_sq >= (NEIGHBOR_SKIN / 2.0) ** 2:
            self.rebuild_neighbors(x)
            return True
        self.n_reuses += 1
        self._refresh_cb_frame(x)
        return False

    # -- Kernel layout --------------------------------------------------------
    def _layout_buffers(self) -> None:
        """Allocate the fused-kernel workspace for the current pair list."""
        n = self.n
        p = self.params
        assert self._pairs is not None and self._radii is not None
        n2 = 2 * n
        n_bonds = n2 - 1  # (n-1) CA-CA rows then n CA-CB rows
        n_pairs = self._pairs.shape[0]
        m = n_bonds + n_pairs
        self._n2, self._n_bonds, self._n_pairs = n2, n_bonds, n_pairs

        # Per-interaction spring targets and doubled force constants.
        t = np.empty(m)
        t[: n - 1] = CA_CA_BOND_LENGTH
        t[n - 1 : n_bonds] = _CB_BOND_LENGTH
        t[n_bonds:] = self._radii
        k2 = np.empty(m)
        k2[: n - 1] = 2.0 * p.k_bond
        k2[n - 1 : n_bonds] = 2.0 * p.k_cb_bond
        k2[n_bonds:] = 2.0 * p.k_repulsion
        self._targets, self._k2 = t, k2

        # Dense anchor rows: every particle is restrained to the
        # reference, and CB particles additionally to the ideal-CB frame.
        # Completing the square merges both springs into one anchored
        # quadratic per particle; _refresh_cb_frame fills the anchors.
        kr, kg = p.k_restraint, p.k_cb_geometry
        kr_row = np.full(n2, kr)
        kr_row[n:] = kr + kg
        self._k2_dense = np.repeat((2.0 * kr_row)[:, None], 3, axis=1)
        self._anchors = np.empty((n2, 3))
        self._anchors[:n] = self.system.reference[:n]
        self._e_const = 0.0

        # Flat gather/scatter indices for pair rows: +f at j, -f at i.
        axes = np.arange(3)
        j3 = ((3 * self._pairs[:, 1])[:, None] + axes).ravel()
        i3 = ((3 * self._pairs[:, 0])[:, None] + axes).ravel()
        self._gather_idx = np.concatenate([j3, i3])

        # Workspace: one difference matrix shared by every term.
        rows = n2 + m
        self._diff = np.empty((rows, 3))
        self._d_dense = self._diff[:n2]
        self._d_dense_flat = self._d_dense.reshape(-1)
        self._d_ca = self._diff[n2 : n2 + n - 1]
        self._d_cb = self._diff[n2 + n - 1 : n2 + n_bonds]
        self._d_pair = self._diff[n2 + n_bonds :]
        self._d_inter = self._diff[n2:]
        self._f_ca = self._d_inter[: n - 1]
        self._f_cb = self._d_inter[n - 1 : n_bonds]
        self._f_pair = self._d_inter[n_bonds:]
        self._sq = np.empty((m, 3))
        self._lengths = np.empty(m)
        self._dev = np.empty(m)
        self._dev_pair = self._dev[n_bonds:]
        self._kdev = np.empty(m)
        self._kdev_col = self._kdev[:, None]
        self._grad = np.empty((n2, 3))
        self._grad_flat = self._grad.reshape(-1)
        self._gathered = np.empty((2 * n_pairs, 3))
        self._gathered_flat = self._gathered.reshape(-1)
        self._gathered_j = self._gathered[:n_pairs]
        self._gathered_i = self._gathered[n_pairs:]
        self._scatter_w = np.empty((2 * n_pairs, 3))
        self._scatter_w_flat = self._scatter_w.reshape(-1)
        self._w_plus = self._scatter_w[:n_pairs]
        self._w_minus = self._scatter_w[n_pairs:]
        self._ones3 = np.ones(3)

    def _refresh_cb_frame(self, particles: np.ndarray) -> None:
        """Re-freeze the virtual-CB targets at the current backbone frame."""
        n = self.n
        p = self.params
        self._cb_ideal = pseudo_cb(np.asarray(particles)[:n])
        kr, kg = p.k_restraint, p.k_cb_geometry
        ref_cb = self.system.reference[n:]
        self._anchors[n:] = (kr * ref_cb + kg * self._cb_ideal) / (kr + kg)
        d0 = ref_cb - self._cb_ideal
        self._e_const = (
            kr * kg / (kr + kg) * float(np.einsum("ij,ij->", d0, d0))
        )

    # -- Energy terms -------------------------------------------------------
    def energy_and_gradient(
        self, particles: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Total energy (kcal/mol) and gradient at the given coordinates."""
        x = np.asarray(particles, dtype=np.float64)
        if x.shape != self.system.particles.shape:
            raise ValueError("particle array shape mismatch")
        n, n2, n_pairs = self.n, self._n2, self._n_pairs
        grad = self._grad
        grad_flat = self._grad_flat

        # Difference matrix: anchor rows, bond rows, gathered pair rows.
        np.subtract(x, self._anchors, out=self._d_dense)
        np.subtract(x[1:n], x[: n - 1], out=self._d_ca)
        np.subtract(x[n:], x[:n], out=self._d_cb)
        if n_pairs:
            np.take(x.reshape(-1), self._gather_idx, out=self._gathered_flat)
            np.subtract(self._gathered_j, self._gathered_i, out=self._d_pair)

        # Anchored quadratics (restraints + CB geometry): the gradient
        # block is 2k(x - c), so the energy is half its dot with (x - c).
        np.multiply(self._k2_dense, self._d_dense, out=grad)
        energy = (
            0.5 * float(np.dot(grad_flat, self._d_dense_flat)) + self._e_const
        )

        # Squared lengths of every bond/pair row in one fused pass.
        np.multiply(self._d_inter, self._d_inter, out=self._sq)
        np.dot(self._sq, self._ones3, out=self._lengths)
        s = self._lengths
        np.sqrt(s, out=s)
        np.maximum(s, _DIST_FLOOR, out=s)
        # Deviation from the spring target; pair rows clamp to overlap
        # only (non-overlapping pairs contribute exact zeros, matching
        # the reference's active-pair masking bit for bit).
        np.subtract(s, self._targets, out=self._dev)
        if n_pairs:
            np.minimum(self._dev_pair, 0.0, out=self._dev_pair)
        np.multiply(self._k2, self._dev, out=self._kdev)
        energy += 0.5 * float(np.dot(self._kdev, self._dev))

        # Forces: scale each row to k2 * dev / length * diff in place.
        np.divide(self._kdev, s, out=self._kdev)
        np.multiply(self._d_inter, self._kdev_col, out=self._d_inter)
        grad[1:n] += self._f_ca
        grad[: n - 1] -= self._f_ca
        grad[n:] += self._f_cb
        grad[:n] -= self._f_cb
        if n_pairs:
            self._w_plus[...] = self._f_pair
            np.negative(self._f_pair, out=self._w_minus)
            grad_flat += np.bincount(
                self._gather_idx,
                weights=self._scatter_w_flat,
                minlength=3 * n2,
            )
        # The workspace is reused next call; hand back a private copy.
        return energy, grad.copy()

    def energy(self, particles: np.ndarray) -> float:
        return self.energy_and_gradient(particles)[0]


class ReferenceForceField:
    """The original straight-line evaluator, kept as numerical reference.

    Allocates per call and scatters with ``np.add.at``; term-by-term
    readable.  :class:`ForceField` is property-tested against this at
    ``rtol <= 1e-9`` and benchmarked against it in
    ``bench_relax_throughput``.  Both share :func:`_candidate_pairs`, so
    a fresh build of each sees the same neighbour semantics (the fast
    list additionally prunes beyond ``radius + skin``, which changes
    nothing while the Verlet contract holds).
    """

    def __init__(
        self, system: MMSystem, params: ForceFieldParams | None = None
    ) -> None:
        self.system = system
        self.params = params or ForceFieldParams()
        self.n = system.n_residues
        self._pairs: np.ndarray | None = None
        self._radii: np.ndarray | None = None
        self.rebuild_neighbors(system.particles)

    def rebuild_neighbors(self, particles: np.ndarray) -> None:
        """Rebuild the non-bonded pair list at the given coordinates."""
        self._cb_ideal = pseudo_cb(np.asarray(particles)[: self.n])
        self._pairs, self._radii = _candidate_pairs(
            np.asarray(particles, dtype=np.float64), self.n
        )

    def energy_and_gradient(
        self, particles: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Total energy (kcal/mol) and gradient at the given coordinates."""
        x = np.asarray(particles, dtype=np.float64)
        if x.shape != self.system.particles.shape:
            raise ValueError("particle array shape mismatch")
        p = self.params
        n = self.n
        energy = 0.0
        grad = np.zeros_like(x)

        # CA-CA bonds.
        delta = x[1:n] - x[: n - 1]
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, _DIST_FLOOR, out=dist)
        dev = dist - CA_CA_BOND_LENGTH
        energy += p.k_bond * float((dev**2).sum())
        f = (2.0 * p.k_bond * dev / dist)[:, None] * delta
        grad[1:n] += f
        grad[: n - 1] -= f

        # CA-CB bonds.
        delta = x[n:] - x[:n]
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, _DIST_FLOOR, out=dist)
        dev = dist - _CB_BOND_LENGTH
        energy += p.k_cb_bond * float((dev**2).sum())
        f = (2.0 * p.k_cb_bond * dev / dist)[:, None] * delta
        grad[n:] += f
        grad[:n] -= f

        # CB geometry idealisation: pull CB toward the virtual-CB
        # position implied by the backbone frame frozen at the last
        # neighbour-list rebuild.
        delta = x[n:] - self._cb_ideal
        energy += p.k_cb_geometry * float((delta**2).sum())
        grad[n:] += 2.0 * p.k_cb_geometry * delta

        # Excluded volume.
        assert self._pairs is not None and self._radii is not None
        if self._pairs.shape[0]:
            i, j = self._pairs[:, 0], self._pairs[:, 1]
            dvec = x[j] - x[i]
            dist = np.linalg.norm(dvec, axis=1)
            np.maximum(dist, _DIST_FLOOR, out=dist)
            overlap = self._radii - dist
            active = overlap > 0
            if active.any():
                ov = overlap[active]
                energy += p.k_repulsion * float((ov**2).sum())
                c = (-2.0 * p.k_repulsion * ov / dist[active])[:, None]
                fv = c * dvec[active]
                np.add.at(grad, j[active], fv)
                np.add.at(grad, i[active], -fv)

        # Positional restraints (k = 10 kcal/mol/A^2, paper §3.2.3).
        delta = x - self.system.reference
        energy += p.k_restraint * float((delta**2).sum())
        grad += 2.0 * p.k_restraint * delta

        return energy, grad

    def energy(self, particles: np.ndarray) -> float:
        return self.energy_and_gradient(particles)[0]
