"""Coarse molecular-mechanics force field for restrained relaxation.

Mirrors the *structure* of the AlphaFold relaxation Hamiltonian at
Calpha+CB resolution (energies in nominal kcal/mol, distances in
Angstrom):

* **bonds** — springs holding consecutive Calpha at 3.8 A and each CB at
  1.53 A from its Calpha;
* **geometry** — a spring pulling each CB toward the ideal virtual-CB
  position implied by the local backbone frame (the stand-in for the
  full bonded/torsional terms that idealise side-chain geometry);
* **excluded volume** — a quadratic wall that strongly destabilises
  non-physical contacts, "beyond those defined by Calpha-Calpha
  distances" as the paper puts it: this is the term that removes
  clashes and bumps;
* **restraints** — harmonic positional restraints on all particles with
  the paper's force constant k = 10 kcal/mol/A^2, anchoring the model to
  its predicted coordinates so only small perturbations occur.

Energies and analytic gradients are fully vectorised; the non-bonded
pair list is built with a KD-tree and frozen per outer minimisation
round (a standard neighbour-list scheme).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from ..constants import RELAX_RESTRAINT_K
from ..structure.protein import CA_CA_BOND_LENGTH, pseudo_cb
from .hydrogens import MMSystem

__all__ = ["ForceFieldParams", "ForceField"]

#: Distance below which non-bonded Calpha pairs are penalised.  Sits
#: just above the bump cutoff (3.6) so minimisation pushes bumps out —
#: but the k=10 restraints win for mild bumps, which is why relaxation
#: reduces rather than eliminates them (paper §4.4).
_CA_REPULSION_RADIUS: float = 3.8

#: Repulsion radius for pairs involving a CB particle.
_CB_REPULSION_RADIUS: float = 3.0

#: Ideal Calpha-CB bond length.
_CB_BOND_LENGTH: float = 1.53


@dataclass(frozen=True)
class ForceFieldParams:
    """Force constants (kcal/mol/A^2) of the relaxation Hamiltonian."""

    k_bond: float = 120.0
    k_cb_bond: float = 60.0
    k_cb_geometry: float = 25.0
    k_repulsion: float = 40.0
    k_restraint: float = RELAX_RESTRAINT_K


class ForceField:
    """Energy/gradient evaluator bound to one :class:`MMSystem`.

    The neighbour list is built at construction (or via
    :meth:`rebuild_neighbors`) and reused across evaluations within one
    minimisation round.
    """

    def __init__(
        self, system: MMSystem, params: ForceFieldParams | None = None
    ) -> None:
        self.system = system
        self.params = params or ForceFieldParams()
        self.n = system.n_residues
        self._pairs: np.ndarray | None = None
        self._radii: np.ndarray | None = None
        self.rebuild_neighbors(system.particles)

    def rebuild_neighbors(self, particles: np.ndarray) -> None:
        """Rebuild the non-bonded pair list at the given coordinates.

        Also freezes the CB idealisation targets at the current backbone
        frame, so the energy surface within one round is exactly
        quadratic in CB and the analytic gradient is exact (the frame is
        refreshed at every rebuild, like the neighbour list).
        """
        n = self.n
        self._cb_ideal = pseudo_cb(np.asarray(particles)[:n])
        tree = cKDTree(particles)
        pairs = tree.query_pairs(_CA_REPULSION_RADIUS + 0.5, output_type="ndarray")
        if pairs.size == 0:
            self._pairs = np.empty((0, 2), dtype=np.int64)
            self._radii = np.empty(0)
            return
        i, j = pairs[:, 0], pairs[:, 1]
        both_ca = (i < n) & (j < n)
        # Exclusions: bonded/near neighbours along the chain, and each
        # residue's own CA-CB pair (that is a bond, not a contact).
        res_i = np.where(i < n, i, i - n)
        res_j = np.where(j < n, j, j - n)
        sep = np.abs(res_j - res_i)
        keep = np.where(both_ca, sep >= 3, sep >= 2)
        pairs = pairs[keep]
        radii = np.where(both_ca[keep], _CA_REPULSION_RADIUS, _CB_REPULSION_RADIUS)
        self._pairs = pairs.astype(np.int64)
        self._radii = radii

    # -- Energy terms -------------------------------------------------------
    def energy_and_gradient(self, particles: np.ndarray) -> tuple[float, np.ndarray]:
        """Total energy (kcal/mol) and gradient at the given coordinates."""
        x = np.asarray(particles, dtype=np.float64)
        if x.shape != self.system.particles.shape:
            raise ValueError("particle array shape mismatch")
        p = self.params
        n = self.n
        energy = 0.0
        grad = np.zeros_like(x)

        # CA-CA bonds.
        delta = x[1:n] - x[: n - 1]
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, 1e-9, out=dist)
        dev = dist - CA_CA_BOND_LENGTH
        energy += p.k_bond * float((dev**2).sum())
        f = (2.0 * p.k_bond * dev / dist)[:, None] * delta
        grad[1:n] += f
        grad[: n - 1] -= f

        # CA-CB bonds.
        delta = x[n:] - x[:n]
        dist = np.linalg.norm(delta, axis=1)
        np.maximum(dist, 1e-9, out=dist)
        dev = dist - _CB_BOND_LENGTH
        energy += p.k_cb_bond * float((dev**2).sum())
        f = (2.0 * p.k_cb_bond * dev / dist)[:, None] * delta
        grad[n:] += f
        grad[:n] -= f

        # CB geometry idealisation: pull CB toward the virtual-CB
        # position implied by the backbone frame frozen at the last
        # neighbour-list rebuild.
        delta = x[n:] - self._cb_ideal
        energy += p.k_cb_geometry * float((delta**2).sum())
        grad[n:] += 2.0 * p.k_cb_geometry * delta

        # Excluded volume.
        assert self._pairs is not None and self._radii is not None
        if self._pairs.shape[0]:
            i, j = self._pairs[:, 0], self._pairs[:, 1]
            dvec = x[j] - x[i]
            dist = np.linalg.norm(dvec, axis=1)
            np.maximum(dist, 1e-9, out=dist)
            overlap = self._radii - dist
            active = overlap > 0
            if active.any():
                ov = overlap[active]
                energy += p.k_repulsion * float((ov**2).sum())
                c = (-2.0 * p.k_repulsion * ov / dist[active])[:, None]
                fv = c * dvec[active]
                np.add.at(grad, j[active], fv)
                np.add.at(grad, i[active], -fv)

        # Positional restraints (k = 10 kcal/mol/A^2, paper §3.2.3).
        delta = x - self.system.reference
        energy += p.k_restraint * float((delta**2).sum())
        grad += 2.0 * p.k_restraint * delta

        return energy, grad

    def energy(self, particles: np.ndarray) -> float:
        return self.energy_and_gradient(particles)[0]
