"""Batched relaxation: many structures through the dataflow executor.

The paper's relaxation stage is embarrassingly parallel — 3,205 top
models across 48 GPU workers (§4.5).  :func:`relax_many` is the library
entry point for that shape of work: systems are prepared once up front
(violation census + MM system build, both cheap and rng-keyed by
structure so order never matters), then the minimisations — the
expensive part — run as one task per structure on a
:class:`~repro.dataflow.engine.ThreadedExecutor` with the same
greedy descending-size dispatch the paper's deployment used.  The
pipeline's relax stage and the relaxation benchmarks all funnel through
here, so there is exactly one batched-relax code path to keep correct.

Outcomes are independent of worker count and dispatch order; a
property test pins ``relax_many`` to the serial protocol loop.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..dataflow.engine import ExecutionResult, ThreadedExecutor
from ..dataflow.process import ProcessExecutor
from ..dataflow.scheduler import TaskRecord, TaskSpec
from ..structure.protein import Structure
from ..telemetry.tracer import get_tracer
from .forcefield import ForceFieldParams
from .protocols import RelaxOutcome, SinglePassRelaxProtocol

__all__ = ["BatchRelaxResult", "relax_many"]


@dataclass(frozen=True)
class BatchRelaxResult:
    """Outcomes of one batched relaxation run, keyed like the input."""

    outcomes: dict[str, RelaxOutcome]
    execution: ExecutionResult

    @property
    def walltime_seconds(self) -> float:
        return self.execution.walltime_seconds

    @property
    def models_per_second(self) -> float:
        return len(self.outcomes) / max(self.execution.walltime_seconds, 1e-9)

    def total_violations_after(self) -> tuple[int, int]:
        """(clashes, bumps) summed over the batch — the §4.4 census."""
        clashes = sum(
            o.violations_after.n_clashes for o in self.outcomes.values()
        )
        bumps = sum(o.violations_after.n_bumps for o in self.outcomes.values())
        return clashes, bumps


def _as_mapping(
    structures: Mapping[str, Structure] | Iterable[Structure],
) -> dict[str, Structure]:
    if isinstance(structures, Mapping):
        return dict(structures)
    out: dict[str, Structure] = {}
    for i, structure in enumerate(structures):
        key = structure.record_id or f"structure-{i}"
        if key in out:  # same record relaxed for several model heads
            key = f"{key}/{structure.model_name or i}"
        if key in out:
            key = f"{key}#{i}"
        out[key] = structure
    return out


def relax_many(
    structures: Mapping[str, Structure] | Iterable[Structure],
    protocol: SinglePassRelaxProtocol | None = None,
    device: str = "gpu",
    params: ForceFieldParams | None = None,
    n_workers: int = 0,
    executor: ThreadedExecutor | ProcessExecutor | None = None,
    on_complete: Callable[[TaskRecord, Any], None] | None = None,
) -> BatchRelaxResult:
    """Relax a batch of structures on executor workers.

    ``structures`` may be a mapping (keys become task keys) or any
    iterable of structures (keyed by record id, disambiguated by model
    name).  ``n_workers=0`` auto-sizes to the machine, capped at 8 and
    at the batch size; pass an ``executor`` to reuse a configured one
    (the pipeline does) — threaded or process-backed, since the task
    callable (a bound protocol method) and the prepared systems both
    pickle.  ``on_complete`` forwards to the executor's ``map`` so
    durable run state can ledger each relaxation as it lands; it runs
    in this process on either backend.  Task failures are not tolerated
    here — a relaxation that throws is a bug, not an operational event —
    so any failed record re-raises.
    """
    by_key = _as_mapping(structures)
    protocol = protocol or SinglePassRelaxProtocol(device=device, params=params)
    tracer = get_tracer()
    with tracer.span(
        "batch",
        "relax_many",
        attrs={"n_structures": len(by_key), "device": protocol.device},
    ):
        with tracer.span("phase", "relax.prepare"):
            prepared = {
                key: protocol.prepare(structure)
                for key, structure in by_key.items()
            }
        tasks = [
            TaskSpec(key=key, payload=prep, size_hint=len(by_key[key]))
            for key, prep in prepared.items()
        ]
        if executor is None:
            n = n_workers
            if n <= 0:
                n = max(1, min(8, os.cpu_count() or 1))
            executor = ThreadedExecutor(min(n, max(1, len(tasks))))
        execution = executor.map(
            protocol.run_prepared, tasks, stage="relax", on_complete=on_complete
        )
    failed = [r for r in execution.records if not r.ok]
    if failed:
        summary = "; ".join(f"{r.key}: {r.error}" for r in failed[:3])
        raise RuntimeError(
            f"relax_many: {len(failed)} relaxation(s) failed — {summary}"
        )
    outcomes = {key: execution.results[key] for key in by_key}
    return BatchRelaxResult(outcomes=outcomes, execution=execution)
