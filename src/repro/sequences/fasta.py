"""Minimal FASTA reader/writer for :class:`ProteinRecord` collections.

The real pipeline moves sequences between stages as FASTA files on the
parallel filesystem; examples and tests use this module for the same
hand-off so the stage decoupling is exercised end to end.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from .alphabet import encode
from .generator import ProteinRecord

__all__ = ["write_fasta", "read_fasta", "parse_fasta", "format_fasta"]

_LINE_WIDTH = 60


def format_fasta(records: Iterable[ProteinRecord]) -> str:
    """Render records as FASTA text (60-column wrapped)."""
    out = io.StringIO()
    for rec in records:
        header = rec.record_id
        if rec.description:
            header += f" {rec.description}"
        out.write(f">{header}\n")
        seq = rec.sequence
        for start in range(0, len(seq), _LINE_WIDTH):
            out.write(seq[start : start + _LINE_WIDTH])
            out.write("\n")
    return out.getvalue()


def write_fasta(records: Iterable[ProteinRecord], path: str | Path) -> None:
    """Write records to a FASTA file."""
    Path(path).write_text(format_fasta(records), encoding="ascii")


def parse_fasta(text: str) -> Iterator[ProteinRecord]:
    """Parse FASTA text into :class:`ProteinRecord` objects.

    The first whitespace-delimited token of each header becomes the
    record id; the remainder becomes the description.  Empty sequences
    are rejected — they would silently break every downstream stage.
    """
    header: str | None = None
    chunks: list[str] = []

    def emit() -> ProteinRecord:
        assert header is not None
        seq = "".join(chunks)
        if not seq:
            raise ValueError(f"empty sequence for record {header!r}")
        token, _, rest = header.partition(" ")
        return ProteinRecord(
            record_id=token, encoded=encode(seq), description=rest.strip()
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield emit()
            header = line[1:].strip()
            if not header:
                raise ValueError("FASTA header with no id")
            chunks = []
        else:
            if header is None:
                raise ValueError("sequence data before first FASTA header")
            chunks.append(line.upper())
    if header is not None:
        yield emit()


def read_fasta(path: str | Path) -> list[ProteinRecord]:
    """Read a FASTA file into a list of records."""
    return list(parse_fasta(Path(path).read_text(encoding="ascii")))
