"""Sequence substrate: synthetic proteomes, families and FASTA I/O."""

from .alphabet import (
    AMINO_ACIDS,
    ALPHABET_SIZE,
    decode,
    encode,
    heavy_atom_count,
    hydrogen_count,
    is_valid_sequence,
    molecular_weight,
)
from .fasta import format_fasta, parse_fasta, read_fasta, write_fasta
from .generator import (
    ProteinRecord,
    SequenceFamily,
    SequenceUniverse,
    mutate_sequence,
    random_sequence,
    rng_for,
)
from .proteome import SPECIES, Proteome, SpeciesSpec, synthetic_proteome

__all__ = [
    "AMINO_ACIDS",
    "ALPHABET_SIZE",
    "decode",
    "encode",
    "heavy_atom_count",
    "hydrogen_count",
    "is_valid_sequence",
    "molecular_weight",
    "format_fasta",
    "parse_fasta",
    "read_fasta",
    "write_fasta",
    "ProteinRecord",
    "SequenceFamily",
    "SequenceUniverse",
    "mutate_sequence",
    "random_sequence",
    "rng_for",
    "SPECIES",
    "Proteome",
    "SpeciesSpec",
    "synthetic_proteome",
]
