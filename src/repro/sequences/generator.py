"""Deterministic synthetic sequence generation.

The reproduction has no access to the real proteomes or the 2.1 TB
sequence libraries, so it manufactures a *sequence universe*: a set of
protein families, each with an ancestor sequence and a fold seed.  Both
the synthetic proteomes (prediction targets) and the synthetic sequence
libraries (UniRef/BFD/MGnify stand-ins searched by :mod:`repro.msa`) are
populated with mutated descendants of these families, so homology search
finds real signal and MSA depth varies realistically between targets.

Determinism contract: every public function takes or derives an explicit
seed; :func:`rng_for` provides collision-resistant, order-independent
sub-stream derivation so that e.g. family 17 of universe seed 42 is the
same in every process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .alphabet import ALPHABET_SIZE, BACKGROUND_FREQUENCIES, decode

__all__ = [
    "rng_for",
    "stable_hash",
    "random_sequence",
    "mutate_sequence",
    "ProteinRecord",
    "SequenceFamily",
    "SequenceUniverse",
]


def stable_hash(*parts: object, modulus: int = 2**31) -> int:
    """Deterministic, process-independent hash of a name path.

    Python's builtin ``hash`` is salted per process; everything that
    derives identifiers from names must use this instead so that two
    components (or two runs) agree.
    """
    digest = hashlib.sha256(
        ("/".join(str(p) for p in parts)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % modulus


def rng_for(seed: int, *names: object) -> np.random.Generator:
    """Derive an independent RNG stream from a base seed and a name path.

    The name path is hashed with SHA-256, so streams for different paths
    are statistically independent and stable across platforms and runs.
    """
    digest = hashlib.sha256(
        ("/".join(str(n) for n in (seed, *names))).encode("utf-8")
    ).digest()
    return np.random.default_rng(np.frombuffer(digest[:16], dtype=np.uint64))


def random_sequence(length: int, rng: np.random.Generator) -> np.ndarray:
    """Draw an encoded sequence from background amino-acid frequencies."""
    if length < 1:
        raise ValueError("sequence length must be >= 1")
    return rng.choice(
        ALPHABET_SIZE, size=length, p=BACKGROUND_FREQUENCIES
    ).astype(np.uint8)


def mutate_sequence(
    encoded: np.ndarray,
    rng: np.random.Generator,
    substitution_rate: float,
    indel_rate: float = 0.0,
) -> np.ndarray:
    """Return a mutated copy of ``encoded``.

    Substitutions are drawn from the background distribution (a mutated
    position may coincidentally keep its residue, as in nature); indels
    delete or insert single residues at the given per-position rate.
    """
    arr = np.asarray(encoded, dtype=np.uint8)
    if not 0.0 <= substitution_rate <= 1.0:
        raise ValueError("substitution_rate must be in [0, 1]")
    out = arr.copy()
    sub_mask = rng.random(out.size) < substitution_rate
    n_subs = int(sub_mask.sum())
    if n_subs:
        out[sub_mask] = rng.choice(
            ALPHABET_SIZE, size=n_subs, p=BACKGROUND_FREQUENCIES
        ).astype(np.uint8)
    if indel_rate > 0.0:
        # Deletions: drop positions.
        keep = rng.random(out.size) >= (indel_rate / 2.0)
        if not keep.any():
            keep[0] = True
        out = out[keep]
        # Insertions: splice random residues after selected positions.
        ins_mask = rng.random(out.size) < (indel_rate / 2.0)
        n_ins = int(ins_mask.sum())
        if n_ins:
            inserts = rng.choice(
                ALPHABET_SIZE, size=n_ins, p=BACKGROUND_FREQUENCIES
            ).astype(np.uint8)
            pieces: list[np.ndarray] = []
            last = 0
            for pos, ins_aa in zip(np.flatnonzero(ins_mask), inserts):
                pieces.append(out[last : pos + 1])
                pieces.append(np.array([ins_aa], dtype=np.uint8))
                last = pos + 1
            pieces.append(out[last:])
            out = np.concatenate(pieces)
    return out


@dataclass(frozen=True)
class ProteinRecord:
    """One protein sequence plus the provenance the surrogate models use.

    ``family_id`` is ``None`` for orphan sequences with no homologs in
    the universe (the paper's hardest targets).  ``divergence`` is the
    total substitution divergence relative to the family ancestor.
    ``branch`` identifies the subfamily: branch 0 is the canonical
    (structurally deposited) lineage; higher branches are remote
    subfamilies whose members sit in the twilight zone (<20% identity)
    relative to branch 0 while still sharing its fold — the proteins
    the paper's structure-based annotation rescues (§4.6).
    """

    record_id: str
    encoded: np.ndarray
    species: str = ""
    family_id: int | None = None
    divergence: float = 0.0
    annotated: bool = True
    description: str = ""
    branch: int = 0

    @property
    def sequence(self) -> str:
        return decode(self.encoded)

    @property
    def length(self) -> int:
        return int(self.encoded.size)

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.length


@dataclass(frozen=True)
class SequenceFamily:
    """A protein family: shared ancestry in sequence and fold space.

    ``fold_seed`` keys the procedural native-structure topology in
    :mod:`repro.fold.generator` — members of one family fold alike, which
    is what makes structure-based annotation (paper §4.6) mechanically
    meaningful in the reproduction.
    ``library_multiplicity`` is how many homologs of this family the
    synthetic sequence libraries carry, the driver of MSA depth.
    """

    family_id: int
    ancestor: np.ndarray = field(repr=False)
    fold_seed: int
    annotated: bool
    library_multiplicity: int

    @property
    def length(self) -> int:
        return int(self.ancestor.size)


class SequenceUniverse:
    """Factory for protein families shared by proteomes and libraries.

    Families are derived lazily and deterministically from
    ``(seed, family_id)``, so any two components that agree on the
    universe seed agree on every family without sharing state.

    Parameters
    ----------
    seed:
        Base seed for all derivations.
    length_log_mean, length_log_sigma:
        Parameters of the lognormal family-ancestor length distribution.
        Defaults approximate a prokaryotic proteome (mean ~300 AA).
    annotated_fraction:
        Probability that a family is annotated in the (synthetic)
        functional databases; unannotated families produce the paper's
        "hypothetical" proteins.
    """

    def __init__(
        self,
        seed: int = 0,
        length_log_mean: float = 5.45,
        length_log_sigma: float = 0.55,
        annotated_fraction: float = 0.7,
        min_length: int = 25,
        max_length: int = 2800,
    ) -> None:
        if not 0.0 <= annotated_fraction <= 1.0:
            raise ValueError("annotated_fraction must be in [0, 1]")
        if min_length < 1 or max_length < min_length:
            raise ValueError("invalid length bounds")
        self.seed = seed
        self.length_log_mean = length_log_mean
        self.length_log_sigma = length_log_sigma
        self.annotated_fraction = annotated_fraction
        self.min_length = min_length
        self.max_length = max_length
        self._families: dict[int, SequenceFamily] = {}

    def family(self, family_id: int) -> SequenceFamily:
        """Return (and cache) the family with the given id."""
        if family_id < 0:
            raise ValueError("family_id must be non-negative")
        cached = self._families.get(family_id)
        if cached is not None:
            return cached
        rng = rng_for(self.seed, "family", family_id)
        length = int(
            np.clip(
                np.round(rng.lognormal(self.length_log_mean, self.length_log_sigma)),
                self.min_length,
                self.max_length,
            )
        )
        ancestor = random_sequence(length, rng)
        annotated = bool(rng.random() < self.annotated_fraction)
        # Heavy-tailed homolog multiplicity: a few percent of families
        # are unsequenced elsewhere (multiplicity 0 — the hardest
        # targets), the bulk follow a broad lognormal with a long deep
        # tail.  This spread of MSA depth is what spreads target
        # difficulty across the proteome.
        if rng.random() < 0.05:
            multiplicity = 0
        else:
            multiplicity = int(np.clip(np.round(rng.lognormal(3.0, 1.2)), 1, 300))
        fam = SequenceFamily(
            family_id=family_id,
            ancestor=ancestor,
            fold_seed=int(rng.integers(0, 2**31 - 1)),
            annotated=annotated,
            library_multiplicity=multiplicity,
        )
        self._families[family_id] = fam
        return fam

    def family_length(self, family_id: int, target_length: int) -> SequenceFamily:
        """Return a family variant whose ancestor has ``target_length``.

        Used when a workload needs a specific length distribution (e.g.
        the 559-sequence Table 1 benchmark set).  The ancestor is the
        family's natural ancestor truncated or tiled (repeated end to
        end) to the requested length, so members at any length remain
        detectably homologous to library members generated at the
        natural length — exactly like natural repeat/domain expansions.
        Cached under a composite key so it does not collide with
        :meth:`family`.
        """
        if not self.min_length <= target_length <= self.max_length:
            raise ValueError("target_length outside universe bounds")
        key = -(family_id * (self.max_length + 1) + target_length) - 1
        cached = self._families.get(key)
        if cached is not None:
            return cached
        base = self.family(family_id)
        reps = -(-target_length // base.length)  # ceil division
        ancestor = np.tile(base.ancestor, reps)[:target_length]
        fam = SequenceFamily(
            family_id=base.family_id,
            ancestor=ancestor,
            fold_seed=base.fold_seed,
            annotated=base.annotated,
            library_multiplicity=base.library_multiplicity,
        )
        self._families[key] = fam
        return fam

    #: Substitution divergence of a remote branch's ancestor from the
    #: canonical (branch 0) ancestor.  Chosen so branch members land in
    #: the twilight zone: ~15-22% identity to branch-0 relatives.
    BRANCH_DIVERGENCE: float = 0.72

    def branch_ancestor(self, family: SequenceFamily, branch: int) -> np.ndarray:
        """Ancestor of one subfamily branch (branch 0 = the family's own)."""
        if branch < 0:
            raise ValueError("branch must be non-negative")
        if branch == 0:
            return family.ancestor
        key = -(2**40) - family.family_id * 16 - branch
        cached = self._families.get(key)
        if cached is not None:
            return cached.ancestor
        rng = rng_for(self.seed, "branch", family.family_id, branch)
        ancestor = mutate_sequence(
            family.ancestor,
            rng,
            substitution_rate=self.BRANCH_DIVERGENCE,
            indel_rate=0.0,
        )
        self._families[key] = SequenceFamily(
            family_id=family.family_id,
            ancestor=ancestor,
            fold_seed=family.fold_seed,
            annotated=family.annotated,
            library_multiplicity=family.library_multiplicity,
        )
        return ancestor

    def member(
        self,
        family: SequenceFamily,
        divergence: float,
        member_seed: int,
        indel_rate: float = 0.01,
        branch: int = 0,
    ) -> np.ndarray:
        """Generate a family member at the given divergence from its
        branch ancestor (branch 0 = the canonical family ancestor)."""
        rng = rng_for(self.seed, "member", family.family_id, member_seed, branch)
        ancestor = self.branch_ancestor(family, branch)
        return mutate_sequence(
            ancestor, rng, substitution_rate=divergence, indel_rate=indel_rate
        )

    def orphan(self, orphan_seed: int, length: int) -> np.ndarray:
        """Generate an orphan sequence with no family (no homologs)."""
        rng = rng_for(self.seed, "orphan", orphan_seed)
        return random_sequence(length, rng)
