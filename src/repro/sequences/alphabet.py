"""Amino-acid alphabet: encoding, background frequencies, residue masses.

Sequences are held internally as ``numpy`` ``uint8`` arrays of indices
into :data:`AMINO_ACIDS`; this keeps homology search and mutation
operators fully vectorized.
"""

from __future__ import annotations

import numpy as np

#: The 20 standard amino acids, one-letter codes, in a fixed order that
#: defines the integer encoding used throughout the package.
AMINO_ACIDS: str = "ACDEFGHIKLMNPQRSTVWY"

#: Number of symbols in the alphabet.
ALPHABET_SIZE: int = len(AMINO_ACIDS)

#: Map one-letter code -> integer index.
AA_TO_INDEX: dict[str, int] = {aa: i for i, aa in enumerate(AMINO_ACIDS)}

#: Approximate background frequencies of amino acids in natural proteins
#: (Robinson & Robinson-like composition), in :data:`AMINO_ACIDS` order.
BACKGROUND_FREQUENCIES: np.ndarray = np.array(
    [
        0.078,  # A
        0.019,  # C
        0.054,  # D
        0.063,  # E
        0.039,  # F
        0.072,  # G
        0.022,  # H
        0.053,  # I
        0.059,  # K
        0.091,  # L
        0.022,  # M
        0.044,  # N
        0.052,  # P
        0.042,  # Q
        0.051,  # R
        0.071,  # S
        0.058,  # T
        0.066,  # V
        0.014,  # W
        0.030,  # Y
    ],
    dtype=np.float64,
)
BACKGROUND_FREQUENCIES = BACKGROUND_FREQUENCIES / BACKGROUND_FREQUENCIES.sum()

#: Average residue masses in Daltons (monoisotopic-ish, rounded), used by
#: the heavy-atom expansion in :mod:`repro.relax.hydrogens`.
RESIDUE_MASSES: np.ndarray = np.array(
    [
        71.08,  # A
        103.14,  # C
        115.09,  # D
        129.12,  # E
        147.18,  # F
        57.05,  # G
        137.14,  # H
        113.16,  # I
        128.17,  # K
        113.16,  # L
        131.19,  # M
        114.10,  # N
        97.12,  # P
        128.13,  # Q
        156.19,  # R
        87.08,  # S
        101.10,  # T
        99.13,  # V
        186.21,  # W
        163.18,  # Y
    ],
    dtype=np.float64,
)

#: Number of heavy (non-hydrogen) atoms per residue type, including the
#: 4 backbone heavy atoms (N, CA, C, O).  Used for sizing molecular
#: mechanics systems (paper Fig. 4 plots time against heavy-atom count).
HEAVY_ATOMS_PER_RESIDUE: np.ndarray = np.array(
    [
        5,  # A
        6,  # C
        8,  # D
        9,  # E
        11,  # F
        4,  # G
        10,  # H
        8,  # I
        9,  # K
        8,  # L
        8,  # M
        8,  # N
        7,  # P
        9,  # Q
        11,  # R
        6,  # S
        7,  # T
        7,  # V
        14,  # W
        12,  # Y
    ],
    dtype=np.int64,
)

#: Hydrogen atoms per residue type (approximate, protonated sidechains),
#: used when the relaxation protocol "adds hydrogens" (paper §3.2.3).
HYDROGENS_PER_RESIDUE: np.ndarray = np.array(
    [
        5,  # A
        5,  # C
        4,  # D
        6,  # E
        8,  # F
        3,  # G
        6,  # H
        10,  # I
        11,  # K
        10,  # L
        8,  # M
        5,  # N
        7,  # P
        7,  # Q
        12,  # R
        5,  # S
        7,  # T
        8,  # V
        9,  # W
        8,  # Y
    ],
    dtype=np.int64,
)

#: Kyte-Doolittle hydropathy, used by the procedural fold generator to
#: bias residues toward the core or the surface.
HYDROPATHY: np.ndarray = np.array(
    [
        1.8,  # A
        2.5,  # C
        -3.5,  # D
        -3.5,  # E
        2.8,  # F
        -0.4,  # G
        -3.2,  # H
        4.5,  # I
        -3.9,  # K
        3.8,  # L
        1.9,  # M
        -3.5,  # N
        -1.6,  # P
        -3.5,  # Q
        -4.5,  # R
        -0.8,  # S
        -0.7,  # T
        4.2,  # V
        -0.9,  # W
        -1.3,  # Y
    ],
    dtype=np.float64,
)


def encode(sequence: str) -> np.ndarray:
    """Encode a one-letter amino-acid string to a ``uint8`` index array.

    Unknown characters (e.g. ``X``) raise ``KeyError`` — synthetic data
    never produces them, and real inputs should be sanitized upstream.
    """
    try:
        return np.fromiter(
            (AA_TO_INDEX[ch] for ch in sequence), dtype=np.uint8, count=len(sequence)
        )
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"non-standard amino acid in sequence: {exc}") from exc


def decode(encoded: np.ndarray) -> str:
    """Decode a ``uint8`` index array back to a one-letter string."""
    arr = np.asarray(encoded, dtype=np.uint8)
    if arr.size and arr.max() >= ALPHABET_SIZE:
        raise ValueError("index out of alphabet range")
    lut = np.frombuffer(AMINO_ACIDS.encode("ascii"), dtype=np.uint8)
    return lut[arr].tobytes().decode("ascii")


def is_valid_sequence(sequence: str) -> bool:
    """True if every character is a standard one-letter amino acid code."""
    return all(ch in AA_TO_INDEX for ch in sequence)


def molecular_weight(encoded: np.ndarray) -> float:
    """Approximate molecular weight (Da) of an encoded sequence.

    Adds one water for the free termini, as in standard peptide mass
    computation.
    """
    arr = np.asarray(encoded, dtype=np.uint8)
    if arr.size == 0:
        return 0.0
    return float(RESIDUE_MASSES[arr].sum() + 18.02)


def heavy_atom_count(encoded: np.ndarray) -> int:
    """Total heavy (non-hydrogen) atom count of an encoded sequence."""
    arr = np.asarray(encoded, dtype=np.uint8)
    # The C-terminal residue carries one extra oxygen (OXT).
    extra_oxt = 1 if arr.size else 0
    return int(HEAVY_ATOMS_PER_RESIDUE[arr].sum() + extra_oxt)


def hydrogen_count(encoded: np.ndarray) -> int:
    """Total hydrogen count after protonation (paper's "add hydrogens")."""
    arr = np.asarray(encoded, dtype=np.uint8)
    # N-terminal amine gains two protons relative to the chain average.
    extra = 2 if arr.size else 0
    return int(HYDROGENS_PER_RESIDUE[arr].sum() + extra)
