"""Synthetic proteomes for the four species studied in the paper.

The paper predicted structures for three prokaryotes and one plant:

* *Pseudodesulfovibrio mercurii* — 3,446 top models
* *Rhodospirillum rubrum* — 3,849 top models
* *Desulfovibrio vulgaris* Hildenborough — 3,205 top models
* *Sphagnum divinum* (peat moss) — 25,134 top models

We cannot obtain those sequences (the *S. divinum* proteome in
particular was unreleased), so :func:`synthetic_proteome` manufactures a
deterministic stand-in per species with the right protein count and a
realistic length distribution, drawn from a shared
:class:`~repro.sequences.generator.SequenceUniverse` so that homology
search against the synthetic libraries finds real signal.

A ``scale`` parameter shrinks proteomes proportionally for tests and
benchmarks that cannot afford a 25k-sequence run; all derived statistics
are fractions, so shapes survive scaling.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..constants import MAX_PROTEOME_SEQUENCE_LENGTH
from .generator import ProteinRecord, SequenceUniverse, rng_for, stable_hash

__all__ = [
    "SpeciesSpec",
    "SPECIES",
    "Proteome",
    "synthetic_proteome",
    "species_family_base",
]


def species_family_base(species: str) -> int:
    """Base of the family-id block reserved for one species.

    Species occupy disjoint 10,000-wide blocks of family-id space so
    their folds and ancestors never collide; libraries covering a
    species index the same block.
    """
    return stable_hash("species-block", species, modulus=100_000) * 10_000


@dataclass(frozen=True)
class SpeciesSpec:
    """Workload shape of one species' proteome.

    ``orphan_fraction`` controls how many sequences have no homologs at
    all; ``hypothetical_fraction`` is the paper's share of proteins with
    no functional annotation (for *D. vulgaris*, 559 of 3205 ≈ 17.4%).
    Eukaryotes get a higher divergence floor — the paper notes plant
    sequences are harder to model than prokaryotic ones (§4.3.1).
    """

    name: str
    n_proteins: int
    length_log_mean: float
    length_log_sigma: float
    orphan_fraction: float
    hypothetical_fraction: float
    kingdom: str  # "bacteria" | "plant"
    divergence_low: float
    divergence_high: float


#: Species catalog; counts from paper §4, mean lengths tuned so that the
#: D. vulgaris mean is ~328 AA (§4.1) and the plant proteome skews longer.
SPECIES: dict[str, SpeciesSpec] = {
    "P_mercurii": SpeciesSpec(
        name="P_mercurii",
        n_proteins=3446,
        length_log_mean=5.55,
        length_log_sigma=0.55,
        orphan_fraction=0.04,
        hypothetical_fraction=0.15,
        kingdom="bacteria",
        divergence_low=0.05,
        divergence_high=0.45,
    ),
    "R_rubrum": SpeciesSpec(
        name="R_rubrum",
        n_proteins=3849,
        length_log_mean=5.55,
        length_log_sigma=0.55,
        orphan_fraction=0.04,
        hypothetical_fraction=0.14,
        kingdom="bacteria",
        divergence_low=0.05,
        divergence_high=0.45,
    ),
    "D_vulgaris": SpeciesSpec(
        name="D_vulgaris",
        n_proteins=3205,
        length_log_mean=5.62,
        length_log_sigma=0.52,
        orphan_fraction=0.05,
        hypothetical_fraction=0.174,  # 559 / 3205
        kingdom="bacteria",
        divergence_low=0.05,
        divergence_high=0.45,
    ),
    "S_divinum": SpeciesSpec(
        name="S_divinum",
        n_proteins=25134,
        length_log_mean=5.72,
        length_log_sigma=0.62,
        orphan_fraction=0.08,
        hypothetical_fraction=0.30,
        kingdom="plant",
        divergence_low=0.10,
        divergence_high=0.52,
    ),
}


class Proteome(Sequence[ProteinRecord]):
    """An ordered collection of :class:`ProteinRecord` for one species."""

    def __init__(self, species: str, records: list[ProteinRecord]) -> None:
        self.species = species
        self._records = list(records)

    # -- Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Proteome(self.species, self._records[index])
        return self._records[index]

    def __iter__(self) -> Iterator[ProteinRecord]:
        return iter(self._records)

    # -- Derived views ------------------------------------------------------
    @property
    def records(self) -> list[ProteinRecord]:
        return list(self._records)

    def lengths(self) -> np.ndarray:
        """Sequence lengths as an int64 array (vector-friendly view)."""
        return np.array([r.length for r in self._records], dtype=np.int64)

    def mean_length(self) -> float:
        lens = self.lengths()
        return float(lens.mean()) if lens.size else 0.0

    def sorted_by_length(self, descending: bool = True) -> "Proteome":
        """Return a copy sorted by sequence length.

        Descending order is the paper's greedy load-balancing heuristic
        (§3.3 step 3c): longest sequences are scheduled first.
        """
        ordered = sorted(
            self._records, key=lambda r: (r.length, r.record_id), reverse=descending
        )
        return Proteome(self.species, ordered)

    def filter_max_length(self, max_length: int) -> "Proteome":
        """Drop sequences longer than ``max_length`` (paper cut at 2500)."""
        return Proteome(
            self.species, [r for r in self._records if r.length <= max_length]
        )

    def hypothetical(self) -> "Proteome":
        """The unannotated ("hypothetical") subset (paper §4.6)."""
        return Proteome(self.species, [r for r in self._records if not r.annotated])

    def subset(self, record_ids: Sequence[str]) -> "Proteome":
        wanted = set(record_ids)
        return Proteome(
            self.species, [r for r in self._records if r.record_id in wanted]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Proteome({self.species!r}, n={len(self._records)})"


def synthetic_proteome(
    species: str,
    universe: SequenceUniverse | None = None,
    seed: int = 0,
    scale: float = 1.0,
    max_length: int = MAX_PROTEOME_SEQUENCE_LENGTH,
    family_pool: int | None = None,
) -> Proteome:
    """Generate the synthetic proteome of ``species``.

    Parameters
    ----------
    universe:
        Shared sequence universe; defaults to ``SequenceUniverse(seed)``.
        Pass the same universe used to build the search libraries.
    scale:
        Fraction of the species' protein count to generate (0 < scale <= 1).
    max_length:
        Sequences longer than this are excluded, mirroring the paper's
        2500 AA cutoff (§3.2.2).
    family_pool:
        Number of distinct families the proteome draws from.  Defaults to
        ~60% of the protein count (some paralogs share families).
    """
    if species not in SPECIES:
        raise KeyError(f"unknown species {species!r}; options: {sorted(SPECIES)}")
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    spec = SPECIES[species]
    if universe is None:
        universe = SequenceUniverse(
            seed,
            length_log_mean=spec.length_log_mean,
            length_log_sigma=spec.length_log_sigma,
        )
    n = max(1, int(round(spec.n_proteins * scale)))
    pool = family_pool if family_pool is not None else max(1, int(n * 0.6))
    rng = rng_for(seed, "proteome", species)
    records: list[ProteinRecord] = []
    family_base = species_family_base(species)
    n_orphans = int(round(n * spec.orphan_fraction))
    orphan_flags = np.zeros(n, dtype=bool)
    orphan_flags[:n_orphans] = True
    rng.shuffle(orphan_flags)
    for i in range(n):
        record_id = f"{species}_{i:06d}"
        if orphan_flags[i]:
            length = int(
                np.clip(
                    np.round(rng.lognormal(spec.length_log_mean, spec.length_log_sigma)),
                    universe.min_length,
                    universe.max_length,
                )
            )
            encoded = universe.orphan(family_base + i, length)
            annotated = False  # orphans are never annotated
            records.append(
                ProteinRecord(
                    record_id=record_id,
                    encoded=encoded,
                    species=species,
                    family_id=None,
                    divergence=1.0,
                    annotated=annotated,
                    description=f"{species} orphan protein {i}",
                )
            )
            continue
        family_id = family_base + int(rng.integers(0, pool))
        fam = universe.family(family_id)
        # A share of members belongs to remote subfamily branches:
        # twilight-zone relatives (<20% identity to the canonical
        # lineage) that sequence-based annotation cannot reach.
        branch = 0
        if rng.random() < 0.30:
            branch = 1 + int(rng.integers(0, 2))
        if branch == 0:
            member_div = float(
                rng.uniform(spec.divergence_low, spec.divergence_high)
            )
            total_div = member_div
        else:
            member_div = float(rng.uniform(spec.divergence_low, 0.35))
            total_div = 1.0 - (1.0 - universe.BRANCH_DIVERGENCE) * (
                1.0 - member_div
            )
        encoded = universe.member(fam, member_div, member_seed=i, branch=branch)
        # Annotation requires an annotated family, the canonical branch,
        # and enough conservation for sequence methods to have worked;
        # everything else drops into the "hypothetical" pool (§4.6).
        annotated = (
            fam.annotated
            and branch == 0
            and member_div < spec.divergence_high * 0.95
        )
        records.append(
            ProteinRecord(
                record_id=record_id,
                encoded=encoded,
                species=species,
                family_id=family_id,
                divergence=total_div,
                annotated=annotated,
                description=f"{species} protein {i} family {family_id}",
                branch=branch,
            )
        )
    proteome = Proteome(species, records)
    return proteome.filter_max_length(max_length)
