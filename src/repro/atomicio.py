"""Atomic file publication shared by the durable stores.

Both the feature cache and the run-state artifact store publish pickled
payloads that concurrent readers may open at any moment, and that a
crash (the whole point of durable state) may interrupt at any byte.
The discipline that makes this safe is always the same:

1. write the full payload to a *writer-unique* temp file in the target
   directory (same filesystem, so the rename below is atomic);
2. ``os.replace`` it onto the final name.

Step 1's uniqueness matters as much as step 2's atomicity: if every
writer of one key shared a single ``<key>.tmp`` path, two simultaneous
writers would interleave their ``write``/``replace`` pairs and could
publish a torn file through the "atomic" rename.  Naming the temp file
by pid and thread id gives each concurrent writer its own scratch path;
last rename wins with complete bytes.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Publish ``data`` at ``path``; readers never observe a partial file."""
    path = Path(path)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident():x}.tmp"
    )
    try:
        tmp.write_bytes(data)
        tmp.replace(path)
    finally:
        # Only reachable with the temp file still present when the write
        # or rename itself failed; never leave scratch files behind.
        tmp.unlink(missing_ok=True)
