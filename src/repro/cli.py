"""Command-line interface.

Five subcommands mirror how the paper's pipeline was actually driven:

* ``repro predict``   — features + inference + relaxation for a proteome
  sample; writes relaxed PDBs and a per-target CSV.
* ``repro campaign``  — the full three-stage simulated deployment with
  node-hour accounting and the proteome confidence summary; with
  ``--telemetry-dir`` it also exports the run's trace/metrics/manifest,
  and with ``--state-dir`` it keeps a durable completion ledger +
  artifact store so a killed campaign resumes (``--resume``) with zero
  recomputation of finished tasks.
* ``repro relax``     — relax an existing (CA-trace) PDB file.
* ``repro table1``    — a scaled-down regeneration of Table 1.
* ``repro report``    — render a saved telemetry run directory.
* ``repro index build`` — build the sharded, memory-mapped on-disk
  k-mer index artifacts a campaign attaches with ``--index-dir``
  (built once, shared read-only by every worker process).

All commands are seeded and deterministic.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from . import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proteome-scale structure prediction workflows "
        "(reproduction of Gao et al., IPDPS Workshops 2022)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="predict + relax a proteome sample")
    p.add_argument("--species", default="D_vulgaris",
                   choices=["P_mercurii", "R_rubrum", "D_vulgaris", "S_divinum"])
    p.add_argument("--scale", type=float, default=0.003,
                   help="fraction of the proteome to generate")
    p.add_argument("--preset", default="genome",
                   choices=["reduced_db", "casp14", "genome", "super"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-targets", type=int, default=None)
    p.add_argument("--out", type=Path, default=Path("repro_output"))

    c = sub.add_parser("campaign", help="simulate the full 3-stage deployment")
    c.add_argument("--species", default="D_vulgaris",
                   choices=["P_mercurii", "R_rubrum", "D_vulgaris", "S_divinum"])
    c.add_argument("--scale", type=float, default=0.004)
    c.add_argument("--preset", default="genome")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--feature-nodes", type=int, default=24)
    c.add_argument("--inference-nodes", type=int, default=16)
    c.add_argument("--relax-nodes", type=int, default=4)
    c.add_argument("--telemetry-dir", type=Path, default=None,
                   help="export manifest.json/trace.json/metrics.json here")
    c.add_argument("--state-dir", type=Path, default=None,
                   help="durable run state (write-ahead completion ledger + "
                        "artifact store); lets a killed campaign resume")
    c.add_argument("--resume", action="store_true",
                   help="resume the campaign in --state-dir, skipping every "
                        "task already ledgered as complete")
    c.add_argument("--executor", default="threaded",
                   choices=["threaded", "process"],
                   help="backend for the real per-record compute: worker "
                        "threads (default) or worker processes with "
                        "shared-memory array transport (escapes the GIL; "
                        "survives a killed worker by requeuing its task)")
    c.add_argument("--compute-workers", type=int, default=0,
                   help="workers for the real compute (0 = auto: one per "
                        "core, capped at 8)")
    c.add_argument("--schedule", default="barrier",
                   choices=["barrier", "streaming"],
                   help="campaign scheduler: three stage maps with hard "
                        "joins between them (barrier, default) or one "
                        "dependency-driven dataflow over CPU/GPU worker "
                        "pools where each sequence flows feature -> "
                        "inference -> relax the moment its predecessors "
                        "finish (streaming; bit-identical outputs, lower "
                        "makespan and time-to-first-structure)")
    c.add_argument("--index-dir", type=Path, default=None,
                   help="directory of on-disk k-mer index artifacts (see "
                        "`repro index build`); the feature stage attaches "
                        "the memory-mapped shards instead of building an "
                        "in-memory index per process — build with the same "
                        "--species/--scale/--seed or the artifacts are "
                        "rebuilt here")
    # Fault-injection hook for the kill/resume smoke test: SIGKILL this
    # process after N inference completions have been durably recorded.
    c.add_argument("--crash-after-inference-tasks", type=int, default=None,
                   help=argparse.SUPPRESS)

    r = sub.add_parser("relax", help="relax a CA-trace PDB file")
    r.add_argument("pdb", type=Path)
    r.add_argument("--method", default="gpu", choices=["gpu", "cpu", "af2"])
    r.add_argument("--out", type=Path, default=None)

    t = sub.add_parser("table1", help="regenerate Table 1 at reduced size")
    t.add_argument("--n", type=int, default=80, help="benchmark set size")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--presets", nargs="+",
                   default=["reduced_db", "genome", "super", "casp14"])

    v = sub.add_parser("report", help="render a saved telemetry run")
    v.add_argument("run_dir", type=Path,
                   help="directory holding manifest.json/trace.json/metrics.json")

    ix = sub.add_parser("index", help="manage on-disk k-mer index artifacts")
    ixsub = ix.add_subparsers(dest="index_command", required=True)
    ib = ixsub.add_parser(
        "build",
        help="build sharded, memory-mapped index artifacts for a suite",
        description="Builds one fingerprint-addressed artifact per library "
        "of the (reduced) suite a campaign with the same "
        "--species/--scale/--seed would search, so `repro campaign "
        "--index-dir` attaches them instead of rebuilding.",
    )
    ib.add_argument("--species", default="D_vulgaris",
                    choices=["P_mercurii", "R_rubrum", "D_vulgaris",
                             "S_divinum"])
    ib.add_argument("--scale", type=float, default=0.004)
    ib.add_argument("--seed", type=int, default=0)
    ib.add_argument("--shards", type=int, default=None,
                    help="shard files per library (default: "
                         "postings-balanced 4-way split)")
    ib.add_argument("--out", type=Path, required=True,
                    help="artifact root directory (the campaign's "
                         "--index-dir)")
    return parser


def _cmd_predict(args: argparse.Namespace) -> int:
    from .core import get_preset
    from .fold import NativeFactory, OutOfMemoryError, default_model_bank
    from .msa import build_suite, generate_features
    from .relax import relax_structure
    from .sequences import SequenceUniverse, synthetic_proteome
    from .structure import write_pdb

    args.out.mkdir(parents=True, exist_ok=True)
    universe = SequenceUniverse(args.seed)
    proteome = synthetic_proteome(
        args.species, universe=universe, seed=args.seed, scale=args.scale
    )
    suite = build_suite(
        universe, [args.species], seed=args.seed, scale=args.scale
    ).reduced()
    factory = NativeFactory(universe)
    bank = default_model_bank(factory)
    config = get_preset(args.preset).config()
    targets = list(proteome)
    if args.max_targets is not None:
        targets = targets[: args.max_targets]
    rows = []
    for record in targets:
        features = generate_features(record, suite)
        predictions = []
        for model in bank:
            try:
                predictions.append(model.predict(features, config))
            except OutOfMemoryError:
                continue
        if not predictions:
            print(f"{record.record_id}: all models OOM", file=sys.stderr)
            continue
        top = max(predictions, key=lambda p: p.ptms)
        outcome = relax_structure(top.structure, method="gpu")
        pdb_path = args.out / f"{record.record_id}.pdb"
        write_pdb(outcome.structure, pdb_path)
        rows.append(
            {
                "record_id": record.record_id,
                "length": record.length,
                "msa_depth": features.msa_depth,
                "model": top.model_name,
                "recycles": top.n_recycles,
                "plddt": f"{top.mean_plddt:.1f}",
                "ptms": f"{top.ptms:.3f}",
                "clashes_removed": outcome.violations_before.n_clashes,
                "pdb": pdb_path.name,
            }
        )
        print(
            f"{record.record_id}  L={record.length:<5d} pLDDT="
            f"{top.mean_plddt:5.1f} pTMS={top.ptms:.3f} -> {pdb_path.name}"
        )
    csv_path = args.out / "summary.csv"
    with open(csv_path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]) if rows else ["record_id"])
        writer.writeheader()
        writer.writerows(rows)
    print(f"\n{len(rows)} structures -> {args.out}/ (summary: {csv_path})")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .core import ProteomePipeline, summarize_proteome
    from .fold import NativeFactory
    from .msa import build_suite
    from .sequences import SequenceUniverse, synthetic_proteome

    universe = SequenceUniverse(args.seed)
    proteome = synthetic_proteome(
        args.species, universe=universe, seed=args.seed, scale=args.scale
    )
    suite = build_suite(
        universe, [args.species], seed=args.seed, scale=args.scale
    ).reduced()
    session = None
    if args.telemetry_dir is not None:
        from .telemetry import TelemetrySession

        session = TelemetrySession(args.telemetry_dir)
        session.annotate(seed=args.seed, species=args.species)
    state = None
    if args.state_dir is not None:
        from .runstate import RunState

        state = RunState(args.state_dir)
        if state.resumed and not args.resume:
            print(
                f"repro campaign: {args.state_dir} already holds a campaign "
                f"ledger ({len(state.ledger)} records); pass --resume to "
                "continue it, or point --state-dir at a fresh directory",
                file=sys.stderr,
            )
            return 2
    elif args.resume:
        print("repro campaign: --resume requires --state-dir", file=sys.stderr)
        return 2
    observer = None
    if args.crash_after_inference_tasks is not None:
        import os
        import signal
        import threading

        budget = args.crash_after_inference_tasks
        crash_lock = threading.Lock()
        seen = [0]

        def observer(stage, record, value):
            if stage != "inference" or not record.ok:
                return
            with crash_lock:
                seen[0] += 1
                if seen[0] >= budget:
                    # Durable state for this record is already on disk —
                    # the observer runs after the ledger fsync — so this
                    # is exactly the paper's node-failure scenario.
                    os.kill(os.getpid(), signal.SIGKILL)

    pipeline = ProteomePipeline(
        preset_name=args.preset,
        feature_nodes=args.feature_nodes,
        inference_nodes=args.inference_nodes,
        relax_nodes=args.relax_nodes,
        executor_backend=args.executor,
        schedule=args.schedule,
        compute_workers=args.compute_workers,
        index_dir=args.index_dir,
        telemetry=session,
        run_state=state,
        task_observer=observer,
    )
    result = pipeline.run(proteome, suite, NativeFactory(universe))
    fs, inf, rx = result.feature_stage, result.inference_stage, result.relax_stage
    print(f"{args.species}: {len(proteome)} targets, preset {args.preset}")
    print(
        f"features : {fs.simulation.walltime_minutes:8.1f} min on "
        f"{fs.n_nodes:4d} Andes nodes  = {fs.node_hours:8.1f} node-h"
    )
    print(
        f"inference: {inf.simulation.walltime_minutes:8.1f} min on "
        f"{inf.n_nodes:4d} Summit nodes = {inf.node_hours:8.1f} node-h"
    )
    print(
        f"relax    : {rx.simulation.walltime_minutes:8.1f} min on "
        f"{rx.n_nodes:4d} Summit nodes = {rx.node_hours:8.1f} node-h"
    )
    if result.schedule == "streaming":
        sim = result.streaming_simulation
        print(
            f"streaming: {sim.walltime_seconds / 60:8.1f} min campaign "
            f"makespan, first structure at "
            f"{result.time_to_first_structure_seconds / 60:.1f} min, "
            f"{result.bubble_seconds / 60:.1f} worker-min of bubbles"
        )
    summary = summarize_proteome(inf.top_models)
    print(
        f"quality  : {summary.frac_targets_plddt_high:.0%} targets pLDDT>70, "
        f"{summary.frac_targets_ptms_high:.0%} pTMS>0.6, "
        f"mean recycles {summary.mean_recycles:.1f}"
    )
    if inf.oom_failures:
        print(f"failures : {len(inf.oom_failures)} OOM tasks")
    if args.index_dir is not None:
        from .msa.diskindex import DiskKmerIndex

        attached = [
            lib.index
            for lib in suite.libraries
            if isinstance(lib.index, DiskKmerIndex)
        ]
        print(
            f"index    : {len(attached)} mmap artifact(s), "
            f"{sum(d.nbytes for d in attached) / 1e6:.1f} MB shared "
            f"read-only from {args.index_dir}"
        )
    if state is not None:
        skipped = (fs.skipped_resume, inf.skipped_resume, rx.skipped_resume)
        if any(skipped):
            print(
                f"resume   : skipped {skipped[0]} feature / {skipped[1]} "
                f"inference / {skipped[2]} relax task(s) already ledgered"
            )
        print(
            f"state    : {len(state.ledger)} ledger record(s) -> "
            f"{args.state_dir} (resume with --resume)"
        )
        state.close()
    if session is not None:
        print(f"telemetry: {args.telemetry_dir}/ "
              f"(view with `repro report {args.telemetry_dir}`)")
    return 0


def _cmd_relax(args: argparse.Namespace) -> int:
    from .relax import relax_structure
    from .structure import read_pdb, write_pdb

    structure = read_pdb(args.pdb)
    outcome = relax_structure(structure, method=args.method)
    out = args.out or args.pdb.with_name(args.pdb.stem + "_relaxed.pdb")
    write_pdb(outcome.structure, out)
    b, a = outcome.violations_before, outcome.violations_after
    print(
        f"{args.pdb.name}: clashes {b.n_clashes}->{a.n_clashes}, "
        f"bumps {b.n_bumps}->{a.n_bumps}, "
        f"{outcome.n_minimizations} minimisation(s) -> {out}"
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .core import benchmark_set, benchmark_suite
    from .core.pipeline import ProteomePipeline
    from .core.stats import benchmark_row
    from .fold import NativeFactory
    from .msa import generate_features
    from .sequences import SequenceUniverse

    universe = SequenceUniverse(args.seed)
    bench = benchmark_set(universe, seed=args.seed, n_sequences=args.n)
    suite = benchmark_suite(universe, seed=args.seed, n_sequences=args.n)
    factory = NativeFactory(universe)
    features = {r.record_id: generate_features(r, suite) for r in bench}
    print(f"{'preset':>11} {'pLDDT':>7} {'pTMS':>7} {'count':>6} {'wall(min)':>10}")
    for preset in args.presets:
        nodes = 91 if preset == "casp14" else 32
        pipeline = ProteomePipeline(
            inference_nodes=nodes, use_highmem_routing=False
        )
        run = pipeline.run_inference_stage(features, factory, preset_name=preset)
        row = benchmark_row(preset, run.top_models, run.simulation.walltime_minutes)
        print(
            f"{row.preset:>11} {row.mean_plddt:7.1f} {row.mean_ptms:7.3f} "
            f"{row.count:6d} {row.walltime_minutes:10.1f}"
        )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    import time

    from .msa import build_suite
    from .msa.diskindex import DEFAULT_SHARDS, ensure_disk_index
    from .sequences import SequenceUniverse

    universe = SequenceUniverse(args.seed)
    suite = build_suite(
        universe, [args.species], seed=args.seed, scale=args.scale
    ).reduced()
    n_shards = args.shards if args.shards is not None else DEFAULT_SHARDS
    total_bytes = 0
    for library in suite.libraries:
        t0 = time.perf_counter()
        disk = ensure_disk_index(library, args.out, n_shards=n_shards)
        dt = time.perf_counter() - t0
        total_bytes += disk.nbytes
        print(
            f"{library.name:>16}: {disk.n_sequences:6d} sequences, "
            f"{disk.total_postings:9d} postings -> {disk.n_shards} shard(s), "
            f"{disk.nbytes / 1e6:7.1f} MB in {dt:6.2f}s  "
            f"[{disk.path.name}]"
        )
    print(
        f"\n{len(suite.libraries)} artifacts, {total_bytes / 1e6:.1f} MB "
        f"-> {args.out}\nrun campaigns with: repro campaign "
        f"--species {args.species} --scale {args.scale} --seed {args.seed} "
        f"--index-dir {args.out}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .telemetry import load_run, render_report

    try:
        artifacts = load_run(args.run_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 1
    print(render_report(artifacts))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "predict": _cmd_predict,
        "campaign": _cmd_campaign,
        "relax": _cmd_relax,
        "table1": _cmd_table1,
        "report": _cmd_report,
        "index": _cmd_index,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
