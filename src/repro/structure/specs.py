"""SPECS-like model quality score (after Alapati et al., 2020).

SPECS integrates side-chain orientation with global distance-based terms
so that, unlike TM-score (backbone only), it rewards correctly packed
side chains.  The paper uses SPECS to show that relaxation slightly
*improves* side-chain placement for already-good models (Fig. 3 right).

Our structures are Calpha + virtual-CB resolution, so the side-chain
terms are computed on the virtual-CB vectors.  The functional form
follows the SPECS recipe: a GDT-style multi-cutoff backbone term, a
side-chain distance term with TM-like weighting, and a side-chain
orientation (angular agreement) term.
"""

from __future__ import annotations

import numpy as np

from .protein import pseudo_cb
from .superpose import kabsch
from .tmscore import gdt_ts, tm_d0

__all__ = ["specs_score"]

#: Term weights (backbone GDT, side-chain distance, side-chain orientation).
_W_GDT = 0.40
_W_SC_DIST = 0.35
_W_SC_ORIENT = 0.25


def specs_score(
    model_ca: np.ndarray,
    native_ca: np.ndarray,
    model_cb: np.ndarray | None = None,
    native_cb: np.ndarray | None = None,
) -> float:
    """SPECS-like score in [0, 1] of a model against its native.

    ``model_cb``/``native_cb`` default to the virtual-CB construction
    from the Calpha trace; pass explicit side-chain centers when the
    caller has them (the relaxation pipeline tracks CB explicitly so the
    minimizer can improve side-chain placement).
    """
    mod = np.asarray(model_ca, dtype=np.float64)
    nat = np.asarray(native_ca, dtype=np.float64)
    if mod.shape != nat.shape or mod.ndim != 2 or mod.shape[1] != 3:
        raise ValueError("model and native must be matching (N, 3) arrays")
    n = mod.shape[0]
    if n < 3:
        raise ValueError("need at least 3 residues")
    mcb = pseudo_cb(mod) if model_cb is None else np.asarray(model_cb, dtype=np.float64)
    ncb = pseudo_cb(nat) if native_cb is None else np.asarray(native_cb, dtype=np.float64)
    if mcb.shape != mod.shape or ncb.shape != nat.shape:
        raise ValueError("CB arrays must match CA arrays in shape")

    # Backbone term: GDT-TS on Calpha.
    gdt = gdt_ts(mod, nat)

    # Superpose on backbone, evaluate side chains in that frame (SPECS
    # evaluates side-chain placement given the global superposition).
    sup = kabsch(mod, nat)
    mod_fit_cb = sup.apply(mcb)
    d0 = tm_d0(n)
    sc_dist2 = ((mod_fit_cb - ncb) ** 2).sum(axis=1)
    sc_dist_term = float((1.0 / (1.0 + sc_dist2 / (d0 * d0))).mean())

    # Orientation term: angular agreement of the CA->CB vectors after the
    # backbone superposition (rotation only; vectors are frame-relative).
    mod_vec = (mcb - mod) @ sup.rotation.T
    nat_vec = ncb - nat
    mn = np.linalg.norm(mod_vec, axis=1)
    nn = np.linalg.norm(nat_vec, axis=1)
    valid = (mn > 1e-9) & (nn > 1e-9)
    if valid.any():
        cosang = np.clip(
            (mod_vec[valid] * nat_vec[valid]).sum(axis=1) / (mn[valid] * nn[valid]),
            -1.0,
            1.0,
        )
        orient_term = float(((cosang + 1.0) / 2.0).mean())
    else:  # pragma: no cover - degenerate chains only
        orient_term = 0.0

    return _W_GDT * gdt + _W_SC_DIST * sc_dist_term + _W_SC_ORIENT * orient_term
