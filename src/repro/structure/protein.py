"""Protein structure model.

The reproduction works at Calpha resolution plus a pseudo-side-chain
center (CB) per residue — the level at which every metric the paper
reports is defined: clashes and bumps are Calpha-Calpha distances,
TM-score is a Calpha metric, and SPECS adds side-chain orientation.
Heavy-atom and hydrogen counts (needed for molecular-mechanics sizing in
Fig. 4) are derived per residue from the sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..sequences.alphabet import decode, heavy_atom_count, hydrogen_count

__all__ = ["Structure", "pairwise_distances", "pseudo_cb"]

#: Ideal consecutive Calpha-Calpha distance (trans peptide), Angstrom.
CA_CA_BOND_LENGTH: float = 3.8


def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix for an (N, 3) array."""
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError("coords must have shape (N, 3)")
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def pseudo_cb(ca: np.ndarray) -> np.ndarray:
    """Estimate side-chain (CB-like) positions from a Calpha trace.

    Each CB is placed 1.53 Angstrom from its Calpha, perpendicular-ish to
    the local chain direction — the standard virtual-CB construction used
    by Calpha-only models.  Terminal residues copy their neighbour's
    frame.  Returns an (N, 3) array.
    """
    ca = np.asarray(ca, dtype=np.float64)
    n = ca.shape[0]
    if n == 0:
        return ca.copy()
    if n < 3:
        # Not enough context for a frame; offset along a fixed axis.
        return ca + np.array([0.0, 0.0, 1.53])
    prev_vec = np.empty_like(ca)
    next_vec = np.empty_like(ca)
    prev_vec[1:] = ca[1:] - ca[:-1]
    prev_vec[0] = prev_vec[1]
    next_vec[:-1] = ca[1:] - ca[:-1]
    next_vec[-1] = next_vec[-2]
    bisector = prev_vec - next_vec  # points "outward" at chain kinks
    normal = np.cross(prev_vec, next_vec)
    direction = bisector + 0.5 * normal
    norms = np.linalg.norm(direction, axis=1, keepdims=True)
    # Straight-chain segments give a degenerate frame; fall back to any
    # perpendicular of the local direction.
    degenerate = norms[:, 0] < 1e-9
    if degenerate.any():
        fallback = np.cross(prev_vec[degenerate], np.array([0.0, 0.0, 1.0]))
        fb_norm = np.linalg.norm(fallback, axis=1, keepdims=True)
        still_bad = fb_norm[:, 0] < 1e-9
        if still_bad.any():
            fallback[still_bad] = np.array([1.0, 0.0, 0.0])
            fb_norm = np.linalg.norm(fallback, axis=1, keepdims=True)
        direction[degenerate] = fallback / fb_norm
        norms[degenerate] = 1.0
    return ca + 1.53 * direction / norms


@dataclass(frozen=True)
class Structure:
    """An immutable Calpha-resolution protein structure.

    Attributes
    ----------
    record_id:
        Identifier of the underlying sequence record.
    encoded:
        Encoded amino-acid sequence (uint8 indices).
    ca:
        (N, 3) float64 Calpha coordinates in Angstrom.
    plddt:
        Optional per-residue predicted LDDT in [0, 100]; stored in the
        B-factor column on PDB output, as AlphaFold does.
    model_name:
        Which of the five model heads produced this structure (or
        "native"/"relaxed" etc. for other provenances).
    """

    record_id: str
    encoded: np.ndarray = field(repr=False)
    ca: np.ndarray = field(repr=False)
    plddt: np.ndarray | None = field(default=None, repr=False)
    model_name: str = ""

    def __post_init__(self) -> None:
        ca = np.asarray(self.ca, dtype=np.float64)
        if ca.ndim != 2 or ca.shape[1] != 3:
            raise ValueError("ca must have shape (N, 3)")
        if ca.shape[0] != self.encoded.size:
            raise ValueError(
                f"coordinate/sequence length mismatch: "
                f"{ca.shape[0]} vs {self.encoded.size}"
            )
        if self.plddt is not None and np.asarray(self.plddt).size != ca.shape[0]:
            raise ValueError("plddt length mismatch")
        object.__setattr__(self, "ca", ca)

    # -- Size ----------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ca.shape[0])

    @property
    def sequence(self) -> str:
        return decode(self.encoded)

    @property
    def n_heavy_atoms(self) -> int:
        """Heavy-atom count of the fully built residue set (Fig. 4 x-axis)."""
        return heavy_atom_count(self.encoded)

    @property
    def n_hydrogens(self) -> int:
        return hydrogen_count(self.encoded)

    # -- Geometry -------------------------------------------------------------
    def distances(self) -> np.ndarray:
        """Pairwise Calpha distance matrix."""
        return pairwise_distances(self.ca)

    def cb(self) -> np.ndarray:
        """Pseudo side-chain positions (virtual CB)."""
        return pseudo_cb(self.ca)

    def radius_of_gyration(self) -> float:
        centered = self.ca - self.ca.mean(axis=0)
        return float(np.sqrt((centered**2).sum(axis=1).mean()))

    def mean_plddt(self) -> float:
        if self.plddt is None:
            raise ValueError(f"structure {self.record_id} has no pLDDT")
        return float(np.asarray(self.plddt).mean())

    # -- Derivation ------------------------------------------------------------
    def with_coordinates(self, ca: np.ndarray, model_name: str | None = None) -> "Structure":
        """Copy with replaced coordinates (used by relaxation)."""
        return replace(
            self,
            ca=np.asarray(ca, dtype=np.float64),
            model_name=self.model_name if model_name is None else model_name,
        )

    def with_plddt(self, plddt: np.ndarray) -> "Structure":
        return replace(self, plddt=np.asarray(plddt, dtype=np.float64))

    def translated(self, offset: np.ndarray) -> "Structure":
        return self.with_coordinates(self.ca + np.asarray(offset, dtype=np.float64))

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> "Structure":
        """Apply a rigid transform ``x -> x @ R.T + t``."""
        rot = np.asarray(rotation, dtype=np.float64)
        return self.with_coordinates(self.ca @ rot.T + np.asarray(translation))
