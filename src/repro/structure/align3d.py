"""Sequence-independent structural alignment (APoc/TM-align style core).

The paper's §4.6 annotation analysis runs a TM-score based *global
structural alignment* of each predicted structure against the pdb70
library using APoc.  This module implements the iterative heuristic at
the heart of such aligners:

1. seed residue correspondences by gapless threading of the shorter
   chain onto the longer at several offsets,
2. superpose on the current correspondence (Kabsch),
3. rebuild the correspondence by dynamic programming on the TM-score
   similarity matrix of the superposed coordinates,
4. repeat until the aligned pair set stabilises, keeping the best
   TM-score seen.

The Needleman-Wunsch recurrence uses a linear gap penalty, which admits
a fully vectorised per-row update via a running-maximum transform — an
O(L1) loop of O(L2) numpy work rather than an O(L1*L2) Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .superpose import kabsch
from .tmscore import tm_d0

__all__ = ["AlignmentResult", "align_structures", "nw_align_matrix"]

_NEG_INF = -1e30


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of a structural alignment.

    ``tm_score`` is normalised by the query length (the paper's
    convention for annotation transfer); ``pairs`` holds aligned residue
    index pairs (query_index, target_index); ``sequence_identity`` is the
    fraction of aligned pairs with identical residues (computable only
    when sequences are supplied).
    """

    tm_score: float
    pairs: np.ndarray
    rmsd: float
    sequence_identity: float | None = None

    @property
    def n_aligned(self) -> int:
        return int(self.pairs.shape[0])


def nw_align_matrix(score: np.ndarray, gap_penalty: float) -> np.ndarray:
    """Global alignment over a similarity matrix with linear gap penalty.

    Returns the aligned index pairs as an (K, 2) int array.  ``score``
    is (L1, L2); larger is better; ``gap_penalty`` should be negative.
    """
    if gap_penalty >= 0:
        raise ValueError("gap_penalty must be negative")
    s = np.asarray(score, dtype=np.float64)
    l1, l2 = s.shape
    h = np.zeros((l1 + 1, l2 + 1), dtype=np.float64)
    g = gap_penalty
    j_idx = np.arange(l2 + 1, dtype=np.float64)
    h[0, :] = g * j_idx
    h[:, 0] = g * np.arange(l1 + 1, dtype=np.float64)
    for i in range(1, l1 + 1):
        # Candidate from diagonal and from the row above (gap in query).
        m = np.empty(l2 + 1)
        m[0] = h[i, 0]
        m[1:] = np.maximum(h[i - 1, :-1] + s[i - 1], h[i - 1, 1:] + g)
        # Gaps in target cascade left-to-right:
        #   h[i, j] = max_{k<=j} (m[k] - g*k) + g*j
        h[i] = np.maximum.accumulate(m - g * j_idx) + g * j_idx
        h[i, 0] = g * i
    # Traceback.
    pairs: list[tuple[int, int]] = []
    i, j = l1, l2
    while i > 0 and j > 0:
        here = h[i, j]
        if np.isclose(here, h[i - 1, j - 1] + s[i - 1, j - 1]):
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif np.isclose(here, h[i - 1, j] + g):
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    return np.array(pairs, dtype=np.int64).reshape(-1, 2)


def _tm_from_pairs(
    query: np.ndarray, target: np.ndarray, pairs: np.ndarray, norm_length: int
) -> tuple[float, float]:
    """(tm_score, rmsd) of a correspondence, TM-style.

    The TM-score convention picks the superposition that *maximises* the
    score, not the least-squares fit over all pairs — so after the
    initial Kabsch fit the well-aligned core is iteratively re-selected
    and re-fit, exactly as in the matched-residue scorer.  Without this,
    one badly-placed domain drags the frame and halves the score of the
    good domain.
    """
    if pairs.shape[0] < 3:
        return 0.0, float("inf")
    q = query[pairs[:, 0]]
    t = target[pairs[:, 1]]
    d0 = tm_d0(norm_length)
    d_cut = max(d0, 4.5)
    best_tm = 0.0
    best_rmsd = float("inf")
    idx = np.arange(pairs.shape[0])
    prev: np.ndarray | None = None
    for _ in range(10):
        if idx.size < 3:
            break
        sup = kabsch(q[idx], t[idx])
        d2 = ((sup.apply(q) - t) ** 2).sum(axis=1)
        tm = float((1.0 / (1.0 + d2 / (d0 * d0))).sum() / norm_length)
        if tm > best_tm:
            best_tm = tm
            best_rmsd = sup.rmsd
        within = np.flatnonzero(d2 < d_cut * d_cut)
        if within.size < 3:
            order = np.argsort(d2)
            within = order[: max(3, pairs.shape[0] // 4)]
        if prev is not None and within.size == prev.size and (within == prev).all():
            break
        prev = within
        idx = within
    return best_tm, best_rmsd


def align_structures(
    query_ca: np.ndarray,
    target_ca: np.ndarray,
    query_seq: np.ndarray | None = None,
    target_seq: np.ndarray | None = None,
    max_iterations: int = 8,
    gap_penalty: float = -0.6,
    n_seed_offsets: int = 5,
    window_seeds: bool = True,
) -> AlignmentResult:
    """Align two Calpha traces of (possibly) different lengths.

    Returns the best :class:`AlignmentResult` found, with TM-score
    normalised by the *query* length.
    """
    q = np.asarray(query_ca, dtype=np.float64)
    t = np.asarray(target_ca, dtype=np.float64)
    if q.ndim != 2 or q.shape[1] != 3 or t.ndim != 2 or t.shape[1] != 3:
        raise ValueError("inputs must be (N, 3) coordinate arrays")
    lq, lt = q.shape[0], t.shape[0]
    if lq < 3 or lt < 3:
        raise ValueError("structures too short to align")
    norm = lq
    d0 = tm_d0(norm)

    # Seed correspondences: gapless threading at evenly spaced offsets,
    # plus half-length window seeds so a single well-placed domain can
    # anchor the alignment even when the rest of the query is rotated
    # away (multi-domain model error) — the same trick TM-align's
    # fragment seeding uses.
    span = min(lq, lt)
    max_offset = abs(lq - lt)
    offsets = sorted(
        {int(round(f * max_offset)) for f in np.linspace(0.0, 1.0, n_seed_offsets)}
    )
    seed_pairs: list[np.ndarray] = []
    for off in offsets:
        if lq <= lt:
            pairs = np.stack(
                [np.arange(span), np.arange(off, off + span)], axis=1
            )
        else:
            pairs = np.stack(
                [np.arange(off, off + span), np.arange(span)], axis=1
            )
        seed_pairs.append(pairs)
    if window_seeds:
        window = max(12, span // 2)
        for off in offsets[:: max(1, len(offsets) // 3)]:
            for start in range(0, span - window + 1, max(1, window)):
                idx = np.arange(start, start + window)
                if lq <= lt:
                    seed_pairs.append(np.stack([idx, idx + off], axis=1))
                else:
                    seed_pairs.append(np.stack([idx + off, idx], axis=1))
            # Always include the tail window (C-terminal domain anchor).
            idx = np.arange(span - window, span)
            if lq <= lt:
                seed_pairs.append(np.stack([idx, idx + off], axis=1))
            else:
                seed_pairs.append(np.stack([idx + off, idx], axis=1))

    best_tm = 0.0
    best_pairs = seed_pairs[0]
    best_rmsd = float("inf")
    for pairs in seed_pairs:
        prev_key: bytes | None = None
        for iteration in range(max_iterations):
            tm, rms = _tm_from_pairs(q, t, pairs, norm)
            if tm > best_tm:
                best_tm, best_pairs, best_rmsd = tm, pairs, rms
            # Prune hopeless seeds: one NW sweep from a bad frame will
            # not catch a seed that starts at a fraction of the best.
            if iteration == 1 and tm < 0.5 * best_tm:
                break
            if pairs.shape[0] < 3:
                break
            sup = kabsch(q[pairs[:, 0]], t[pairs[:, 1]])
            q_fit = sup.apply(q)
            # TM-style similarity matrix in the current frame.
            diff = q_fit[:, None, :] - t[None, :, :]
            dist2 = np.einsum("ijk,ijk->ij", diff, diff)
            sim = 1.0 / (1.0 + dist2 / (d0 * d0))
            pairs = nw_align_matrix(sim, gap_penalty)
            key = pairs.tobytes()
            if key == prev_key:
                break
            prev_key = key

    seq_identity: float | None = None
    if query_seq is not None and target_seq is not None and best_pairs.shape[0] > 0:
        qs = np.asarray(query_seq)
        ts = np.asarray(target_seq)
        seq_identity = float(
            (qs[best_pairs[:, 0]] == ts[best_pairs[:, 1]]).mean()
        )
    return AlignmentResult(
        tm_score=best_tm,
        pairs=best_pairs,
        rmsd=best_rmsd,
        sequence_identity=seq_identity,
    )
