"""Optimal rigid-body superposition (Kabsch algorithm).

The workhorse underneath TM-score, SPECS-score and structural alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Superposition", "kabsch", "superpose", "rmsd"]


@dataclass(frozen=True)
class Superposition:
    """Result of a least-squares superposition of mobile onto reference.

    Apply with ``mobile @ rotation.T + translation``.
    """

    rotation: np.ndarray
    translation: np.ndarray
    rmsd: float

    def apply(self, coords: np.ndarray) -> np.ndarray:
        return np.asarray(coords, dtype=np.float64) @ self.rotation.T + self.translation


def kabsch(
    mobile: np.ndarray,
    reference: np.ndarray,
    weights: np.ndarray | None = None,
) -> Superposition:
    """Least-squares rigid superposition of ``mobile`` onto ``reference``.

    Both arrays must be (N, 3) with matched rows.  ``weights`` (N,) gives
    a weighted fit, which the iterative TM-score refinement uses to focus
    on well-aligned cores.  Reflections are excluded (proper rotation).
    """
    mob = np.asarray(mobile, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if mob.shape != ref.shape or mob.ndim != 2 or mob.shape[1] != 3:
        raise ValueError("mobile and reference must be matching (N, 3) arrays")
    if mob.shape[0] == 0:
        raise ValueError("cannot superpose empty point sets")
    if weights is None:
        w = np.ones(mob.shape[0], dtype=np.float64)
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (mob.shape[0],):
            raise ValueError("weights must be (N,)")
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
    wsum = w.sum()
    mob_center = (w[:, None] * mob).sum(axis=0) / wsum
    ref_center = (w[:, None] * ref).sum(axis=0) / wsum
    mob_c = mob - mob_center
    ref_c = ref - ref_center
    # Covariance and SVD.
    cov = (w[:, None] * mob_c).T @ ref_c
    u, _s, vt = np.linalg.svd(cov)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    flip = np.diag([1.0, 1.0, d])
    rotation = vt.T @ flip @ u.T
    translation = ref_center - rotation @ mob_center
    fitted = mob @ rotation.T + translation
    dev2 = ((fitted - ref) ** 2).sum(axis=1)
    rms = float(np.sqrt((w * dev2).sum() / wsum))
    return Superposition(rotation=rotation, translation=translation, rmsd=rms)


def superpose(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Return ``mobile`` optimally superposed onto ``reference``."""
    return kabsch(mobile, reference).apply(mobile)


def rmsd(a: np.ndarray, b: np.ndarray, superposition: bool = True) -> float:
    """RMSD between matched coordinate sets, optionally after superposition."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if superposition:
        return kabsch(a, b).rmsd
    if a.shape != b.shape:
        raise ValueError("shape mismatch")
    return float(np.sqrt(((a - b) ** 2).sum(axis=1).mean()))
