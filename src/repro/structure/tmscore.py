"""TM-score (Zhang & Skolnick 2004) for matched-length Calpha traces.

TM-score is the paper's primary global model-quality metric (Fig. 3,
§4.6).  This is a faithful implementation of the published algorithm for
pre-aligned (residue-matched) structures: the score is maximised over
rigid superpositions found by an iterative core-refinement search seeded
from multiple fragments.  Sequence-independent alignment (needed for
library search) lives in :mod:`repro.structure.align3d` on top of this.
"""

from __future__ import annotations

import numpy as np

from .superpose import kabsch

__all__ = ["tm_d0", "tm_score", "gdt_ts"]


def tm_d0(n_residues: int) -> float:
    """Length-dependent TM-score normalisation distance d0 (Angstrom)."""
    if n_residues <= 0:
        raise ValueError("n_residues must be positive")
    if n_residues <= 15:
        return 0.5
    return max(0.5, 1.24 * (n_residues - 15) ** (1.0 / 3.0) - 1.8)


def _score_from_distances(dist2: np.ndarray, d0: float, norm_length: int) -> float:
    return float((1.0 / (1.0 + dist2 / (d0 * d0))).sum() / norm_length)


def tm_score(
    model: np.ndarray,
    native: np.ndarray,
    norm_length: int | None = None,
    max_iterations: int = 20,
) -> float:
    """TM-score of ``model`` against ``native`` (matched residues).

    Parameters
    ----------
    model, native:
        (N, 3) Calpha coordinates with residue i of one matching residue
        i of the other.
    norm_length:
        Normalisation length L_target; defaults to N (the usual choice
        when scoring a full-length prediction against its native).
    max_iterations:
        Cap on core-refinement sweeps per seed fragment.

    Returns the maximum score found across seed fragments, in (0, 1].
    """
    mod = np.asarray(model, dtype=np.float64)
    nat = np.asarray(native, dtype=np.float64)
    if mod.shape != nat.shape or mod.ndim != 2 or mod.shape[1] != 3:
        raise ValueError("model and native must be matching (N, 3) arrays")
    n = mod.shape[0]
    if n == 0:
        raise ValueError("empty structures")
    L = norm_length if norm_length is not None else n
    d0 = tm_d0(L)
    # Seed fragments: full chain plus progressively shorter windows, as in
    # the reference implementation, so a well-predicted domain can anchor
    # the superposition even when the rest of the chain is wrong.
    seeds: list[tuple[int, int]] = [(0, n)]
    for frac in (2, 4):
        size = max(4, n // frac)
        for start in range(0, n - size + 1, max(1, size // 2)):
            seeds.append((start, start + size))
    best = 0.0
    d_cut = max(d0, 4.5)
    for start, stop in seeds:
        idx = np.arange(start, stop)
        prev_idx: np.ndarray | None = None
        for _ in range(max_iterations):
            if idx.size < 3:
                break
            sup = kabsch(mod[idx], nat[idx])
            fitted = sup.apply(mod)
            dist2 = ((fitted - nat) ** 2).sum(axis=1)
            best = max(best, _score_from_distances(dist2, d0, L))
            within = np.flatnonzero(dist2 < d_cut * d_cut)
            if within.size < 3:
                # Loosen the inclusion cutoff rather than giving up.
                order = np.argsort(dist2)
                within = order[: max(3, n // 4)]
            if prev_idx is not None and within.size == prev_idx.size and (
                within == prev_idx
            ).all():
                break
            prev_idx = within
            idx = within
    return best


def gdt_ts(model: np.ndarray, native: np.ndarray) -> float:
    """GDT-TS score in [0, 1]: mean coverage at 1/2/4/8 Angstrom cutoffs.

    Uses the TM-score superposition search to pick the frame, then counts
    residues within each cutoff — the standard CASP definition up to the
    single-superposition simplification.
    """
    mod = np.asarray(model, dtype=np.float64)
    nat = np.asarray(native, dtype=np.float64)
    if mod.shape != nat.shape:
        raise ValueError("shape mismatch")
    n = mod.shape[0]
    best_cov = np.zeros(4)
    cutoffs = np.array([1.0, 2.0, 4.0, 8.0])
    # Reuse the same seed/refine loop; track per-cutoff best coverage.
    seeds: list[tuple[int, int]] = [(0, n)]
    size = max(4, n // 2)
    for start in range(0, n - size + 1, max(1, size // 2)):
        seeds.append((start, start + size))
    for start, stop in seeds:
        idx = np.arange(start, stop)
        for _ in range(10):
            if idx.size < 3:
                break
            sup = kabsch(mod[idx], nat[idx])
            dist = np.sqrt(((sup.apply(mod) - nat) ** 2).sum(axis=1))
            cov = (dist[None, :] < cutoffs[:, None]).mean(axis=1)
            best_cov = np.maximum(best_cov, cov)
            new_idx = np.flatnonzero(dist < 4.0)
            if new_idx.size < 3 or new_idx.size == idx.size:
                break
            idx = new_idx
    return float(best_cov.mean())
