"""PDB-format serialization for Calpha-resolution structures.

Writes one ``ATOM`` record per residue (the CA atom), placing per-residue
pLDDT in the B-factor column exactly as AlphaFold's output does, so the
files are viewable in standard molecular viewers with confidence
coloring.  A matching reader round-trips what the writer produces and
tolerates ordinary CA-only PDB files.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..sequences.alphabet import AA_TO_INDEX, AMINO_ACIDS
from .protein import Structure

__all__ = ["structure_to_pdb", "write_pdb", "read_pdb", "parse_pdb"]

#: Three-letter residue names in alphabet order.
_THREE_LETTER: dict[str, str] = {
    "A": "ALA", "C": "CYS", "D": "ASP", "E": "GLU", "F": "PHE",
    "G": "GLY", "H": "HIS", "I": "ILE", "K": "LYS", "L": "LEU",
    "M": "MET", "N": "ASN", "P": "PRO", "Q": "GLN", "R": "ARG",
    "S": "SER", "T": "THR", "V": "VAL", "W": "TRP", "Y": "TYR",
}
_ONE_LETTER: dict[str, str] = {v: k for k, v in _THREE_LETTER.items()}


def structure_to_pdb(structure: Structure) -> str:
    """Render a structure as PDB text (CA trace, pLDDT as B-factor)."""
    out = io.StringIO()
    title = structure.record_id
    if structure.model_name:
        title += f" model={structure.model_name}"
    out.write(f"REMARK   1 {title}\n")
    plddt = structure.plddt
    seq = structure.sequence
    for i, (aa, xyz) in enumerate(zip(seq, structure.ca)):
        b = float(plddt[i]) if plddt is not None else 0.0
        out.write(
            f"ATOM  {i + 1:5d}  CA  {_THREE_LETTER[aa]} A{i + 1:4d}    "
            f"{xyz[0]:8.3f}{xyz[1]:8.3f}{xyz[2]:8.3f}{1.00:6.2f}{b:6.2f}"
            f"           C\n"
        )
    out.write("TER\nEND\n")
    return out.getvalue()


def write_pdb(structure: Structure, path: str | Path) -> None:
    Path(path).write_text(structure_to_pdb(structure), encoding="ascii")


def parse_pdb(text: str, record_id: str = "") -> Structure:
    """Parse CA records from PDB text into a :class:`Structure`.

    Only ``ATOM`` records whose atom name is ``CA`` are consumed; other
    atoms are ignored so full-atom PDB files degrade gracefully to a
    Calpha trace.
    """
    coords: list[tuple[float, float, float]] = []
    residues: list[int] = []
    bfactors: list[float] = []
    rid = record_id
    for line in text.splitlines():
        if line.startswith("REMARK") and not rid:
            parts = line.split()
            if len(parts) >= 3:
                rid = parts[2]
        if not line.startswith("ATOM"):
            continue
        if line[12:16].strip() != "CA":
            continue
        resname = line[17:20].strip()
        one = _ONE_LETTER.get(resname)
        if one is None:
            raise ValueError(f"non-standard residue {resname!r}")
        residues.append(AA_TO_INDEX[one])
        coords.append(
            (float(line[30:38]), float(line[38:46]), float(line[46:54]))
        )
        bfield = line[60:66].strip()
        bfactors.append(float(bfield) if bfield else 0.0)
    if not coords:
        raise ValueError("no CA atoms found in PDB text")
    plddt = np.array(bfactors, dtype=np.float64)
    return Structure(
        record_id=rid or "unknown",
        encoded=np.array(residues, dtype=np.uint8),
        ca=np.array(coords, dtype=np.float64),
        plddt=plddt if np.any(plddt > 0) else None,
    )


def read_pdb(path: str | Path) -> Structure:
    return parse_pdb(Path(path).read_text(encoding="ascii"))


# Sanity: the alphabet must cover exactly the 20 standard residues.
assert set(_THREE_LETTER) == set(AMINO_ACIDS)
