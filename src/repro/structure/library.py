"""Synthetic fold library: the pdb70 stand-in for structural search.

The paper's §4.6 aligns predicted structures of "hypothetical" proteins
against the pdb70 database with APoc and transfers annotations from
strong structural matches.  :class:`FoldLibrary` plays pdb70's role: a
collection of structures generated from *annotated* families of the
shared universe, searchable by TM-score with the iterative structural
aligner.

Because library structures come from the same fold space as the
proteome's hidden natives, a well-predicted hypothetical protein really
does align to its family's library representative even when sequence
identity has decayed below 20% — the mechanism behind the paper's
annotation result.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..sequences.generator import ProteinRecord, SequenceUniverse, rng_for
from .align3d import align_structures

from .protein import Structure

__all__ = ["FoldLibraryEntry", "FoldHit", "FoldLibrary", "build_fold_library"]


@dataclass(frozen=True)
class FoldLibraryEntry:
    """One deposited structure with its annotation metadata."""

    entry_id: str
    structure: Structure
    family_id: int
    annotation: str


@dataclass(frozen=True)
class FoldHit:
    """Result of searching one query against the library."""

    entry: FoldLibraryEntry
    tm_score: float
    sequence_identity: float
    n_aligned: int


class FoldLibrary:
    """A searchable collection of experimental-like structures."""

    def __init__(self, entries: list[FoldLibraryEntry]) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def search(
        self,
        query: Structure,
        max_candidates: int | None = None,
        length_window: float = 0.6,
        full_align_top: int = 6,
    ) -> list[FoldHit]:
        """TM-score search of a query structure against the library.

        Two stages, like real structural search pipelines: a cheap quick
        alignment (few seeds, two refinement sweeps) ranks all
        candidates, then the best ``full_align_top`` get the full
        seed/refine treatment.  ``length_window`` prefilters candidates
        by relative length difference; ``max_candidates`` caps the quick
        stage.  Hits are returned sorted by TM-score descending.
        """
        qlen = len(query)
        candidates = [
            e
            for e in self.entries
            if abs(len(e.structure) - qlen) <= length_window * max(qlen, len(e.structure))
        ]
        if max_candidates is not None and len(candidates) > max_candidates:
            # Keep the closest lengths; ties broken deterministically.
            candidates.sort(key=lambda e: (abs(len(e.structure) - qlen), e.entry_id))
            candidates = candidates[:max_candidates]
        quick: list[tuple[float, FoldLibraryEntry]] = []
        for entry in candidates:
            result = align_structures(
                query.ca,
                entry.structure.ca,
                max_iterations=2,
                n_seed_offsets=3,
                window_seeds=False,
            )
            quick.append((result.tm_score, entry))
        quick.sort(key=lambda pair: pair[0], reverse=True)
        hits: list[FoldHit] = []
        for rank, (quick_tm, entry) in enumerate(quick):
            if rank < full_align_top:
                result = align_structures(
                    query.ca,
                    entry.structure.ca,
                    query_seq=query.encoded,
                    target_seq=entry.structure.encoded,
                )
                tm, identity, n_aligned = (
                    result.tm_score,
                    result.sequence_identity or 0.0,
                    result.n_aligned,
                )
            else:
                tm, identity, n_aligned = quick_tm, 0.0, 0
            hits.append(
                FoldHit(
                    entry=entry,
                    tm_score=tm,
                    sequence_identity=identity,
                    n_aligned=n_aligned,
                )
            )
        hits.sort(key=lambda h: h.tm_score, reverse=True)
        return hits

    def best_hit(self, query: Structure, **kwargs) -> FoldHit | None:
        hits = self.search(query, **kwargs)
        return hits[0] if hits else None


def build_fold_library(
    universe: SequenceUniverse,
    family_ids: list[int],
    seed: int = 0,
    unannotated_deposit_probability: float = 0.6,
    members_per_family: int = 1,
) -> FoldLibrary:
    """Deposit representative structures of the given families.

    Structural coverage is broader than functional annotation: the PDB
    holds solved structures for most fold space, including folds whose
    members in *this* organism carry no annotation — which is exactly
    why structure-based annotation works where sequence methods fail
    (§4.6).  Annotated families always deposit; unannotated families
    deposit with ``unannotated_deposit_probability``; families with no
    sequenced homologs anywhere (multiplicity 0) never do — they are
    the novel-fold reservoir.

    Uses the same :class:`~repro.fold.generator.NativeFactory` machinery
    as the hidden natives (lazy import: structure <- fold would otherwise
    be circular), at modest divergence from each family ancestor — a
    library structure is a *relative* of the proteome member, not its
    own native.
    """
    from ..fold.generator import NativeFactory  # local import: avoids cycle

    factory = NativeFactory(universe)
    entries: list[FoldLibraryEntry] = []
    rng = rng_for(seed, "fold-library")
    for fid in family_ids:
        fam = universe.family(fid)
        deposit_rng = rng_for(seed, "fold-library-deposit", fid)
        if not fam.annotated and (
            deposit_rng.random() >= unannotated_deposit_probability
        ):
            continue
        if fam.library_multiplicity == 0:
            continue  # families nobody ever deposited
        for m in range(members_per_family):
            divergence = float(rng.uniform(0.03, 0.25))
            encoded = universe.member(fam, divergence, member_seed=77_000 + m)
            record = ProteinRecord(
                record_id=f"pdb_{fid}_{m}",
                encoded=encoded,
                family_id=fid,
                divergence=divergence,
                annotated=True,
            )
            structure = factory.native(record)
            entries.append(
                FoldLibraryEntry(
                    entry_id=record.record_id,
                    structure=structure,
                    family_id=fid,
                    annotation=f"family_{fid}_function",
                )
            )
    return FoldLibrary(entries)
