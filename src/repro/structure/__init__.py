"""Structure substrate: models, metrics, alignment, PDB I/O, fold library."""

from .align3d import AlignmentResult, align_structures, nw_align_matrix
from .library import FoldHit, FoldLibrary, FoldLibraryEntry, build_fold_library
from .pdb import parse_pdb, read_pdb, structure_to_pdb, write_pdb
from .protein import Structure, pairwise_distances, pseudo_cb
from .specs import specs_score
from .superpose import Superposition, kabsch, rmsd, superpose
from .tmscore import gdt_ts, tm_d0, tm_score

__all__ = [
    "AlignmentResult",
    "align_structures",
    "nw_align_matrix",
    "FoldHit",
    "FoldLibrary",
    "FoldLibraryEntry",
    "build_fold_library",
    "parse_pdb",
    "read_pdb",
    "structure_to_pdb",
    "write_pdb",
    "Structure",
    "pairwise_distances",
    "pseudo_cb",
    "specs_score",
    "Superposition",
    "kabsch",
    "rmsd",
    "superpose",
    "gdt_ts",
    "tm_d0",
    "tm_score",
]
