"""Content-addressed caching for the feature-generation stage.

AF_Cache-style observation: in high-throughput AlphaFold deployments
the CPU feature stage (MSA search) is recomputed far more often than it
changes — benchmark sessions, restarted campaigns, and shared targets
all re-derive identical features.  A content-addressed cache removes
that recomputation entirely: the key is a hash of

* the encoded query sequence (not the record id — two records with the
  same sequence share features),
* the library suite fingerprint (any library change invalidates), and
* the :class:`~repro.msa.features.FeatureGenConfig` knobs.

The cache is two-level: a process-local dict, plus an optional on-disk
directory of pickled bundles so features survive across sessions (the
benchmark suite points it at a shared directory).  Both executors may
hit one cache concurrently; all bookkeeping is lock-protected.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .atomicio import atomic_write_bytes
from .telemetry.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .msa.databases import LibrarySuite
    from .msa.features import FeatureBundle, FeatureGenConfig
    from .sequences.generator import ProteinRecord

__all__ = ["CacheStats", "FeatureCache"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters at a point in time."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Counter deltas relative to an earlier snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits, misses=self.misses - earlier.misses
        )


class FeatureCache:
    """Two-level (memory + optional disk) feature-bundle cache.

    ``directory=None`` keeps the cache purely in memory.  With a
    directory, every stored bundle is also pickled to
    ``<directory>/<key>.pkl`` and lookups fall back to disk on a memory
    miss — which is what lets separate benchmark sessions share one
    feature set.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict[str, "FeatureBundle"] = {}
        self._dir = Path(directory) if directory is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._bind_counters()

    def _bind_counters(self) -> None:
        """Resolve metric handles once against the active registry.

        ``get`` is the hottest cache path; re-resolving three counters
        per lookup (a dict hit under the registry lock, each) is pure
        overhead.  The registry identity is re-checked per lookup so a
        ``use_metrics``/``set_metrics`` swap mid-session still lands
        counts on the newly active registry.
        """
        self._registry = get_metrics()
        self._hits_counter = self._registry.counter("feature.cache.hits")
        self._misses_counter = self._registry.counter("feature.cache.misses")
        self._corrupt_counter = self._registry.counter("feature.cache.corrupt")

    def __reduce__(self):
        # A worker process rehydrates a disk-backed cache by path — the
        # pickle must not drag the in-memory bundle dict (or a lock)
        # across; disk entries are the shared level between processes.
        return (FeatureCache, (self._dir,))

    # -- Keys ----------------------------------------------------------------
    def key_for(
        self,
        record: "ProteinRecord",
        suite: "LibrarySuite",
        config: "FeatureGenConfig",
    ) -> str:
        """Content-addressed key: sequence + suite + config.

        The suite fingerprint is memoised on the suite itself (see
        :meth:`LibrarySuite.fingerprint`), so one campaign pays the
        content hash once.  An earlier cache-side memo keyed by
        ``id(suite)`` silently inherited a dead suite's fingerprint
        whenever CPython reused the id — wrong key, wrong features.

        Keys are *index-backend-invariant*: the fingerprint hashes the
        library content plus the k-mer width, never the index
        representation, so a campaign that attaches a memory-mapped
        :class:`~repro.msa.diskindex.DiskKmerIndex` (``--index-dir``)
        hits the same cache entries as one that builds CSR indexes
        in-process — the two backends score bit-identically.
        """
        suite_fp = suite.fingerprint()
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(record.encoded).tobytes())
        h.update(suite_fp.encode())
        h.update(
            f"{config.min_containment}|{config.max_hits_per_library}"
            f"|{config.verify_top}|{config.template_min_identity}".encode()
        )
        return h.hexdigest()

    # -- Lookup / store ------------------------------------------------------
    def get(
        self, key: str, record: "ProteinRecord | None" = None
    ) -> "FeatureBundle | None":
        """Cached bundle for ``key``, or ``None`` (counted as a miss).

        When ``record`` is given, the returned bundle carries *that*
        record: features are keyed by sequence content, so a hit from a
        different record with the same sequence must not leak the
        original record's identity.
        """
        bundle = None
        corrupt = False
        with self._lock:
            bundle = self._memory.get(key)
        if bundle is None and self._dir is not None:
            path = self._dir / f"{key}.pkl"
            if path.exists():
                try:
                    bundle = pickle.loads(path.read_bytes())
                except (pickle.UnpicklingError, EOFError, OSError, ValueError):
                    # Corrupt entry: a miss, but quarantine it so the
                    # slot self-repairs on the next put instead of
                    # re-failing every lookup until then.
                    bundle = None
                    corrupt = True
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass
                else:
                    with self._lock:
                        self._memory[key] = bundle
        with self._lock:
            if bundle is None:
                self._misses += 1
            else:
                self._hits += 1
        # Every lookup also lands on the active metrics registry — the
        # shared substrate stage results and exports read, replacing the
        # per-stage snapshot/delta plumbing the pipeline used to carry.
        # All counters were created at bind time, so an all-miss (or
        # all-hit) run still exports the other one as an explicit zero.
        if get_metrics() is not self._registry:
            self._bind_counters()
        if bundle is None:
            self._misses_counter.inc()
        else:
            self._hits_counter.inc()
        if corrupt:
            self._corrupt_counter.inc()
        if bundle is not None and record is not None:
            bundle = replace(bundle, record=record)
        return bundle

    def put(self, key: str, bundle: "FeatureBundle") -> None:
        """Store a bundle under its key (memory, and disk if enabled)."""
        with self._lock:
            self._memory[key] = bundle
        if self._dir is not None:
            # Unique-temp + atomic rename: concurrent readers never see
            # partials, and concurrent writers of one key each get their
            # own scratch path (a shared <key>.pkl.tmp let two puts
            # interleave write/replace and publish a torn pickle).
            atomic_write_bytes(self._dir / f"{key}.pkl", pickle.dumps(bundle))

    # -- Introspection -------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses)

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory level (disk entries, if any, survive)."""
        with self._lock:
            self._memory.clear()
