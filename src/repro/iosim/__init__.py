"""Parallel-filesystem contention and library-replication models."""

from .filesystem import FilesystemSpec, contention_factor
from .replication import ReplicationPlan, dcp_copy_seconds, paper_plan

__all__ = [
    "FilesystemSpec",
    "contention_factor",
    "ReplicationPlan",
    "dcp_copy_seconds",
    "paper_plan",
]
