"""Parallel-filesystem contention and library-replication models."""

from .filesystem import FilesystemSpec, contention_factor
from .replication import (
    INDEX_REPLICA_FS,
    IndexReplicaSet,
    ReplicationPlan,
    dcp_copy_seconds,
    paper_plan,
    searches_per_replica_sweep,
    sweet_spot_jobs_per_replica,
)

__all__ = [
    "FilesystemSpec",
    "contention_factor",
    "ReplicationPlan",
    "dcp_copy_seconds",
    "paper_plan",
    "INDEX_REPLICA_FS",
    "IndexReplicaSet",
    "searches_per_replica_sweep",
    "sweet_spot_jobs_per_replica",
]
