"""Parallel filesystem contention model.

§3.2.1: HHblits-style searches issue *many small file reads*, which
bottleneck on the shared filesystem's metadata servers and on the disks
holding the library; the paper's mitigation is 24 identical copies of
the reduced library with 4 concurrent search jobs per copy.

The model has two contention sources:

* **per-replica bandwidth** — each library copy serves up to
  ``jobs_at_full_speed`` concurrent searches without slowdown; beyond
  that, service degrades linearly (disk seek-bound small reads do not
  overlap well);
* **metadata service** — a single shared metadata server handles the
  open/stat traffic of *all* jobs; demand beyond its service rate slows
  every search proportionally.

Both combine multiplicatively into the ``io_contention`` factor consumed
by :func:`repro.cluster.costmodel.feature_task_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FilesystemSpec", "contention_factor"]


@dataclass(frozen=True)
class FilesystemSpec:
    """A shared parallel filesystem (Alpine/GPFS-like).

    ``metadata_ops_per_second`` is the aggregate small-op service rate;
    ``jobs_at_full_speed_per_replica`` is how many concurrent searches
    one on-disk library copy sustains before seek contention bites
    (the paper settled on 4).
    """

    name: str = "alpine"
    metadata_ops_per_second: float = 40_000.0
    jobs_at_full_speed_per_replica: int = 4
    replica_bandwidth_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.metadata_ops_per_second <= 0:
            raise ValueError("metadata_ops_per_second must be positive")
        if self.jobs_at_full_speed_per_replica < 1:
            raise ValueError("jobs_at_full_speed_per_replica must be >= 1")


#: Metadata ops one search issues per second at full speed (HHblits
#: touches its database shards repeatedly; order hundreds of opens/s).
_META_OPS_PER_JOB_PER_SECOND: float = 300.0


def contention_factor(
    n_jobs: int,
    n_replicas: int,
    fs: FilesystemSpec | None = None,
) -> float:
    """I/O slowdown factor (>= 1) for ``n_jobs`` searches on ``n_replicas``.

    Jobs are spread evenly across replicas (the paper pinned 4 per
    copy); the factor multiplies the I/O-bound share of search runtime.
    """
    if n_jobs < 1 or n_replicas < 1:
        raise ValueError("n_jobs and n_replicas must be >= 1")
    spec = fs or FilesystemSpec()
    jobs_per_replica = n_jobs / n_replicas
    replica_factor = max(
        1.0,
        (jobs_per_replica / spec.jobs_at_full_speed_per_replica)
        ** spec.replica_bandwidth_exponent,
    )
    metadata_demand = n_jobs * _META_OPS_PER_JOB_PER_SECOND
    metadata_factor = max(1.0, metadata_demand / spec.metadata_ops_per_second)
    return replica_factor * metadata_factor
