"""Library replication planning (mpiFileUtils-style parallel copy).

§3.2.1: the sequence libraries cannot live in node memory or burst
buffers across jobs, so the paper placed 24 identical copies of the
reduced (420 GB) dataset on the parallel filesystem with dcp/mpiFileUtils
and ran 4 search jobs against each copy.  This module sizes such plans:
copy time, storage footprint, and the end-to-end feature-generation
throughput for a given (replicas, concurrent jobs) choice — the numbers
behind the bench that shows why 24x4 was the right call and why the
full 2.1 TB dataset was impractical to replicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    JOBS_PER_LIBRARY_REPLICA,
    LIBRARY_REPLICA_COUNT,
)
from .filesystem import FilesystemSpec, contention_factor

__all__ = ["ReplicationPlan", "dcp_copy_seconds", "paper_plan"]

#: Sustained per-node copy bandwidth of a dcp run (bytes/s).  Parallel
#: filesystem copies stream well; ~1 GB/s/node is the right order.
_DCP_NODE_BANDWIDTH: float = 1.0e9

#: Aggregate filesystem write bandwidth cap shared by all copy streams.
_FS_WRITE_BANDWIDTH_CAP: float = 24.0e9


def dcp_copy_seconds(dataset_bytes: int, n_nodes: int) -> float:
    """Wall time of one parallel dataset copy with ``n_nodes`` movers."""
    if dataset_bytes < 0 or n_nodes < 1:
        raise ValueError("bad dataset size or node count")
    bandwidth = min(n_nodes * _DCP_NODE_BANDWIDTH, _FS_WRITE_BANDWIDTH_CAP)
    return dataset_bytes / bandwidth


@dataclass(frozen=True)
class ReplicationPlan:
    """A replica layout for the feature-generation campaign."""

    dataset_bytes: int
    n_replicas: int
    jobs_per_replica: int
    copy_nodes: int = 16

    def __post_init__(self) -> None:
        if self.n_replicas < 1 or self.jobs_per_replica < 1:
            raise ValueError("replicas and jobs_per_replica must be >= 1")

    @property
    def n_concurrent_jobs(self) -> int:
        return self.n_replicas * self.jobs_per_replica

    @property
    def storage_bytes(self) -> int:
        return self.dataset_bytes * self.n_replicas

    def replication_seconds(self) -> float:
        """Time to stage all replicas (copies run one after another per
        mover group; aggregate bandwidth caps parallel copies anyway)."""
        return self.n_replicas * dcp_copy_seconds(
            self.dataset_bytes, self.copy_nodes
        )

    def contention(self, fs: FilesystemSpec | None = None) -> float:
        """I/O slowdown each search job sees under this plan."""
        return contention_factor(
            self.n_concurrent_jobs, self.n_replicas, fs=fs
        )


def paper_plan(dataset_bytes: int) -> ReplicationPlan:
    """The paper's 24-replica, 4-jobs-per-copy layout."""
    return ReplicationPlan(
        dataset_bytes=dataset_bytes,
        n_replicas=LIBRARY_REPLICA_COUNT,
        jobs_per_replica=JOBS_PER_LIBRARY_REPLICA,
    )
