"""Library replication planning (mpiFileUtils-style parallel copy).

§3.2.1: the sequence libraries cannot live in node memory or burst
buffers across jobs, so the paper placed 24 identical copies of the
reduced (420 GB) dataset on the parallel filesystem with dcp/mpiFileUtils
and ran 4 search jobs against each copy.  This module sizes such plans:
copy time, storage footprint, and the end-to-end feature-generation
throughput for a given (replicas, concurrent jobs) choice — the numbers
behind the bench that shows why 24x4 was the right call and why the
full 2.1 TB dataset was impractical to replicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    JOBS_PER_LIBRARY_REPLICA,
    LIBRARY_REPLICA_COUNT,
)
from .filesystem import FilesystemSpec, contention_factor

__all__ = [
    "ReplicationPlan",
    "dcp_copy_seconds",
    "paper_plan",
    "INDEX_REPLICA_FS",
    "IndexReplicaSet",
    "searches_per_replica_sweep",
    "sweet_spot_jobs_per_replica",
]

#: Sustained per-node copy bandwidth of a dcp run (bytes/s).  Parallel
#: filesystem copies stream well; ~1 GB/s/node is the right order.
_DCP_NODE_BANDWIDTH: float = 1.0e9

#: Aggregate filesystem write bandwidth cap shared by all copy streams.
_FS_WRITE_BANDWIDTH_CAP: float = 24.0e9


def dcp_copy_seconds(dataset_bytes: int, n_nodes: int) -> float:
    """Wall time of one parallel dataset copy with ``n_nodes`` movers."""
    if dataset_bytes < 0 or n_nodes < 1:
        raise ValueError("bad dataset size or node count")
    bandwidth = min(n_nodes * _DCP_NODE_BANDWIDTH, _FS_WRITE_BANDWIDTH_CAP)
    return dataset_bytes / bandwidth


@dataclass(frozen=True)
class ReplicationPlan:
    """A replica layout for the feature-generation campaign."""

    dataset_bytes: int
    n_replicas: int
    jobs_per_replica: int
    copy_nodes: int = 16

    def __post_init__(self) -> None:
        if self.n_replicas < 1 or self.jobs_per_replica < 1:
            raise ValueError("replicas and jobs_per_replica must be >= 1")

    @property
    def n_concurrent_jobs(self) -> int:
        return self.n_replicas * self.jobs_per_replica

    @property
    def storage_bytes(self) -> int:
        return self.dataset_bytes * self.n_replicas

    def replication_seconds(self) -> float:
        """Time to stage all replicas (copies run one after another per
        mover group; aggregate bandwidth caps parallel copies anyway)."""
        return self.n_replicas * dcp_copy_seconds(
            self.dataset_bytes, self.copy_nodes
        )

    def contention(self, fs: FilesystemSpec | None = None) -> float:
        """I/O slowdown each search job sees under this plan."""
        return contention_factor(
            self.n_concurrent_jobs, self.n_replicas, fs=fs
        )


def paper_plan(dataset_bytes: int) -> ReplicationPlan:
    """The paper's 24-replica, 4-jobs-per-copy layout."""
    return ReplicationPlan(
        dataset_bytes=dataset_bytes,
        n_replicas=LIBRARY_REPLICA_COUNT,
        jobs_per_replica=JOBS_PER_LIBRARY_REPLICA,
    )


# -- Index-replica contention (the disk-index artifact on shared disk) -------

#: Filesystem spec for placing *disk-index artifacts* (sharded mmap
#: postings, ``repro.msa.diskindex``) on the parallel filesystem.
#: Random postings gathers degrade *superlinearly* once a copy is
#: oversubscribed — seek-bound readers steal each other's readahead —
#: which the default linear model cannot express; an exponent > 1 makes
#: per-replica throughput *peak* at the full-speed job count instead of
#: plateauing, reproducing the paper's observed 4-searches-per-copy
#: sweet spot as a maximum rather than a saturation point.
INDEX_REPLICA_FS = FilesystemSpec(
    name="alpine-diskindex",
    replica_bandwidth_exponent=1.3,
)


@dataclass(frozen=True)
class IndexReplicaSet:
    """``n_replicas`` copies of the disk-index artifacts on shared disk.

    The in-process campaign shares *one* page-cache copy per node; at
    cluster scale the artifact set is replicated across the parallel
    filesystem exactly like the paper's library copies, and concurrent
    searchers contend per copy.  This models that placement: storage
    footprint, per-searcher contention, and aggregate search throughput
    for a given concurrency.
    """

    dataset_bytes: int
    n_replicas: int
    fs: FilesystemSpec = INDEX_REPLICA_FS

    def __post_init__(self) -> None:
        if self.dataset_bytes < 0 or self.n_replicas < 1:
            raise ValueError("bad dataset size or replica count")

    @property
    def storage_bytes(self) -> int:
        return self.dataset_bytes * self.n_replicas

    def contention(self, n_jobs: int) -> float:
        """Slowdown each of ``n_jobs`` concurrent searchers sees."""
        return contention_factor(n_jobs, self.n_replicas, fs=self.fs)

    def aggregate_throughput(self, n_jobs: int) -> float:
        """Full-speed-search-equivalents completed per unit time."""
        return n_jobs / self.contention(n_jobs)

    def per_replica_throughput(self, jobs_per_replica: int) -> float:
        """Throughput one replica delivers at the given oversubscription."""
        n_jobs = jobs_per_replica * self.n_replicas
        return self.aggregate_throughput(n_jobs) / self.n_replicas


def searches_per_replica_sweep(
    dataset_bytes: int,
    n_replicas: int = LIBRARY_REPLICA_COUNT,
    max_jobs_per_replica: int = 12,
    fs: FilesystemSpec = INDEX_REPLICA_FS,
) -> list[dict]:
    """Throughput vs. concurrent searches per index replica.

    The sweep behind the paper's 24×4 layout, recomputed for the
    disk-index artifacts: fix the replica count, scale total job
    concurrency, and watch per-replica throughput rise linearly while
    copies are undersubscribed, peak at the full-speed job count, and
    fall once seek contention outgrows the extra parallelism.
    """
    replicas = IndexReplicaSet(dataset_bytes, n_replicas, fs=fs)
    rows = []
    for jobs in range(1, max_jobs_per_replica + 1):
        n_jobs = jobs * n_replicas
        rows.append(
            {
                "jobs_per_replica": jobs,
                "n_jobs": n_jobs,
                "contention": replicas.contention(n_jobs),
                "per_replica_throughput": replicas.per_replica_throughput(
                    jobs
                ),
                "aggregate_throughput": replicas.aggregate_throughput(
                    n_jobs
                ),
                "storage_bytes": replicas.storage_bytes,
            }
        )
    return rows


def sweet_spot_jobs_per_replica(
    dataset_bytes: int,
    n_replicas: int = LIBRARY_REPLICA_COUNT,
    max_jobs_per_replica: int = 12,
    fs: FilesystemSpec = INDEX_REPLICA_FS,
) -> int:
    """Concurrency per replica that maximises per-replica throughput.

    Ties break toward fewer jobs (less memory pressure for the same
    throughput).  With :data:`INDEX_REPLICA_FS` this is exactly the
    filesystem's ``jobs_at_full_speed_per_replica`` — the paper's 4.
    """
    rows = searches_per_replica_sweep(
        dataset_bytes, n_replicas, max_jobs_per_replica, fs=fs
    )
    best = max(
        rows,
        key=lambda r: (r["per_replica_throughput"], -r["jobs_per_replica"]),
    )
    return int(best["jobs_per_replica"])
