"""RunState: one campaign's durable state directory.

Binds the two halves of crash-safe resumption together under a single
``--state-dir``:

* ``ledger.jsonl`` — the write-ahead :class:`CompletionLedger`;
* ``artifacts/``   — the content-addressed :class:`ArtifactStore`.

The pipeline asks :meth:`restore` which of a stage's task keys are
already done (ledgered ok *and* artifact readable — a ledgered key
whose artifact went missing is recomputed, never trusted blindly), and
hands :meth:`on_complete` to the executor so every finishing task is
persisted the moment it lands: artifact first, then the fsync'd ledger
record.  That ordering is the commit point — a kill between the two
writes costs at most one recomputation, never a ledgered key without
its output.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..telemetry.metrics import get_metrics
from .ledger import CompletionLedger
from .store import ArtifactStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dataflow.scheduler import TaskRecord

__all__ = ["RunState"]


class RunState:
    """Durable ledger + artifact store for a (possibly resumed) campaign."""

    def __init__(self, state_dir: str | Path, fsync: bool = True) -> None:
        self.dir = Path(state_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.ledger = CompletionLedger(self.dir / "ledger.jsonl", fsync=fsync)
        self.store = ArtifactStore(self.dir / "artifacts")

    @property
    def resumed(self) -> bool:
        """Did this directory carry completions from a previous session?"""
        return self.ledger.n_replayed > 0

    # -- Resume --------------------------------------------------------------
    def restore(self, stage: str, keys: Iterable[str]) -> dict[str, Any]:
        """Artifacts for the subset of ``keys`` already completed.

        Only keys that are both ledgered ok and readable from the store
        are returned; a missing/corrupt artifact behind a ledgered key
        is counted on ``runstate.restore.missing_artifact`` and left to
        recompute.
        """
        done = self.ledger.completed(stage)
        restored: dict[str, Any] = {}
        missing = 0
        for key in keys:
            if key not in done:
                continue
            value = self.store.get(stage, key)
            if value is None:
                missing += 1
                continue
            restored[key] = value
        if missing:
            get_metrics().counter("runstate.restore.missing_artifact").inc(
                missing
            )
        return restored

    # -- Record --------------------------------------------------------------
    def on_complete(self, stage: str) -> Callable[["TaskRecord", Any], None]:
        """Executor callback persisting each attempt as it lands."""

        def callback(record: "TaskRecord", value: Any) -> None:
            if record.ok:
                # Artifact before ledger: the ledger entry is the commit.
                self.store.put(stage, record.key, value)
            self.ledger.record(
                stage,
                record.key,
                attempt=record.attempt,
                ok=record.ok,
                error=record.error,
            )

        return callback

    # -- Introspection / lifecycle -------------------------------------------
    def summary(self) -> dict[str, dict[str, int]]:
        """Per-stage ledger attempt counts (CLI status line)."""
        return self.ledger.counts()

    def close(self) -> None:
        self.ledger.close()

    def __enter__(self) -> "RunState":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
