"""Durable campaign state: checkpoint/resume for the three-stage pipeline.

The paper's restartability story (§3.3) — re-submit the job, skip
already-produced outputs — promoted from a filesystem convention to a
subsystem: a write-ahead completion ledger plus a content-addressed
artifact store, opened together as a :class:`RunState` and wired
through the pipeline via ``ProteomePipeline(run_state=...)`` or
``repro campaign --state-dir ... [--resume]``.
"""

from .ledger import LEDGER_SCHEMA, CompletionLedger, LedgerEntry
from .state import RunState
from .store import STORE_SCHEMA, ArtifactStore

__all__ = [
    "LEDGER_SCHEMA",
    "STORE_SCHEMA",
    "CompletionLedger",
    "LedgerEntry",
    "ArtifactStore",
    "RunState",
]
