"""Content-addressed artifact store for stage outputs.

The ledger says *that* a task finished; the store holds *what* it
produced — the feature bundle, prediction, or relax outcome a resumed
campaign restores instead of recomputing.  Artifacts are pickled under
``<dir>/<stage>/<sha256(key)>.pkl`` (task keys contain ``/``, so the
filename is the hash and the key travels inside the payload), published
with the same unique-temp + atomic-rename discipline as
:class:`~repro.cache.FeatureCache`, so a SIGKILL mid-``put`` leaves
either the previous complete artifact or none at all.

Write-ahead ordering is the caller's contract (and what
:meth:`repro.runstate.state.RunState.on_complete` implements): the
artifact is stored *before* the completion is ledgered, so every
ledgered-ok key has a durable artifact.  The store still self-repairs
if that invariant is ever violated: unreadable or mismatched entries
are unlinked on lookup, counted on ``runstate.store.corrupt``, and the
key falls back to recomputation.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Any, Iterator

from ..atomicio import atomic_write_bytes
from ..telemetry.metrics import get_metrics

__all__ = ["STORE_SCHEMA", "ArtifactStore"]

STORE_SCHEMA = "repro.runstate.store/1"


class ArtifactStore:
    """Durable ``(stage, key) -> object`` map with atomic publication."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        marker = self._dir / "store.json"
        if marker.exists():
            meta = json.loads(marker.read_text(encoding="utf-8"))
            if meta.get("schema") != STORE_SCHEMA:
                raise ValueError(
                    f"{self._dir} is not a {STORE_SCHEMA} artifact store "
                    f"(marker {meta!r})"
                )
        else:
            atomic_write_bytes(
                marker,
                json.dumps({"schema": STORE_SCHEMA}, indent=2).encode(),
            )

    @property
    def directory(self) -> Path:
        return self._dir

    def path_for(self, stage: str, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()
        return self._dir / stage / f"{digest}.pkl"

    # -- Store / lookup ------------------------------------------------------
    def put(self, stage: str, key: str, value: Any) -> Path:
        """Durably store one artifact; concurrent writers never tear it."""
        path = self.path_for(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": STORE_SCHEMA,
            "stage": stage,
            "key": key,
            "value": value,
        }
        atomic_write_bytes(path, pickle.dumps(payload))
        return path

    def get(self, stage: str, key: str) -> Any | None:
        """The stored artifact, or ``None`` (corrupt slots self-repair)."""
        path = self.path_for(stage, key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(raw)
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != STORE_SCHEMA
                or payload.get("key") != key
            ):
                raise ValueError("artifact payload mismatch")
        except Exception:  # unpickling garbage raises arbitrary types
            path.unlink(missing_ok=True)
            get_metrics().counter("runstate.store.corrupt").inc()
            return None
        return payload["value"]

    def has(self, stage: str, key: str) -> bool:
        return self.path_for(stage, key).exists()

    # -- Introspection -------------------------------------------------------
    def entries(self, stage: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` over one stage's readable artifacts."""
        stage_dir = self._dir / stage
        if not stage_dir.is_dir():
            return
        for path in sorted(stage_dir.glob("*.pkl")):
            try:
                payload = pickle.loads(path.read_bytes())
                if (
                    isinstance(payload, dict)
                    and payload.get("schema") == STORE_SCHEMA
                ):
                    yield payload["key"], payload["value"]
            except Exception:
                continue

    def n_entries(self, stage: str) -> int:
        stage_dir = self._dir / stage
        return len(list(stage_dir.glob("*.pkl"))) if stage_dir.is_dir() else 0
