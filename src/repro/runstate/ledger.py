"""Write-ahead completion ledger: the campaign's durable task log.

The paper's proteome campaigns survived node failures by re-submitting
batch jobs and *skipping already-produced outputs* (§3.3).  The ledger
is the generalisation of that filesystem convention: an append-only
JSONL file with one record per task attempt —

``{"stage": ..., "key": ..., "attempt": n, "ok": true, "error": ""}``

— fsync'd on every append, so the set of completed task keys survives
a SIGKILL at any instruction.  A stage consults :meth:`completed`
before submitting work; anything already ledgered ``ok`` is skipped and
restored from the artifact store instead of recomputed.

Crash tolerance of the ledger *itself*: a kill mid-append leaves a
truncated final line.  Replay parses the valid prefix, drops the torn
tail, and truncates the file back to the last complete record before
reopening for append — so one crash never poisons the next resume.
Torn writes can only ever be the final line (appends are serialized by
an in-process lock and each record is a single ``write`` call); an
unparsable line *followed by valid data* means real corruption and
raises instead of guessing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["LEDGER_SCHEMA", "LedgerEntry", "CompletionLedger"]

LEDGER_SCHEMA = "repro.runstate.ledger/1"


@dataclass(frozen=True)
class LedgerEntry:
    """One ledgered task attempt."""

    stage: str
    key: str
    attempt: int = 1
    ok: bool = True
    error: str = ""


class CompletionLedger:
    """Append-only, fsync'd, replayable JSONL task-completion log.

    ``fsync=False`` trades the write-ahead durability guarantee for
    speed; tests and purely exploratory runs may want it, campaigns do
    not.  All methods are thread-safe — executor worker threads append
    concurrently.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._entries: list[LedgerEntry] = []
        self._completed: dict[str, set[str]] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            valid_end = self._replay()
            if valid_end < self.path.stat().st_size:
                # Crash mid-append: drop the torn tail so this session's
                # appends start on a clean line boundary.
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_end)
        self._n_replayed = len(self._entries)
        self._fh = open(self.path, "ab")
        if self.path.stat().st_size == 0:
            self._append({"schema": LEDGER_SCHEMA})

    # -- Replay --------------------------------------------------------------
    def _replay(self) -> int:
        """Parse the existing file; returns the valid-prefix byte length."""
        raw = self.path.read_bytes()
        pos = 0
        valid_end = 0
        index = 0
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            line = raw[pos : len(raw) if nl == -1 else nl]
            payload: dict | None = None
            if nl != -1:
                try:
                    decoded = json.loads(line.decode("utf-8"))
                    if isinstance(decoded, dict):
                        payload = decoded
                except (UnicodeDecodeError, ValueError):
                    payload = None
            if payload is None:
                if nl != -1 and raw.find(b"\n", nl + 1) != -1:
                    raise ValueError(
                        f"corrupt ledger entry at byte {pos} of {self.path}"
                    )
                break  # torn final append — replay the prefix
            if index == 0:
                if payload.get("schema") != LEDGER_SCHEMA:
                    raise ValueError(
                        f"{self.path} is not a {LEDGER_SCHEMA} ledger "
                        f"(header {payload!r})"
                    )
            else:
                entry = LedgerEntry(
                    stage=str(payload["stage"]),
                    key=str(payload["key"]),
                    attempt=int(payload["attempt"]),
                    ok=bool(payload["ok"]),
                    error=str(payload.get("error", "")),
                )
                self._entries.append(entry)
                if entry.ok:
                    self._completed.setdefault(entry.stage, set()).add(entry.key)
            index += 1
            pos = nl + 1
            valid_end = pos
        return valid_end

    # -- Append --------------------------------------------------------------
    def _append(self, payload: dict) -> None:
        data = (
            json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
            + b"\n"
        )
        self._fh.write(data)
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def record(
        self,
        stage: str,
        key: str,
        attempt: int = 1,
        ok: bool = True,
        error: str = "",
    ) -> LedgerEntry:
        """Durably append one attempt record (write-ahead: fsync'd)."""
        entry = LedgerEntry(
            stage=stage, key=key, attempt=int(attempt), ok=bool(ok), error=error
        )
        with self._lock:
            self._append(asdict(entry))
            self._entries.append(entry)
            if entry.ok:
                self._completed.setdefault(entry.stage, set()).add(entry.key)
        return entry

    # -- Queries -------------------------------------------------------------
    @property
    def entries(self) -> list[LedgerEntry]:
        with self._lock:
            return list(self._entries)

    @property
    def n_replayed(self) -> int:
        """Entries inherited from a previous session at open time."""
        return self._n_replayed

    def completed(self, stage: str) -> set[str]:
        """Task keys with at least one ``ok`` attempt in ``stage``."""
        with self._lock:
            return set(self._completed.get(stage, ()))

    def is_complete(self, stage: str, key: str) -> bool:
        with self._lock:
            return key in self._completed.get(stage, ())

    def stages(self) -> list[str]:
        with self._lock:
            seen = dict.fromkeys(e.stage for e in self._entries)
        return list(seen)

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-stage ``{"ok": n, "failed": m}`` attempt totals."""
        out: dict[str, dict[str, int]] = {}
        with self._lock:
            for entry in self._entries:
                bucket = out.setdefault(entry.stage, {"ok": 0, "failed": 0})
                bucket["ok" if entry.ok else "failed"] += 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- Lifecycle -----------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "CompletionLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
