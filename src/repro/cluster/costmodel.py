"""Calibrated runtime cost models.

Wall-clock numbers in the paper come from V100s, POWER9s and EPYCs we do
not have; every benchmark therefore reports *modelled* runtimes from the
analytic forms below, with coefficients calibrated once against the
paper's quoted costs:

* Table 1 — 559 sequences x 5 models on 192 workers: 44 min with the
  reduced_dbs preset (3 recycles);
* §4.1 — feature generation ~240 Andes node-hours for 3,205 sequences;
* §4.5 — 3,205 relaxations in 22.89 min on 48 GPU workers;
* Fig. 4 — up to ~14x GPU speedup over the original relaxation, with a
  4.5-hour CPU outlier.

The *shapes* (quadratic-in-length inference, superlinear-in-atoms CPU
minimisation, sublinear GPU scaling) follow the underlying algorithms,
so ratios and crossovers are meaningful even though absolute seconds
are modelled.
"""

from __future__ import annotations

__all__ = [
    "inference_recycle_seconds",
    "inference_task_seconds",
    "feature_task_seconds",
    "relax_pass_seconds",
    "relax_task_seconds",
    "DASK_TASK_OVERHEAD_SECONDS",
    "SCHEDULER_STARTUP_SECONDS",
]

#: Per-task dispatch overhead of the dataflow layer (the white dividing
#: lines between blue blocks in Fig. 2): scheduler round-trip plus
#: deserialising the target's pickled feature dictionary on the worker.
DASK_TASK_OVERHEAD_SECONDS: float = 8.0

#: One-time cost of standing up the scheduler + registering workers.
SCHEDULER_STARTUP_SECONDS: float = 90.0

# --- Inference (GPU) ---------------------------------------------------------

#: Fixed per-task cost: model-weight load + JAX compilation for the
#: target's shape bucket.  Substantial in practice, which is why the
#: adaptive presets' extra recycles cost less than naive scaling.
_INFER_SETUP_S: float = 60.0
_INFER_REC_BASE_S: float = 5.0
_INFER_REC_LINEAR_S: float = 0.11  # s per residue
_INFER_REC_QUAD_S: float = 2.8e-4  # s per residue^2


def inference_recycle_seconds(length: int) -> float:
    """GPU time of one recycle (one forward pass) at a given length."""
    if length < 1:
        raise ValueError("length must be positive")
    return (
        _INFER_REC_BASE_S
        + _INFER_REC_LINEAR_S * length
        + _INFER_REC_QUAD_S * length * length
    )


#: Ensembling cost grows slightly superlinearly: the 8-ensemble casp14
#: preset pushes past GPU memory into host paging on long targets (the
#: same pressure that OOMs its longest sequences outright).
_ENSEMBLE_COST_EXPONENT: float = 1.3


def inference_task_seconds(
    length: int, n_recycles: int, n_ensembles: int = 1
) -> float:
    """GPU time of one (model, target) inference task."""
    if n_recycles < 1 or n_ensembles < 1:
        raise ValueError("recycles and ensembles must be >= 1")
    ensemble_cost = float(n_ensembles) ** _ENSEMBLE_COST_EXPONENT
    return _INFER_SETUP_S + ensemble_cost * n_recycles * inference_recycle_seconds(
        length
    )


# --- Feature generation (CPU) -----------------------------------------------

_FEATURE_BASE_S: float = 400.0
_FEATURE_LINEAR_S: float = 4.27  # s per residue at nominal contention


#: Speedup of a GPU-accelerated HMM search engine over the CPU codes,
#: from the 2009 GPU-HMMER result the paper's conclusion cites (§5):
#: "one version reported in 2009 achieving a 38-fold speedup".  Applies
#: to the compute-bound share of a search only — I/O does not move.
GPU_MSA_SPEEDUP: float = 38.0


def feature_task_seconds(
    length: int,
    dataset_fraction: float = 1.0,
    io_contention: float = 1.0,
    gpu_accelerated: bool = False,
) -> float:
    """Wall time of one target's MSA search + feature build.

    Calibrated so that the paper's deployment — searches against the
    *reduced* dataset (fraction ~0.2), four concurrent jobs per Andes
    node, uncontended replicas — spends ~240 node-hours on the 3,205
    *D. vulgaris* targets (§4.1): one mean-length search then takes
    ~18 min of wall time while sharing its node four ways.

    ``dataset_fraction`` scales with the library size actually searched
    (the reduced dataset is ~20% of the full 2.1 TB);
    ``io_contention`` >= 1 multiplies the I/O-bound share of the search
    when too many jobs share one library replica (§3.2.1);
    ``gpu_accelerated`` applies the §5 what-if: a GPU HMM engine speeds
    the compute-bound share by :data:`GPU_MSA_SPEEDUP` (I/O unchanged —
    which is why the paper's I/O engineering would still matter).
    """
    if length < 1:
        raise ValueError("length must be positive")
    if dataset_fraction <= 0 or io_contention < 1.0:
        raise ValueError("bad dataset_fraction or io_contention")
    compute = 0.35 * (_FEATURE_BASE_S + _FEATURE_LINEAR_S * length)
    if gpu_accelerated:
        compute /= GPU_MSA_SPEEDUP
    io = 0.65 * (_FEATURE_BASE_S + _FEATURE_LINEAR_S * length)
    return compute + io * dataset_fraction**0.6 * io_contention


# --- Relaxation ---------------------------------------------------------------

_RELAX_CPU_BASE_S: float = 20.0
_RELAX_CPU_COEF: float = 0.00626
_RELAX_CPU_EXP: float = 1.25
_RELAX_GPU_BASE_S: float = 6.0
_RELAX_GPU_COEF: float = 0.012
_RELAX_GPU_EXP: float = 0.9


def relax_pass_seconds(n_heavy_atoms: int, device: str) -> float:
    """Time of one energy-minimisation pass.

    CPU minimisation is superlinear in system size (force evaluation
    plus many more iterations to converge); GPU offload is sublinear in
    the regime of interest because the per-iteration cost parallelises.
    """
    if n_heavy_atoms < 1:
        raise ValueError("n_heavy_atoms must be positive")
    if device == "cpu":
        return _RELAX_CPU_BASE_S + _RELAX_CPU_COEF * n_heavy_atoms**_RELAX_CPU_EXP
    if device == "gpu":
        return _RELAX_GPU_BASE_S + _RELAX_GPU_COEF * n_heavy_atoms**_RELAX_GPU_EXP
    raise ValueError(f"unknown device {device!r}")


def relax_task_seconds(
    n_heavy_atoms: int, n_minimizations: int, device: str
) -> float:
    """Time of a full relaxation task (possibly multi-pass, §3.2.3)."""
    if n_minimizations < 1:
        raise ValueError("n_minimizations must be >= 1")
    return n_minimizations * relax_pass_seconds(n_heavy_atoms, device)
