"""Cluster substrate: machines, batch scheduling, event clock, cost model."""

from .costmodel import (
    DASK_TASK_OVERHEAD_SECONDS,
    SCHEDULER_STARTUP_SECONDS,
    feature_task_seconds,
    inference_recycle_seconds,
    inference_task_seconds,
    relax_pass_seconds,
    relax_task_seconds,
)
from .lsf import BatchJob, BatchScheduler, JsrunStatement, ResourceSet, inference_job
from .machine import ANDES, MACHINES, PHOENIX, SUMMIT, MachineSpec
from .simclock import SimClock

__all__ = [
    "DASK_TASK_OVERHEAD_SECONDS",
    "SCHEDULER_STARTUP_SECONDS",
    "feature_task_seconds",
    "inference_recycle_seconds",
    "inference_task_seconds",
    "relax_pass_seconds",
    "relax_task_seconds",
    "BatchJob",
    "BatchScheduler",
    "JsrunStatement",
    "ResourceSet",
    "inference_job",
    "ANDES",
    "MACHINES",
    "PHOENIX",
    "SUMMIT",
    "MachineSpec",
    "SimClock",
]
