"""LSF-style batch scheduling with jsrun resource sets.

Summit jobs are LSF batch scripts whose processes are placed by
``jsrun`` resource sets; the paper's inference job uses three jsrun
statements (scheduler / workers / client, §3.3).  This module models
just enough of that machinery to (a) validate that a requested layout
fits the allocation and (b) account node-hours per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import MachineSpec

__all__ = ["ResourceSet", "JsrunStatement", "BatchJob", "BatchScheduler"]


@dataclass(frozen=True)
class ResourceSet:
    """One jsrun resource set: cores/GPUs bundled per task slot."""

    cores: int
    gpus: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.gpus < 0:
            raise ValueError("resource set needs >= 1 core and >= 0 gpus")


@dataclass(frozen=True)
class JsrunStatement:
    """``jsrun -n <count> -c <cores> -g <gpus> ...``"""

    name: str
    n_sets: int
    resource_set: ResourceSet

    def __post_init__(self) -> None:
        if self.n_sets < 1:
            raise ValueError("n_sets must be >= 1")

    @property
    def total_cores(self) -> int:
        return self.n_sets * self.resource_set.cores

    @property
    def total_gpus(self) -> int:
        return self.n_sets * self.resource_set.gpus


@dataclass
class BatchJob:
    """One LSF batch job: node allocation + jsrun layout."""

    job_name: str
    n_nodes: int
    statements: list[JsrunStatement] = field(default_factory=list)
    highmem: bool = False

    def add(self, statement: JsrunStatement) -> "BatchJob":
        self.statements.append(statement)
        return self

    def validate(self, machine: MachineSpec) -> None:
        """Check the jsrun layout fits the allocation."""
        if self.n_nodes < 1:
            raise ValueError("job needs at least one node")
        pool = self.n_nodes if not self.highmem else machine.n_highmem_nodes
        if self.highmem and self.n_nodes > machine.n_highmem_nodes:
            raise ValueError(
                f"{machine.name} has only {machine.n_highmem_nodes} "
                f"high-memory nodes"
            )
        if self.n_nodes > machine.n_nodes:
            raise ValueError(f"{machine.name} has only {machine.n_nodes} nodes")
        del pool
        total_cores = sum(s.total_cores for s in self.statements)
        total_gpus = sum(s.total_gpus for s in self.statements)
        if total_cores > self.n_nodes * machine.cores_per_node:
            raise ValueError(
                f"layout needs {total_cores} cores, allocation has "
                f"{self.n_nodes * machine.cores_per_node}"
            )
        if total_gpus > self.n_nodes * machine.gpus_per_node:
            raise ValueError(
                f"layout needs {total_gpus} GPUs, allocation has "
                f"{self.n_nodes * machine.gpus_per_node}"
            )


def inference_job(n_nodes: int, machine: MachineSpec, name: str = "af2-inference") -> BatchJob:
    """The paper's three-jsrun inference job layout (§3.3).

    1. Dask scheduler on two cores.
    2. One Dask worker per GPU across all nodes.
    3. One core for the driving client script.
    """
    job = BatchJob(job_name=name, n_nodes=n_nodes)
    job.add(JsrunStatement("scheduler", 1, ResourceSet(cores=2)))
    job.add(
        JsrunStatement(
            "workers",
            n_nodes * machine.gpus_per_node,
            ResourceSet(cores=4, gpus=1),
        )
    )
    job.add(JsrunStatement("client", 1, ResourceSet(cores=1)))
    job.validate(machine)
    return job


@dataclass
class CompletedJob:
    job: BatchJob
    wall_seconds: float
    node_hours: float


class BatchScheduler:
    """Per-machine job ledger with node-hour accounting."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine
        self.completed: list[CompletedJob] = []

    def run_job(self, job: BatchJob, wall_seconds: float) -> CompletedJob:
        """Validate, 'run' (the caller supplies the wall time), account."""
        job.validate(self.machine)
        record = CompletedJob(
            job=job,
            wall_seconds=wall_seconds,
            node_hours=self.machine.node_hours(job.n_nodes, wall_seconds),
        )
        self.completed.append(record)
        return record

    @property
    def total_node_hours(self) -> float:
        return sum(c.node_hours for c in self.completed)
