"""Discrete-event simulation clock.

A minimal, deterministic event engine: callbacks scheduled at absolute
times, executed in (time, sequence) order so simultaneous events resolve
in submission order.  The simulated dataflow executor and the I/O model
are built on it.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["SimClock"]


class SimClock:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), callback)
        )

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError("cannot schedule events in the past")
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def run(self, until: float | None = None) -> float:
        """Process events until the queue is empty (or ``until``).

        Returns the final simulated time.  Callbacks may schedule more
        events; determinism is guaranteed by the (time, seq) ordering.
        """
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
        return self._now

    def __len__(self) -> int:
        return len(self._queue)
