"""Machine models: Summit, Andes, Phoenix.

Static descriptions of the three systems the paper used, at the level
of detail the workflows care about: node counts, per-node resources,
high-memory partitions, and accounting units (node-hours).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants as C

__all__ = ["MachineSpec", "SUMMIT", "ANDES", "PHOENIX", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """One HPC system as the scheduler sees it."""

    name: str
    n_nodes: int
    cores_per_node: int
    gpus_per_node: int
    node_memory_bytes: int
    gpu_memory_bytes: int = 0
    n_highmem_nodes: int = 0
    highmem_node_memory_bytes: int = 0

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def has_gpus(self) -> bool:
        return self.gpus_per_node > 0

    def workers_per_node(self, one_per_gpu: bool = True) -> int:
        """Dask workers per node: one per GPU on GPU machines (§3.3)."""
        if one_per_gpu and self.has_gpus:
            return self.gpus_per_node
        return max(1, self.cores_per_node // 8)

    def worker_memory_bytes(self, highmem: bool = False) -> int:
        """Host memory share of one worker."""
        per_node = (
            self.highmem_node_memory_bytes if highmem else self.node_memory_bytes
        )
        return per_node // self.workers_per_node()

    def node_hours(self, n_nodes: int, wall_seconds: float) -> float:
        """Accounting: node allocation x wall time, in node-hours."""
        if n_nodes < 0 or wall_seconds < 0:
            raise ValueError("node count and wall time must be non-negative")
        if n_nodes > self.n_nodes:
            raise ValueError(
                f"{self.name} has {self.n_nodes} nodes; requested {n_nodes}"
            )
        return n_nodes * wall_seconds / 3600.0


#: Summit: ~4,600 nodes, 2x POWER9 + 6x V100 each (§3).
SUMMIT = MachineSpec(
    name="summit",
    n_nodes=C.SUMMIT_NODE_COUNT,
    cores_per_node=C.SUMMIT_CORES_PER_NODE,
    gpus_per_node=C.SUMMIT_GPUS_PER_NODE,
    node_memory_bytes=C.SUMMIT_NODE_MEMORY_BYTES,
    gpu_memory_bytes=C.SUMMIT_GPU_MEMORY_BYTES,
    n_highmem_nodes=54,
    highmem_node_memory_bytes=C.SUMMIT_HIGHMEM_NODE_MEMORY_BYTES,
)

#: Andes: 704-node commodity analysis cluster, 2x 16-core EPYC each.
ANDES = MachineSpec(
    name="andes",
    n_nodes=C.ANDES_NODE_COUNT,
    cores_per_node=C.ANDES_CORES_PER_NODE,
    gpus_per_node=0,
    node_memory_bytes=C.ANDES_NODE_MEMORY_BYTES,
)

#: PACE Phoenix (Georgia Tech): mixed CPU/GPU; the paper ran the
#: original AlphaFold relaxation benchmark on its CPU nodes.
PHOENIX = MachineSpec(
    name="phoenix",
    n_nodes=1200,
    cores_per_node=24,
    gpus_per_node=4,
    node_memory_bytes=192 * 2**30,
    gpu_memory_bytes=24 * 2**30,
)

MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (SUMMIT, ANDES, PHOENIX)
}
