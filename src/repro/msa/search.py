"""Homology search: k-mer prefilter + alignment verification.

The reproduction's stand-in for ``jackhmmer``/``hhblits``.  A query is
screened against each library's k-mer index; candidates above a hit
threshold are optionally verified with a full global alignment.  The
result is an MSA-like hit list whose *depth* drives target difficulty in
the surrogate predictor, exactly as real MSA depth drives AlphaFold
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sequences.generator import ProteinRecord
from .align import global_align
from .databases import LibraryEntry, LibrarySuite, SequenceLibrary
from .kmer import DEFAULT_K, kmer_codes

__all__ = [
    "Hit",
    "SearchResult",
    "QueryCodeMemo",
    "search_library",
    "search_suite",
]


class QueryCodeMemo:
    """Per-query memo of distinct k-mer codes, keyed by k.

    ``search_suite`` screens one query against N libraries; extracting
    the query's distinct codes is the same work for every library at
    the same k, so the suite does it once per *distinct* k instead of
    once per library.  ``n_extractions`` counts the actual
    ``kmer_codes`` + ``unique`` passes (pinned by a regression test:
    a four-library suite at one k performs exactly one).
    """

    def __init__(self, encoded: np.ndarray) -> None:
        self._encoded = encoded
        self._by_k: dict[int, np.ndarray] = {}
        self.n_extractions = 0

    def codes_for(self, k: int) -> np.ndarray:
        codes = self._by_k.get(k)
        if codes is None:
            self.n_extractions += 1
            codes = np.unique(kmer_codes(self._encoded, k))
            self._by_k[k] = codes
        return codes


@dataclass(frozen=True)
class Hit:
    """One library hit for a query."""

    entry: LibraryEntry
    library: str
    kmer_similarity: float
    identity: float  # alignment identity (estimated or exact)
    verified: bool  # True when identity came from a real alignment


@dataclass
class SearchResult:
    """All hits for one query across a library suite.

    ``n_file_reads`` and ``bytes_scanned`` summarise the I/O the search
    *would* have issued against the real on-disk libraries; the iosim
    layer consumes them.
    """

    query_id: str
    hits: list[Hit] = field(default_factory=list)
    n_file_reads: int = 0
    bytes_scanned: int = 0

    @property
    def msa_depth(self) -> int:
        """Number of hits — the MSA row count (excluding the query)."""
        return len(self.hits)

    def effective_depth(self, identity_floor: float = 0.25) -> float:
        """Redundancy-corrected MSA depth (Neff-like).

        Hits are first collapsed to one representative per duplicate
        cluster — near-identical copies carry no extra information, the
        standard Neff redundancy correction — then each cluster
        contributes ``1 - identity`` relative information, floored so a
        deep family still counts.  Because clusters (not raw entries)
        are what count, this quantity is invariant under the BFD
        deduplication — the mechanism behind the paper's "reduced
        dataset is sufficient" finding (§4.1).
        """
        if not self.hits:
            return 0.0
        best_per_cluster: dict[tuple[str, str], float] = {}
        for h in self.hits:
            if h.identity < 0.2:  # non-homologous noise adds nothing
                continue
            key = (h.library, h.entry.cluster_id or h.entry.entry_id)
            best_per_cluster[key] = max(
                best_per_cluster.get(key, 0.0), h.identity
            )
        if not best_per_cluster:
            return 0.0
        weights = [
            max(identity_floor, 1.0 - identity)
            for identity in best_per_cluster.values()
        ]
        return float(np.sum(weights) / (1.0 - identity_floor))

    def template_hits(self, min_identity: float = 0.3) -> list[Hit]:
        """Hits usable as structural templates (from the PDB library)."""
        return [
            h
            for h in self.hits
            if h.library == "pdb_seqres" and h.identity >= min_identity
        ]


def _identity_from_containment(containment: float, k: int = 5) -> float:
    """Estimate alignment identity from k-mer containment.

    Under independent substitutions at identity ``p``, a query k-mer
    survives in the homolog with probability ~``p**k``; inverting gives
    a cheap identity estimate good enough for depth accounting.  Noise
    containment (~1e-4 for unrelated sequences at k=5) maps to ~0.16,
    safely below the homology floor used downstream.
    """
    if containment <= 0.0:
        return 0.0
    return float(min(1.0, containment ** (1.0 / k)))


def search_library(
    query: np.ndarray,
    library: SequenceLibrary,
    min_containment: float = 0.002,
    max_hits: int = 256,
    verify_top: int = 4,
    verify_max_length: int = 600,
    query_codes: np.ndarray | None = None,
) -> tuple[list[Hit], int]:
    """Search one library; returns (hits, candidate_count_scanned).

    ``verify_top`` best candidates get an exact global alignment (capped
    at ``verify_max_length`` residues — longer pairs keep the k-mer
    estimate, which is where the estimate is most accurate anyway); the
    rest carry the containment identity estimate.  Hits are sorted by
    identity descending.  ``query_codes`` — the query's *distinct*
    k-mer codes at the library's k — may be precomputed by the caller
    (``search_suite`` extracts them once per query instead of once per
    library).
    """
    if len(library) == 0:
        return [], 0
    if query_codes is None:
        query_codes = library.index.query_codes(query)
    n_query_kmers = max(1, int(query_codes.size))
    counts = library.index.count_hits_codes(query_codes)
    sims = counts / float(n_query_kmers)
    # Require at least 3 shared k-mer types: one or two can be shared by
    # chance between unrelated sequences (expected ~0.03 per pair), and
    # for short queries a single accident would clear any ratio cutoff.
    candidates = np.flatnonzero((sims >= min_containment) & (counts >= 3))
    if candidates.size == 0:
        return [], 0
    order = candidates[np.argsort(sims[candidates])[::-1]][:max_hits]
    hits: list[Hit] = []
    for rank, idx in enumerate(order.tolist()):
        entry = library.entries[idx]
        cont = float(sims[idx])
        if rank < verify_top and query.size <= verify_max_length:
            identity = global_align(query, entry.encoded).identity
            verified = True
        else:
            identity = _identity_from_containment(cont, k=library.index.k)
            verified = False
        hits.append(
            Hit(
                entry=entry,
                library=library.name.removesuffix("_reduced"),
                kmer_similarity=cont,
                identity=identity,
                verified=verified,
            )
        )
    hits.sort(key=lambda h: h.identity, reverse=True)
    return hits, int(candidates.size)


def search_suite(
    record: ProteinRecord,
    suite: LibrarySuite,
    min_containment: float = 0.002,
    max_hits_per_library: int = 128,
    verify_top: int = 4,
) -> SearchResult:
    """Search a query record against all four libraries."""
    if record.length < 6:
        raise ValueError("query too short for k-mer search")
    result = SearchResult(query_id=record.record_id)
    # One QueryCodeMemo per query: every library at the same k reuses
    # the same distinct-code array (the seed recomputed the unique()
    # five times per query: once here plus once per library).
    memo = QueryCodeMemo(record.encoded)
    n_query_kmers = max(1, memo.codes_for(DEFAULT_K).size)
    for library in suite.libraries:
        hits, scanned = search_library(
            record.encoded,
            library,
            min_containment=min_containment,
            max_hits=max_hits_per_library,
            verify_top=verify_top,
            query_codes=memo.codes_for(library.index.k),
        )
        result.hits.extend(hits)
        # I/O model: every search touches the library's file set once,
        # plus one postings read per query k-mer (HHblits-style).
        result.n_file_reads += library.files_per_search + n_query_kmers // 16
        # Bytes scanned scale with the represented (not in-memory) size:
        # a prefilter pass touches ~2% of the library.
        result.bytes_scanned += int(0.02 * library.modeled_bytes)
        del scanned  # candidate count folded into the byte model above
    result.hits.sort(key=lambda h: h.identity, reverse=True)
    return result
