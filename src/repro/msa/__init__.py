"""MSA substrate: k-mer homology search, alignment, libraries, features."""

from .align import SequenceAlignment, global_align, pairwise_identity
from .databases import (
    LibraryEntry,
    LibrarySuite,
    SequenceLibrary,
    build_library,
    build_suite,
)
from .diskindex import (
    DiskKmerIndex,
    attach_suite_index,
    build_disk_index,
    ensure_disk_index,
)
from .features import FeatureBundle, FeatureGenConfig, generate_features
from .kmer import KmerIndex, KmerQueryAPI, batched_query_codes, kmer_codes
from .search import (
    Hit,
    QueryCodeMemo,
    SearchResult,
    search_library,
    search_suite,
)

__all__ = [
    "SequenceAlignment",
    "global_align",
    "pairwise_identity",
    "LibraryEntry",
    "LibrarySuite",
    "SequenceLibrary",
    "build_library",
    "build_suite",
    "FeatureBundle",
    "FeatureGenConfig",
    "generate_features",
    "KmerIndex",
    "KmerQueryAPI",
    "kmer_codes",
    "batched_query_codes",
    "DiskKmerIndex",
    "build_disk_index",
    "ensure_disk_index",
    "attach_suite_index",
    "Hit",
    "QueryCodeMemo",
    "SearchResult",
    "search_library",
    "search_suite",
]
