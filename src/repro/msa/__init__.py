"""MSA substrate: k-mer homology search, alignment, libraries, features."""

from .align import SequenceAlignment, global_align, pairwise_identity
from .databases import (
    LibraryEntry,
    LibrarySuite,
    SequenceLibrary,
    build_library,
    build_suite,
)
from .features import FeatureBundle, FeatureGenConfig, generate_features
from .kmer import KmerIndex, kmer_codes
from .search import Hit, SearchResult, search_library, search_suite

__all__ = [
    "SequenceAlignment",
    "global_align",
    "pairwise_identity",
    "LibraryEntry",
    "LibrarySuite",
    "SequenceLibrary",
    "build_library",
    "build_suite",
    "FeatureBundle",
    "FeatureGenConfig",
    "generate_features",
    "KmerIndex",
    "kmer_codes",
    "Hit",
    "SearchResult",
    "search_library",
    "search_suite",
]
