"""K-mer indexing for fast homology prefiltering.

The real pipeline's sequence search (HMMER/HHblits) is profile-based;
what matters for the reproduction is the *selectivity structure*: a
query must retrieve its family members from a large library quickly and
with an identity-correlated score.  A k-mer inverted index gives exactly
that with fully vectorized k-mer extraction.

The index stores its postings in a frozen CSR (compressed sparse row)
layout — one sorted int64 array of distinct k-mer codes, an int64
offsets array, and one flat int32 array of sequence ids — so a query is
a single ``np.searchsorted`` over the code vocabulary followed by a
vectorized gather + ``np.bincount`` over the hit postings.  No Python
loop touches a posting list on either the build or the query path.
"""

from __future__ import annotations

import numpy as np

from ..sequences.alphabet import ALPHABET_SIZE
from ..telemetry.metrics import get_metrics

__all__ = ["kmer_codes", "batched_query_codes", "KmerQueryAPI", "KmerIndex"]

#: Default k-mer length.  20^5 = 3.2M possible 5-mers: the shared-k-mer
#: *containment* of unrelated sequences is then ~1e-4 while homologs at
#: 35% identity retain ~0.5% of k-mers — enough dynamic range to invert
#: containment into an identity estimate (see ``repro.msa.search``).
DEFAULT_K: int = 5

#: Largest code span (ALPHABET_SIZE**k) for which freeze() builds a
#: dense code -> vocabulary-position table.  Binary search over a
#: multi-MB vocabulary is all cache misses; a direct int32 gather is
#: not.  8.4M codes = 33 MB, so k=5 (3.2M) qualifies and k>=6 falls
#: back to searchsorted.
_LUT_MAX_SPAN: int = 1 << 23


def kmer_codes(encoded: np.ndarray, k: int = DEFAULT_K) -> np.ndarray:
    """Integer codes of all overlapping k-mers of an encoded sequence.

    Codes are base-``ALPHABET_SIZE`` numbers; the output has length
    ``len(seq) - k + 1`` (empty for shorter sequences).
    """
    arr = np.asarray(encoded, dtype=np.int64)
    n = arr.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    weights = ALPHABET_SIZE ** np.arange(k, dtype=np.int64)
    # Sliding windows via stride trick avoided for clarity: a k-term sum
    # is cheap because k is tiny.
    codes = np.zeros(n - k + 1, dtype=np.int64)
    for offset in range(k):
        codes += arr[offset : offset + n - k + 1] * weights[offset]
    return codes


def batched_query_codes(
    queries: list[np.ndarray], k: int, precomputed_codes: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated ``(codes, query_of_code)`` for a query batch.

    ``queries`` holds encoded sequences (default) or, with
    ``precomputed_codes=True``, per-query *distinct* code arrays.  For
    encoded inputs the per-query dedup collapses into one sort over
    ``query_id * span + code`` tags — the trick that makes the batched
    query path fast.  Shared by the in-memory :class:`KmerIndex` and the
    sharded :class:`~repro.msa.diskindex.DiskKmerIndex` so both produce
    byte-identical batched counts.
    """
    n_q = len(queries)
    if precomputed_codes:
        code_sets = [np.asarray(q, dtype=np.int64) for q in queries]
        all_codes = (
            np.concatenate(code_sets)
            if code_sets
            else np.empty(0, dtype=np.int64)
        )
        query_of_code = np.repeat(
            np.arange(n_q, dtype=np.int64),
            [c.size for c in code_sets],
        )
        return all_codes, query_of_code
    # Tag every raw code with its query id in the high digits; one
    # global sort + dedup then replaces a per-query ``np.unique`` loop.
    span = np.int64(ALPHABET_SIZE) ** k
    raw = [kmer_codes(q, k) for q in queries]
    tags = np.repeat(
        np.arange(n_q, dtype=np.int64) * span,
        [r.size for r in raw],
    )
    tagged = (
        np.concatenate(raw) + tags if raw else np.empty(0, dtype=np.int64)
    )
    tagged.sort()
    if tagged.size:
        keep = np.empty(tagged.size, dtype=bool)
        keep[0] = True
        np.not_equal(tagged[1:], tagged[:-1], out=keep[1:])
        tagged = tagged[keep]
    query_of_code = tagged // span
    return tagged - query_of_code * span, query_of_code


class KmerQueryAPI:
    """Shared query surface over a frozen k-mer postings layout.

    Concrete indexes (:class:`KmerIndex` in memory,
    :class:`~repro.msa.diskindex.DiskKmerIndex` on disk) provide ``k``,
    ``n_sequences``, ``kmer_counts`` and :meth:`count_hits_codes`; the
    derived similarity measures live here once so both backends score
    identically by construction.
    """

    k: int

    def query_codes(self, encoded: np.ndarray) -> np.ndarray:
        """Distinct k-mer codes of a query, as :meth:`count_hits` uses them."""
        return np.unique(kmer_codes(encoded, self.k))

    def count_hits(self, encoded: np.ndarray) -> np.ndarray:
        """Distinct shared k-mer types between query and every sequence.

        Returns an int64 array of length ``n_sequences``.
        """
        return self.count_hits_codes(self.query_codes(encoded))

    def count_hits_codes(self, codes: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def jaccard(self, encoded: np.ndarray) -> np.ndarray:
        """K-mer Jaccard similarity of the query against every sequence."""
        codes = self.query_codes(encoded)
        hits = self.count_hits_codes(codes)
        union = int(codes.size) + self.kmer_counts - hits
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(union > 0, hits / union, 0.0)
        return sim

    def containment(self, encoded: np.ndarray) -> np.ndarray:
        """Shared k-mer types / query k-mer types, per library sequence.

        Under independent substitutions at identity ``p``, a k-mer
        survives in a homolog with probability ~``p**k``, so containment
        inverts cleanly to an identity estimate; unlike Jaccard it is not
        diluted by the library sequence being longer than the query.
        """
        codes = self.query_codes(encoded)
        query_kmers = max(1, int(codes.size))
        return self.count_hits_codes(codes) / float(query_kmers)


class KmerIndex(KmerQueryAPI):
    """Inverted index: k-mer code -> array of sequence ids containing it.

    Build once per library; query with :meth:`count_hits`, which returns
    the number of *distinct shared k-mer types* per library sequence — a
    robust proxy for alignment score that is monotone in sequence
    identity for fixed lengths.

    :meth:`freeze` converts the accumulated per-sequence code sets into
    the CSR layout with a single concatenate + argsort; a query then
    binary-searches the code vocabulary (``_codes``), slices the posting
    ranges out of ``_offsets``, and bin-counts the gathered ids.  The
    batched :meth:`count_hits_many` amortises the searchsorted and the
    gather over many queries at once.
    """

    def __init__(self, k: int = DEFAULT_K) -> None:
        self.k = k
        #: Per-sequence *distinct* code arrays, pending freeze.
        self._pending: list[np.ndarray] = []
        self._kmer_counts: list[int] = []
        # CSR layout, populated by freeze().
        self._codes: np.ndarray | None = None  # sorted distinct codes
        self._offsets: np.ndarray | None = None  # len(_codes) + 1
        self._ids: np.ndarray | None = None  # flat int32 postings
        self._counts_f64: np.ndarray | None = None  # cached counts array
        self._lut: np.ndarray | None = None  # code -> vocab position

    def add(self, seq_id: int, encoded: np.ndarray) -> None:
        """Index one sequence under integer id ``seq_id``."""
        if self._codes is not None:
            raise RuntimeError("index is frozen; cannot add more sequences")
        if seq_id != len(self._kmer_counts):
            raise ValueError("sequences must be added with consecutive ids")
        codes = np.unique(kmer_codes(encoded, self.k))
        self._pending.append(codes)
        self._kmer_counts.append(int(codes.size))

    def freeze(self) -> None:
        """Build the CSR postings; no further additions allowed."""
        if self._codes is not None:
            return
        # Every CSR construction is a paid-for build; the disk-index
        # smoke asserts this stays at zero inside a campaign that
        # attaches a prebuilt artifact instead (workers included —
        # worker counter deltas merge back into the parent registry).
        get_metrics().counter("msa.index.rebuild").inc()
        if self._pending:
            all_codes = np.concatenate(self._pending)
            ids = np.repeat(
                np.arange(len(self._pending), dtype=np.int32),
                [c.size for c in self._pending],
            )
        else:
            all_codes = np.empty(0, dtype=np.int64)
            ids = np.empty(0, dtype=np.int32)
        order = np.argsort(all_codes, kind="stable")
        sorted_codes = all_codes[order]
        self._ids = ids[order]
        self._codes, starts = np.unique(sorted_codes, return_index=True)
        self._offsets = np.append(starts, sorted_codes.size).astype(np.int64)
        self._counts_f64 = np.asarray(self._kmer_counts, dtype=np.float64)
        self._pending = []
        self._build_lut()

    def _build_lut(self) -> None:
        """Dense code -> vocab-position table, when the span is small."""
        assert self._codes is not None
        span = int(ALPHABET_SIZE) ** self.k
        if self._codes.size and span <= _LUT_MAX_SPAN:
            lut = np.full(span, -1, dtype=np.int32)
            lut[self._codes] = np.arange(self._codes.size, dtype=np.int32)
            self._lut = lut

    # -- pickling ------------------------------------------------------------
    # A process-executor worker rehydrates the index once per process,
    # so the pickle carries only the frozen CSR arrays: the dense LUT
    # (33 MB at k=5) is derived state rebuilt on arrival, and pending
    # per-sequence code sets are folded in by freezing before export.
    def __getstate__(self) -> dict:
        self.freeze()
        state = self.__dict__.copy()
        state["_lut"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_lut()

    def _vocab_positions(
        self, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vocabulary positions of the codes found in the index.

        Returns ``(positions, matched)`` where ``matched`` is a boolean
        mask over ``codes`` and ``positions`` holds the vocabulary row
        of each matched code.  Uses the dense lookup table when the code
        span is small enough, a binary search otherwise.
        """
        assert self._codes is not None
        if self._codes.size == 0:
            # An empty vocabulary matches nothing.  The searchsorted
            # fallback below would clamp positions to ``size - 1 == -1``
            # and fault on the gather, so short-circuit: no positions,
            # all-False mask (callers then report zero hits everywhere).
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(codes.size, dtype=bool),
            )
        if self._lut is not None:
            valid = (codes >= 0) & (codes < self._lut.size)
            if valid.all():
                pos = self._lut[codes]
            else:
                pos = np.full(codes.size, -1, dtype=np.int32)
                pos[valid] = self._lut[codes[valid]]
            matched = pos >= 0
            return pos[matched], matched
        pos = np.minimum(
            np.searchsorted(self._codes, codes), self._codes.size - 1
        )
        matched = self._codes[pos] == codes
        return pos[matched], matched

    @property
    def n_sequences(self) -> int:
        return len(self._kmer_counts)

    def kmer_count(self, seq_id: int) -> int:
        """Distinct k-mer types of an indexed sequence."""
        return self._kmer_counts[seq_id]

    @property
    def kmer_counts(self) -> np.ndarray:
        """Distinct k-mer types per sequence (float64, cached at freeze)."""
        self.freeze()
        assert self._counts_f64 is not None
        return self._counts_f64

    def count_hits_codes(self, codes: np.ndarray) -> np.ndarray:
        """:meth:`count_hits` for a precomputed *distinct* code array.

        Lets callers that need the query's code set anyway (e.g. the
        containment denominator in ``repro.msa.search``) extract it once
        instead of recomputing it per library.
        """
        self.freeze()
        assert self._codes is not None and self._offsets is not None
        assert self._ids is not None
        hit_ids = self._gather_posting_ids(np.asarray(codes, dtype=np.int64))
        return np.bincount(hit_ids, minlength=self.n_sequences).astype(
            np.int64
        )

    def count_hits_many(
        self, queries: list[np.ndarray], precomputed_codes: bool = False
    ) -> np.ndarray:
        """Batched :meth:`count_hits`: one (n_queries, n_sequences) matrix.

        ``queries`` holds encoded sequences (default) or, with
        ``precomputed_codes=True``, per-query *distinct* code arrays.
        All queries share a single searchsorted over the vocabulary and
        a single gather over the postings, and for encoded inputs even
        the per-query dedup collapses into one ``np.unique`` over
        ``query_id * span + code`` tags — which is where the batched
        path earns its throughput.
        """
        self.freeze()
        assert self._codes is not None and self._offsets is not None
        assert self._ids is not None
        n_seq = self.n_sequences
        n_q = len(queries)
        if n_q == 0:
            return np.zeros((0, n_seq), dtype=np.int64)
        all_codes, query_of_code = batched_query_codes(
            queries, self.k, precomputed_codes=precomputed_codes
        )
        if all_codes.size == 0 or self._codes.size == 0 or n_seq == 0:
            return np.zeros((n_q, n_seq), dtype=np.int64)
        pos, matched = self._vocab_positions(all_codes)
        starts = self._offsets[pos]
        lengths = self._offsets[pos + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros((n_q, n_seq), dtype=np.int64)
        hit_ids = self._ids[_expand_ranges(starts, lengths, total)]
        hit_query = np.repeat(query_of_code[matched], lengths)
        flat = np.bincount(
            hit_query * n_seq + hit_ids, minlength=n_q * n_seq
        )
        return flat.reshape(n_q, n_seq).astype(np.int64, copy=False)

    def _gather_posting_ids(self, codes: np.ndarray) -> np.ndarray:
        """Flat sequence ids of every posting hit by the given codes."""
        assert self._codes is not None and self._offsets is not None
        assert self._ids is not None
        if codes.size == 0 or self._codes.size == 0:
            return np.empty(0, dtype=np.int32)
        pos, _matched = self._vocab_positions(codes)
        if pos.size == 0:
            return np.empty(0, dtype=np.int32)
        starts = self._offsets[pos]
        lengths = self._offsets[pos + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int32)
        return self._ids[_expand_ranges(starts, lengths, total)]


def _expand_ranges(
    starts: np.ndarray, lengths: np.ndarray, total: int
) -> np.ndarray:
    """Indices covering ``[starts[j], starts[j]+lengths[j])`` for all j.

    The standard cumsum trick: within the flat output, element ``i`` of
    range ``j`` must read ``starts[j] + (i - cum[j-1])``, so repeating
    ``starts - (cum - lengths)`` and adding ``arange(total)`` yields all
    range members without a Python loop.
    """
    cum = np.cumsum(lengths)
    return np.repeat(starts - (cum - lengths), lengths) + np.arange(
        total, dtype=np.int64
    )
