"""K-mer indexing for fast homology prefiltering.

The real pipeline's sequence search (HMMER/HHblits) is profile-based;
what matters for the reproduction is the *selectivity structure*: a
query must retrieve its family members from a large library quickly and
with an identity-correlated score.  A k-mer inverted index gives exactly
that with fully vectorized k-mer extraction.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..sequences.alphabet import ALPHABET_SIZE

__all__ = ["kmer_codes", "KmerIndex"]

#: Default k-mer length.  20^5 = 3.2M possible 5-mers: the shared-k-mer
#: *containment* of unrelated sequences is then ~1e-4 while homologs at
#: 35% identity retain ~0.5% of k-mers — enough dynamic range to invert
#: containment into an identity estimate (see ``repro.msa.search``).
DEFAULT_K: int = 5


def kmer_codes(encoded: np.ndarray, k: int = DEFAULT_K) -> np.ndarray:
    """Integer codes of all overlapping k-mers of an encoded sequence.

    Codes are base-``ALPHABET_SIZE`` numbers; the output has length
    ``len(seq) - k + 1`` (empty for shorter sequences).
    """
    arr = np.asarray(encoded, dtype=np.int64)
    n = arr.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    weights = ALPHABET_SIZE ** np.arange(k, dtype=np.int64)
    # Sliding windows via stride trick avoided for clarity: a k-term sum
    # is cheap because k is tiny.
    codes = np.zeros(n - k + 1, dtype=np.int64)
    for offset in range(k):
        codes += arr[offset : offset + n - k + 1] * weights[offset]
    return codes


class KmerIndex:
    """Inverted index: k-mer code -> array of sequence ids containing it.

    Build once per library; query with :meth:`count_hits`, which returns
    the number of *distinct shared k-mer types* per library sequence — a
    robust proxy for alignment score that is monotone in sequence
    identity for fixed lengths.
    """

    def __init__(self, k: int = DEFAULT_K) -> None:
        self.k = k
        self._postings: dict[int, list[int]] = defaultdict(list)
        self._kmer_counts: list[int] = []
        self._frozen: dict[int, np.ndarray] | None = None

    def add(self, seq_id: int, encoded: np.ndarray) -> None:
        """Index one sequence under integer id ``seq_id``."""
        if self._frozen is not None:
            raise RuntimeError("index is frozen; cannot add more sequences")
        if seq_id != len(self._kmer_counts):
            raise ValueError("sequences must be added with consecutive ids")
        codes = np.unique(kmer_codes(encoded, self.k))
        for code in codes.tolist():
            self._postings[code].append(seq_id)
        self._kmer_counts.append(int(codes.size))

    def freeze(self) -> None:
        """Convert postings to arrays; no further additions allowed."""
        if self._frozen is None:
            self._frozen = {
                code: np.asarray(ids, dtype=np.int64)
                for code, ids in self._postings.items()
            }
            self._postings.clear()

    @property
    def n_sequences(self) -> int:
        return len(self._kmer_counts)

    def kmer_count(self, seq_id: int) -> int:
        """Distinct k-mer types of an indexed sequence."""
        return self._kmer_counts[seq_id]

    def count_hits(self, encoded: np.ndarray) -> np.ndarray:
        """Distinct shared k-mer types between query and every sequence.

        Returns an int64 array of length :attr:`n_sequences`.
        """
        self.freeze()
        assert self._frozen is not None
        counts = np.zeros(self.n_sequences, dtype=np.int64)
        for code in np.unique(kmer_codes(encoded, self.k)).tolist():
            ids = self._frozen.get(code)
            if ids is not None:
                counts[ids] += 1
        return counts

    def jaccard(self, encoded: np.ndarray) -> np.ndarray:
        """K-mer Jaccard similarity of the query against every sequence."""
        query_kmers = int(np.unique(kmer_codes(encoded, self.k)).size)
        hits = self.count_hits(encoded)
        union = query_kmers + np.asarray(self._kmer_counts, dtype=np.float64) - hits
        with np.errstate(divide="ignore", invalid="ignore"):
            sim = np.where(union > 0, hits / union, 0.0)
        return sim

    def containment(self, encoded: np.ndarray) -> np.ndarray:
        """Shared k-mer types / query k-mer types, per library sequence.

        Under independent substitutions at identity ``p``, a k-mer
        survives in a homolog with probability ~``p**k``, so containment
        inverts cleanly to an identity estimate; unlike Jaccard it is not
        diluted by the library sequence being longer than the query.
        """
        query_kmers = max(1, int(np.unique(kmer_codes(encoded, self.k)).size))
        return self.count_hits(encoded) / float(query_kmers)
