"""Pairwise sequence alignment (vectorized Needleman-Wunsch).

Used to turn k-mer prefilter candidates into alignments with exact
identity fractions — the reproduction's stand-in for the HMM alignment
stage.  The recurrence uses a linear gap penalty, which allows the same
running-maximum row vectorisation as the structural aligner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SequenceAlignment", "global_align", "pairwise_identity"]

#: Simple substitution scoring: match / mismatch.  A full BLOSUM matrix
#: adds nothing for synthetic sequences whose substitutions are uniform.
MATCH_SCORE: float = 2.0
MISMATCH_SCORE: float = -1.0
GAP_PENALTY: float = -2.0


@dataclass(frozen=True)
class SequenceAlignment:
    """A global alignment: aligned index pairs plus summary scores."""

    pairs: np.ndarray  # (K, 2) aligned positions (query_idx, target_idx)
    score: float
    identity: float  # identical residues / aligned pairs

    @property
    def n_aligned(self) -> int:
        return int(self.pairs.shape[0])


def global_align(
    query: np.ndarray,
    target: np.ndarray,
    gap_penalty: float = GAP_PENALTY,
) -> SequenceAlignment:
    """Needleman-Wunsch global alignment of two encoded sequences."""
    q = np.asarray(query, dtype=np.int16)
    t = np.asarray(target, dtype=np.int16)
    l1, l2 = q.size, t.size
    if l1 == 0 or l2 == 0:
        raise ValueError("cannot align empty sequences")
    if gap_penalty >= 0:
        raise ValueError("gap_penalty must be negative")
    # Substitution score matrix, vectorized.
    s = np.where(q[:, None] == t[None, :], MATCH_SCORE, MISMATCH_SCORE)
    g = gap_penalty
    j_idx = np.arange(l2 + 1, dtype=np.float64)
    h = np.zeros((l1 + 1, l2 + 1), dtype=np.float64)
    h[0, :] = g * j_idx
    h[:, 0] = g * np.arange(l1 + 1, dtype=np.float64)
    for i in range(1, l1 + 1):
        m = np.empty(l2 + 1)
        m[0] = h[i, 0]
        m[1:] = np.maximum(h[i - 1, :-1] + s[i - 1], h[i - 1, 1:] + g)
        h[i] = np.maximum.accumulate(m - g * j_idx) + g * j_idx
        h[i, 0] = g * i
    # Traceback.  Scores are sums of the (exactly representable) match /
    # mismatch / gap constants, so candidate moves either reproduce the
    # cell value exactly or miss it by at least the smallest score gap;
    # a fixed absolute tolerance replaces the seed's per-cell
    # ``np.isclose`` calls (atol + rtol work) at a fraction of the cost.
    tol = 1e-6
    pairs: list[tuple[int, int]] = []
    i, j = l1, l2
    while i > 0 and j > 0:
        here = h[i, j]
        if abs(here - (h[i - 1, j - 1] + s[i - 1, j - 1])) <= tol:
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif abs(here - (h[i - 1, j] + g)) <= tol:
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    pair_arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    if pair_arr.shape[0]:
        identity = float((q[pair_arr[:, 0]] == t[pair_arr[:, 1]]).mean())
    else:
        identity = 0.0
    return SequenceAlignment(
        pairs=pair_arr, score=float(h[l1, l2]), identity=identity
    )


def pairwise_identity(query: np.ndarray, target: np.ndarray) -> float:
    """Global-alignment sequence identity between two encoded sequences."""
    return global_align(query, target).identity
