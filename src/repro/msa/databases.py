"""Synthetic sequence libraries (UniRef/BFD/MGnify/PDB-seqres stand-ins).

The paper searches four library groups totalling 2.1 TB (full) or 420 GB
(reduced, with near-identical BFD sequences removed).  The reproduction
builds small in-memory libraries from the shared
:class:`~repro.sequences.generator.SequenceUniverse`, while *modelling*
the real byte sizes for the I/O and cost layers: the scientific content
(who finds how many homologs) is real, the storage arithmetic is scaled.

The key empirical claim to reproduce (§4.1) is that the reduced dataset
yields virtually identical prediction quality: deduplication removes
near-identical copies, which add no information to an MSA, so effective
MSA depth — and therefore difficulty and model quality — is preserved.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..constants import FULL_DATASET_BYTES, REDUCED_DATASET_BYTES
from ..sequences.generator import (
    SequenceUniverse,
    mutate_sequence,
    rng_for,
    stable_hash,
)
from ..sequences.proteome import SPECIES, species_family_base
from .kmer import DEFAULT_K, KmerIndex, KmerQueryAPI

__all__ = [
    "LibraryEntry",
    "SequenceLibrary",
    "LibrarySuite",
    "build_library",
    "build_suite",
]


@dataclass(frozen=True)
class LibraryEntry:
    """One library sequence with provenance metadata.

    ``cluster_id`` groups near-identical copies (metagenomic libraries
    like the BFD are duplicate-heavy); redundancy-aware depth accounting
    and the reduced-dataset deduplication both operate on clusters.
    """

    entry_id: str
    encoded: np.ndarray = field(repr=False)
    family_id: int | None
    divergence: float
    annotated: bool
    cluster_id: str = ""

    @property
    def length(self) -> int:
        return int(self.encoded.size)


class SequenceLibrary:
    """A searchable sequence collection plus a storage/I-O model.

    ``modeled_bytes`` is the byte size the library *represents* (e.g.
    the real BFD's share of 2.1 TB), used by :mod:`repro.iosim` and the
    cost model; the in-memory entry count is the scaled scientific
    content actually searched.
    """

    def __init__(
        self,
        name: str,
        entries: list[LibraryEntry],
        modeled_bytes: int,
        files_per_search: int = 64,
    ) -> None:
        self.name = name
        self.entries = list(entries)
        self.modeled_bytes = int(modeled_bytes)
        #: Number of distinct file reads one search issues against this
        #: library (HHblits-style many-small-reads; drives metadata load).
        self.files_per_search = int(files_per_search)
        self._index: KmerQueryAPI | None = None
        self._fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def index(self) -> KmerQueryAPI:
        """The k-mer index over all entries.

        Lazily builds an in-memory :class:`KmerIndex` unless a prebuilt
        (e.g. memory-mapped on-disk) index was installed with
        :meth:`attach_index` first.
        """
        if self._index is None:
            idx = KmerIndex()
            for i, entry in enumerate(self.entries):
                idx.add(i, entry.encoded)
            idx.freeze()
            self._index = idx
        return self._index

    def attach_index(self, index: KmerQueryAPI) -> None:
        """Install a prebuilt index (typically a
        :class:`~repro.msa.diskindex.DiskKmerIndex` over memory-mapped
        shard artifacts) instead of building one in memory.

        The index must cover exactly this library: sequence counts must
        agree, and an index that knows the fingerprint of the library it
        was built from (disk artifacts do) must match this library's.
        """
        if index.n_sequences != len(self.entries):
            raise ValueError(
                f"index covers {index.n_sequences} sequences, library "
                f"{self.name!r} has {len(self.entries)}"
            )
        index_fp = getattr(index, "fingerprint", None)
        if isinstance(index_fp, str) and index_fp != self.fingerprint():
            raise ValueError(
                f"index fingerprint {index_fp[:12]} does not match "
                f"library {self.name!r} ({self.fingerprint()[:12]})"
            )
        self._index = index

    def fingerprint(self) -> str:
        """Content hash of everything a search outcome depends on.

        Covers the search content (entry sequences and the metadata
        that flows into hits: ids, clusters, families, annotation) and
        the I/O model parameters (``modeled_bytes``,
        ``files_per_search``).  Feature caching keys on this: any change
        to the library yields a different fingerprint and therefore a
        cache miss.  Libraries are treated as immutable once built; the
        hash is computed once and memoised.

        Hashes the *default* k rather than touching :attr:`index` — the
        fingerprint addresses the on-disk index artifact, so computing
        it must not itself force an in-memory index build (the exact
        cost the disk index exists to avoid).  The hash string is
        byte-identical to what ``self.index.k`` produced, so existing
        cache keys are unchanged.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(
                f"{self.name}|{self.modeled_bytes}|{self.files_per_search}"
                f"|k={DEFAULT_K}".encode()
            )
            for entry in self.entries:
                h.update(
                    f"{entry.entry_id}|{entry.cluster_id}|{entry.family_id}"
                    f"|{entry.annotated}".encode()
                )
                h.update(np.ascontiguousarray(entry.encoded).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def deduplicated(self) -> "SequenceLibrary":
        """Reduced variant: keep one representative per duplicate cluster.

        Mirrors the BFD reduction (§3.2.1): near-identical copies of the
        same sequence are removed, one representative per cluster stays.
        Cluster (and so family) coverage — the MSA *signal* — is fully
        preserved; only redundant mass goes, which is why the reduced
        dataset predicts as well as the full one.
        """
        kept: list[LibraryEntry] = []
        seen: set[str] = set()
        for entry in self.entries:
            if entry.cluster_id in seen:
                continue
            seen.add(entry.cluster_id)
            kept.append(entry)
        scale = len(kept) / max(1, len(self.entries))
        return SequenceLibrary(
            name=f"{self.name}_reduced",
            entries=kept,
            modeled_bytes=int(self.modeled_bytes * scale),
            files_per_search=self.files_per_search,
        )


def build_library(
    universe: SequenceUniverse,
    name: str,
    family_ids: list[int],
    seed: int,
    members_per_multiplicity: float = 1.0,
    max_members_per_family: int = 64,
    noise_entries: int = 0,
    modeled_bytes: int = 0,
    files_per_search: int = 64,
    annotated_only: bool = False,
    duplicate_rate: float = 0.0,
    branch_fraction: float = 0.8,
) -> SequenceLibrary:
    """Populate a library with members of the given families.

    Each family contributes ``multiplicity * members_per_multiplicity``
    distinct canonical (branch 0) members (capped), at divergences
    spread across (0.02, 0.55) — deep families produce deep MSAs.  An
    additional ``branch_fraction`` share of members comes from the
    remote subfamily branches 1-2 (unannotated metagenomic relatives),
    which is what gives twilight-zone proteome members enough MSA
    support to be predictable (§4.6).  ``duplicate_rate`` adds a
    Poisson number of near-identical copies per member (metagenomic
    redundancy, the dedup target).  ``noise_entries`` unrelated
    sequences model the library's background mass.
    """
    rng = rng_for(seed, "library", name)
    entries: list[LibraryEntry] = []

    def add_member(fam, fid, m, branch, divergence):
        encoded = universe.member(
            fam,
            divergence,
            member_seed=10_000 + m + stable_hash(name, modulus=997),
            branch=branch,
        )
        cluster_id = f"{name}_{fid}_b{branch}_{m:03d}"
        entries.append(
            LibraryEntry(
                entry_id=cluster_id,
                encoded=encoded,
                family_id=fid,
                divergence=divergence,
                annotated=fam.annotated and branch == 0,
                cluster_id=cluster_id,
            )
        )
        if duplicate_rate > 0.0:
            for dup in range(int(rng.poisson(duplicate_rate))):
                entries.append(
                    LibraryEntry(
                        entry_id=f"{cluster_id}_dup{dup}",
                        encoded=mutate_sequence(
                            encoded, rng, substitution_rate=0.005
                        ),
                        family_id=fid,
                        divergence=divergence,
                        annotated=fam.annotated and branch == 0,
                        cluster_id=cluster_id,
                    )
                )

    for fid in family_ids:
        fam = universe.family(fid)
        if annotated_only and not fam.annotated:
            continue
        n_members = int(
            min(
                max_members_per_family,
                round(fam.library_multiplicity * members_per_multiplicity),
            )
        )
        for m in range(n_members):
            add_member(fam, fid, m, 0, float(rng.uniform(0.02, 0.55)))
        n_branch = int(round(n_members * branch_fraction))
        for m in range(n_branch):
            branch = 1 + int(rng.integers(0, 2))
            add_member(
                fam, fid, 5000 + m, branch, float(rng.uniform(0.02, 0.40))
            )
    for i in range(noise_entries):
        length = int(np.clip(np.round(rng.lognormal(5.4, 0.5)), 30, 1500))
        entry_id = f"{name}_noise_{i:05d}"
        entries.append(
            LibraryEntry(
                entry_id=entry_id,
                encoded=universe.orphan(seed * 1_000_003 + i, length),
                family_id=None,
                divergence=1.0,
                # Background mass of an annotated-only library (e.g. the
                # PDB) is still experimentally annotated material.
                annotated=annotated_only,
                cluster_id=entry_id,
            )
        )
    return SequenceLibrary(
        name=name,
        entries=entries,
        modeled_bytes=modeled_bytes,
        files_per_search=files_per_search,
    )


@dataclass
class LibrarySuite:
    """The four library groups the AlphaFold pipeline searches.

    ``pdb_seqs`` doubles as the template source: hits there provide
    structural templates consumed by two of the five model heads.
    """

    uniref: SequenceLibrary
    bfd: SequenceLibrary
    mgnify: SequenceLibrary
    pdb_seqs: SequenceLibrary
    _fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def libraries(self) -> list[SequenceLibrary]:
        return [self.uniref, self.bfd, self.mgnify, self.pdb_seqs]

    @property
    def total_modeled_bytes(self) -> int:
        return sum(lib.modeled_bytes for lib in self.libraries)

    @property
    def total_entries(self) -> int:
        return sum(len(lib) for lib in self.libraries)

    def fingerprint(self) -> str:
        """Combined content hash of the four libraries (see
        :meth:`SequenceLibrary.fingerprint`); the suite component of
        feature-cache keys.

        Memoised on the suite itself — libraries are immutable once
        built — so consumers never need an identity-keyed side table
        (``id()``-keyed memos go stale when ids are reused after GC).
        A racing double-compute is benign: both writers store the same
        content hash.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            for lib in self.libraries:
                h.update(lib.fingerprint().encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def reduced(self) -> "LibrarySuite":
        """The reduced suite: BFD deduplicated (§3.2.1)."""
        return LibrarySuite(
            uniref=self.uniref,
            bfd=self.bfd.deduplicated(),
            mgnify=self.mgnify,
            pdb_seqs=self.pdb_seqs,
        )


def build_suite(
    universe: SequenceUniverse,
    species_names: list[str],
    seed: int = 0,
    scale: float = 1.0,
    family_pool: int | None = None,
    noise_scale: float = 1.0,
) -> LibrarySuite:
    """Build a library suite covering the families of the given species.

    ``scale`` (or an explicit ``family_pool``) must match the value used
    by :func:`~repro.sequences.proteome.synthetic_proteome` for each
    species: both default to a pool of 60% of the (scaled) protein
    count, so a suite and a proteome built with the same ``scale`` cover
    the same families.  Modeled byte sizes follow the real libraries'
    proportions within the paper's 2.1 TB total: BFD dominates.
    """
    family_ids: list[int] = []
    for species in species_names:
        spec = SPECIES[species]
        if family_pool is not None:
            pool = family_pool
        else:
            n_scaled = max(1, int(round(spec.n_proteins * scale)))
            pool = max(1, int(n_scaled * 0.6))
        base = species_family_base(species)
        family_ids.extend(range(base, base + pool))
    bfd_bytes = FULL_DATASET_BYTES - REDUCED_DATASET_BYTES + 270_000_000_000
    other = FULL_DATASET_BYTES - bfd_bytes
    uniref = build_library(
        universe,
        "uniref90",
        family_ids,
        seed,
        members_per_multiplicity=0.5,
        max_members_per_family=24,
        noise_entries=int(300 * noise_scale),
        modeled_bytes=int(other * 0.40),
        files_per_search=16,
    )
    # BFD is the deep, redundant metagenomic library: high multiplicity
    # plus near-identical duplicates (the dedup target).
    bfd = build_library(
        universe,
        "bfd",
        family_ids,
        seed + 1,
        members_per_multiplicity=1.0,
        max_members_per_family=48,
        noise_entries=int(900 * noise_scale),
        modeled_bytes=bfd_bytes,
        files_per_search=256,
        duplicate_rate=1.3,
    )
    mgnify = build_library(
        universe,
        "mgnify",
        family_ids,
        seed + 2,
        members_per_multiplicity=0.7,
        max_members_per_family=24,
        noise_entries=int(300 * noise_scale),
        modeled_bytes=int(other * 0.45),
        files_per_search=32,
    )
    # The PDB holds only the canonical, experimentally characterised
    # lineages: no remote-branch sequences (branch_fraction=0) — which
    # is exactly why twilight-zone proteins have no usable templates.
    pdb_seqs = build_library(
        universe,
        "pdb_seqres",
        family_ids,
        seed + 3,
        members_per_multiplicity=0.15,
        max_members_per_family=4,
        noise_entries=int(60 * noise_scale),
        modeled_bytes=int(other * 0.15),
        files_per_search=8,
        annotated_only=True,
        branch_fraction=0.0,
    )
    return LibrarySuite(uniref=uniref, bfd=bfd, mgnify=mgnify, pdb_seqs=pdb_seqs)
