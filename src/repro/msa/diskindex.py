"""Sharded, memory-mapped on-disk k-mer index artifacts.

The paper's fifth contribution sidesteps metadata-server contention by
replicating the sequence libraries on the parallel filesystem and
capping concurrent searches per copy (§3.2.1).  The in-process analogue
of that bottleneck is the :class:`~repro.msa.kmer.KmerIndex` CSR build:
every process that searches a library pays the full
concatenate/argsort/unique construction, so a multiprocess campaign
(PR 6) rebuilds the same index once per worker and library load
dominates small-campaign wall time.

This module makes the frozen CSR layout a *persistent artifact* built
once and shared by every process on the node:

* :func:`build_disk_index` serializes a frozen index into ``.npy``
  shard files partitioned by k-mer code range (postings-balanced
  boundaries), plus a ``manifest.json`` carrying the library
  fingerprint, ``k``, shard boundaries and per-array dtype/shape/sha256.
  The artifact directory is published atomically (unique temp dir +
  rename), mirroring the :mod:`repro.atomicio` discipline.
* :class:`DiskKmerIndex` opens the shards with ``np.memmap`` read-only.
  N worker processes then share one page-cache copy of the postings —
  attach cost is a handful of ``open``/``mmap`` calls, not a rebuild —
  and pickling the index ships only the manifest *path*, never the
  postings (``__getstate__``/``__setstate__``), so the process
  executor's pipe and shared-memory transport stay array-free.
* :func:`ensure_disk_index` is the campaign entry point: open the
  fingerprint-addressed artifact if it exists and verifies, quarantine
  and rebuild it if any shard is corrupt or checksum-mismatched
  (``msa.index.corrupt``, mirroring
  :class:`~repro.runstate.store.ArtifactStore`), build it fresh
  otherwise.

Query results are bit-identical to the in-memory index by
construction: both backends deduplicate query batches with
:func:`~repro.msa.kmer.batched_query_codes`, every code belongs to
exactly one shard, and ``np.bincount`` over the concatenation of the
per-shard hit streams equals the monolithic bincount.

Counters: ``msa.index.rebuild`` (CSR constructions — the disk-index CI
smoke pins this to zero for campaigns attaching a prebuilt artifact),
``msa.index.attach`` (artifact opens), ``msa.index.corrupt``
(quarantined artifacts).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..sequences.alphabet import ALPHABET_SIZE
from ..telemetry.metrics import get_metrics
from .kmer import (
    _LUT_MAX_SPAN,
    KmerIndex,
    KmerQueryAPI,
    _expand_ranges,
    batched_query_codes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .databases import LibrarySuite, SequenceLibrary

__all__ = [
    "DISKINDEX_SCHEMA",
    "DEFAULT_SHARDS",
    "IndexCorruptError",
    "shard_boundaries",
    "build_disk_index",
    "DiskKmerIndex",
    "ensure_disk_index",
    "attach_suite_index",
]

DISKINDEX_SCHEMA = "repro.msa.diskindex/1"

#: Default shard count.  Shards model the paper's partitioned on-disk
#: library files; a handful keeps per-query routing overhead (one
#: boundary searchsorted + one mask per shard) negligible while still
#: exercising the range-partitioned layout.
DEFAULT_SHARDS: int = 4

_MANIFEST = "manifest.json"


class IndexCorruptError(RuntimeError):
    """A disk-index artifact failed structural or checksum validation."""


def shard_boundaries(index: KmerIndex, n_shards: int) -> np.ndarray:
    """Code-range shard boundaries balancing postings across shards.

    Returns ``n_shards + 1`` strictly increasing int64 values with
    ``boundaries[0] == 0`` and ``boundaries[-1] == ALPHABET_SIZE**k``;
    shard ``s`` owns codes in ``[boundaries[s], boundaries[s+1])``.
    Interior cuts sit at the codes where the cumulative posting count
    crosses each ``total/n_shards`` target, so shards carry comparable
    posting mass; when the vocabulary is too concentrated (or empty) to
    supply distinct cuts, the remainder comes from an even split of the
    code span — which is how empty shards legitimately arise.
    """
    index.freeze()
    span = int(ALPHABET_SIZE) ** index.k
    n_shards = max(1, min(int(n_shards), span))
    if n_shards == 1:
        return np.array([0, span], dtype=np.int64)
    codes, offsets = index._codes, index._offsets
    assert codes is not None and offsets is not None
    even = np.round(
        span * np.arange(1, n_shards, dtype=np.float64) / n_shards
    ).astype(np.int64)
    even = np.unique(np.clip(even, 1, span - 1))
    total = int(offsets[-1])
    if codes.size and total:
        targets = total * np.arange(1, n_shards, dtype=np.float64) / n_shards
        at = np.searchsorted(offsets[1:], targets, side="left")
        cuts = codes[np.minimum(at, codes.size - 1)]
        interior = np.unique(np.clip(cuts.astype(np.int64), 1, span - 1))
    else:
        interior = even
    if interior.size < n_shards - 1:
        pool = np.setdiff1d(even, interior)
        interior = np.sort(
            np.concatenate([interior, pool[: n_shards - 1 - interior.size]])
        )
    return np.concatenate(
        [[0], interior[: n_shards - 1], [span]]
    ).astype(np.int64)


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def build_disk_index(
    index: KmerIndex,
    out_dir: str | Path,
    *,
    library_name: str,
    fingerprint: str,
    n_shards: int = DEFAULT_SHARDS,
) -> Path:
    """Serialize a frozen index into a sharded artifact at ``out_dir``.

    The artifact is assembled in a writer-unique sibling temp directory
    and renamed into place, so concurrent builders and a crash mid-build
    leave either a complete artifact or none.  ``out_dir`` must not
    already exist (callers address artifacts by content fingerprint, so
    an existing directory is either reusable or quarantined —
    :func:`ensure_disk_index` decides which).
    """
    out_dir = Path(out_dir)
    if out_dir.exists():
        raise FileExistsError(f"disk-index artifact already at {out_dir}")
    index.freeze()
    codes, offsets, ids = index._codes, index._offsets, index._ids
    assert codes is not None and offsets is not None and ids is not None
    boundaries = shard_boundaries(index, n_shards)
    span = int(boundaries[-1])
    tmp = out_dir.with_name(
        f"{out_dir.name}.build.{os.getpid()}.{threading.get_ident():x}"
    )
    tmp.mkdir(parents=True)
    try:
        arrays: dict[str, np.ndarray] = {
            "counts": np.asarray(index.kmer_counts, dtype=np.float64)
        }
        for s in range(len(boundaries) - 1):
            lo, hi = int(boundaries[s]), int(boundaries[s + 1])
            i0 = int(np.searchsorted(codes, lo, side="left"))
            i1 = int(np.searchsorted(codes, hi, side="left"))
            shard_codes = codes[i0:i1]
            base = int(offsets[i0])
            arrays[f"shard{s:03d}.codes"] = shard_codes
            arrays[f"shard{s:03d}.offsets"] = (
                offsets[i0 : i1 + 1] - base
            ).astype(np.int64)
            arrays[f"shard{s:03d}.ids"] = ids[base : int(offsets[i1])]
            if span <= _LUT_MAX_SPAN:
                # Per-shard dense code->local-position table over
                # [lo, hi): memmapped at open, so every worker shares
                # one page-cache copy of the same direct-gather fast
                # path the in-memory index builds privately.
                lut = np.full(hi - lo, -1, dtype=np.int32)
                lut[shard_codes - lo] = np.arange(
                    shard_codes.size, dtype=np.int32
                )
                arrays[f"shard{s:03d}.lut"] = lut
        manifest: dict = {
            "schema": DISKINDEX_SCHEMA,
            "library": library_name,
            "fingerprint": fingerprint,
            "k": index.k,
            "n_sequences": index.n_sequences,
            "n_shards": len(boundaries) - 1,
            "boundaries": [int(b) for b in boundaries],
            "total_postings": int(offsets[-1]),
            "arrays": {},
        }
        for name, arr in arrays.items():
            file = f"{name}.npy"
            np.save(tmp / file, np.ascontiguousarray(arr))
            manifest["arrays"][name] = {
                "file": file,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "sha256": _sha256_file(tmp / file),
            }
        (tmp / _MANIFEST).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
        tmp.rename(out_dir)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return out_dir


@dataclass(frozen=True)
class _Shard:
    """One mapped code-range shard: ``[lo, hi)`` of the code space."""

    lo: int
    hi: int
    codes: np.ndarray
    offsets: np.ndarray
    ids: np.ndarray
    lut: np.ndarray | None


class DiskKmerIndex(KmerQueryAPI):
    """Read-only k-mer index over memory-mapped shard files.

    Opened from an artifact directory written by :func:`build_disk_index`.
    Every array is an ``np.memmap`` view of the artifact's ``.npy``
    files, so the postings live in the kernel page cache exactly once no
    matter how many worker processes attach — the process-executor
    analogue of the paper's replicated read-only library copies.

    Queries route codes to shards by boundary range and merge the
    per-shard hit streams through a single ``np.bincount``, which makes
    every result bit-identical to :class:`~repro.msa.kmer.KmerIndex`.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict,
        shards: list[_Shard],
        counts: np.ndarray,
    ) -> None:
        self._path = path
        self._manifest = manifest
        self._shards = shards
        self._counts = counts
        self.k = int(manifest["k"])
        self._n_sequences = int(manifest["n_sequences"])
        self._boundaries = np.asarray(manifest["boundaries"], dtype=np.int64)

    # -- opening -------------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, verify: bool = False) -> "DiskKmerIndex":
        """Attach to an artifact; ``verify`` re-hashes every shard file.

        Structural validation (schema, boundary shape, per-array
        dtype/shape against the manifest) always runs and costs only the
        ``.npy`` headers; checksum verification reads every byte once
        and is reserved for the first open of a campaign
        (:func:`ensure_disk_index`), not per-worker attach.
        """
        path = Path(path)
        try:
            manifest = json.loads(
                (path / _MANIFEST).read_text(encoding="utf-8")
            )
        except (OSError, ValueError) as exc:
            raise IndexCorruptError(
                f"{path}: unreadable disk-index manifest ({exc})"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != DISKINDEX_SCHEMA
        ):
            raise IndexCorruptError(
                f"{path} is not a {DISKINDEX_SCHEMA} artifact"
            )
        n_shards = int(manifest["n_shards"])
        boundaries = manifest["boundaries"]
        if len(boundaries) != n_shards + 1 or any(
            b >= c for b, c in zip(boundaries, boundaries[1:])
        ):
            raise IndexCorruptError(
                f"{path}: boundaries are not strictly increasing"
            )
        if verify:
            cls._verify_checksums(path, manifest)
        mapped = {
            name: cls._map_array(path, name, spec)
            for name, spec in manifest["arrays"].items()
        }
        shards = []
        for s in range(n_shards):
            shards.append(
                _Shard(
                    lo=int(boundaries[s]),
                    hi=int(boundaries[s + 1]),
                    codes=mapped[f"shard{s:03d}.codes"],
                    offsets=mapped[f"shard{s:03d}.offsets"],
                    ids=mapped[f"shard{s:03d}.ids"],
                    lut=mapped.get(f"shard{s:03d}.lut"),
                )
            )
        index = cls(path, manifest, shards, mapped["counts"])
        get_metrics().counter("msa.index.attach").inc()
        return index

    @staticmethod
    def _map_array(path: Path, name: str, spec: dict) -> np.ndarray:
        file = path / spec["file"]
        try:
            arr = np.load(file, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise IndexCorruptError(
                f"{path}: cannot map {spec['file']} ({exc})"
            ) from exc
        if arr.dtype.str != spec["dtype"] or list(arr.shape) != spec["shape"]:
            raise IndexCorruptError(
                f"{path}: {spec['file']} is {arr.dtype.str}{arr.shape}, "
                f"manifest says {spec['dtype']}{tuple(spec['shape'])}"
            )
        return arr

    @staticmethod
    def _verify_checksums(path: Path, manifest: dict) -> None:
        for name, spec in manifest["arrays"].items():
            file = path / spec["file"]
            try:
                digest = _sha256_file(file)
            except OSError as exc:
                raise IndexCorruptError(
                    f"{path}: missing shard file {spec['file']}"
                ) from exc
            if digest != spec["sha256"]:
                raise IndexCorruptError(
                    f"{path}: checksum mismatch on {spec['file']}"
                )

    # -- pickling ------------------------------------------------------------
    # The pickle ships the manifest path only: a worker re-attaches by
    # mapping the same files (one more page-cache sharer), never by
    # copying postings through a pipe or /dev/shm.
    def __getstate__(self) -> dict:
        return {"path": str(self._path)}

    def __setstate__(self, state: dict) -> None:
        other = DiskKmerIndex.open(Path(state["path"]))
        self.__dict__.update(other.__dict__)

    # -- metadata ------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the library this artifact was built from."""
        return str(self._manifest["fingerprint"])

    @property
    def library_name(self) -> str:
        return str(self._manifest["library"])

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def boundaries(self) -> np.ndarray:
        return self._boundaries

    @property
    def n_sequences(self) -> int:
        return self._n_sequences

    @property
    def total_postings(self) -> int:
        return int(self._manifest["total_postings"])

    @property
    def nbytes(self) -> int:
        """Artifact size on disk (what N workers share one copy of)."""
        return sum(
            (self._path / spec["file"]).stat().st_size
            for spec in self._manifest["arrays"].values()
        )

    @property
    def kmer_counts(self) -> np.ndarray:
        """Distinct k-mer types per sequence (float64 memmap)."""
        return self._counts

    def kmer_count(self, seq_id: int) -> int:
        return int(self._counts[seq_id])

    # -- queries -------------------------------------------------------------
    def _route(self, codes: np.ndarray) -> np.ndarray:
        """Shard id of every code (codes outside the span clamp to the
        edge shards, where the per-shard lookup reports no match)."""
        if len(self._shards) == 1:
            return np.zeros(codes.size, dtype=np.int64)
        return np.searchsorted(self._boundaries[1:-1], codes, side="right")

    @staticmethod
    def _shard_positions(
        shard: _Shard, codes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Local vocabulary positions of ``codes`` within one shard.

        Mirrors ``KmerIndex._vocab_positions``: dense LUT gather when
        the shard has one, binary search otherwise; returns
        ``(positions, matched_mask)``.
        """
        if shard.codes.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(codes.size, dtype=bool),
            )
        if shard.lut is not None:
            rel = codes - shard.lo
            valid = (rel >= 0) & (rel < shard.lut.size)
            if valid.all():
                pos = shard.lut[rel]
            else:
                pos = np.full(codes.size, -1, dtype=np.int32)
                pos[valid] = shard.lut[rel[valid]]
            matched = pos >= 0
            return pos[matched], matched
        pos = np.minimum(
            np.searchsorted(shard.codes, codes), shard.codes.size - 1
        )
        matched = shard.codes[pos] == codes
        return pos[matched], matched

    def _shard_hits(
        self, shard: _Shard, codes: np.ndarray, query_of_code: np.ndarray
    ) -> np.ndarray | None:
        """Flat ``query_id * n_seq + seq_id`` hit stream for one shard."""
        pos, matched = self._shard_positions(shard, codes)
        if pos.size == 0:
            return None
        starts = shard.offsets[pos]
        lengths = shard.offsets[pos + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return None
        hit_ids = shard.ids[_expand_ranges(starts, lengths, total)]
        hit_query = np.repeat(query_of_code[matched], lengths)
        return hit_query * np.int64(self._n_sequences) + hit_ids

    def count_hits_codes(self, codes: np.ndarray) -> np.ndarray:
        """:meth:`count_hits` for a precomputed *distinct* code array."""
        codes = np.asarray(codes, dtype=np.int64)
        n_seq = self._n_sequences
        if codes.size == 0 or n_seq == 0:
            return np.zeros(n_seq, dtype=np.int64)
        counts = self.count_hits_many([codes], precomputed_codes=True)
        return counts.reshape(n_seq)

    def count_hits_many(
        self, queries: list[np.ndarray], precomputed_codes: bool = False
    ) -> np.ndarray:
        """Batched counts, one ``(n_queries, n_sequences)`` matrix.

        Routes the deduplicated code batch to shards by code range and
        bincounts the concatenated per-shard hit streams — the same
        multiset of ``(query, sequence)`` increments the monolithic
        index produces, so the result is bit-identical.
        """
        n_seq = self._n_sequences
        n_q = len(queries)
        if n_q == 0:
            return np.zeros((0, n_seq), dtype=np.int64)
        all_codes, query_of_code = batched_query_codes(
            queries, self.k, precomputed_codes=precomputed_codes
        )
        if all_codes.size == 0 or n_seq == 0:
            return np.zeros((n_q, n_seq), dtype=np.int64)
        shard_of = self._route(all_codes)
        flats = []
        for s, shard in enumerate(self._shards):
            mask = shard_of == s
            if not mask.any():
                continue
            flat = self._shard_hits(
                shard, all_codes[mask], query_of_code[mask]
            )
            if flat is not None:
                flats.append(flat)
        if not flats:
            return np.zeros((n_q, n_seq), dtype=np.int64)
        flat = np.bincount(np.concatenate(flats), minlength=n_q * n_seq)
        return flat.reshape(n_q, n_seq).astype(np.int64, copy=False)


# -- campaign integration ----------------------------------------------------
def _artifact_dir(root: Path, library: "SequenceLibrary") -> Path:
    """Fingerprint-addressed artifact location for one library.

    The directory name carries a fingerprint prefix so artifacts for
    different library contents never collide; the manifest's full
    fingerprint is still the authoritative match check.
    """
    return root / f"{library.name}.{library.fingerprint()[:12]}"


def _quarantine(target: Path) -> Path:
    """Move a bad artifact aside (kept for forensics, like the store)."""
    for i in range(10_000):
        dest = target.with_name(f"{target.name}.corrupt{i}")
        if not dest.exists():
            target.rename(dest)
            return dest
    raise RuntimeError(f"too many quarantined artifacts beside {target}")


def ensure_disk_index(
    library: "SequenceLibrary",
    root: str | Path,
    *,
    n_shards: int = DEFAULT_SHARDS,
    verify: bool = True,
) -> DiskKmerIndex:
    """Open (or build) the disk-index artifact for one library.

    The happy path — a prebuilt artifact whose fingerprint matches —
    never constructs an in-memory index, which is what keeps
    ``msa.index.rebuild`` at zero for campaigns run with a prebuilt
    ``--index-dir``.  A corrupt, checksum-mismatched or
    wrong-fingerprint artifact is quarantined beside its directory
    (``msa.index.corrupt``) and rebuilt from the library.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    target = _artifact_dir(root, library)
    if target.exists():
        try:
            disk = DiskKmerIndex.open(target, verify=verify)
            if disk.fingerprint != library.fingerprint():
                raise IndexCorruptError(
                    f"{target}: artifact fingerprint {disk.fingerprint[:12]} "
                    f"does not match library {library.fingerprint()[:12]}"
                )
            return disk
        except IndexCorruptError:
            _quarantine(target)
            get_metrics().counter("msa.index.corrupt").inc()
    # Rebuild needs real CSR arrays.  ``library.index`` is usually the
    # lazily built in-memory index, but after a quarantine it may be a
    # stale DiskKmerIndex attached earlier — construct fresh then.
    mem = library.index
    if not isinstance(mem, KmerIndex):
        mem = KmerIndex()
        for i, entry in enumerate(library.entries):
            mem.add(i, entry.encoded)
        mem.freeze()
    build_disk_index(
        mem,
        target,
        library_name=library.name,
        fingerprint=library.fingerprint(),
        n_shards=n_shards,
    )
    return DiskKmerIndex.open(target)


def attach_suite_index(
    suite: "LibrarySuite",
    root: str | Path,
    *,
    n_shards: int = DEFAULT_SHARDS,
    verify: bool = True,
) -> list[DiskKmerIndex]:
    """Attach every library in a suite to its disk-index artifact.

    After this, ``library.index`` is the memory-mapped
    :class:`DiskKmerIndex` for all four libraries: forked workers
    inherit the mappings copy-on-write and spawned/pickled workers
    re-attach by path, so no process ever rebuilds or receives the
    postings.
    """
    attached = []
    for lib in suite.libraries:
        disk = ensure_disk_index(lib, root, n_shards=n_shards, verify=verify)
        lib.attach_index(disk)
        attached.append(disk)
    return attached
