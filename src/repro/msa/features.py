"""Input-feature construction for the inference stage.

In the real pipeline the CPU stage ends with a pickled feature
dictionary per target (MSAs + templates); the GPU stage consumes only
those.  :class:`FeatureBundle` plays that role here: it carries
everything the surrogate predictor needs — crucially the MSA depth and
template availability that determine target difficulty — plus the I/O
accounting the cost model charges to the feature-generation stage.

The stage decoupling in the paper (features on Andes, inference on
Summit) is reproduced by making this the *only* hand-off object between
the two workflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sequences.generator import ProteinRecord
from .databases import LibrarySuite
from .search import SearchResult, search_suite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cache import FeatureCache

__all__ = ["FeatureBundle", "generate_features", "FeatureGenConfig"]


@dataclass(frozen=True)
class FeatureGenConfig:
    """Knobs of the feature-generation stage."""

    min_containment: float = 0.002
    max_hits_per_library: int = 128
    verify_top: int = 4
    template_min_identity: float = 0.3


@dataclass
class FeatureBundle:
    """Per-target input features handed from the CPU to the GPU stage."""

    record: ProteinRecord
    msa_depth: int
    effective_depth: float
    n_templates: int
    #: Best template family id, if any — template-using models can sit
    #: closer to the native fold from recycle zero.
    best_template_family: int | None
    best_template_identity: float
    #: I/O accounting for the cost/iosim layers.
    n_file_reads: int
    bytes_scanned: int

    @property
    def record_id(self) -> str:
        return self.record.record_id

    @property
    def length(self) -> int:
        return self.record.length

    @property
    def has_templates(self) -> bool:
        return self.n_templates > 0


def generate_features(
    record: ProteinRecord,
    suite: LibrarySuite,
    config: FeatureGenConfig | None = None,
    cache: "FeatureCache | None" = None,
) -> FeatureBundle:
    """Run the search stage for one target and package its features.

    With a :class:`~repro.cache.FeatureCache`, the search is skipped
    entirely when an identical (sequence, suite, config) triple was
    generated before — the content-addressed key means record ids don't
    matter, and any change to the suite or config invalidates.
    """
    cfg = config or FeatureGenConfig()
    key = ""
    if cache is not None:
        key = cache.key_for(record, suite, cfg)
        cached = cache.get(key, record=record)
        if cached is not None:
            return cached
    result: SearchResult = search_suite(
        record,
        suite,
        min_containment=cfg.min_containment,
        max_hits_per_library=cfg.max_hits_per_library,
        verify_top=cfg.verify_top,
    )
    templates = result.template_hits(min_identity=cfg.template_min_identity)
    best_fid: int | None = None
    best_identity = 0.0
    if templates:
        best = max(templates, key=lambda h: h.identity)
        best_fid = best.entry.family_id
        best_identity = best.identity
    bundle = FeatureBundle(
        record=record,
        msa_depth=result.msa_depth,
        effective_depth=result.effective_depth(),
        n_templates=len(templates),
        best_template_family=best_fid,
        best_template_identity=best_identity,
        n_file_reads=result.n_file_reads,
        bytes_scanned=result.bytes_scanned,
    )
    if cache is not None:
        cache.put(key, bundle)
    return bundle
