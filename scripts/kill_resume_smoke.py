#!/usr/bin/env python
"""End-to-end kill/resume smoke test for durable campaign state.

Launches a real ``repro campaign`` subprocess with a durable state
directory and the hidden ``--crash-after-inference-tasks`` fault hook,
which SIGKILLs the process partway through the inference stage — the
closest in-process stand-in for the paper's node failures.  Then:

1. asserts the process died by SIGKILL (rc -9 / 137),
2. validates what survived on disk: the ledger's schema header and
   parseable ok-records, and the artifact store's marker plus payload
   schema for every ledgered-ok key,
3. re-runs the identical campaign with ``--resume`` and asserts it
   completes (rc 0) while reporting skipped, already-ledgered work.

The same drill then runs against ``--schedule streaming`` — the
campaign as one dependency-driven dataflow, killed while chains are
interleaved mid-flight — with two extra teeth: the resumed run may
recompute at most one ledgered task (only the record a torn final
ledger line dropped), and the relaxed structures it stores must be
byte-identical to an uninterrupted reference campaign's artifacts.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/kill_resume_smoke.py
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import pickle
import subprocess
import sys
import tempfile
from pathlib import Path

LEDGER_SCHEMA = "repro.runstate.ledger/1"
STORE_SCHEMA = "repro.runstate.store/1"

CAMPAIGN = [
    sys.executable, "-m", "repro.cli", "campaign",
    "--species", "P_mercurii",
    "--scale", "0.002",
    "--seed", "5",
    "--feature-nodes", "2",
    "--inference-nodes", "1",
    "--relax-nodes", "1",
]


def run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(args, capture_output=True, text=True)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def validate_state_dir(state_dir: Path) -> dict[str, int]:
    """Parse the surviving ledger + artifacts; return ok counts by stage."""
    ledger = state_dir / "ledger.jsonl"
    check(ledger.exists(), "ledger.jsonl survived the kill")
    lines = ledger.read_text().splitlines()
    header = json.loads(lines[0])
    check(
        header == {"schema": LEDGER_SCHEMA},
        f"ledger header declares {LEDGER_SCHEMA}",
    )
    ok_counts: dict[str, int] = {}
    ok_keys: list[tuple[str, str]] = []
    torn = 0
    for line in lines[1:]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            torn += 1  # a torn final append is exactly what replay drops
            continue
        if entry.get("ok"):
            ok_counts[entry["stage"]] = ok_counts.get(entry["stage"], 0) + 1
            ok_keys.append((entry["stage"], entry["key"]))
    check(torn <= 1, "at most the final ledger line may be torn")
    check(sum(ok_counts.values()) > 0, f"ledgered-ok work survived: {ok_counts}")

    marker = json.loads((state_dir / "artifacts" / "store.json").read_text())
    check(
        marker == {"schema": STORE_SCHEMA},
        f"artifact store marker declares {STORE_SCHEMA}",
    )
    for stage, key in ok_keys:
        name = hashlib.sha256(key.encode()).hexdigest()
        path = state_dir / "artifacts" / stage / f"{name}.pkl"
        check(path.exists(), f"artifact present for ledgered key {stage}/{key}")
        payload = pickle.loads(path.read_bytes())
        check(
            payload["schema"] == STORE_SCHEMA
            and payload["stage"] == stage
            and payload["key"] == key,
            f"artifact payload schema sound for {stage}/{key}",
        )
    return ok_counts


def ok_keys_of(state_dir: Path) -> list[tuple[str, str]]:
    """Every parseable ledgered-ok ``(stage, key)`` entry, in order."""
    keys: list[tuple[str, str]] = []
    for line in (state_dir / "ledger.jsonl").read_text().splitlines()[1:]:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("ok"):
            keys.append((entry["stage"], entry["key"]))
    return keys


def _canonical(value):
    """Recursively strip object-graph accidents from a stored value.

    Whether one array is a view of another, or two fields share an
    object, is an accident of the run's history (restored objects lose
    sharing) that whole-object pickles encode via the memo; the
    *content* — every byte of every array, every scalar — is what must
    survive a kill+resume bit-identically.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            (f.name, _canonical(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        ]
    if hasattr(value, "tobytes") and hasattr(value, "dtype"):  # ndarray
        return (str(value.dtype), value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return sorted((k, _canonical(v)) for k, v in value.items())
    return value


def artifact_value_bytes(state_dir: Path, stage: str, key: str) -> bytes:
    """A canonical byte fingerprint of one stored artifact's value."""
    name = hashlib.sha256(key.encode()).hexdigest()
    payload = pickle.loads(
        (state_dir / "artifacts" / stage / f"{name}.pkl").read_bytes()
    )
    return pickle.dumps(_canonical(payload["value"]))


def streaming_scenario(workdir: Path, crash_after: int) -> None:
    """Kill a streaming campaign mid-flight; resume must not recompute."""
    state_dir = workdir / "streaming-state"
    reference_dir = workdir / "streaming-reference"
    streaming = CAMPAIGN + ["--schedule", "streaming"]

    print(
        f"[4/6] streaming campaign with SIGKILL after {crash_after} "
        "inference tasks"
    )
    crashed = run(
        streaming
        + ["--state-dir", str(state_dir),
           "--crash-after-inference-tasks", str(crash_after)]
    )
    check(
        crashed.returncode in (-9, 137),
        f"streaming campaign was SIGKILLed (rc={crashed.returncode})",
    )
    ok_counts = validate_state_dir(state_dir)
    check(
        ok_counts.get("inference", 0) >= crash_after,
        f"streaming crash-trigger records were durable: {ok_counts}",
    )
    before = ok_keys_of(state_dir)

    print("[5/6] resuming the killed streaming campaign")
    resumed = run(streaming + ["--state-dir", str(state_dir), "--resume"])
    check(resumed.returncode == 0, f"resume completed (rc={resumed.returncode})")
    check("resume   : skipped" in resumed.stdout, "resume reported skipped work")
    check(
        "streaming:" in resumed.stdout,
        "resumed run reported the streaming makespan summary",
    )
    after = ok_keys_of(state_dir)
    # Every pre-kill ok record was skipped on resume, not recomputed —
    # except at most the one task a torn final ledger line dropped.
    recomputed = [k for k in set(before) if after.count(k) > before.count(k)]
    check(
        len(recomputed) <= 1,
        f"resume recomputed at most one ledgered task ({recomputed})",
    )
    check(
        len(set(after)) > len(set(before)),
        "resume extended the streaming ledger",
    )

    print("[6/6] comparing against an uninterrupted reference campaign")
    reference = run(streaming + ["--state-dir", str(reference_dir)])
    check(
        reference.returncode == 0,
        f"reference campaign completed (rc={reference.returncode})",
    )
    relax_keys = sorted(k for stage, k in set(after) if stage == "relax")
    check(bool(relax_keys), "streaming campaign stored relax artifacts")
    for key in relax_keys:
        check(
            artifact_value_bytes(state_dir, "relax", key)
            == artifact_value_bytes(reference_dir, "relax", key),
            f"relax artifact byte-identical after kill+resume: {key}",
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--crash-after", type=int, default=3,
        help="successful inference tasks before the injected SIGKILL",
    )
    parser.add_argument(
        "--workdir", type=Path, default=None,
        help="state directory parent (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="kill-resume-"))
    state_dir = workdir / "campaign-state"

    print(f"[1/3] campaign with SIGKILL after {args.crash_after} inference tasks")
    crashed = run(
        CAMPAIGN
        + ["--state-dir", str(state_dir),
           "--crash-after-inference-tasks", str(args.crash_after)]
    )
    check(
        crashed.returncode in (-9, 137),
        f"campaign was SIGKILLed (rc={crashed.returncode})",
    )

    print("[2/3] validating surviving state")
    ok_counts = validate_state_dir(state_dir)
    check(
        ok_counts.get("inference", 0) >= args.crash_after,
        f"crash-trigger records were durable before death: {ok_counts}",
    )

    print("[3/3] resuming the killed campaign")
    resumed = run(CAMPAIGN + ["--state-dir", str(state_dir), "--resume"])
    check(resumed.returncode == 0, f"resume completed (rc={resumed.returncode})")
    check("resume   : skipped" in resumed.stdout, "resume reported skipped work")
    check("quality  :" in resumed.stdout, "resumed campaign reached the summary")

    final_counts = validate_state_dir(state_dir)
    check(
        final_counts.get("inference", 0) > ok_counts.get("inference", 0),
        "resume extended the ledger instead of rewriting it",
    )

    streaming_scenario(workdir, args.crash_after)
    print("kill/resume smoke ok:", final_counts)
    return 0


if __name__ == "__main__":
    sys.exit(main())
