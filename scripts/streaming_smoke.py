#!/usr/bin/env python
"""End-to-end smoke test for the streaming campaign scheduler.

Two teeth, both fast enough for CI:

1. **Output equality across schedules on the process backend.**  Runs
   the same small campaign twice — ``schedule="barrier"`` and
   ``schedule="streaming"`` — with process workers, and asserts the
   scientific outputs are bit-identical: feature bundles, top-model
   choices and pTM-scores, and relaxed CA coordinates.  The scheduler
   is an operational choice, never a scientific one.

2. **Benchmark artifact schema.**  Runs ``benchmarks/bench_streaming.py``
   under ``BENCH_SMOKE=1`` and validates the ``BENCH_streaming.json``
   it writes: the sweep/worker-pool/makespan/TTFS/bubble shape the
   EXPERIMENTS notes quote, with streaming strictly beating the barrier
   schedule at every sweep point.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/streaming_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parents[1]


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def run_campaign(schedule: str):
    from repro.core import ProteomePipeline
    from repro.fold import NativeFactory
    from repro.msa import build_suite
    from repro.sequences import SequenceUniverse, synthetic_proteome

    universe = SequenceUniverse(33)
    proteome = synthetic_proteome(
        "P_mercurii", universe=universe, seed=33, scale=0.002
    )
    suite = build_suite(universe, ["P_mercurii"], seed=33, scale=0.002)
    pipeline = ProteomePipeline(
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
        compute_workers=3,
        executor_backend="process",
        schedule=schedule,
    )
    return pipeline.run(proteome, suite, NativeFactory(universe))


def compare_schedules() -> None:
    print("[1/2] barrier vs streaming campaign on the process backend")
    barrier = run_campaign("barrier")
    stream = run_campaign("streaming")

    fa, fb = barrier.feature_stage.features, stream.feature_stage.features
    check(fa.keys() == fb.keys(), f"same {len(fa)} feature bundles")
    check(
        all(
            fa[r].msa_depth == fb[r].msa_depth
            and fa[r].effective_depth == fb[r].effective_depth
            for r in fa
        ),
        "feature bundles identical (msa depth, effective depth)",
    )
    ta, tb = barrier.inference_stage.top_models, stream.inference_stage.top_models
    check(ta.keys() == tb.keys(), f"same {len(ta)} top models")
    check(
        all(
            ta[r].model_name == tb[r].model_name and ta[r].ptms == tb[r].ptms
            for r in ta
        ),
        "top-model choices and pTM-scores identical",
    )
    oa, ob = barrier.relax_stage.outcomes, stream.relax_stage.outcomes
    check(oa.keys() == ob.keys(), f"same {len(oa)} relaxed structures")
    for rid in oa:
        check(
            bool(np.array_equal(oa[rid].structure.ca, ob[rid].structure.ca))
            and oa[rid].final_energy == ob[rid].final_energy,
            f"relaxed structure bit-identical: {rid}",
        )
    check(
        stream.total_node_hours == barrier.total_node_hours,
        "node-hour accounting is schedule-invariant",
    )
    check(
        stream.streaming_simulation is not None
        and stream.campaign_walltime_seconds < barrier.campaign_walltime_seconds,
        "streaming campaign makespan beats the barrier schedule",
    )
    check(
        stream.time_to_first_structure_seconds
        < barrier.time_to_first_structure_seconds,
        "streaming time-to-first-structure beats the barrier schedule",
    )


def validate_bench_artifact() -> None:
    print("[2/2] BENCH_streaming.json schema (BENCH_SMOKE=1)")
    env = dict(os.environ, BENCH_SMOKE="1", PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest",
            "bench_streaming.py", "-x", "-q", "-p", "no:benchmark",
        ],
        cwd=REPO / "benchmarks",
        env=env,
        capture_output=True,
        text=True,
    )
    check(
        proc.returncode == 0,
        f"bench_streaming.py passed under BENCH_SMOKE=1 "
        f"(rc={proc.returncode})\n{proc.stdout[-2000:]}{proc.stderr[-2000:]}",
    )
    payload = json.loads(
        (REPO / "benchmarks" / "results" / "BENCH_streaming.json").read_text()
    )
    check(payload["smoke"] is True, "artifact is marked as a smoke run")
    check(
        payload["campaign"]["n_tasks"]
        == 7 * payload["campaign"]["n_targets"],
        "campaign carries 7 chained tasks per target",
    )
    check(payload["startup_seconds"] > 0, "scheduler startup charge recorded")
    check(len(payload["sweep"]) >= 2, "sweep covers several worker counts")
    for row in payload["sweep"]:
        for field in ("workers", "cpu_workers", "gpu_workers"):
            check(row[field] >= 1, f"{field} recorded at {row['workers']} workers")
        for side in ("barrier", "streaming"):
            for metric in (
                "makespan_seconds",
                "time_to_first_structure_seconds",
                "bubble_seconds",
            ):
                check(
                    isinstance(row[side][metric], float)
                    and row[side][metric] >= 0.0,
                    f"{side}.{metric} present at {row['workers']} workers",
                )
        check(
            row["streaming"]["makespan_seconds"]
            < row["barrier"]["makespan_seconds"],
            f"streaming makespan wins at {row['workers']} workers "
            f"({row['makespan_speedup']:.2f}x)",
        )
        check(
            row["streaming"]["time_to_first_structure_seconds"]
            < row["barrier"]["time_to_first_structure_seconds"],
            f"streaming TTFS wins at {row['workers']} workers "
            f"({row['ttfs_speedup']:.2f}x)",
        )


def main() -> int:
    compare_schedules()
    validate_bench_artifact()
    print("streaming smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
