#!/usr/bin/env python
"""End-to-end smoke test for the multiprocessing executor backend.

Two layers, mirroring how the paper's deployment lost and recovered
workers (§3.3):

1. **API-level worker loss.**  A ``ProcessExecutor`` runs a task that
   SIGKILLs its own worker process on the first attempt — the exact
   failure a dead node presents to the scheduler: no exception, no
   goodbye, just a closed pipe.  The run must detect the loss, requeue
   the in-flight task under the retry policy, finish with **zero lost
   keys**, and leave a ``WorkerLost`` failure record for the killed
   attempt.

2. **CLI campaign composition.**  A real ``repro campaign --executor
   process`` subprocess with a durable ``--state-dir`` must complete,
   and re-running it with ``--resume`` must skip every ledgered task —
   the process backend composes with durable state exactly like the
   threaded one (completions are ledgered in the parent).

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/process_executor_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.dataflow import ProcessExecutor, RetryPolicy, TaskSpec

CAMPAIGN = [
    sys.executable, "-m", "repro.cli", "campaign",
    "--species", "P_mercurii",
    "--scale", "0.002",
    "--seed", "5",
    "--feature-nodes", "2",
    "--inference-nodes", "1",
    "--relax-nodes", "1",
    "--executor", "process",
    "--compute-workers", "2",
]


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def _suicide_on_first_attempt(spec: TaskSpec):
    if spec.key == "victim" and spec.attempt == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return f"{spec.key}@{spec.attempt}"


def api_level_worker_loss() -> None:
    specs = [TaskSpec(key="victim", size_hint=10.0)] + [
        TaskSpec(key=f"t{i}", size_hint=float(i + 1)) for i in range(8)
    ]
    result = ProcessExecutor(n_workers=2).map(
        _suicide_on_first_attempt,
        specs,
        pass_spec=True,
        retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
    )
    check(result.lost_keys() == [], "zero lost keys after a worker SIGKILL")
    victim = sorted(
        (r for r in result.records if r.key == "victim"),
        key=lambda r: r.attempt,
    )
    check(
        len(victim) == 2 and not victim[0].ok,
        "killed attempt left a failure record",
    )
    check(
        "WorkerLost" in (victim[0].error or ""),
        f"failure record names the worker loss: {victim[0].error!r}",
    )
    check(
        victim[1].ok and result.results["victim"] == "victim@2",
        "in-flight task was requeued and completed on attempt 2",
    )
    check(
        all(result.results[f"t{i}"] == f"t{i}@1" for i in range(8)),
        "bystander tasks all completed first attempt",
    )


def cli_campaign_composition() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="process-executor-"))
    state_dir = workdir / "campaign-state"

    fresh = subprocess.run(
        CAMPAIGN + ["--state-dir", str(state_dir)],
        capture_output=True, text=True,
    )
    check(
        fresh.returncode == 0,
        f"process-backend campaign completed (rc={fresh.returncode})",
    )
    check("quality  :" in fresh.stdout, "campaign reached the summary")
    check(
        (state_dir / "ledger.jsonl").exists(),
        "durable ledger written by the parent process",
    )

    resumed = subprocess.run(
        CAMPAIGN + ["--state-dir", str(state_dir), "--resume"],
        capture_output=True, text=True,
    )
    check(
        resumed.returncode == 0,
        f"process-backend resume completed (rc={resumed.returncode})",
    )
    check(
        "resume   : skipped" in resumed.stdout,
        "resume skipped the ledgered work",
    )


def main() -> int:
    print("[1/2] API-level worker kill -9 / requeue")
    api_level_worker_loss()
    print("[2/2] CLI campaign with --executor process + --state-dir/--resume")
    cli_campaign_composition()
    print("process-executor smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
