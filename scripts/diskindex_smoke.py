#!/usr/bin/env python
"""End-to-end smoke test for the sharded on-disk k-mer index.

Three layers, mirroring the paper's build-once / search-everywhere
library deployment (§3.2.1):

1. **Artifact build.**  ``repro index build`` must produce one
   fingerprint-addressed artifact directory per library, each with a
   valid manifest.

2. **Zero-rebuild campaign.**  A ``repro campaign --executor process
   --index-dir`` run against the prebuilt artifacts must finish with
   the ``msa.index.rebuild`` counter **absent or zero** in the exported
   metrics — no worker ever reconstructed a CSR index — while
   ``msa.index.attach`` shows every library was memory-mapped.  A
   control campaign *without* ``--index-dir`` must show rebuilds, so
   the zero isn't vacuous.

3. **Benchmark artifact.**  ``bench_diskindex.py`` under
   ``BENCH_SMOKE=1`` must emit a well-formed ``BENCH_diskindex.json``
   with bit-identical results and the 4-searches-per-replica sweet
   spot.

Run from the repo root (CI does)::

    PYTHONPATH=src python scripts/diskindex_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SPECIES = ["--species", "D_vulgaris", "--scale", "0.002", "--seed", "7"]


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def _campaign_counters(index_dir: Path | None, telemetry_dir: Path) -> dict:
    cmd = [
        sys.executable, "-m", "repro.cli", "campaign",
        *SPECIES,
        "--feature-nodes", "2",
        "--inference-nodes", "1",
        "--relax-nodes", "1",
        "--executor", "process",
        "--compute-workers", "2",
        "--telemetry-dir", str(telemetry_dir),
    ]
    if index_dir is not None:
        cmd += ["--index-dir", str(index_dir)]
    run = subprocess.run(cmd, capture_output=True, text=True)
    check(
        run.returncode == 0,
        f"campaign completed (rc={run.returncode})"
        + (f"\n{run.stderr[-2000:]}" if run.returncode else ""),
    )
    if index_dir is not None:
        check("index    :" in run.stdout, "campaign printed the index summary")
    metrics = json.loads((telemetry_dir / "metrics.json").read_text())
    return metrics["counters"]


def artifact_build(index_dir: Path) -> None:
    build = subprocess.run(
        [sys.executable, "-m", "repro.cli", "index", "build",
         *SPECIES, "--out", str(index_dir)],
        capture_output=True, text=True,
    )
    check(build.returncode == 0, f"index build completed (rc={build.returncode})")
    manifests = sorted(index_dir.glob("*/manifest.json"))
    check(len(manifests) == 4, f"four library artifacts built ({len(manifests)})")
    for m in manifests:
        manifest = json.loads(m.read_text())
        check(
            manifest.get("schema") == "repro.msa.diskindex/1",
            f"{m.parent.name}: manifest schema",
        )


def zero_rebuild_campaign(index_dir: Path, workdir: Path) -> None:
    counters = _campaign_counters(index_dir, workdir / "tel-prebuilt")
    rebuilds = counters.get("msa.index.rebuild", 0)
    check(
        rebuilds == 0,
        f"prebuilt --index-dir campaign performed zero CSR rebuilds "
        f"({rebuilds})",
    )
    check(
        counters.get("msa.index.attach", 0) >= 4,
        f"all four libraries attached by mmap "
        f"({counters.get('msa.index.attach', 0)})",
    )
    control = _campaign_counters(None, workdir / "tel-control")
    check(
        control.get("msa.index.rebuild", 0) > 0,
        f"control campaign without --index-dir rebuilt CSR indexes "
        f"({control.get('msa.index.rebuild', 0)})",
    )


def bench_artifact() -> None:
    bench_dir = Path("benchmarks")
    run = subprocess.run(
        [sys.executable, "-m", "pytest", "bench_diskindex.py", "-q"],
        cwd=bench_dir,
        capture_output=True, text=True,
        env={
            **os.environ,
            "BENCH_SMOKE": "1",
            "PYTHONPATH": str(Path("src").resolve()),
        },
    )
    check(run.returncode == 0, f"smoke benchmark passed (rc={run.returncode})")
    payload = json.loads(
        (bench_dir / "results" / "BENCH_diskindex.json").read_text()
    )
    check(payload["smoke"] is True, "benchmark ran in smoke mode")
    check(payload["bit_identical"] is True, "disk results bit-identical")
    check(
        payload["sweet_spot_jobs_per_replica"] == 4,
        "replica sweet spot at 4 searches per copy",
    )
    check(
        len(payload["replica_sweep"]) >= 8,
        "replica sweep rows present",
    )


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="diskindex-smoke-"))
    index_dir = workdir / "index"
    print("[1/3] repro index build artifacts")
    artifact_build(index_dir)
    print("[2/3] process-backend campaign with --index-dir: zero rebuilds")
    zero_rebuild_campaign(index_dir, workdir)
    print("[3/3] BENCH_diskindex.json smoke validation")
    bench_artifact()
    print("diskindex smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
