"""Disk-index artifact: attach cost, query throughput, replica model.

Writes ``benchmarks/results/BENCH_diskindex.json`` with four sections:

* build/attach — cold artifact build seconds vs. the attach cost every
  subsequent process pays (checksum-verified first open and the
  headers-only warm attach workers use).  The attach must be orders of
  magnitude cheaper than the CSR rebuild it replaces.
* throughput — batched ``count_hits_many`` queries/sec of the
  memory-mapped sharded index against the in-memory CSR index, results
  asserted bit-identical.  The acceptance bar at full size is the CSR
  baseline recorded by ``BENCH_search.json`` (~20.6k q/s): mmap-backed
  sharding must not give back the batched-query win.
* worker scaling — simulated N-process campaign cost: N CSR rebuilds
  vs. one build + N attaches.
* replica contention — the :mod:`repro.iosim.replication` sweep over
  concurrent searches per on-disk index replica, asserting the
  per-replica throughput peak lands at the paper's 4 searches per copy.

``BENCH_SMOKE=1`` shrinks sizes so CI validates artifact production in
seconds; the throughput bar is then informational (tiny vocabularies
measure routing overhead, not gather bandwidth).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.constants import REDUCED_DATASET_BYTES
from repro.iosim import (
    searches_per_replica_sweep,
    sweet_spot_jobs_per_replica,
)
from repro.msa import DiskKmerIndex, build_disk_index
from repro.msa.kmer import KmerIndex
from repro.sequences import mutate_sequence, random_sequence
from conftest import RESULTS_DIR, save_result

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_LIBRARY = 300 if SMOKE else 5000
N_QUERIES = 16 if SMOKE else 64
N_SHARDS = 4
#: Full-size acceptance bar: the batched CSR baseline from
#: ``BENCH_search.json`` (csr_batched_queries_per_sec = 20576.9 on the
#: reference box).  The disk-backed index must meet it.
MIN_DISK_QPS = 1.0 if SMOKE else 20_600.0


def _workload():
    rng = np.random.default_rng(7)
    library = [
        random_sequence(int(rng.integers(60, 500)), rng)
        for _ in range(N_LIBRARY)
    ]
    queries = [
        mutate_sequence(
            library[int(rng.integers(0, len(library)))],
            rng,
            float(rng.uniform(0.05, 0.5)),
        )
        for _ in range(N_QUERIES)
    ]
    return library, queries


def _best_of(fn, repeats: int = 3):
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_diskindex_throughput_and_replicas(tmp_path):
    library, queries = _workload()

    mem = KmerIndex()
    t0 = time.perf_counter()
    for i, seq in enumerate(library):
        mem.add(i, seq)
    mem.freeze()
    csr_build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    artifact = build_disk_index(
        mem,
        tmp_path / "bench.artifact",
        library_name="bench",
        fingerprint="b" * 64,
        n_shards=N_SHARDS,
    )
    artifact_build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    disk = DiskKmerIndex.open(artifact, verify=True)
    cold_attach_s = time.perf_counter() - t0
    warm_attach_s, disk = _best_of(lambda: DiskKmerIndex.open(artifact))

    mem_s, mem_counts = _best_of(lambda: mem.count_hits_many(queries))
    disk_s, disk_counts = _best_of(lambda: disk.count_hits_many(queries))
    mem_qps = len(queries) / mem_s
    disk_qps = len(queries) / disk_s

    bit_identical = bool((mem_counts == disk_counts).all())
    assert bit_identical
    assert disk_qps >= MIN_DISK_QPS
    # Warm attach replaces a per-worker CSR rebuild: it must be cheap.
    assert warm_attach_s < max(0.05, csr_build_s / 10)

    # N-worker campaign cost: every process rebuilds, vs. one build
    # plus N map-the-same-pages attaches.
    worker_rows = [
        {
            "workers": n,
            "rebuild_every_worker_s": n * csr_build_s,
            "build_once_attach_each_s": artifact_build_s
            + n * warm_attach_s,
        }
        for n in (1, 2, 4, 8, 16)
    ]

    sweep = searches_per_replica_sweep(REDUCED_DATASET_BYTES)
    sweet = sweet_spot_jobs_per_replica(REDUCED_DATASET_BYTES)
    assert sweet == 4  # the paper's 4-searches-per-replica sweet spot

    payload = {
        "smoke": SMOKE,
        "library_entries": N_LIBRARY,
        "n_queries": N_QUERIES,
        "n_shards": disk.n_shards,
        "artifact_bytes": disk.nbytes,
        "csr_build_seconds": csr_build_s,
        "artifact_build_seconds": artifact_build_s,
        "cold_attach_verified_seconds": cold_attach_s,
        "warm_attach_seconds": warm_attach_s,
        "mem_batched_queries_per_sec": mem_qps,
        "disk_batched_queries_per_sec": disk_qps,
        "bit_identical": bit_identical,
        "worker_scaling": worker_rows,
        "replica_sweep": sweep,
        "sweet_spot_jobs_per_replica": sweet,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_diskindex.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    peak = max(sweep, key=lambda r: r["per_replica_throughput"])
    save_result(
        "diskindex",
        "\n".join(
            [
                f"disk-index artifact, {N_LIBRARY}-entry library, "
                f"{N_QUERIES} queries, {disk.n_shards} shards"
                + (" [smoke]" if SMOKE else ""),
                f"CSR rebuild (per worker) : {csr_build_s * 1e3:9.1f} ms",
                f"artifact build (once)    : "
                f"{artifact_build_s * 1e3:9.1f} ms"
                f"  ({disk.nbytes / 1e6:.1f} MB on disk)",
                f"cold attach (verified)   : {cold_attach_s * 1e3:9.1f} ms",
                f"warm attach (per worker) : {warm_attach_s * 1e3:9.1f} ms",
                f"in-memory batched        : {mem_qps:9.0f} q/s",
                f"mmap sharded batched     : {disk_qps:9.0f} q/s"
                f"  (bit-identical: {bit_identical})",
                f"replica sweet spot       : {peak['jobs_per_replica']} "
                f"searches/replica "
                f"(per-replica throughput {peak['per_replica_throughput']:.2f})",
            ]
        ),
    )
