"""§4.1: feature-generation cost and reduced-dataset sufficiency.

Two claims to regenerate:

* costs — ~240 Andes node-hours of feature generation vs ~400 Summit
  node-hours of inference for the 3,205-sequence *D. vulgaris*
  proteome (features cost roughly *half* the inference node-hours);
* science — the reduced (420 GB) dataset yields virtually identical
  prediction quality to the full 2.1 TB dataset, because deduplication
  preserves effective MSA depth.
"""

import numpy as np
import pytest

from repro.cluster import feature_task_seconds, inference_task_seconds
from repro.constants import (
    DVULGARIS_FEATURE_NODE_HOURS,
    DVULGARIS_INFERENCE_NODE_HOURS,
)
from repro.fold import NativeFactory, PredictionConfig, SurrogateFoldModel
from repro.msa import build_suite, generate_features
from repro.sequences import SequenceUniverse, rng_for, synthetic_proteome
from conftest import save_result

N_SEQUENCES = 3205


def test_node_hour_split(benchmark):
    """Modelled node-hours for the full D. vulgaris campaign."""
    rng = rng_for(0, "dvh-lengths")
    lengths = np.clip(
        np.round(rng.lognormal(5.62, 0.52, size=N_SEQUENCES)), 29, 2500
    ).astype(int)

    def compute():
        feature_nh = sum(
            feature_task_seconds(int(L), dataset_fraction=0.2) for L in lengths
        ) / 4 / 3600  # 4 concurrent searches per Andes node
        inference_nh = sum(
            5 * inference_task_seconds(int(L), 4) for L in lengths
        ) / 6 / 3600  # 6 GPU workers per Summit node
        return feature_nh, inference_nh

    feature_nh, inference_nh = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [
        "S4.1 — D. vulgaris campaign node-hours (paper in [])",
        f"feature generation (Andes) : {feature_nh:6.0f} node-h "
        f"[{DVULGARIS_FEATURE_NODE_HOURS:.0f}]",
        f"model inference (Summit)   : {inference_nh:6.0f} node-h "
        f"[{DVULGARIS_INFERENCE_NODE_HOURS:.0f}]",
        f"ratio features/inference   : {feature_nh / inference_nh:.2f} [~0.6]",
    ]
    save_result("feature_generation_costs", "\n".join(lines))

    assert 0.6 * 240 <= feature_nh <= 1.5 * 240
    assert 0.5 * 400 <= inference_nh <= 1.6 * 400
    # Features and inference are the same order of node-hours, with
    # features the cheaper stage (paper: 240 vs 400).  Our Table 1
    # calibration puts inference slightly lower than the paper's §4.1
    # figure, so the ratio band is wider than the paper's ~0.6.
    assert 0.4 <= feature_nh / inference_nh <= 1.1


@pytest.fixture(scope="module")
def reduced_vs_full():
    """Predictions for the same targets under full and reduced suites."""
    uni = SequenceUniverse(31)
    prot = synthetic_proteome("D_vulgaris", universe=uni, seed=31, scale=0.015)
    full = build_suite(uni, ["D_vulgaris"], seed=31, scale=0.015)
    reduced = full.reduced()
    factory = NativeFactory(uni)
    model = SurrogateFoldModel(factory, 2)
    config = PredictionConfig(
        recycle_tolerance=0.5, max_recycles=20, adaptive_cap=True
    )
    rows = []
    for rec in list(prot)[:30]:
        p_full = model.predict(generate_features(rec, full), config)
        p_red = model.predict(generate_features(rec, reduced), config)
        rows.append((p_full.mean_plddt, p_red.mean_plddt, p_full.ptms, p_red.ptms))
    return np.array(rows), full, reduced


def test_reduced_dataset_sufficient(benchmark, reduced_vs_full):
    arr, full, reduced = benchmark.pedantic(
        lambda: reduced_vs_full, rounds=1, iterations=1
    )
    d_plddt = arr[:, 1].mean() - arr[:, 0].mean()
    d_ptms = arr[:, 3].mean() - arr[:, 2].mean()
    shrink = 1 - reduced.total_modeled_bytes / full.total_modeled_bytes
    lines = [
        "S4.1 — reduced vs full dataset quality (30 targets)",
        f"library shrink            : {shrink:.0%} of represented bytes",
        f"mean pLDDT full / reduced : {arr[:, 0].mean():.1f} / {arr[:, 1].mean():.1f} "
        f"(delta {d_plddt:+.2f})",
        f"mean pTMS full / reduced  : {arr[:, 2].mean():.3f} / {arr[:, 3].mean():.3f} "
        f"(delta {d_ptms:+.4f})",
    ]
    save_result("reduced_dataset_quality", "\n".join(lines))
    # "Virtually identical performance" (paper §3.2.1 / §4.1).
    assert abs(d_plddt) < 1.5
    assert abs(d_ptms) < 0.02
    assert shrink > 0.2


def test_feature_search_benchmark(benchmark, reduced_vs_full):
    """Microbenchmark: one real MSA search against the reduced suite."""
    _, _full, reduced = reduced_vs_full
    uni = SequenceUniverse(31)
    prot = synthetic_proteome("D_vulgaris", universe=uni, seed=31, scale=0.015)
    rec = prot[0]
    benchmark(lambda: generate_features(rec, reduced))
