"""§3.2.1: library replication policy and I/O contention.

Regenerates the engineering trade that led to 24 replicas x 4 jobs per
copy of the *reduced* dataset: fewer replicas slow every search through
disk contention; the full 2.1 TB dataset costs 5x the storage and copy
time to replicate; and end-to-end feature-generation walltime is
minimised (per byte of staged storage) near the paper's design point.
"""

import pytest

from repro.cluster import feature_task_seconds
from repro.constants import FULL_DATASET_BYTES, REDUCED_DATASET_BYTES
from repro.iosim import ReplicationPlan, paper_plan
from conftest import save_result

N_SEQUENCES = 3205
MEAN_LENGTH = 328


def _campaign_hours(plan: ReplicationPlan, dataset_fraction: float) -> float:
    """End-to-end feature campaign: staging + searching."""
    contention = plan.contention()
    per_task = feature_task_seconds(
        MEAN_LENGTH, dataset_fraction=dataset_fraction, io_contention=contention
    )
    search = N_SEQUENCES * per_task / plan.n_concurrent_jobs
    return (plan.replication_seconds() + search) / 3600.0


def test_replication_sweep(benchmark):
    def sweep():
        rows = []
        for n_replicas in (1, 4, 8, 16, 24, 48):
            plan = ReplicationPlan(
                dataset_bytes=REDUCED_DATASET_BYTES,
                n_replicas=n_replicas,
                jobs_per_replica=96 // n_replicas if n_replicas <= 24 else 2,
            )
            rows.append(
                (
                    n_replicas,
                    plan.jobs_per_replica,
                    plan.contention(),
                    plan.storage_bytes / 1e12,
                    _campaign_hours(plan, 0.2),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "S3.2.1 — replication sweep, 96 concurrent search jobs, reduced dataset",
        f"{'replicas':>9} {'jobs/copy':>10} {'contention':>11} "
        f"{'storage(TB)':>12} {'campaign(h)':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r[0]:>9} {r[1]:>10} {r[2]:>11.2f} {r[3]:>12.1f} {r[4]:>12.1f}"
        )
    save_result("io_replication_sweep", "\n".join(lines))

    by_replicas = {r[0]: r for r in rows}
    # One shared copy is badly contended; the paper's 24 copies are not.
    assert by_replicas[1][2] > 10.0
    assert by_replicas[24][2] == pytest.approx(1.0)
    # The campaign is fastest at/near the paper's design point.
    assert by_replicas[24][4] == min(r[4] for r in rows)


def test_full_dataset_impractical(benchmark):
    benchmark.pedantic(
        lambda: paper_plan(FULL_DATASET_BYTES).replication_seconds(),
        rounds=1,
        iterations=1,
    )
    reduced = paper_plan(REDUCED_DATASET_BYTES)
    full = paper_plan(FULL_DATASET_BYTES)
    lines = [
        "S3.2.1 — full vs reduced dataset staging",
        f"reduced: {reduced.storage_bytes / 1e12:.1f} TB staged, "
        f"{reduced.replication_seconds() / 3600:.1f} h to copy",
        f"full   : {full.storage_bytes / 1e12:.1f} TB staged, "
        f"{full.replication_seconds() / 3600:.1f} h to copy",
    ]
    save_result("io_full_vs_reduced", "\n".join(lines))
    assert full.storage_bytes == 5 * reduced.storage_bytes
    # >100 TB of staged copies: the full dataset is impractical (§3.2.1).
    assert full.storage_bytes > 50e12
