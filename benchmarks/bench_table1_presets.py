"""Table 1: preset benchmark on the 559-sequence D. vulgaris set.

Regenerates every column of the paper's Table 1 — mean pLDDT, mean
pTMS, completed-target count and wall time per preset — and asserts the
*shape* the paper reports:

* quality ordering: reduced_db < genome < super on both metrics, with
  casp14 ~ reduced_db despite ~8x compute;
* walltime ordering: reduced_db < genome < super << casp14 (>150 min);
* casp14 loses its ~8 longest sequences to OOM, the others lose none.
"""

import pytest

from repro.core import get_preset
from repro.core.stats import benchmark_row
from conftest import save_result

PAPER = {  # preset -> (plddt, ptms, count, walltime_min)
    "reduced_db": (78.4, 0.631, 559, 44.0),
    "genome": (79.5, 0.644, 559, 50.0),
    "super": (80.7, 0.650, 559, 58.0),
    "casp14": (78.6, 0.631, 551, 150.0),
}


@pytest.fixture(scope="module")
def rows(table1_runs):
    return {
        name: benchmark_row(
            name, run.top_models, run.simulation.walltime_minutes
        )
        for name, run in table1_runs.items()
    }


def test_table1(benchmark, rows, table1_runs):
    rows = benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    lines = [
        "Table 1 — preset benchmark on 559 sequences (paper values in [])",
        f"{'preset':>11} {'pLDDT':>12} {'pTMS':>14} {'count':>12} {'wall(min)':>14}",
    ]
    for name, row in rows.items():
        p = PAPER[name]
        lines.append(
            f"{name:>11} {row.mean_plddt:6.1f} [{p[0]:4.1f}] "
            f"{row.mean_ptms:6.3f} [{p[1]:.3f}] {row.count:4d} [{p[2]:3d}] "
            f"{row.walltime_minutes:6.1f} [{p[3]:5.1f}{'+' if name == 'casp14' else ''}]"
        )
    save_result("table1_presets", "\n".join(lines))

    # Quality ordering.
    assert rows["genome"].mean_plddt > rows["reduced_db"].mean_plddt
    assert rows["super"].mean_plddt > rows["genome"].mean_plddt
    assert rows["genome"].mean_ptms > rows["reduced_db"].mean_ptms
    assert rows["super"].mean_ptms > rows["genome"].mean_ptms
    # casp14 buys almost nothing over reduced_db.
    assert abs(rows["casp14"].mean_plddt - rows["reduced_db"].mean_plddt) < 1.5
    # Absolute levels in the paper's neighbourhood.
    for name, row in rows.items():
        assert abs(row.mean_plddt - PAPER[name][0]) < 5.0
        assert abs(row.mean_ptms - PAPER[name][1]) < 0.08
    # Wall time ordering, with casp14 >> the rest.
    assert (
        rows["reduced_db"].walltime_minutes
        < rows["genome"].walltime_minutes
        < rows["super"].walltime_minutes
        < rows["casp14"].walltime_minutes
    )
    assert rows["casp14"].walltime_minutes > 120
    # OOM census: only casp14 loses targets, and roughly eight of them.
    for name in ("reduced_db", "genome", "super"):
        assert rows[name].count == 559
        assert not table1_runs[name].oom_failures
    lost = 559 - rows["casp14"].count
    assert 6 <= lost <= 10
    # The lost targets are exactly the longest ones.
    failed_ids = {rid for rid, _ in table1_runs["casp14"].oom_failures}
    assert len(failed_ids) == lost


def test_high_quality_fractions(rows):
    # Paper: ~77-80% of targets above pLDDT 70; ~59-62% above pTMS 0.6.
    for name in ("reduced_db", "genome", "super"):
        assert 0.70 <= rows[name].frac_plddt_high <= 0.90
        assert 0.52 <= rows[name].frac_ptms_high <= 0.75
    assert rows["genome"].frac_plddt_high >= rows["reduced_db"].frac_plddt_high - 0.01


def test_single_inference_task(benchmark, table1_workload, bench_factory):
    """Microbenchmark: one genome-preset inference task (real surrogate)."""
    _bench, _suite, features = table1_workload
    from repro.fold import SurrogateFoldModel

    bundle = next(iter(features.values()))
    model = SurrogateFoldModel(bench_factory, 2)
    config = get_preset("genome").config()
    benchmark(lambda: model.predict(bundle, config))
