"""§4.3.1: the S. divinum proteome campaign (scaled).

Runs the full three-stage pipeline on a scaled sample of the plant
proteome with the genome preset and regenerates the paper's confidence
summary: ~57% of targets with mean pLDDT > 70, ~58% residue coverage at
pLDDT > 70 and ~36% at pLDDT > 90, ~53% of targets with pTMS > 0.6,
mean top-model recycles ~12, and ~2000/3000 Andes/Summit node-hours
(extrapolated from the scaled run).
"""

import pytest

from repro.core import ProteomePipeline, summarize_proteome
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome
from conftest import save_result

SCALE = 0.008  # ~200 of the 25,134 targets


@pytest.fixture(scope="module")
def campaign():
    uni = SequenceUniverse(17)
    prot = synthetic_proteome("S_divinum", universe=uni, seed=17, scale=SCALE)
    suite = build_suite(uni, ["S_divinum"], seed=17, scale=SCALE).reduced()
    factory = NativeFactory(uni)
    pipeline = ProteomePipeline(
        preset_name="genome",
        feature_nodes=24,
        inference_nodes=16,
        relax_nodes=4,
    )
    return prot, pipeline.run(prot, suite, factory)


def test_sdivinum_confidence_summary(benchmark, campaign):
    prot, result = benchmark.pedantic(lambda: campaign, rounds=1, iterations=1)
    summary = summarize_proteome(result.inference_stage.top_models)
    scale_up = 1.0 / SCALE
    # Work-based node-hours extrapolate cleanly from a scaled run (the
    # walltime variant would inflate them with the small run's idle tail).
    feature_nh = result.feature_stage.simulation.busy_node_hours(4) * scale_up
    inference_nh = result.inference_stage.simulation.busy_node_hours(6) * scale_up
    lines = [
        f"S4.3.1 — S. divinum campaign, {len(prot)} of 25,134 targets "
        f"(paper values in [])",
        f"targets mean pLDDT > 70      : {summary.frac_targets_plddt_high:.0%} [57%]",
        f"residue coverage pLDDT > 70  : {summary.residue_coverage_plddt_high:.0%} [58%]",
        f"residue coverage pLDDT > 90  : {summary.residue_coverage_plddt_ultra:.0%} [36%]",
        f"targets pTMS > 0.6           : {summary.frac_targets_ptms_high:.0%} [53%]",
        f"mean recycles of top models  : {summary.mean_recycles:.1f} [12]",
        f"feature node-hours (scaled)  : {feature_nh:6.0f} [2000]",
        f"inference node-hours (scaled): {inference_nh:6.0f} [3000]",
    ]
    save_result("sdivinum_proteome", "\n".join(lines))

    # Confidence shape: plant proteome is harder than the bacterial
    # benchmark (57% vs 77% high-pLDDT targets in the paper).
    assert 0.40 <= summary.frac_targets_plddt_high <= 0.75
    assert 0.30 <= summary.frac_targets_ptms_high <= 0.70
    assert summary.residue_coverage_plddt_ultra < summary.residue_coverage_plddt_high
    assert 0.08 <= summary.residue_coverage_plddt_ultra <= 0.5
    # Long recycling: hard plant targets run toward the cap.
    assert 6.0 <= summary.mean_recycles <= 16.0
    # Node-hour extrapolation in the paper's neighbourhood.
    assert 1000 <= feature_nh <= 3500
    assert 1500 <= inference_nh <= 5500


def test_plant_harder_than_bacteria(campaign, table1_runs):
    _, result = campaign
    plant = summarize_proteome(result.inference_stage.top_models)
    bacteria = summarize_proteome(table1_runs["genome"].top_models)
    assert plant.frac_targets_plddt_high < bacteria.frac_targets_plddt_high
    assert plant.mean_recycles > bacteria.mean_recycles
