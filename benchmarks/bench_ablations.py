"""Design-choice ablations called out in DESIGN.md.

Three studies the paper argues for qualitatively, quantified here:

1. **Task ordering** — descending-length submission vs random,
   ascending and file order, against the LPT reference (§3.3's load
   balancing choice).
2. **Task decomposition** — (model, target) pairs vs whole-target
   tasks: finer grain balances better (§3.3's decomposition choice).
3. **GPU-accelerated MSA** — the §5 what-if: a 38x GPU HMM engine cuts
   feature node-hours, but only the compute share, so I/O engineering
   still dominates the residual.
"""

import numpy as np
import pytest

from repro.cluster import feature_task_seconds, inference_task_seconds
from repro.core.scheduling import ORDERINGS, evaluate_ordering, order_tasks

from repro.dataflow import TaskSpec, make_workers, simulate_dataflow
from repro.sequences import rng_for
from conftest import save_result

N_TARGETS = 4000


@pytest.fixture(scope="module")
def lengths():
    rng = rng_for(0, "ablation-lengths")
    return np.clip(
        np.round(rng.lognormal(5.62, 0.52, size=N_TARGETS)), 29, 2500
    ).astype(int)


def _pair_tasks(lengths):
    return [
        TaskSpec(key=f"t{i}/m{m}", payload=int(L), size_hint=int(L))
        for i, L in enumerate(lengths)
        for m in range(5)
    ]


def _duration(task: TaskSpec) -> float:
    return inference_task_seconds(int(task.payload), 4)


def test_ordering_ablation(benchmark, lengths):
    tasks = _pair_tasks(lengths)
    workers = make_workers(8, 6)
    durations = [_duration(t) for t in tasks]

    def run_all():
        out = {}
        for name in ORDERINGS:
            ordered = order_tasks(tasks, name, rng=np.random.default_rng(0))
            result = simulate_dataflow(
                ordered, workers, _duration, sort_descending=False,
                task_overhead=0.0, startup=0.0,
            )
            out[name] = evaluate_ordering(name, result, durations)
        return out

    evals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Ablation 1 — task ordering (48 workers, 20k tasks)",
        f"{'strategy':>11} {'makespan(h)':>12} {'spread(min)':>12} "
        f"{'util':>6} {'vs LPT':>7}",
    ]
    for name, ev in evals.items():
        lines.append(
            f"{name:>11} {ev.makespan_seconds / 3600:>12.2f} "
            f"{ev.finish_spread_seconds / 60:>12.1f} "
            f"{ev.utilization:>6.0%} {ev.lpt_ratio:>6.2f}x"
        )
    save_result("ablation_ordering", "\n".join(lines))

    # The paper's choice is within a whisker of the LPT reference ...
    assert evals["descending"].lpt_ratio < 1.02
    # ... and dominates every alternative on makespan and spread.
    for name in ("random", "ascending", "submission"):
        assert (
            evals["descending"].makespan_seconds
            <= evals[name].makespan_seconds + 1e-9
        )
        assert (
            evals["descending"].finish_spread_seconds
            <= evals[name].finish_spread_seconds + 1e-9
        )


def test_decomposition_ablation(lengths):
    """(model, target) pairs vs 5-models-in-one-task decomposition."""
    workers = make_workers(8, 6)
    pair_tasks = _pair_tasks(lengths)
    whole_tasks = [
        TaskSpec(key=f"t{i}", payload=int(L), size_hint=int(L))
        for i, L in enumerate(lengths)
    ]
    pair_run = simulate_dataflow(
        pair_tasks, workers, _duration, task_overhead=0.0, startup=0.0
    )
    whole_run = simulate_dataflow(
        whole_tasks, workers, lambda t: 5 * _duration(t),
        task_overhead=0.0, startup=0.0,
    )
    lines = [
        "Ablation 2 — task decomposition (same total work)",
        f"(model, target) pairs : makespan "
        f"{pair_run.makespan_seconds / 3600:.2f} h, spread "
        f"{pair_run.finish_spread_seconds / 60:.1f} min",
        f"whole-target tasks    : makespan "
        f"{whole_run.makespan_seconds / 3600:.2f} h, spread "
        f"{whole_run.finish_spread_seconds / 60:.1f} min",
    ]
    save_result("ablation_decomposition", "\n".join(lines))
    # Finer decomposition can only help the tail.
    assert pair_run.makespan_seconds <= whole_run.makespan_seconds + 1e-9
    assert (
        pair_run.finish_spread_seconds <= whole_run.finish_spread_seconds + 1e-9
    )


def test_gpu_msa_ablation(benchmark, lengths):
    """§5 what-if: GPU HMM engines for the feature stage."""
    def compute():
        cpu_nh = sum(
            feature_task_seconds(int(L), dataset_fraction=0.2) for L in lengths
        ) / 4 / 3600
        gpu_nh = sum(
            feature_task_seconds(int(L), dataset_fraction=0.2, gpu_accelerated=True)
            for L in lengths
        ) / 4 / 3600
        return cpu_nh, gpu_nh

    cpu_nh, gpu_nh = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [
        "Ablation 3 — GPU-accelerated MSA search (the paper's §5 what-if)",
        f"CPU HMM engines : {cpu_nh:7.1f} node-h for {N_TARGETS} searches",
        f"GPU HMM engines : {gpu_nh:7.1f} node-h (38x on compute share only)",
        f"end-to-end gain : {cpu_nh / gpu_nh:.1f}x — far below 38x because "
        f"the I/O share does not accelerate;",
        "the paper's replication/I-O engineering remains necessary.",
    ]
    save_result("ablation_gpu_msa", "\n".join(lines))
    assert gpu_nh < cpu_nh
    # Amdahl: the end-to-end gain is far below the kernel's 38x.
    assert 1.5 <= cpu_nh / gpu_nh <= 5.0
