"""Fault-injected recovery: §3.3's OOM re-routing as a benchmark.

The paper's proteome runs survived per-task OOM failures by re-routing
oversized work to Summit's 2 TB high-memory nodes.  This bench injects
a seeded 5% OOM rate into an inference-scale task set and measures the
fault-tolerance subsystem end to end:

* retries disabled — every injected task fails exactly once and is
  lost, the Table 1 casp14 failure mode;
* retries enabled — every injected task recovers on a high-memory
  worker (zero lost targets), at a measured walltime overhead.

The per-attempt statistics CSV of the recovery run lands in
``results/recovery_attempts.csv``; the summary in ``recovery.txt``.
"""

import numpy as np

from repro.cluster import inference_task_seconds
from repro.dataflow import (
    FaultInjector,
    RetryPolicy,
    TaskSpec,
    is_oom_error,
    make_workers,
    simulate_dataflow,
    write_task_csv,
)
from repro.sequences import rng_for
from conftest import RESULTS_DIR, save_result

N_TARGETS = 600
OOM_RATE = 0.05
FAULT_SEED = 42


def _tasks():
    rng = rng_for(0, "recovery-lengths")
    lengths = np.clip(
        np.round(rng.lognormal(5.3, 0.55, size=N_TARGETS)), 25, 1400
    ).astype(int)
    return [
        TaskSpec(key=f"t{i}/m{m}", payload=int(L), size_hint=int(L))
        for i, L in enumerate(lengths)
        for m in range(5)
    ]


def _duration(task: TaskSpec) -> float:
    return inference_task_seconds(int(task.payload), 4)


def test_recovery_with_injected_ooms(benchmark):
    tasks = _tasks()
    injector = FaultInjector(rate=OOM_RATE, seed=FAULT_SEED)
    injected = set(injector.injected_keys(tasks))
    assert injected, "seeded injection must hit at least one task"

    standard = make_workers(8, 6)
    mixed = make_workers(8, 6, highmem_nodes=1)
    policy = RetryPolicy(max_attempts=3, backoff_seconds=5.0)

    def run_all():
        clean = simulate_dataflow(tasks, mixed, _duration)
        no_retry = simulate_dataflow(
            tasks, standard, _duration, failure_fn=injector
        )
        recovered = simulate_dataflow(
            tasks, mixed, _duration, failure_fn=injector, retry_policy=policy
        )
        return clean, no_retry, recovered

    clean, no_retry, recovered = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # Retries disabled: the exact injected count fails, and is lost.
    assert no_retry.n_failed == len(injected)
    assert set(no_retry.lost_keys()) == injected

    # Retries enabled: zero lost targets; every task that OOMed shows a
    # failed-then-ok attempt pair, the recovery on a highmem worker.
    assert recovered.lost_keys() == []
    hm_ids = {w.worker_id for w in mixed if w.highmem}
    n_recovered = 0
    for record in recovered.records:
        if not record.ok:
            assert is_oom_error(record.error)
        if record.attempt > 1 and record.ok:
            n_recovered += 1
            assert record.worker_id in hm_ids
    assert n_recovered == recovered.n_failed > 0

    RESULTS_DIR.mkdir(exist_ok=True)
    write_task_csv(recovered.records, RESULTS_DIR / "recovery_attempts.csv")

    overhead = recovered.walltime_seconds / clean.walltime_seconds - 1.0
    lines = [
        f"S3.3 — fault-injected recovery, {len(tasks)} tasks, "
        f"{OOM_RATE:.0%} seeded OOM rate (seed {FAULT_SEED})",
        f"{'':24} {'walltime(min)':>14} {'failed':>8} {'lost':>6}",
        f"{'clean':24} {clean.walltime_minutes:14.1f} "
        f"{clean.n_failed:8d} {len(clean.lost_keys()):6d}",
        f"{'faults, no retries':24} {no_retry.walltime_minutes:14.1f} "
        f"{no_retry.n_failed:8d} {len(no_retry.lost_keys()):6d}",
        f"{'faults + retry/reroute':24} {recovered.walltime_minutes:14.1f} "
        f"{recovered.n_failed:8d} {len(recovered.lost_keys()):6d}",
        "",
        f"injected OOM tasks        : {len(injected)}",
        f"recovered on highmem      : {n_recovered}",
        f"recovery walltime overhead: {overhead:+.1%} vs clean run",
    ]
    save_result("recovery", "\n".join(lines))


def test_straggler_injection_tolerated(benchmark):
    """Seeded stragglers stretch the tail but lose nothing — the greedy
    descending sort plus dataflow pulling absorbs slow workers."""
    from repro.dataflow import straggler_duration_fn

    tasks = _tasks()
    workers = make_workers(8, 6)
    slowed = straggler_duration_fn(
        _duration, rate=0.02, slowdown=8.0, seed=FAULT_SEED
    )

    def run_both():
        base = simulate_dataflow(tasks, workers, _duration)
        dragged = simulate_dataflow(tasks, workers, slowed)
        return base, dragged

    base, dragged = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert dragged.n_failed == 0 and dragged.lost_keys() == []
    assert dragged.makespan_seconds > base.makespan_seconds
    # the slowdown is bounded: far less than the 8x per-task factor
    assert dragged.makespan_seconds < 4.0 * base.makespan_seconds
