"""§4.2: concentration of the super preset's pTMS gains.

The paper: ~45% of the total pTMS improvement over reduced_db comes
from the ~5% of targets gaining >= 0.1, ~74% from the ~12% gaining
>= 0.05, and virtually all big gainers ran close to the 20-recycle cap
(mean ~19).  Regenerates those statistics from the Table 1 runs.
"""

from repro.core.stats import improvement_concentration
from conftest import save_result


def test_improvement_concentration(benchmark, table1_runs):
    conc = benchmark.pedantic(
        improvement_concentration,
        args=(
            table1_runs["reduced_db"].top_models,
            table1_runs["super"].top_models,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "S4.2 — concentration of super-preset pTMS gains (paper in [])",
        f"mean delta pTMS            : {conc.mean_delta:+.4f} [+0.019]",
        f"targets gaining >= 0.1     : {conc.frac_targets_gain_010:.1%} [5%]",
        f"  share of total gain      : {conc.share_of_gain_from_010:.0%} [45%]",
        f"targets gaining >= 0.05    : {conc.frac_targets_gain_005:.1%} [12%]",
        f"  share of total gain      : {conc.share_of_gain_from_005:.0%} [74%]",
        f"mean recycles, big gainers : {conc.mean_recycles_of_big_gainers:.1f} [~19]",
    ]
    save_result("improvement_concentration", "\n".join(lines))

    # The gains exist and are strongly concentrated.
    assert conc.mean_delta > 0.0
    assert conc.frac_targets_gain_010 < 0.25
    assert conc.share_of_gain_from_010 > 2.0 * conc.frac_targets_gain_010
    assert conc.share_of_gain_from_005 > conc.share_of_gain_from_010
    # Big gainers are the long-recyclers (near the cap of 20).
    assert conc.mean_recycles_of_big_gainers > 12


def test_genome_gains_smaller_than_super(table1_runs):
    genome = improvement_concentration(
        table1_runs["reduced_db"].top_models, table1_runs["genome"].top_models
    )
    super_ = improvement_concentration(
        table1_runs["reduced_db"].top_models, table1_runs["super"].top_models
    )
    assert 0.0 < genome.mean_delta <= super_.mean_delta
