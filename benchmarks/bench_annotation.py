"""§4.6: structure-based annotation of hypothetical proteins + novelty.

Scaled version of the paper's census: predicted structures of
hypothetical (unannotated) proteins searched against the pdb70-like
fold library.  Paper, with 559 queries: 239 gained a trusted match
(TM >= 0.6), 215 of those below 20% sequence identity and 112 below
10% — plus ultra-confident structures with *no* match (top TM 0.358)
flagging novel folds.
"""

import pytest

from repro.analysis import annotate_structures, find_novel_candidates
from repro.core import get_preset
from repro.fold import NativeFactory, default_model_bank
from repro.msa import build_suite, generate_features
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.sequences.proteome import species_family_base
from repro.structure import build_fold_library
from conftest import save_result

SCALE = 0.02
MAX_QUERIES = 16


@pytest.fixture(scope="module")
def census_inputs(feature_cache):
    uni = SequenceUniverse(23)
    prot = synthetic_proteome("D_vulgaris", universe=uni, seed=23, scale=SCALE)
    suite = build_suite(uni, ["D_vulgaris"], seed=23, scale=SCALE)
    base = species_family_base("D_vulgaris")
    pool = max(1, int(round(3205 * SCALE) * 0.6))
    library = build_fold_library(uni, list(range(base, base + pool)), seed=23)
    factory = NativeFactory(uni)
    bank = default_model_bank(factory)
    config = get_preset("genome").config()
    structures = {}
    for rec in prot.hypothetical()[:MAX_QUERIES]:
        features = generate_features(rec, suite, cache=feature_cache)
        top = max(
            (m.predict(features, config) for m in bank), key=lambda p: p.ptms
        )
        structures[rec.record_id] = top.structure
    return structures, library


def test_annotation_census(benchmark, census_inputs):
    structures, library = census_inputs
    census = benchmark.pedantic(
        annotate_structures,
        args=(structures, library),
        kwargs={"max_candidates": 20},
        rounds=1,
        iterations=1,
    )
    s = census.summary()
    novel = find_novel_candidates(structures, census.best_tm_per_query)
    lines = [
        f"S4.6 — annotation census, {s['n_queries']} hypothetical queries "
        f"(paper: 559 queries)",
        f"trusted matches TM >= 0.6 : {s['n_annotated']} "
        f"({s['n_annotated'] / s['n_queries']:.0%}) [239/559 = 43%]",
        f"  below 20% seq identity  : {s['n_below_20pct_identity']} "
        f"[215/239 = 90%]",
        f"  below 10% seq identity  : {s['n_below_10pct_identity']} [112/239 = 47%]",
        f"novel-fold candidates     : {len(novel)} "
        f"(ultra-confident, top TM < 0.4)",
    ]
    save_result("annotation_census", "\n".join(lines))

    assert s["n_queries"] == len(structures)
    # A meaningful fraction of hypothetical proteins gain annotations.
    assert s["n_annotated"] >= 2
    # Structure outlives sequence: a substantial share of the matches
    # sit in the twilight zone below 20% identity, where sequence
    # methods fail.  (The remainder are structural-genomics-style
    # matches: solved folds of functionally uncharacterised families,
    # which can sit at higher identity.)
    if s["n_annotated"]:
        assert s["n_below_20pct_identity"] / s["n_annotated"] >= 0.25
    assert s["n_below_10pct_identity"] <= s["n_below_20pct_identity"]


def test_novelty_signature_is_rare_and_valid(census_inputs):
    structures, library = census_inputs
    census = annotate_structures(structures, library, max_candidates=20)
    novel = find_novel_candidates(structures, census.best_tm_per_query)
    # The signature is rare (the paper found a handful among 559).
    assert len(novel) <= max(2, len(structures) // 4)
    for c in novel:
        assert c.frac_residues_ultra_confident >= 0.98
        assert c.best_library_tm < 0.4
