"""Fig. 4: relaxation time-to-solution vs system size, and GPU speedups.

Relaxes the 19 CASP-like targets (including the T1080-like giant) with
all three methods and regenerates Fig. 4's two panels from the
calibrated cost model: (A) time vs heavy-atom count per method, (B)
speedup relative to the AF2 method.  Shape assertions: the AF2 loop is
slowest everywhere, ours-CPU sits in between, ours-GPU delivers
order-10x speedups that *grow* with system size, and the outlier costs
the AF2 method hours.
"""

import numpy as np
import pytest

from repro.cluster import relax_task_seconds
from repro.relax import AlphaFoldRelaxProtocol, SinglePassRelaxProtocol
from conftest import save_result


@pytest.fixture(scope="module")
def timings(casp19):
    """Rows of (atoms, t_af2, t_cpu, t_gpu) for each target."""
    rows = []
    for target in casp19:
        model = target.models[0].structure
        af2 = AlphaFoldRelaxProtocol().run(model)
        cpu = SinglePassRelaxProtocol(device="cpu").run(model)
        gpu = SinglePassRelaxProtocol(device="gpu").run(model)
        rows.append(
            (
                af2.n_heavy_atoms,
                relax_task_seconds(af2.n_heavy_atoms, af2.n_minimizations, "cpu"),
                relax_task_seconds(cpu.n_heavy_atoms, cpu.n_minimizations, "cpu"),
                relax_task_seconds(gpu.n_heavy_atoms, gpu.n_minimizations, "gpu"),
            )
        )
    return np.array(sorted(rows))


def test_fig4_performance(benchmark, timings):
    arr = benchmark.pedantic(lambda: timings, rounds=1, iterations=1)
    atoms, t_af2, t_cpu, t_gpu = arr.T
    speedup = t_af2 / t_gpu
    lines = [
        "Fig. 4 — relaxation time-to-solution vs heavy atoms (modelled)",
        f"{'atoms':>7} {'AF2(s)':>9} {'oursCPU(s)':>10} {'oursGPU(s)':>10} {'speedup':>8}",
    ]
    for row, s in zip(arr, speedup):
        lines.append(
            f"{int(row[0]):>7d} {row[1]:>9.1f} {row[2]:>10.1f} "
            f"{row[3]:>10.1f} {s:>7.1f}x"
        )
    # As in the paper, the giant outlier target is excluded from the
    # timing panel ("a large outlier in the AF2 data is not included in
    # timing results") and reported separately.
    main, outlier = arr[:-1], arr[-1]
    main_speedup = main[:, 1] / main[:, 3]
    lines.append(
        f"max speedup excl. outlier {main_speedup.max():.1f}x "
        f"(paper: up to ~14x); AF2 outlier {outlier[1] / 3600:.1f} h "
        f"(paper: T1080 ~4.5 h, excluded from panel)"
    )
    save_result("fig4_relax_performance", "\n".join(lines))

    # Method ordering holds at every size.
    assert (t_gpu < t_cpu).all()
    assert (t_cpu <= t_af2).all()
    # Speedup grows with system size and reaches the paper's order.
    assert main_speedup[-1] > main_speedup[0]
    assert 8 <= main_speedup.max() <= 30
    # The T1080-like outlier costs the AF2 method on the order of hours
    # while the optimized GPU protocol clears it in about a minute.
    assert outlier[1] > 0.8 * 3600
    assert outlier[3] < 120
    assert t_gpu.max() < 600


def test_af2_never_cheaper(timings):
    _, t_af2, t_cpu, _ = timings.T
    # Removing the violation loop can only help: ours-CPU <= AF2 always.
    assert (t_cpu <= t_af2 + 1e-9).all()
