"""§4.4: clash/bump census over the 160-model CASP set.

Paper numbers: unrelaxed models average 0.22 +/- 1.09 clashes (max 8)
and 3.76 +/- 12.74 bumps (max 148).  All three relaxation methods
remove clashes *completely*; bumps drop to ~2.1-2.7 on average but are
not eliminated (the k=10 restraints win against mild bumps).
"""

import numpy as np
import pytest

from repro.relax import relax_many

from conftest import save_result


@pytest.fixture(scope="module")
def census(casp_census):
    """Violations before/after single-pass GPU relaxation, 160 models,
    relaxed as one executor-backed batch."""
    structures = {
        f"{target.record.record_id}/{j}": model.structure
        for target in casp_census
        for j, model in enumerate(target.models)
    }
    batch = relax_many(structures, device="gpu")
    before, after = [], []
    for key in structures:
        outcome = batch.outcomes[key]
        b, a = outcome.violations_before, outcome.violations_after
        before.append((b.n_clashes, b.n_bumps))
        after.append((a.n_clashes, a.n_bumps))
    return np.array(before), np.array(after)


def test_violation_reduction(benchmark, census):
    before, after = benchmark.pedantic(
        lambda: census, rounds=1, iterations=1
    )
    n_models = before.shape[0]
    lines = [
        f"S4.4 — violation census over {n_models} models (paper in [])",
        f"unrelaxed clashes: {before[:, 0].mean():.2f} +/- "
        f"{before[:, 0].std():.2f} (max {before[:, 0].max()}) "
        f"[0.22 +/- 1.09, max 8]",
        f"unrelaxed bumps  : {before[:, 1].mean():.2f} +/- "
        f"{before[:, 1].std():.2f} (max {before[:, 1].max()}) "
        f"[3.76 +/- 12.74, max 148]",
        f"relaxed clashes  : {after[:, 0].mean():.2f} (max "
        f"{after[:, 0].max()}) [0.00]",
        f"relaxed bumps    : {after[:, 1].mean():.2f} +/- "
        f"{after[:, 1].std():.2f} (max {after[:, 1].max()}) "
        f"[2.1-2.7 depending on method]",
    ]
    save_result("violation_reduction", "\n".join(lines))

    assert n_models == 160
    # Clashes: present before (in some models), completely removed after.
    assert before[:, 0].max() > 0
    assert after[:, 0].max() == 0
    # Bumps: reduced on average but not eliminated.
    assert after[:, 1].mean() < before[:, 1].mean()
    assert after[:, 1].sum() > 0
    # Violations are rare-model-dominated, as the paper's stds show
    # (std comparable to or exceeding the mean).
    assert before[:, 1].std() > 0.75 * before[:, 1].mean()
    # Levels in the paper's neighbourhood.
    assert before[:, 0].mean() < 2.0
    assert before[:, 0].max() <= 15
    assert 1.0 <= after[:, 1].mean() <= 6.0
