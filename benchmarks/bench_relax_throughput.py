"""Fold/relax kernel throughput: the hot paths behind Figs. 3-4 and §4.4-4.5.

Two artifacts, both under ``benchmarks/results/``:

* ``BENCH_relax.json`` — per-evaluation time of the fused
  bincount-scatter force-field kernel against the seed's ``np.add.at``
  implementation on a 500-residue system; Verlet neighbour-list
  rebuild/reuse counts over the Fig-4 sweep; and models/sec of the
  batched relax path (``relax_many``) against the seed's serial
  protocol (reference kernel, KD-tree rebuild every round, public
  scipy driver).
* ``BENCH_fold.json`` — recycle-loop wall time per (model, target)
  pair on a Table-1 subset with the GEMM distogram vs the seed's
  broadcast version, plus the distogram kernel in isolation.

Artifacts are written only after observable equivalence is asserted:
kernel energies/gradients within rtol 1e-9 of the reference, violation
censuses identical (clashes removed completely), batched == serial
bit-for-bit (TM-score within 1e-6), and fold outputs bit-identical
under either distogram kernel.

``BENCH_SMOKE=1`` shrinks every size so CI can assert the artifacts
are produced in seconds; speedup bars then drop to >= 1.0 (tiny systems
measure overhead, not throughput).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest
from scipy.optimize import minimize as scipy_minimize

import repro.fold.recycling as recycling
from repro.constants import RELAX_ENERGY_TOLERANCE_KCAL
from repro.core import benchmark_set, benchmark_suite, casp_targets
from repro.fold import PredictionConfig, SurrogateFoldModel
from repro.fold.recycling import (
    distogram_signature,
    distogram_signature_reference,
)
from repro.msa import generate_features
from repro.relax import SinglePassRelaxProtocol, minimize_system, relax_many
from repro.relax.forcefield import (
    NEIGHBOR_SKIN,
    ForceField,
    ReferenceForceField,
)
from repro.relax.violations import count_violations
from repro.structure import tm_score
from repro.structure.protein import Structure
from conftest import RESULTS_DIR, save_result

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
KERNEL_RESIDUES = 100 if SMOKE else 500
KERNEL_EVALS = 50 if SMOKE else 200
N_SWEEP_TARGETS = 5 if SMOKE else 19  # the Fig-4 CASP sweep
N_FOLD_TARGETS = 2 if SMOKE else 4  # Table-1 subset
FOLD_HEADS = (0, 3)  # one template-using head, one MSA-only head
#: Tiny smoke systems measure fixed overhead, so the hard bars apply
#: full-size only: >= 3x on the kernel, >= 2x end-to-end (the ISSUE /
#: ROADMAP acceptance line).
MIN_KERNEL_SPEEDUP = 1.0 if SMOKE else 3.0
MIN_E2E_SPEEDUP = 1.0 if SMOKE else 2.0


def _best_of(fn, repeats: int = 3):
    """One warmup pass, then the minimum of ``repeats`` timed passes."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _seed_relax(protocol, structure):
    """The seed's relaxation loop, kept verbatim as the baseline:
    ``np.add.at`` reference kernel, KD-tree rebuild every round, the
    public scipy driver, and the same before/after violation census."""
    prepared = protocol.prepare(structure)
    system = prepared.system
    ff = ReferenceForceField(system)
    x = system.particles.copy()
    shape = x.shape
    prev_energy = ff.energy(x)
    for _ in range(30):
        ff.rebuild_neighbors(x)

        def fun(flat):
            e, g = ff.energy_and_gradient(flat.reshape(shape))
            return e, g.ravel()

        res = scipy_minimize(
            fun,
            x.ravel(),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": 400, "ftol": 1e-10, "gtol": 1e-8},
        )
        x = res.x.reshape(shape)
        energy = float(res.fun)
        if prev_energy - energy < RELAX_ENERGY_TOLERANCE_KCAL:
            break
        prev_energy = energy
    relaxed = system.with_particles(x).to_structure()
    return relaxed, prepared.violations_before, count_violations(relaxed)


@pytest.fixture(scope="module")
def sweep():
    """The Fig-4 CASP sweep (19 targets incl. the T1080-like giant)."""
    return casp_targets(
        n_targets=N_SWEEP_TARGETS, models_per_target=1, seed=11
    )


def test_relax_throughput(sweep):
    protocol = SinglePassRelaxProtocol(device="gpu")

    # --- kernel: fused bincount scatter vs the seed's np.add.at -------
    rng = np.random.default_rng(0)
    steps = rng.normal(size=(KERNEL_RESIDUES, 3))
    steps /= np.linalg.norm(steps, axis=1, keepdims=True)
    ca = np.cumsum(steps * 3.8, axis=0) + rng.normal(
        0.0, 0.7, size=(KERNEL_RESIDUES, 3)
    )
    system = protocol.prepare(
        Structure(
            record_id="kernel",
            encoded=np.zeros(KERNEL_RESIDUES, dtype=np.int8),
            ca=ca,
        )
    ).system
    fast_ff = ForceField(system)
    ref_ff = ReferenceForceField(system)
    # Equivalence first, at the build point and inside the skin contract.
    for scale in (0.0, NEIGHBOR_SKIN / 4.0):
        x = system.particles + rng.normal(
            0.0, scale / 3.0, size=system.particles.shape
        )
        e_fast, g_fast = fast_ff.energy_and_gradient(x)
        e_ref, g_ref = ref_ff.energy_and_gradient(x)
        assert e_fast == pytest.approx(e_ref, rel=1e-9)
        np.testing.assert_allclose(g_fast, g_ref, rtol=1e-9, atol=1e-9)
    x = system.particles
    fast_s, _ = _best_of(
        lambda: [fast_ff.energy_and_gradient(x) for _ in range(KERNEL_EVALS)]
    )
    ref_s, _ = _best_of(
        lambda: [ref_ff.energy_and_gradient(x) for _ in range(KERNEL_EVALS)]
    )
    kernel_speedup = ref_s / fast_s
    assert kernel_speedup >= MIN_KERNEL_SPEEDUP

    # --- end-to-end: seed serial loop vs batched relax_many ----------
    structures = {t.record.record_id: t.models[0].structure for t in sweep}

    seed_s, seed_out = _best_of(
        lambda: {k: _seed_relax(protocol, s) for k, s in structures.items()}
    )
    serial_s, serial_out = _best_of(
        lambda: {k: protocol.run(s) for k, s in structures.items()}
    )
    batch_s, batch = _best_of(lambda: relax_many(structures, device="gpu"))

    rebuilds = reuses = 0
    tm_batch_vs_serial = 0.0
    bump_total_seed = bump_total_fast = 0
    for t in sweep:
        key = t.record.record_id
        relaxed_seed, before_seed, after_seed = seed_out[key]
        outcome = batch.outcomes[key]
        # Census identical to the seed protocol: the before census and
        # the clash count (-> 0) exactly; bump counts are threshold
        # counts of near-boundary contacts, so the two optimizers'
        # epsilon-different converged minima may flip one borderline
        # bump per model without moving the §4.4 statistics.
        assert outcome.violations_before == before_seed
        assert outcome.violations_after.n_clashes == after_seed.n_clashes
        assert outcome.violations_after.n_clashes == 0
        assert abs(outcome.violations_after.n_bumps - after_seed.n_bumps) <= 1
        bump_total_seed += after_seed.n_bumps
        bump_total_fast += outcome.violations_after.n_bumps
        # Fig-3 quality unchanged: same TM against the native (the two
        # optimizers walk to the same basin; coords differ only below
        # census/TM resolution).
        tm_seed = tm_score(relaxed_seed.ca, t.native.ca)
        tm_fast = tm_score(outcome.structure.ca, t.native.ca)
        assert tm_fast == pytest.approx(tm_seed, abs=1e-3)
        # Batched == serial fast path, bit for bit (TM within 1e-6).
        serial_outcome = serial_out[key]
        np.testing.assert_array_equal(
            outcome.structure.ca, serial_outcome.structure.ca
        )
        tm_batch_vs_serial = max(
            tm_batch_vs_serial,
            abs(tm_fast - tm_score(serial_outcome.structure.ca, t.native.ca)),
        )
        result = minimize_system(protocol.prepare(t.models[0].structure).system)
        rebuilds += result.n_neighbor_rebuilds
        reuses += result.n_neighbor_reuses
    assert tm_batch_vs_serial <= 1e-6
    assert abs(bump_total_fast - bump_total_seed) <= 2
    n_models = len(structures)
    e2e_speedup = seed_s / batch_s
    assert e2e_speedup >= MIN_E2E_SPEEDUP

    payload = {
        "smoke": SMOKE,
        "kernel": {
            "n_residues": KERNEL_RESIDUES,
            "n_particles": int(system.particles.shape[0]),
            "reference_us_per_eval": ref_s / KERNEL_EVALS * 1e6,
            "fast_us_per_eval": fast_s / KERNEL_EVALS * 1e6,
            "speedup": kernel_speedup,
        },
        "verlet": {
            "n_structures": n_models,
            "rebuilds": rebuilds,
            "reuses": reuses,
            "reuse_fraction": reuses / max(rebuilds + reuses, 1),
        },
        "end_to_end": {
            "n_models": n_models,
            "seed_models_per_sec": n_models / seed_s,
            "fast_serial_models_per_sec": n_models / serial_s,
            "batched_models_per_sec": n_models / batch_s,
            "speedup": e2e_speedup,
            "batched_vs_serial_tm_max_diff": tm_batch_vs_serial,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_relax.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "relax_throughput",
        "\n".join(
            [
                f"relax kernels, {KERNEL_RESIDUES}-residue system / "
                f"{n_models}-model Fig-4 sweep" + (" [smoke]" if SMOKE else ""),
                f"energy+gradient seed   : {ref_s / KERNEL_EVALS * 1e6:8.1f} "
                f"us/eval",
                f"energy+gradient fused  : {fast_s / KERNEL_EVALS * 1e6:8.1f} "
                f"us/eval  ({kernel_speedup:.2f}x)",
                f"Verlet list            : {rebuilds} rebuilds, {reuses} "
                f"reuses ({reuses / max(rebuilds + reuses, 1):.0%} reused)",
                f"seed serial relax      : {n_models / seed_s:8.1f} models/s",
                f"fast serial relax      : {n_models / serial_s:8.1f} models/s",
                f"batched relax_many     : {n_models / batch_s:8.1f} models/s "
                f"({e2e_speedup:.2f}x end-to-end)",
            ]
        ),
    )


def test_fold_recycle_throughput(bench_universe, bench_factory, feature_cache):
    records = list(benchmark_set(bench_universe, seed=0))[:N_FOLD_TARGETS]
    suite = benchmark_suite(bench_universe, seed=0)
    config = PredictionConfig(recycle_tolerance=0.4, max_recycles=8)
    pairs = [
        (head, generate_features(r, suite, cache=feature_cache))
        for head in FOLD_HEADS
        for r in records
    ]

    def run_pairs():
        return [
            SurrogateFoldModel(bench_factory, head).predict(features, config)
            for head, features in pairs
        ]

    gemm_s, gemm_preds = _best_of(run_pairs)

    def reference_signature(ca, out=None):
        return distogram_signature_reference(ca)

    original = recycling.distogram_signature
    recycling.distogram_signature = reference_signature
    try:
        ref_s, ref_preds = _best_of(run_pairs)
    finally:
        recycling.distogram_signature = original

    # The GEMM distogram must not change a single output: identical
    # coordinates (TM diff 0 <= 1e-6), confidences, recycle counts.
    total_recycles = 0
    for fast, ref in zip(gemm_preds, ref_preds):
        np.testing.assert_array_equal(fast.structure.ca, ref.structure.ca)
        assert fast.ptms == ref.ptms
        assert fast.n_recycles == ref.n_recycles
        total_recycles += fast.n_recycles

    # The distogram kernel in isolation (per recycle pass), on the
    # largest target's CA trace.
    ca = max((p.structure.ca for p in gemm_preds), key=len)
    out = np.empty((min(len(ca), 450),) * 2)
    sig_fast_s, _ = _best_of(
        lambda: [distogram_signature(ca, out=out) for _ in range(20)],
        repeats=5,
    )
    sig_ref_s, _ = _best_of(
        lambda: [distogram_signature_reference(ca) for _ in range(20)],
        repeats=5,
    )
    signature_speedup = sig_ref_s / sig_fast_s
    assert signature_speedup >= 1.0

    n_pairs = len(pairs)
    payload = {
        "smoke": SMOKE,
        "n_pairs": n_pairs,
        "total_recycles": total_recycles,
        "gemm_seconds_per_pair": gemm_s / n_pairs,
        "reference_seconds_per_pair": ref_s / n_pairs,
        "recycle_loop_speedup": ref_s / gemm_s,
        "signature_length": int(min(len(ca), 450)),
        "signature_speedup": signature_speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fold.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "fold_recycle_throughput",
        "\n".join(
            [
                f"recycle loop, {n_pairs} (model, target) pairs, "
                f"{total_recycles} recycles" + (" [smoke]" if SMOKE else ""),
                f"broadcast distogram : {ref_s / n_pairs * 1e3:8.1f} ms/pair",
                f"GEMM distogram      : {gemm_s / n_pairs * 1e3:8.1f} ms/pair "
                f"({ref_s / gemm_s:.2f}x)",
                f"signature kernel    : {signature_speedup:.2f}x at length "
                f"{min(len(ca), 450)}",
            ]
        ),
    )
