"""Executor scaling: the threaded vs the process backend on real relax work.

One artifact, ``benchmarks/results/BENCH_executor.json``: models/sec of
the batched relax path (``relax_many``) under both executor backends
across a worker-count sweep, on the same CASP-like model census the
Fig-4 benchmarks use.  The relax stage is the paper's embarrassingly
parallel workload (§4.5) and its minimisation loop re-enters Python
every objective evaluation, so it is exactly where the GIL binds a
threaded pool and where the process backend is supposed to escape it.

Correctness comes before speed: at every (backend, worker-count) point
the relaxed coordinates must be bit-identical to the serial reference —
the backend is an operational choice, never a scientific one.

The GIL-escape bar (process >= threaded at >= 4 workers) is asserted
only where it is physically meaningful: full-size runs on a machine
with at least 4 usable cores.  On a single-core box or at smoke sizes
the sweep still runs and the artifact records the measurements plus
whether the bar applied, so CI can check artifact shape everywhere and
enforce the bar on real hardware.

``BENCH_SMOKE=1`` shrinks the census and the sweep so CI can assert the
artifact is produced in seconds.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import casp_targets
from repro.dataflow import ProcessExecutor, ThreadedExecutor
from repro.relax import relax_many
from conftest import RESULTS_DIR, save_result

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_TARGETS = 5 if SMOKE else 19
MODELS_PER_TARGET = 2 if SMOKE else 3
MAX_RESIDUES = 400 if SMOKE else 600  # drop the T1080-like giant straggler
WORKER_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
REPEATS = 1 if SMOKE else 3
#: The bar only measures something real on hardware that can actually
#: run 4 workers at once.
MIN_CORES_FOR_BAR = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _best_rate(structures, executor_factory) -> float:
    """Best models/sec over ``REPEATS`` timed runs (plus one warmup)."""
    relax_many(structures, device="gpu", executor=executor_factory())
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        relax_many(structures, device="gpu", executor=executor_factory())
        best = min(best, time.perf_counter() - t0)
    return len(structures) / best


def test_executor_scaling():
    sweep = casp_targets(
        n_targets=N_TARGETS, models_per_target=MODELS_PER_TARGET, seed=11
    )
    structures = {
        f"{t.record.record_id}/{m.model_name}": m.structure
        for t in sweep
        for m in t.models
        if len(m.structure) <= MAX_RESIDUES
    }
    assert len(structures) >= 4

    reference = relax_many(
        structures, device="gpu", executor=ThreadedExecutor(n_workers=1)
    )

    rates: dict[str, dict[int, float]] = {"threaded": {}, "process": {}}
    backends = {
        "threaded": ThreadedExecutor,
        "process": ProcessExecutor,
    }
    for backend, cls in backends.items():
        for n in WORKER_COUNTS:
            # Bit-identity at every sweep point, against the serial run.
            run = relax_many(
                structures, device="gpu", executor=cls(n_workers=n)
            )
            for key, outcome in reference.outcomes.items():
                np.testing.assert_array_equal(
                    run.outcomes[key].structure.ca, outcome.structure.ca
                )
                assert (
                    run.outcomes[key].violations_after
                    == outcome.violations_after
                )
            rates[backend][n] = _best_rate(
                structures, lambda cls=cls, n=n: cls(n_workers=n)
            )

    n_cores = _usable_cores()
    bar_workers = max(w for w in WORKER_COUNTS if w >= 4)
    bar_applies = not SMOKE and n_cores >= MIN_CORES_FOR_BAR
    speedup_at_bar = rates["process"][bar_workers] / rates["threaded"][bar_workers]
    bar_met = speedup_at_bar >= 1.0 if bar_applies else None
    # When the gate is skipped, say exactly why — "bar not asserted" on
    # a 2-core CI box and in smoke mode are different facts, and the
    # artifact should let a reader tell them apart without rerunning.
    if bar_applies:
        skip_reason = None
    elif SMOKE:
        skip_reason = "BENCH_SMOKE=1: workload too small to measure GIL escape"
    else:
        skip_reason = (
            f"only {n_cores} usable core(s) detected "
            f"(sched_getaffinity); bar needs >= {MIN_CORES_FOR_BAR} to run "
            f"{bar_workers} workers concurrently"
        )
    if bar_applies:
        assert bar_met, (
            f"process backend did not beat threaded at {bar_workers} "
            f"workers on {n_cores} cores: {speedup_at_bar:.2f}x"
        )

    payload = {
        "smoke": SMOKE,
        "n_cores": n_cores,
        "workload": {
            "stage": "relax",
            "n_models": len(structures),
            "max_residues": MAX_RESIDUES,
        },
        "models_per_sec": {
            backend: {str(n): rates[backend][n] for n in WORKER_COUNTS}
            for backend in rates
        },
        "gil_escape_bar": {
            "workers": bar_workers,
            "applies": bar_applies,
            "process_over_threaded": speedup_at_bar,
            "met": bar_met,
            "n_usable_cores": n_cores,
            "skip_reason": skip_reason,
        },
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_executor.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "Executor scaling on the relax stage "
        f"({len(structures)} models, {n_cores} cores)",
        f"{'workers':>8} {'threaded m/s':>14} {'process m/s':>14} {'ratio':>7}",
    ]
    for n in WORKER_COUNTS:
        ratio = rates["process"][n] / rates["threaded"][n]
        lines.append(
            f"{n:>8} {rates['threaded'][n]:>14.2f} "
            f"{rates['process'][n]:>14.2f} {ratio:>7.2f}"
        )
    lines.append(
        f"GIL-escape bar at {bar_workers} workers: "
        + (
            f"{'met' if bar_met else 'MISSED'} ({speedup_at_bar:.2f}x)"
            if bar_applies
            else f"skipped — {skip_reason}"
        )
    )
    save_result("executor_scaling", "\n".join(lines))
