"""§4.3: dataflow scaling to 1000 Summit nodes / 6000 workers.

The paper's largest Dask deployment used 1000 nodes.  Sweeps node
counts over a proteome-scale inference task set and regenerates the
scaling behaviour: near-linear walltime reduction while tasks remain
plentiful, with efficiency decaying as the per-worker task count drops;
plus the §4.2 observation that scheduler/startup overhead is a ~16%
share of a super-preset run's walltime at 32 nodes.
"""

import numpy as np
import pytest

from repro.cluster import (
    DASK_TASK_OVERHEAD_SECONDS,
    SCHEDULER_STARTUP_SECONDS,
    inference_task_seconds,
)
from repro.dataflow import TaskSpec, make_workers, simulate_dataflow
from repro.sequences import rng_for
from conftest import save_result

N_TARGETS = 25_134
NODE_SWEEP = (32, 125, 250, 500, 1000)


@pytest.fixture(scope="module")
def tasks():
    rng = rng_for(0, "scaling-lengths")
    lengths = np.clip(
        np.round(rng.lognormal(5.72, 0.62, size=N_TARGETS)), 25, 2500
    ).astype(int)
    return [
        TaskSpec(key=f"t{i}/m{m}", payload=int(L), size_hint=int(L))
        for i, L in enumerate(lengths)
        for m in range(5)
    ]


def _duration(task: TaskSpec) -> float:
    return inference_task_seconds(int(task.payload), 4)


def test_scaling_sweep(benchmark, tasks):
    def sweep():
        rows = []
        for nodes in NODE_SWEEP:
            workers = make_workers(nodes, 6)
            result = simulate_dataflow(tasks, workers, _duration)
            rows.append((nodes, result.walltime_seconds, result.utilization()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_nodes, base_wall, _ = rows[0]
    lines = [
        f"S4.3 — inference scaling, {len(tasks)} tasks (S. divinum-scale)",
        f"{'nodes':>6} {'workers':>8} {'walltime(h)':>12} {'speedup':>8} "
        f"{'efficiency':>10} {'util':>6}",
    ]
    for nodes, wall, util in rows:
        speedup = base_wall / wall
        eff = speedup / (nodes / base_nodes)
        lines.append(
            f"{nodes:>6} {nodes * 6:>8} {wall / 3600:>12.2f} "
            f"{speedup:>7.1f}x {eff:>9.0%} {util:>6.0%}"
        )
    save_result("scaling_sweep", "\n".join(lines))

    walls = [w for _, w, _ in rows]
    assert all(b < a for a, b in zip(walls, walls[1:]))  # monotone
    # Near-linear to 1000 nodes: the paper deployed there productively.
    speedup_1000 = walls[0] / walls[-1]
    assert speedup_1000 > 0.7 * (1000 / 32)
    # Utilization stays high even at 6000 workers with this task count.
    assert rows[-1][2] > 0.8


def test_overhead_share_at_32_nodes(benchmark, table1_runs):
    """§4.2: overhead ~16% of the super-preset walltime at 32 nodes."""
    run = benchmark.pedantic(
        lambda: table1_runs["super"], rounds=1, iterations=1
    )
    n_tasks = len(run.simulation.records)
    overhead = (
        SCHEDULER_STARTUP_SECONDS
        + n_tasks * DASK_TASK_OVERHEAD_SECONDS / len(run.simulation.workers)
    )
    share = overhead / run.simulation.walltime_seconds
    save_result(
        "overhead_share",
        f"S4.2 — scheduler overhead share of super-preset walltime: "
        f"{share:.1%} [paper: ~16%]",
    )
    assert 0.01 <= share <= 0.30
