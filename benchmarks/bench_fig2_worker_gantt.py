"""Fig. 2: distribution of inference work across Dask workers.

Simulates the 1200-worker (200-node) inference workflow over a
proteome-scale task set and regenerates the Gantt view: with the
paper's greedy descending-length submission order, long tasks run first
and all workers finish within minutes of one another; with random
order, a few workers process long tasks alone at the end.

The Gantt is derived from the telemetry trace exporter — records become
spans, spans become a Chrome ``trace_event`` object, and the worker
lanes are read back out of that artifact — with the legacy in-memory
:func:`extract_gantt` path kept as the equality oracle, so the exported
``trace.json`` is proven to carry the whole figure.
"""

import numpy as np
import pytest

from repro.cluster import inference_task_seconds
from repro.dataflow import (
    GanttLane,
    TaskSpec,
    extract_gantt,
    make_workers,
    render_ascii_gantt,
    simulate_dataflow,
)
from repro.sequences import rng_for
from repro.telemetry import (
    SIM_PID,
    chrome_trace,
    lanes_from_trace,
    spans_from_records,
    validate_chrome_trace,
)
from conftest import save_result

N_NODES = 200  # 1200 workers, matching Fig. 2's caption
N_TARGETS = 25_134  # S. divinum-sized campaign


@pytest.fixture(scope="module")
def tasks():
    """(model, target) task sizes drawn from a plant-proteome length
    distribution — only lengths matter for the balancing question."""
    rng = rng_for(0, "fig2-lengths")
    lengths = np.clip(
        np.round(rng.lognormal(5.72, 0.62, size=N_TARGETS)), 25, 2500
    ).astype(int)
    return [
        TaskSpec(key=f"t{i}/m{m}", payload=int(L), size_hint=int(L))
        for i, L in enumerate(lengths)
        for m in range(5)
    ]


def _duration(task: TaskSpec) -> float:
    return inference_task_seconds(int(task.payload), 4)


def test_fig2_worker_gantt(benchmark, tasks):
    workers = make_workers(N_NODES, 6)
    sorted_run = benchmark.pedantic(
        simulate_dataflow,
        args=(tasks, workers, _duration),
        rounds=1,
        iterations=1,
    )
    random_run = simulate_dataflow(
        tasks,
        workers,
        _duration,
        sort_descending=False,
        rng=np.random.default_rng(0),
    )
    # Fig. 2 now comes out of the telemetry artifact: records -> spans ->
    # Chrome trace -> lanes.  The legacy in-memory extraction is the
    # equality oracle below.
    trace = chrome_trace(spans_from_records(sorted_run.records))
    assert validate_chrome_trace(trace) == []
    trace_lanes = lanes_from_trace(trace, pid=SIM_PID)
    legacy = extract_gantt(sorted_run.records)
    assert set(trace_lanes) == {w.worker_id for w in workers}
    legacy_by_id = {
        lane.short_id: lane for lane in legacy
    }
    for worker_id, intervals in trace_lanes.items():
        oracle = legacy_by_id[worker_id[-6:]]
        busy_trace = sum(e - s for s, e in intervals)
        # Timestamps round-trip through fractional microseconds; busy
        # seconds must survive to float precision.
        assert len(intervals) == oracle.n_tasks
        assert busy_trace == pytest.approx(oracle.busy_seconds, rel=1e-9)

    # Render the usual 10-lane sample, but from the trace-derived
    # intervals (same sampling as before, keyed by short id).
    by_short = {wid[-6:]: intervals for wid, intervals in trace_lanes.items()}
    lanes = [
        GanttLane(short_id=lane.short_id, intervals=tuple(by_short[lane.short_id]))
        for lane in extract_gantt(sorted_run.records, max_workers=10)
    ]
    art = render_ascii_gantt(lanes, width=100)
    spread_sorted = sorted_run.finish_spread_seconds() / 60
    spread_random = random_run.finish_spread_seconds() / 60
    text = "\n".join(
        [
            "Fig. 2 — worker Gantt, 10 of 1200 workers (sorted submission)",
            art,
            "",
            f"makespan sorted : {sorted_run.makespan_seconds / 3600:.2f} h "
            f"(finish spread {spread_sorted:.1f} min, "
            f"utilization {sorted_run.utilization():.1%})",
            f"makespan random : {random_run.makespan_seconds / 3600:.2f} h "
            f"(finish spread {spread_random:.1f} min, "
            f"utilization {random_run.utilization():.1%})",
            "",
            "These lanes show a single stage run in isolation; under "
            "--schedule streaming the same workers interleave feature, "
            "inference and relax tasks from different sequences, so the "
            "idle tail each stage barrier leaves here is filled by the "
            "next stage's ready work (see BENCH_streaming.json).",
        ]
    )
    save_result("fig2_worker_gantt", text)

    # All 125,670 tasks completed, on every worker.  Pulling per-worker
    # lanes for all 1200 workers goes through the cached one-pass index
    # (one rescan per worker would be 150M record visits here).
    assert len(sorted_run.records) == len(tasks)
    assert len(sorted_run.worker_finish_times()) == 1200
    per_worker = [sorted_run.worker_records(w.worker_id) for w in workers]
    assert sum(len(lane) for lane in per_worker) == len(tasks)
    assert all(lane for lane in per_worker)
    # The paper's claim: workers finish within minutes of one another.
    assert spread_sorted < 15.0
    # Greedy sorting beats random ordering on both makespan and spread.
    assert sorted_run.makespan_seconds <= random_run.makespan_seconds
    assert spread_sorted < spread_random
    # Long tasks first: the first task of every lane is among the longest.
    first_starts = [lane.intervals[0] for lane in lanes]
    first_durations = [e - s for s, e in first_starts]
    later = [
        e - s for lane in lanes for s, e in lane.intervals[1:]
    ]
    assert np.mean(first_durations) > np.mean(later)
