"""Shared benchmark fixtures.

The heavyweight workloads (the 559-sequence Table 1 set, the CASP-like
model census) are built once per session and shared across benchmark
modules.  Every module writes its regenerated table/figure data to
``benchmarks/results/`` so EXPERIMENTS.md can quote it.

Feature generation goes through a session-scoped, disk-backed
:class:`~repro.cache.FeatureCache` (``benchmarks/.feature_cache/``):
the 559-target Table 1 feature set is computed once ever, not once per
benchmark session — repeat sessions hit the on-disk bundles.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import FeatureCache
from repro.core import benchmark_set, benchmark_suite, casp_targets
from repro.core.pipeline import ProteomePipeline
from repro.fold import NativeFactory
from repro.msa import generate_features
from repro.sequences import SequenceUniverse

RESULTS_DIR = Path(__file__).resolve().parent / "results"
FEATURE_CACHE_DIR = Path(__file__).resolve().parent / ".feature_cache"


def save_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text, encoding="utf-8")
    print(f"\n{text}")


@pytest.fixture(scope="session")
def bench_universe() -> SequenceUniverse:
    return SequenceUniverse(seed=0)


@pytest.fixture(scope="session")
def feature_cache() -> FeatureCache:
    """Disk-backed feature cache shared by every benchmark module."""
    return FeatureCache(directory=FEATURE_CACHE_DIR)


@pytest.fixture(scope="session")
def table1_workload(bench_universe, feature_cache):
    """The 559-sequence benchmark set with precomputed features."""
    bench = benchmark_set(bench_universe, seed=0)
    suite = benchmark_suite(bench_universe, seed=0)
    features = {
        r.record_id: generate_features(r, suite, cache=feature_cache)
        for r in bench
    }
    return bench, suite, features


@pytest.fixture(scope="session")
def bench_factory(bench_universe) -> NativeFactory:
    return NativeFactory(bench_universe)


@pytest.fixture(scope="session")
def table1_runs(table1_workload, bench_factory):
    """All four preset runs over the Table 1 workload.

    casp14 runs without high-memory routing (as the paper's benchmark
    did), which is what loses its longest sequences to OOM.
    """
    _bench, _suite, features = table1_workload
    runs = {}
    for preset, nodes in (
        ("reduced_db", 32),
        ("genome", 32),
        ("super", 32),
        ("casp14", 91),
    ):
        pipeline = ProteomePipeline(
            inference_nodes=nodes, use_highmem_routing=False
        )
        runs[preset] = pipeline.run_inference_stage(
            features, bench_factory, preset_name=preset
        )
    return runs


@pytest.fixture(scope="session")
def casp19():
    """19 CASP-like targets with natives (Fig. 3 / Fig. 4 set)."""
    return casp_targets(n_targets=19, models_per_target=1, seed=11)


@pytest.fixture(scope="session")
def casp_census():
    """The §4.4 census: 5 models for each of 32 targets = 160 models."""
    return casp_targets(
        n_targets=32, models_per_target=5, seed=12, include_outlier=False
    )
