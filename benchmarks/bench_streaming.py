"""Streaming vs barrier schedules on the Fig-2 campaign.

One artifact, ``benchmarks/results/BENCH_streaming.json``: campaign
makespan and time-to-first-structure for the barrier schedule (three
sequential stage simulations, each paying its own scheduler startup,
each stage's pool idle outside its stage) against the streaming
schedule (one dependency-driven simulation over the same workers, same
per-task durations, one startup) at several worker counts, plus the
``pipeline.bubble_seconds`` each schedule accumulates — worker-seconds
idle while dependency-ready, pool-eligible work existed — derived from
the task record stream by :func:`repro.dataflow.bubbles.bubble_seconds`.

The campaign is the Fig-2 shape: target lengths drawn from the same
plant-proteome lognormal the worker-Gantt benchmark uses, five
inference tasks per target, one feature task upstream and one
relaxation downstream of each — the per-sequence chain
``feature(s) -> inference(s, m) x 5 -> relax(s)``.  Durations come from
the calibrated cost model, so the two schedules move *identical* work
across *identical* workers; only the dispatch discipline differs.

The assertions pin the PR's claim: at every worker count >= 2 the
streaming schedule strictly reduces both makespan and
time-to-first-structure, and collapses most of the barrier bubbles.

``BENCH_SMOKE=1`` shrinks the campaign and the sweep so CI can check
the artifact schema in seconds.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import NamedTuple

import numpy as np

from repro.cluster import (
    SCHEDULER_STARTUP_SECONDS,
    feature_task_seconds,
    inference_task_seconds,
    relax_task_seconds,
)
from repro.core import streaming
from repro.dataflow import TaskSpec, make_workers, simulate_dataflow
from repro.dataflow.bubbles import bubble_seconds
from repro.sequences import rng_for
from conftest import RESULTS_DIR, save_result

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_TARGETS = 40 if SMOKE else 600
WORKER_COUNTS = (2, 6) if SMOKE else (2, 8, 48, 192)
MODEL_NAMES = [f"model_{i}" for i in range(1, 6)]
DATASET_FRACTION = 0.2  # the reduced dataset the paper searched


class _Target(NamedTuple):
    """Just enough of a sequence record to build campaign specs."""

    record_id: str
    length: int
    species: str = "fig2"


def _campaign():
    """Fig-2-distributed targets plus per-task modelled durations."""
    rng = rng_for(0, "fig2-lengths")
    lengths = np.clip(
        np.round(rng.lognormal(5.72, 0.62, size=N_TARGETS)), 25, 2500
    ).astype(int)
    targets = [_Target(f"t{i:05d}", int(L)) for i, L in enumerate(lengths)]
    recycle_rng = rng_for(0, "bench-streaming-recycles")
    durations: dict[str, float] = {}
    for t in targets:
        durations[f"feature/{t.record_id}"] = feature_task_seconds(
            t.length, dataset_fraction=DATASET_FRACTION
        )
        for name in MODEL_NAMES:
            durations[f"inference/{t.record_id}/{name}"] = (
                inference_task_seconds(
                    t.length, int(recycle_rng.integers(3, 13))
                )
            )
        durations[f"relax/{t.record_id}"] = relax_task_seconds(
            8 * t.length, 1, device="gpu"
        )
    specs = streaming.build_campaign_specs(
        targets, MODEL_NAMES, lambda r: 0.0
    )
    return specs, durations


def _pools(n_workers: int):
    """Split ``n_workers`` into the ParaFold CPU/GPU pools.

    Two thirds to the GPU (inference) pool — the stage that dominates
    task count — the rest to the CPU pool that serves feature and
    relax work.  At n=2 this is one worker per pool.
    """
    gpu = max(1, (2 * n_workers) // 3)
    cpu = max(1, n_workers - gpu)
    cpu_pool = make_workers(1, cpu, pool="cpu")
    gpu_pool = make_workers(1, gpu, pool="gpu")
    return cpu_pool, gpu_pool


def _stage_duration(durations, stage):
    return lambda t: durations[f"{stage}/{t.key}"]


def _run_barrier(specs, durations, cpu_pool, gpu_pool):
    """Three sequential per-pool simulations, stitched onto one clock."""
    by_stage = {"feature": [], "inference": [], "relax": []}
    for s in specs:
        by_stage[streaming.stage_of(s)].append(
            replace(s, key=s.key.partition("/")[2], depends_on=(), pool="")
        )
    pool_of = {"feature": cpu_pool, "inference": gpu_pool, "relax": cpu_pool}
    sims = [
        (
            stage,
            simulate_dataflow(
                by_stage[stage],
                pool_of[stage],
                _stage_duration(durations, stage),
            ),
        )
        for stage in streaming.STREAM_STAGES
    ]
    records, workers, stage_specs = streaming.barrier_composite(sims, specs)
    walltime = sum(s.walltime_seconds for _, s in sims)
    return {
        "makespan_seconds": walltime,
        "time_to_first_structure_seconds": (
            streaming.time_to_first_structure_seconds(records)
        ),
        "bubble_seconds": bubble_seconds(records, workers, stage_specs),
    }


def _run_streaming(specs, durations, cpu_pool, gpu_pool):
    """One dependency-driven simulation over the pooled workers."""
    sim = streaming.simulate_streaming_campaign(
        specs, cpu_pool + gpu_pool, durations
    )
    assert all(r.ok for r in sim.records)
    assert len(sim.records) == len(specs)
    return {
        "makespan_seconds": sim.walltime_seconds,
        "time_to_first_structure_seconds": (
            streaming.time_to_first_structure_seconds(
                sim.records, startup=sim.startup_seconds
            )
        ),
        "bubble_seconds": bubble_seconds(sim.records, sim.workers, specs),
    }


def test_streaming_vs_barrier():
    specs, durations = _campaign()
    sweep = []
    for n in WORKER_COUNTS:
        cpu_pool, gpu_pool = _pools(n)
        barrier = _run_barrier(specs, durations, cpu_pool, gpu_pool)
        stream = _run_streaming(specs, durations, cpu_pool, gpu_pool)
        # The PR's bar: streaming strictly beats the barrier schedule on
        # BOTH makespan and time-to-first-structure at every n >= 2.
        assert stream["makespan_seconds"] < barrier["makespan_seconds"], n
        assert (
            stream["time_to_first_structure_seconds"]
            < barrier["time_to_first_structure_seconds"]
        ), n
        sweep.append(
            {
                "workers": len(cpu_pool) + len(gpu_pool),
                "cpu_workers": len(cpu_pool),
                "gpu_workers": len(gpu_pool),
                "barrier": barrier,
                "streaming": stream,
                "makespan_speedup": barrier["makespan_seconds"]
                / stream["makespan_seconds"],
                "ttfs_speedup": barrier["time_to_first_structure_seconds"]
                / stream["time_to_first_structure_seconds"],
            }
        )

    payload = {
        "smoke": SMOKE,
        "campaign": {
            "n_targets": N_TARGETS,
            "n_tasks": len(specs),
            "length_distribution": "lognormal(5.72, 0.62) clipped [25, 2500]",
            "dataset_fraction": DATASET_FRACTION,
        },
        "startup_seconds": SCHEDULER_STARTUP_SECONDS,
        "sweep": sweep,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_streaming.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        f"Streaming vs barrier schedule, Fig-2 campaign "
        f"({N_TARGETS} targets, {len(specs)} tasks)",
        f"{'workers':>8} {'barrier mk':>12} {'stream mk':>12} "
        f"{'mk x':>6} {'barrier ttfs':>13} {'stream ttfs':>12} "
        f"{'ttfs x':>7} {'bubble b':>10} {'bubble s':>10}",
    ]
    for row in sweep:
        lines.append(
            f"{row['workers']:>8}"
            f" {row['barrier']['makespan_seconds'] / 3600:>10.2f} h"
            f" {row['streaming']['makespan_seconds'] / 3600:>10.2f} h"
            f" {row['makespan_speedup']:>6.2f}"
            f" {row['barrier']['time_to_first_structure_seconds'] / 60:>9.1f} min"
            f" {row['streaming']['time_to_first_structure_seconds'] / 60:>8.1f} min"
            f" {row['ttfs_speedup']:>7.2f}"
            f" {row['barrier']['bubble_seconds'] / 3600:>8.2f} h"
            f" {row['streaming']['bubble_seconds'] / 3600:>8.2f} h"
        )
    lines.append(
        "barrier pays scheduler startup per stage and parks each pool "
        "outside its stage; streaming pays it once and keeps both pools fed"
    )
    save_result("streaming_schedule", "\n".join(lines))
