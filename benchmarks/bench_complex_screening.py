"""§5 implication: protein-complex screening (AF2Complex direction).

The paper's conclusion argues complex prediction is the natural next
HPC workload: all-vs-all interactome screens scale quadratically in the
proteome.  This bench runs the miniature screen and checks the two
properties such screens rest on:

* the interface score separates truly interacting pairs from random
  pairs (ranking precision), and
* the priced full-proteome screen is orders of magnitude beyond the
  monomer campaign (the quadratic wall).
"""

import numpy as np
import pytest

from repro.cluster import inference_task_seconds
from repro.fold import ComplexPredictor, NativeFactory
from repro.msa import build_suite, generate_features
from repro.sequences import SequenceUniverse, synthetic_proteome
from conftest import save_result

N_CHAINS = 12


@pytest.fixture(scope="module")
def screen(feature_cache):
    uni = SequenceUniverse(41)
    prot = synthetic_proteome("R_rubrum", universe=uni, seed=41, scale=0.01)
    suite = build_suite(uni, ["R_rubrum"], seed=41, scale=0.01)
    predictor = ComplexPredictor(NativeFactory(uni))
    chains = [
        r for r in prot if r.family_id is not None and r.length < 400
    ][:N_CHAINS]
    feats = {
        r.record_id: generate_features(r, suite, cache=feature_cache)
        for r in chains
    }
    results = []
    for i in range(len(chains)):
        for j in range(i + 1, len(chains)):
            results.append(
                predictor.predict(
                    feats[chains[i].record_id], feats[chains[j].record_id]
                )
            )
    return results


def test_complex_screen(benchmark, screen):
    results = benchmark.pedantic(lambda: screen, rounds=1, iterations=1)
    true_scores = [c.interface_score for c in results if c.truly_interacting]
    false_scores = [
        c.interface_score for c in results if not c.truly_interacting
    ]
    ranked = sorted(results, key=lambda c: c.interface_score, reverse=True)
    k = max(1, len(true_scores))
    precision = sum(c.truly_interacting for c in ranked[:k]) / k
    n = 3205
    pair_nh = (
        (n * (n - 1) / 2) * inference_task_seconds(2 * 328, 6) / 6 / 3600
    )
    lines = [
        f"S5 — complex screening, {len(results)} pairs of {N_CHAINS} chains",
        f"interacting pairs       : {len(true_scores)}",
        f"mean iScore interacting : "
        f"{np.mean(true_scores):.3f}" if true_scores else "(none)",
        f"mean iScore random      : {np.mean(false_scores):.3f}",
        f"top-k precision         : {precision:.0%}",
        f"full D. vulgaris screen : ~{pair_nh:,.0f} Summit node-hours "
        f"(monomer campaign: ~400) — the quadratic wall",
    ]
    save_result("complex_screening", "\n".join(lines))

    assert false_scores
    assert np.mean(false_scores) < 0.15
    if true_scores:
        assert np.mean(true_scores) > np.mean(false_scores) + 0.15
        assert precision >= 0.5
    # Quadratic wall: thousands of times the monomer campaign.
    assert pair_nh > 100 * 400
