"""Fig. 3: relaxed-vs-unrelaxed model quality (TM-score and SPECS-score).

For the 19 CASP14-like targets with natives, relax each model with the
three methods and regenerate the correlation data: points hug the
diagonal (no major structural changes), no decreases in either metric,
and slight SPECS gains for already-good models (side chains idealise
toward native geometry).
"""

import numpy as np
import pytest

from repro.relax import AlphaFoldRelaxProtocol, SinglePassRelaxProtocol
from repro.structure import specs_score, tm_score
from conftest import save_result

METHODS = {
    "af2_loop": AlphaFoldRelaxProtocol,
    "ours_cpu": lambda: SinglePassRelaxProtocol(device="cpu"),
    "ours_gpu": lambda: SinglePassRelaxProtocol(device="gpu"),
}


@pytest.fixture(scope="module")
def relaxed_scores(casp19):
    """(method -> list of (tm_pre, tm_post, specs_pre, specs_post))."""
    out = {name: [] for name in METHODS}
    for target in casp19:
        model = target.models[0].structure
        native = target.native
        tm_pre = tm_score(model.ca, native.ca)
        sp_pre = specs_score(model.ca, native.ca)
        for name, factory in METHODS.items():
            outcome = factory().run(model)
            out[name].append(
                (
                    tm_pre,
                    tm_score(outcome.structure.ca, native.ca),
                    sp_pre,
                    specs_score(outcome.structure.ca, native.ca),
                )
            )
    return {name: np.array(vals) for name, vals in out.items()}


def test_fig3_correlation(benchmark, relaxed_scores):
    relaxed_scores = benchmark.pedantic(
        lambda: relaxed_scores, rounds=1, iterations=1
    )
    lines = ["Fig. 3 — relaxed vs unrelaxed quality across 19 CASP-like targets"]
    for name, arr in relaxed_scores.items():
        tm_corr = np.corrcoef(arr[:, 0], arr[:, 1])[0, 1]
        sp_corr = np.corrcoef(arr[:, 2], arr[:, 3])[0, 1]
        lines.append(
            f"{name:>9}: TM corr {tm_corr:.4f}, dTM mean "
            f"{(arr[:, 1] - arr[:, 0]).mean():+.4f} (min "
            f"{(arr[:, 1] - arr[:, 0]).min():+.4f}); SPECS corr {sp_corr:.4f}, "
            f"dSPECS mean {(arr[:, 3] - arr[:, 2]).mean():+.4f}"
        )
    save_result("fig3_relax_quality", "\n".join(lines))

    for name, arr in relaxed_scores.items():
        d_tm = arr[:, 1] - arr[:, 0]
        d_sp = arr[:, 3] - arr[:, 2]
        # Strong diagonal correlation: relaxation preserves structure.
        assert np.corrcoef(arr[:, 0], arr[:, 1])[0, 1] > 0.99
        # No material decreases in either metric.
        assert d_tm.min() > -0.01
        assert d_sp.min() > -0.02
        # Only small perturbations (restraints hold the model).
        assert np.abs(d_tm).max() < 0.1


def test_specs_improves_for_good_models(relaxed_scores):
    # Paper: SPECS improves slightly for models that already score high.
    arr = relaxed_scores["ours_gpu"]
    good = arr[:, 2] > 0.7
    if good.any():
        assert (arr[good, 3] - arr[good, 2]).mean() >= -0.005


def test_methods_equivalent(relaxed_scores):
    # The §4.4 claim: all three methods recover equivalent quality.
    tm_means = {name: arr[:, 1].mean() for name, arr in relaxed_scores.items()}
    spread = max(tm_means.values()) - min(tm_means.values())
    assert spread < 0.02


def test_single_relaxation_benchmark(benchmark, casp19):
    from repro.relax import relax_structure

    model = casp19[2].models[0].structure
    benchmark.pedantic(
        lambda: relax_structure(model, "gpu"), rounds=1, iterations=1
    )
