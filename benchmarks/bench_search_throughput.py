"""Search-kernel and pipeline hot-path throughput (the perf trajectory).

Two artifacts, both under ``benchmarks/results/``:

* ``BENCH_search.json`` — queries/sec of the CSR k-mer index against
  the seed's dict-of-lists implementation on a ~5k-entry library, for
  the single-query path and the batched ``count_hits_many`` path.  The
  acceptance bar is >= 5x batched throughput over the seed dict index.
* ``BENCH_pipeline.json`` — wall time of the executor-backed pipeline
  (feature search + inference + relaxation run on ``ThreadedExecutor``
  threads) against the serial one-worker path the seed used, with the
  scientific outputs asserted identical.

``BENCH_SMOKE=1`` shrinks every size so CI can assert the artifacts are
produced in seconds; the speedup bar is then informational only (tiny
libraries measure overhead, not throughput).
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict

import numpy as np

from repro.core.pipeline import ProteomePipeline
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.msa.kmer import KmerIndex, kmer_codes
from repro.sequences import (
    SequenceUniverse,
    mutate_sequence,
    random_sequence,
    synthetic_proteome,
)
from conftest import RESULTS_DIR, save_result

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
N_LIBRARY = 300 if SMOKE else 5000
N_QUERIES = 16 if SMOKE else 64
#: Minimum batched-queries/sec speedup over the seed dict index.  Tiny
#: smoke libraries measure fixed overhead, so the bar applies full-size.
MIN_BATCHED_SPEEDUP = 1.0 if SMOKE else 5.0
PIPELINE_SCALE = 0.004 if SMOKE else 0.01


class DictKmerIndex:
    """The seed implementation, kept verbatim as the benchmark baseline:
    ``defaultdict(list)`` postings and a per-code Python loop."""

    def __init__(self, k: int = 5) -> None:
        self.k = k
        self._postings: dict[int, list[int]] = defaultdict(list)
        self._n = 0
        self._frozen: dict[int, np.ndarray] | None = None

    def add(self, seq_id: int, encoded: np.ndarray) -> None:
        for code in np.unique(kmer_codes(encoded, self.k)).tolist():
            self._postings[code].append(seq_id)
        self._n += 1

    def freeze(self) -> None:
        if self._frozen is None:
            self._frozen = {
                code: np.asarray(ids, dtype=np.int64)
                for code, ids in self._postings.items()
            }
            self._postings.clear()

    def count_hits(self, encoded: np.ndarray) -> np.ndarray:
        self.freeze()
        assert self._frozen is not None
        counts = np.zeros(self._n, dtype=np.int64)
        for code in np.unique(kmer_codes(encoded, self.k)).tolist():
            ids = self._frozen.get(code)
            if ids is not None:
                counts[ids] += 1
        return counts


def _workload():
    rng = np.random.default_rng(7)
    library = [
        random_sequence(int(rng.integers(60, 500)), rng)
        for _ in range(N_LIBRARY)
    ]
    # Queries are mutated library members: realistic hit structure, not
    # all-miss noise.
    queries = [
        mutate_sequence(
            library[int(rng.integers(0, len(library)))],
            rng,
            float(rng.uniform(0.05, 0.5)),
        )
        for _ in range(N_QUERIES)
    ]
    return library, queries


def _build(index, library):
    t0 = time.perf_counter()
    for i, seq in enumerate(library):
        index.add(i, seq)
    index.freeze()
    return time.perf_counter() - t0


def _best_of(fn, repeats: int = 3):
    """Best-of-N wall time: one warmup pass, then the minimum of
    ``repeats`` timed passes (steady-state throughput, not numpy/page
    warmup)."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_search_throughput_csr_vs_dict():
    library, queries = _workload()

    dict_index = DictKmerIndex()
    dict_build_s = _build(dict_index, library)
    csr_index = KmerIndex()
    csr_build_s = _build(csr_index, library)

    dict_s, dict_counts = _best_of(
        lambda: [dict_index.count_hits(q) for q in queries]
    )
    dict_qps = len(queries) / dict_s

    single_s, csr_counts = _best_of(
        lambda: [csr_index.count_hits(q) for q in queries]
    )
    csr_single_qps = len(queries) / single_s

    batched_s, batched = _best_of(lambda: csr_index.count_hits_many(queries))
    csr_batched_qps = len(queries) / batched_s

    # Bit-identical results are the precondition for any speedup claim.
    for ref, single, row in zip(dict_counts, csr_counts, batched):
        assert (ref == single).all()
        assert (ref == row).all()

    single_speedup = csr_single_qps / dict_qps
    batched_speedup = csr_batched_qps / dict_qps
    assert batched_speedup >= MIN_BATCHED_SPEEDUP

    payload = {
        "smoke": SMOKE,
        "library_entries": N_LIBRARY,
        "n_queries": N_QUERIES,
        "dict_build_seconds": dict_build_s,
        "csr_build_seconds": csr_build_s,
        "dict_queries_per_sec": dict_qps,
        "csr_single_queries_per_sec": csr_single_qps,
        "csr_batched_queries_per_sec": csr_batched_qps,
        "single_query_speedup": single_speedup,
        "batched_speedup": batched_speedup,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "search_throughput",
        "\n".join(
            [
                f"k-mer search throughput, {N_LIBRARY}-entry library, "
                f"{N_QUERIES} queries" + (" [smoke]" if SMOKE else ""),
                f"{'':24} {'build(s)':>10} {'queries/s':>12} {'speedup':>9}",
                f"{'seed dict index':24} {dict_build_s:10.3f} "
                f"{dict_qps:12.1f} {'1.0x':>9}",
                f"{'CSR single-query':24} {csr_build_s:10.3f} "
                f"{csr_single_qps:12.1f} {single_speedup:8.1f}x",
                f"{'CSR batched':24} {csr_build_s:10.3f} "
                f"{csr_batched_qps:12.1f} {batched_speedup:8.1f}x",
            ]
        ),
    )


def test_pipeline_executor_vs_serial_walltime():
    uni = SequenceUniverse(seed=5)
    prot = synthetic_proteome(
        "D_vulgaris", universe=uni, seed=5, scale=PIPELINE_SCALE
    )
    suite = build_suite(uni, ["D_vulgaris"], seed=5, scale=PIPELINE_SCALE)
    factory = NativeFactory(uni)

    def run(workers: int):
        pipeline = ProteomePipeline(
            preset_name="genome",
            feature_nodes=4,
            inference_nodes=2,
            relax_nodes=1,
            compute_workers=workers,
        )
        t0 = time.perf_counter()
        result = pipeline.run(prot, suite, factory)
        return time.perf_counter() - t0, result

    # Warm the factory's fold caches so neither timed run pays them.
    for record in prot:
        factory.native(record)

    serial_s, serial_result = run(1)
    n_workers = max(2, min(8, os.cpu_count() or 2))
    executor_s, executor_result = run(n_workers)

    # Executor-backed stages must not change the science: same targets,
    # same top-model confidences, same relax outcomes.
    serial_top = serial_result.inference_stage.top_models
    executor_top = executor_result.inference_stage.top_models
    assert set(serial_top) == set(executor_top)
    for rid, pred in serial_top.items():
        assert executor_top[rid].ptms == pred.ptms
        assert executor_top[rid].mean_plddt == pred.mean_plddt

    payload = {
        "smoke": SMOKE,
        "n_targets": len(prot),
        "serial_workers": 1,
        "executor_workers": n_workers,
        "serial_seconds": serial_s,
        "executor_seconds": executor_s,
        "speedup": serial_s / executor_s,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    save_result(
        "pipeline_walltime",
        "\n".join(
            [
                f"executor-backed pipeline, {len(prot)} targets"
                + (" [smoke]" if SMOKE else ""),
                f"serial (1 worker)    : {serial_s:8.2f} s",
                f"executor ({n_workers} workers) : {executor_s:8.2f} s",
                f"speedup              : {serial_s / executor_s:8.2f}x",
            ]
        ),
    )
