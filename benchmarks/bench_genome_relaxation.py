"""§4.5: genome-scale relaxation throughput.

The paper relaxed all 3,205 *D. vulgaris* top models in 22.89 minutes
on 8 Summit nodes x 6 Dask workers = 48 GPU workers.  Regenerates that
number by simulating the relaxation workflow over a D. vulgaris-sized
set of system sizes with the calibrated GPU cost model, and contrasts
it with the same workload under the original AF2 CPU protocol.
"""

import numpy as np
import pytest

from repro.cluster import relax_task_seconds
from repro.constants import GENOME_RELAX_MINUTES, GENOME_RELAX_WORKERS
from repro.dataflow import TaskSpec, make_workers, simulate_dataflow
from repro.relax import relax_many
from repro.sequences import rng_for
from conftest import save_result

N_STRUCTURES = 3205


@pytest.fixture(scope="module")
def heavy_atom_sizes():
    """Heavy-atom counts of a D. vulgaris-like proteome (~7.8/residue)."""
    rng = rng_for(0, "genome-relax-sizes")
    lengths = np.clip(
        np.round(rng.lognormal(5.62, 0.52, size=N_STRUCTURES)), 29, 2500
    )
    return (lengths * 7.8).astype(int)


def test_genome_relaxation_walltime(benchmark, heavy_atom_sizes):
    tasks = [
        TaskSpec(key=f"s{i}", payload=int(a), size_hint=int(a))
        for i, a in enumerate(heavy_atom_sizes)
    ]
    workers = make_workers(8, 6)  # 48 workers, the paper's layout
    result = benchmark.pedantic(
        simulate_dataflow,
        args=(tasks, workers, lambda t: relax_task_seconds(int(t.payload), 1, "gpu")),
        kwargs={"task_overhead": 0.5, "startup": 60.0},
        rounds=1,
        iterations=1,
    )
    gpu_minutes = result.walltime_minutes
    cpu_result = simulate_dataflow(
        tasks,
        workers,
        lambda t: relax_task_seconds(int(t.payload), 2, "cpu"),
        task_overhead=0.5,
        startup=60.0,
    )
    lines = [
        "S4.5 — genome-scale relaxation of 3205 structures on 48 workers",
        f"optimized GPU protocol : {gpu_minutes:6.1f} min "
        f"[paper: {GENOME_RELAX_MINUTES} min on {GENOME_RELAX_WORKERS} workers]",
        f"AF2 CPU protocol       : {cpu_result.walltime_minutes:6.1f} min "
        f"(same worker count, for contrast)",
        f"speedup                : "
        f"{cpu_result.walltime_minutes / gpu_minutes:5.1f}x",
    ]
    save_result("genome_relaxation", "\n".join(lines))

    # Within a factor ~1.6 of the paper's 22.89 minutes.
    assert 14 <= gpu_minutes <= 38
    assert cpu_result.walltime_minutes > 5 * gpu_minutes


def test_real_batch_relaxation(casp19):
    """A real (scaled-down) batch through the genome entry point:
    ``relax_many`` is what the relax stage runs, so the simulated
    numbers above describe the same per-model computation."""
    structures = {
        t.record.record_id: t.models[0].structure for t in casp19
    }
    batch = relax_many(structures, device="gpu")
    assert set(batch.outcomes) == set(structures)
    assert all(o.converged for o in batch.outcomes.values())
    clashes, _bumps = batch.total_violations_after()
    assert clashes == 0  # §4.4: relaxation removes clashes completely
    save_result(
        "genome_relaxation_real_batch",
        f"relax_many over {len(structures)} CASP-like top models: "
        f"{batch.models_per_second:.2f} models/sec "
        f"({batch.walltime_seconds:.2f} s wall on "
        f"{len(batch.execution.workers)} workers)",
    )


def test_all_tasks_complete(heavy_atom_sizes):
    tasks = [
        TaskSpec(key=f"s{i}", payload=int(a), size_hint=int(a))
        for i, a in enumerate(heavy_atom_sizes[:500])
    ]
    result = simulate_dataflow(
        tasks,
        make_workers(8, 6),
        lambda t: relax_task_seconds(int(t.payload), 1, "gpu"),
    )
    assert len(result.records) == 500
    assert all(r.ok for r in result.records)
