#!/usr/bin/env python
"""Worker load balance: Fig. 2 as ASCII art.

Simulates the inference dataflow over a heterogeneous target set twice —
with the paper's greedy descending-length submission order and with a
random order — and renders per-worker Gantt lanes.  The sorted run shows
long blue blocks early and a flat right edge (all workers finish within
minutes of one another); the random run shows a ragged tail where a few
workers grind through late-arriving long tasks alone.

Run:  python examples/worker_load_balance.py
"""

import numpy as np

from repro.cluster import inference_task_seconds
from repro.core import get_preset
from repro.dataflow import (
    TaskSpec,
    extract_gantt,
    make_workers,
    render_ascii_gantt,
    simulate_dataflow,
)
from repro.sequences import SequenceUniverse, synthetic_proteome

N_NODES = 4  # 24 workers (the paper used up to 1000 nodes / 6000 workers)
SHOW_WORKERS = 10  # Fig. 2 shows 10 sampled lanes


def main() -> None:
    universe = SequenceUniverse(seed=1)
    proteome = synthetic_proteome("D_vulgaris", universe=universe, seed=1, scale=0.08)
    preset = get_preset("genome")
    tasks = [
        TaskSpec(
            key=f"{r.record_id}/model_{m}",
            payload=r.length,
            size_hint=r.length,
        )
        for r in proteome
        for m in range(5)
    ]
    workers = make_workers(N_NODES, 6)

    def duration(task: TaskSpec) -> float:
        # 3-recycle-equivalent cost; enough for the balancing story.
        return inference_task_seconds(int(task.payload), 3, preset.n_ensembles)

    print(f"{len(tasks)} tasks on {len(workers)} workers\n")
    for label, kwargs in (
        ("greedy descending-length order (the paper's §3.3 step 3c)", {}),
        (
            "random order (baseline)",
            {"sort_descending": False, "rng": np.random.default_rng(0)},
        ),
    ):
        result = simulate_dataflow(tasks, workers, duration, **kwargs)
        lanes = extract_gantt(result.records, max_workers=SHOW_WORKERS)
        print(f"== {label} ==")
        print(render_ascii_gantt(lanes, width=90))
        print(
            f"makespan {result.makespan_seconds / 60:.1f} min, "
            f"finish spread {result.finish_spread_seconds() / 60:.1f} min, "
            f"utilization {result.utilization():.0%}\n"
        )


if __name__ == "__main__":
    main()
