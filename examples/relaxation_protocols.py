#!/usr/bin/env python
"""Relaxation protocol comparison (paper §4.4-4.5, Figs. 3 and 4).

Builds a CASP14-like evaluation set (targets with known "crystal"
natives), relaxes each unrelaxed model with the three methods —
original AlphaFold loop (CPU), optimized single pass on CPU, optimized
single pass on GPU — and reports:

* TM-score / SPECS-score of relaxed vs unrelaxed models (Fig. 3):
  tight correlation, no decreases;
* violation reduction (clashes removed completely, bumps reduced);
* modelled time-to-solution vs heavy-atom count with GPU speedups
  (Fig. 4), including the T1080-like outlier.

Run:  python examples/relaxation_protocols.py
"""

import numpy as np

from repro.cluster import relax_task_seconds
from repro.core import casp_targets
from repro.relax import AlphaFoldRelaxProtocol, SinglePassRelaxProtocol
from repro.structure import specs_score, tm_score


def main(n_targets: int = 10) -> None:
    print(f"== Building {n_targets} CASP14-like targets ==")
    targets = casp_targets(n_targets=n_targets, models_per_target=1, seed=11)
    protocols = {
        "af2_loop": AlphaFoldRelaxProtocol(),
        "ours_cpu": SinglePassRelaxProtocol(device="cpu"),
        "ours_gpu": SinglePassRelaxProtocol(device="gpu"),
    }

    header = (
        f"{'target':>7} {'len':>5} {'atoms':>6} | {'TM pre':>7} "
        + " ".join(f"{name:>9}" for name in protocols)
        + f" | {'t_af2':>7} {'t_cpu':>7} {'t_gpu':>7} {'speedup':>7}"
    )
    print(header)
    print("-" * len(header))
    deltas = {name: [] for name in protocols}
    for target in targets:
        model = target.models[0].structure
        native = target.native
        tm_pre = tm_score(model.ca, native.ca)
        sp_pre = specs_score(model.ca, native.ca)
        row = f"{target.record.record_id:>7} {len(model):>5} {model.n_heavy_atoms:>6} | {tm_pre:7.3f} "
        times = {}
        for name, protocol in protocols.items():
            outcome = protocol.run(model)
            tm_post = tm_score(outcome.structure.ca, native.ca)
            sp_post = specs_score(outcome.structure.ca, native.ca)
            deltas[name].append((tm_post - tm_pre, sp_post - sp_pre))
            times[name] = relax_task_seconds(
                outcome.n_heavy_atoms, outcome.n_minimizations, outcome.device
            )
            row += f" {tm_post:9.3f}"
        speedup = times["af2_loop"] / times["ours_gpu"]
        row += (
            f" | {times['af2_loop']:7.0f} {times['ours_cpu']:7.0f} "
            f"{times['ours_gpu']:7.0f} {speedup:6.1f}x"
        )
        print(row)

    print("\n== Fig. 3 shape check: score changes after relaxation ==")
    for name, pairs in deltas.items():
        arr = np.array(pairs)
        print(
            f"{name:>9}: dTM mean {arr[:, 0].mean():+.4f} "
            f"(min {arr[:, 0].min():+.4f}), "
            f"dSPECS mean {arr[:, 1].mean():+.4f}"
        )
    print("\nExpected: no material decreases in either metric; all three")
    print("methods equivalent in quality; GPU up to ~14x faster, growing")
    print("with system size (the largest target is the T1080-like outlier).")


if __name__ == "__main__":
    main()
