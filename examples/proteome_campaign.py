#!/usr/bin/env python
"""Proteome-scale campaign: the paper's deployment end to end (scaled).

Reproduces the §4.3.1 *S. divinum* campaign shape at a configurable
scale: feature generation on the (simulated) Andes cluster with the
24-replica library layout, five-model inference on (simulated) Summit
with the ``genome`` preset, and single-pass GPU relaxation — reporting
node-hours per stage and the proteome confidence summary.

Run:  python examples/proteome_campaign.py [scale]
      (default scale 0.004 ~ 100 proteins; the paper ran 25,134)
"""

import sys

from repro.core import ProteomePipeline, summarize_proteome
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome

SPECIES = "S_divinum"


def main(scale: float = 0.004) -> None:
    print(f"== {SPECIES} campaign at scale {scale} ==")
    universe = SequenceUniverse(seed=7)
    proteome = synthetic_proteome(SPECIES, universe=universe, seed=7, scale=scale)
    suite = build_suite(universe, [SPECIES], seed=7, scale=scale).reduced()
    factory = NativeFactory(universe)
    print(f"{len(proteome)} targets, mean length {proteome.mean_length():.0f} AA")
    print(f"library suite (reduced): {suite.total_entries} sequences, "
          f"{suite.total_modeled_bytes / 1e9:.0f} GB represented")

    pipeline = ProteomePipeline(
        preset_name="genome",
        feature_nodes=24,
        inference_nodes=16,
        relax_nodes=4,
    )
    result = pipeline.run(proteome, suite, factory)

    scale_up = 1.0 / scale
    fs, inf, rx = result.feature_stage, result.inference_stage, result.relax_stage
    print("\n== Stage costs (simulated; scaled extrapolation in brackets) ==")
    print(f"features : {fs.simulation.walltime_minutes:7.1f} min on "
          f"{fs.n_nodes} Andes nodes = {fs.node_hours:7.1f} node-h "
          f"[~{fs.node_hours * scale_up:6.0f} at full scale; paper: 2000]")
    print(f"inference: {inf.simulation.walltime_minutes:7.1f} min on "
          f"{inf.n_nodes} Summit nodes = {inf.node_hours:7.1f} node-h "
          f"[~{inf.node_hours * scale_up:6.0f} at full scale; paper: 3000]")
    print(f"relax    : {rx.simulation.walltime_minutes:7.1f} min on "
          f"{rx.n_nodes} Summit nodes = {rx.node_hours:7.1f} node-h")

    summary = summarize_proteome(inf.top_models)
    print("\n== Proteome confidence summary (paper §4.3.1 in brackets) ==")
    print(f"targets with mean pLDDT > 70 : {summary.frac_targets_plddt_high:.0%} [57%]")
    print(f"residue coverage pLDDT > 70  : {summary.residue_coverage_plddt_high:.0%} [58%]")
    print(f"residue coverage pLDDT > 90  : {summary.residue_coverage_plddt_ultra:.0%} [36%]")
    print(f"targets with pTMS > 0.6      : {summary.frac_targets_ptms_high:.0%} [53%]")
    print(f"mean recycles of top models  : {summary.mean_recycles:.1f} [12]")

    clean = sum(
        1 for o in rx.outcomes.values() if o.violations_after.n_clashes == 0
    )
    print(f"\nrelaxation: {clean}/{len(rx.outcomes)} structures clash-free")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.004)
