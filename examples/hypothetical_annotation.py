#!/usr/bin/env python
"""Structure-based annotation of hypothetical proteins (paper §4.6).

Takes the unannotated ("hypothetical") subset of a synthetic proteome,
predicts their structures, aligns each prediction against the synthetic
pdb70-like fold library with the TM-score structural aligner, and
reports:

* how many acquire a trusted structural match (TM >= 0.6) — and of
  those, how many sit below 20% / 10% sequence identity, where
  sequence-based annotation has long failed (paper: 239/559, 215, 112);
* novel-fold candidates: ultra-confident predictions (pLDDT > 90 over
  >98% of residues) with no structural match (top TM < 0.4) — the
  signature that led the paper to a novel homocysteine-synthesis enzyme.

Run:  python examples/hypothetical_annotation.py
"""

from repro.analysis import annotate_structures, find_novel_candidates
from repro.core import get_preset
from repro.fold import NativeFactory, default_model_bank
from repro.msa import build_suite, generate_features
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.sequences.proteome import species_family_base
from repro.structure import build_fold_library

SCALE = 0.008
MAX_QUERIES = 20


def main() -> None:
    universe = SequenceUniverse(seed=19)
    proteome = synthetic_proteome(
        "D_vulgaris", universe=universe, seed=19, scale=SCALE
    )
    suite = build_suite(universe, ["D_vulgaris"], seed=19, scale=SCALE)
    hypothetical = proteome.hypothetical()[:MAX_QUERIES]
    print(
        f"proteome sample: {len(proteome)} proteins, "
        f"{len(hypothetical)} hypothetical queries used"
    )

    base = species_family_base("D_vulgaris")
    pool = max(1, int(round(3205 * SCALE) * 0.6))
    library = build_fold_library(universe, list(range(base, base + pool)), seed=19)
    print(f"fold library (pdb70 stand-in): {len(library)} structures")

    factory = NativeFactory(universe)
    bank = default_model_bank(factory)
    config = get_preset("genome").config()
    structures = {}
    for record in hypothetical:
        features = generate_features(record, suite)
        predictions = [m.predict(features, config) for m in bank]
        top = max(predictions, key=lambda p: p.ptms)
        structures[record.record_id] = top.structure

    print("\n== Structural annotation census ==")
    census = annotate_structures(structures, library, max_candidates=30)
    s = census.summary()
    print(f"queries                        : {s['n_queries']}")
    print(f"trusted matches (TM >= 0.6)    : {s['n_annotated']}")
    print(f"  of which seq identity < 20%  : {s['n_below_20pct_identity']}")
    print(f"  of which seq identity < 10%  : {s['n_below_10pct_identity']}")
    print("(paper, 559 queries: 239 matched, 215 below 20%, 112 below 10%)")

    for hit in census.hits[:5]:
        print(
            f"  {hit.record_id}: TM {hit.tm_score:.2f}, "
            f"identity {hit.sequence_identity:.0%} -> {hit.annotation}"
        )

    print("\n== Novel-fold candidates ==")
    candidates = find_novel_candidates(structures, census.best_tm_per_query)
    if not candidates:
        print("none in this sample (the signature is rare by design)")
    for c in candidates:
        print(
            f"  {c.record_id}: {c.frac_residues_ultra_confident:.0%} of "
            f"residues ultra-confident, best library TM only "
            f"{c.best_library_tm:.3f} -> potential new fold/pathway lead"
        )


if __name__ == "__main__":
    main()
