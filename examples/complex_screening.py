#!/usr/bin/env python
"""Protein-complex screening (the AF2Complex direction, paper §5).

The paper closes by pointing at AF2Complex — its optimizations feed a
generalisation of AlphaFold that predicts protein-protein complexes,
"especially relevant to HPC computing due to a quadratic (or higher)
order dependence on the number of protein sequences."

This example runs that screen in miniature: all pairs of a proteome
sample are folded as candidate complexes, ranked by interface score,
and compared against the hidden interactome.  It also prices the
full-proteome screen in Summit node-hours to make the quadratic-cost
point concrete.

Run:  python examples/complex_screening.py
"""

import numpy as np

from repro.cluster import inference_task_seconds
from repro.fold import ComplexPredictor, NativeFactory
from repro.msa import build_suite, generate_features
from repro.sequences import SequenceUniverse, synthetic_proteome

N_CHAINS = 12


def main() -> None:
    universe = SequenceUniverse(seed=41)
    proteome = synthetic_proteome("R_rubrum", universe=universe, seed=41, scale=0.01)
    suite = build_suite(universe, ["R_rubrum"], seed=41, scale=0.01)
    factory = NativeFactory(universe)
    predictor = ComplexPredictor(factory)

    chains = [
        r for r in proteome if r.family_id is not None and r.length < 400
    ][:N_CHAINS]
    features = {r.record_id: generate_features(r, suite) for r in chains}
    print(f"screening {len(chains)} chains -> "
          f"{len(chains) * (len(chains) - 1) // 2} candidate pairs\n")

    results = []
    for i in range(len(chains)):
        for j in range(i + 1, len(chains)):
            a, b = chains[i], chains[j]
            cp = predictor.predict(features[a.record_id], features[b.record_id])
            results.append(cp)
    results.sort(key=lambda c: c.interface_score, reverse=True)

    print(f"{'pair':>42} {'iScore':>7} {'contacts':>9} {'truth':>6}")
    for cp in results[:8]:
        print(
            f"{cp.structure.record_id:>42} {cp.interface_score:7.3f} "
            f"{cp.n_interface_contacts:9d} "
            f"{'YES' if cp.truly_interacting else 'no':>6}"
        )

    scores_true = [c.interface_score for c in results if c.truly_interacting]
    scores_false = [c.interface_score for c in results if not c.truly_interacting]
    if scores_true:
        print(
            f"\nmean iScore: interacting {np.mean(scores_true):.3f} vs "
            f"non-interacting {np.mean(scores_false):.3f}"
        )
    hits_in_top = sum(c.truly_interacting for c in results[: len(scores_true)])
    if scores_true:
        print(
            f"top-{len(scores_true)} precision: "
            f"{hits_in_top}/{len(scores_true)}"
        )

    # The quadratic-cost argument, priced with the calibrated model.
    n = 3205  # D. vulgaris proteome
    mean_task = inference_task_seconds(2 * 328, 6)
    node_hours = (n * (n - 1) / 2) * mean_task / 6 / 3600
    print(
        f"\nfull all-vs-all screen of one bacterial proteome "
        f"({n * (n - 1) // 2:,} pairs): ~{node_hours:,.0f} Summit node-hours"
        f"\n(vs ~400 for the monomer campaign — the quadratic wall the"
        f"\npaper says makes complex prediction an HPC problem)"
    )


if __name__ == "__main__":
    main()
