#!/usr/bin/env python
"""Quickstart: predict, rank and relax structures for a few proteins.

Walks the library's core loop on a small synthetic sample:

1. build a sequence universe, a proteome sample and search libraries,
2. generate input features (MSA search) for each target,
3. run the five-model surrogate predictor with the paper's ``genome``
   preset and pick the top model by pTMS,
4. relax the top model with the optimized single-pass GPU protocol,
5. write the relaxed structure as a PDB file with pLDDT in the
   B-factor column.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.core import get_preset
from repro.fold import NativeFactory, default_model_bank
from repro.msa import build_suite, generate_features
from repro.relax import relax_structure
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.structure import write_pdb

OUT_DIR = Path(__file__).resolve().parent / "output"
N_TARGETS = 6
SCALE = 0.005  # fraction of the full D. vulgaris proteome to generate


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    print("== Building synthetic universe, proteome sample and libraries ==")
    universe = SequenceUniverse(seed=42)
    proteome = synthetic_proteome("D_vulgaris", universe=universe, seed=42, scale=SCALE)
    suite = build_suite(universe, ["D_vulgaris"], seed=42, scale=SCALE)
    print(f"proteome sample: {len(proteome)} sequences, "
          f"mean length {proteome.mean_length():.0f} AA")
    print(f"libraries: {suite.total_entries} sequences "
          f"(representing {suite.total_modeled_bytes / 1e12:.1f} TB)")

    factory = NativeFactory(universe)
    bank = default_model_bank(factory)
    config = get_preset("genome").config()

    print(f"\n== Predicting {N_TARGETS} targets with the 'genome' preset ==")
    header = f"{'target':>22} {'len':>5} {'depth':>5} {'recycles':>8} {'pLDDT':>6} {'pTMS':>6}"
    print(header)
    print("-" * len(header))
    for record in list(proteome)[:N_TARGETS]:
        features = generate_features(record, suite)
        predictions = [model.predict(features, config) for model in bank]
        top = max(predictions, key=lambda p: p.ptms)
        print(
            f"{record.record_id:>22} {record.length:>5d} "
            f"{features.msa_depth:>5d} {top.n_recycles:>8d} "
            f"{top.mean_plddt:>6.1f} {top.ptms:>6.3f}"
        )
        outcome = relax_structure(top.structure, method="gpu")
        path = OUT_DIR / f"{record.record_id}_relaxed.pdb"
        write_pdb(outcome.structure, path)
        print(
            f"{'':>22} relaxed: clashes "
            f"{outcome.violations_before.n_clashes}->"
            f"{outcome.violations_after.n_clashes}, bumps "
            f"{outcome.violations_before.n_bumps}->"
            f"{outcome.violations_after.n_bumps}  -> {path.name}"
        )
    print(f"\nPDB files written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
