"""Annotation and novelty analysis tests (§4.6 in miniature)."""

import numpy as np
import pytest

from repro.analysis import annotate_structures, find_novel_candidates
from repro.fold import NativeFactory, PredictionConfig, SurrogateFoldModel
from repro.msa import generate_features
from repro.sequences.proteome import species_family_base
from repro.structure import build_fold_library


@pytest.fixture(scope="module")
def setup(universe, proteome, suite):
    base = species_family_base("D_vulgaris")
    pool = max(1, int(len(proteome) / 0.98 * 0.6))
    library = build_fold_library(
        universe, list(range(base, base + pool)), seed=3
    )
    factory = NativeFactory(universe)
    model = SurrogateFoldModel(factory, 2)
    cfg = PredictionConfig(max_recycles=8, recycle_tolerance=0.5, adaptive_cap=True)
    structures = {}
    for rec in list(proteome)[:14]:
        feats = generate_features(rec, suite)
        structures[rec.record_id] = model.predict(feats, cfg).structure
    return library, structures, factory



@pytest.fixture(scope="module")
def census(setup):
    """One shared annotation census (the search is the slow part)."""
    library, structures, _ = setup
    return annotate_structures(structures, library, max_candidates=25)

def test_library_deposits_follow_policy(universe, setup):
    library, _, _ = setup
    assert len(library) > 0
    # All annotated, multiplicity>0 families in the pool must deposit;
    # unannotated ones may (structural coverage outruns annotation).
    deposited = {e.family_id for e in library.entries}
    for entry in library.entries:
        assert universe.family(entry.family_id).library_multiplicity > 0
    assert any(universe.family(f).annotated for f in deposited)


def test_annotation_census(setup, census, proteome):
    library, structures, _ = setup
    assert census.n_queries == len(structures)
    assert 0 <= census.n_annotated <= census.n_queries
    # Identity breakdown is nested.
    assert census.n_below_identity(0.10) <= census.n_below_identity(0.20)
    summary = census.summary()
    assert summary["n_annotated"] == census.n_annotated


def test_library_match_tracks_prediction_quality(setup, census, proteome, universe):
    """The §4.6 mechanism: for deposited-family members, the best
    structural match is about as good as the prediction itself — the
    library rep stands in for the hidden native, up to family
    divergence.  (This is what makes match-TM a usable annotation
    signal.)"""
    from repro.structure import tm_score

    library, structures, factory = setup
    deposited = {e.family_id for e in library.entries}
    by_id = {r.record_id: r for r in proteome}
    checked = 0
    for rid, s in structures.items():
        rec = by_id[rid]
        if rec.family_id not in deposited or rec.divergence > 0.3:
            continue
        native = factory.native(rec)
        true_tm = tm_score(s.ca, native.ca)
        best = census.best_tm_per_query[rid]
        assert best >= true_tm - 0.25
        checked += 1
    if checked == 0:
        pytest.skip("no low-divergence deposited-family members in sample")


def test_novelty_requires_confidence_and_no_match(setup, census):
    library, structures, _ = setup
    candidates = find_novel_candidates(structures, census.best_tm_per_query)
    for c in candidates:
        assert c.frac_residues_ultra_confident >= 0.98
        assert c.best_library_tm < 0.40


def test_novelty_detects_planted_candidate(universe, factory):
    """A perfect-confidence orphan structure must be flagged."""
    from repro.sequences import ProteinRecord, random_sequence, rng_for

    rng = rng_for(0, "novelty-test")
    rec = ProteinRecord(
        record_id="planted_orphan",
        encoded=random_sequence(150, rng),
        family_id=None,
        divergence=1.0,
        annotated=False,
    )
    native = factory.native(rec).with_plddt(np.full(150, 97.0))
    candidates = find_novel_candidates(
        {"planted_orphan": native}, {"planted_orphan": 0.30}
    )
    assert len(candidates) == 1
    # And with a strong library match it must NOT be flagged.
    assert not find_novel_candidates(
        {"planted_orphan": native}, {"planted_orphan": 0.8}
    )
