"""Homology search and library tests."""

import numpy as np
import pytest

from repro.msa import (
    build_suite,
    generate_features,
    search_library,
    search_suite,
)
from repro.sequences import random_sequence



class TestLibraries:
    def test_suite_covers_species_families(self, suite, proteome, universe):
        fids = {
            e.family_id for lib in suite.libraries for e in lib.entries
        } - {None}
        member_fids = {r.family_id for r in proteome if r.family_id is not None}
        # Families absent from the libraries must be exactly the ones
        # with zero multiplicity (unsequenced-elsewhere families).
        missing = member_fids - fids
        assert all(
            universe.family(fid).library_multiplicity == 0 for fid in missing
        )
        assert len(member_fids & fids) > 0

    def test_bfd_is_largest(self, suite):
        assert suite.bfd.modeled_bytes == max(
            lib.modeled_bytes for lib in suite.libraries
        )

    def test_reduced_suite_smaller_same_coverage(self, suite):
        reduced = suite.reduced()
        assert len(reduced.bfd) < len(suite.bfd)
        assert reduced.bfd.modeled_bytes < suite.bfd.modeled_bytes
        full_fams = {e.family_id for e in suite.bfd.entries} - {None}
        red_fams = {e.family_id for e in reduced.bfd.entries} - {None}
        assert red_fams == full_fams  # dedup preserves family coverage

    def test_pdb_library_annotated_only(self, suite):
        assert all(e.annotated for e in suite.pdb_seqs.entries)

    def test_deterministic(self, universe):
        s1 = build_suite(universe, ["D_vulgaris"], seed=7, scale=0.02)
        s2 = build_suite(universe, ["D_vulgaris"], seed=7, scale=0.02)
        assert [e.entry_id for e in s1.bfd.entries] == [
            e.entry_id for e in s2.bfd.entries
        ]


class TestSearch:
    def test_family_member_found(self, universe, proteome, suite):
        rec = next(r for r in proteome if r.family_id is not None)
        result = search_suite(rec, suite)
        assert result.msa_depth > 0
        hit_fams = {h.entry.family_id for h in result.hits}
        assert rec.family_id in hit_fams

    def test_orphan_finds_nothing(self, universe, proteome, suite):
        rec = next(r for r in proteome if r.family_id is None)
        result = search_suite(rec, suite)
        # Chance hits only: a handful of marginal matches at most, and
        # essentially no usable MSA signal.
        assert result.msa_depth <= 6
        assert result.effective_depth() < 5.0

    def test_hits_sorted_by_identity(self, proteome, suite):
        rec = max(
            (r for r in proteome if r.family_id is not None),
            key=lambda r: r.length,
        )
        result = search_suite(rec, suite)
        ids = [h.identity for h in result.hits]
        assert ids == sorted(ids, reverse=True)

    def test_short_query_rejected(self, suite):
        from repro.sequences import ProteinRecord, encode

        rec = ProteinRecord(record_id="tiny", encoded=encode("ACD"))
        with pytest.raises(ValueError):
            search_suite(rec, suite)

    def test_io_accounting_positive(self, proteome, suite):
        result = search_suite(proteome[0], suite)
        assert result.n_file_reads > 0
        assert result.bytes_scanned > 0

    def test_empty_library(self, rng):
        from repro.msa.databases import SequenceLibrary

        lib = SequenceLibrary("empty", [], modeled_bytes=0)
        hits, scanned = search_library(random_sequence(100, rng), lib)
        assert hits == [] and scanned == 0

    def test_effective_depth_discounts_redundancy(self, proteome, suite):
        rec = next(r for r in proteome if r.family_id is not None)
        result = search_suite(rec, suite)
        if result.msa_depth:
            assert 0.0 < result.effective_depth() <= result.msa_depth


class TestFeatures:
    def test_bundle_fields(self, proteome, suite):
        rec = proteome[0]
        bundle = generate_features(rec, suite)
        assert bundle.record_id == rec.record_id
        assert bundle.length == rec.length
        assert bundle.msa_depth >= 0
        assert bundle.effective_depth >= 0.0
        assert bundle.n_file_reads > 0

    def test_templates_only_from_pdb(self, proteome, suite):
        for rec in list(proteome)[:10]:
            bundle = generate_features(rec, suite)
            if bundle.has_templates:
                assert bundle.best_template_identity >= 0.3
                assert bundle.best_template_family is not None
                return
        pytest.skip("no template hit in first 10 records of fixture")

    def test_reduced_suite_preserves_effective_depth(self, universe, proteome, suite):
        # §4.1: the reduced dataset yields virtually identical MSA signal.
        reduced = suite.reduced()
        deltas = []
        for rec in list(proteome)[:12]:
            if rec.family_id is None:
                continue
            full_d = generate_features(rec, suite).effective_depth
            red_d = generate_features(rec, reduced).effective_depth
            if full_d > 0:
                deltas.append(abs(red_d - full_d) / full_d)
        assert deltas, "no family members sampled"
        assert float(np.median(deltas)) < 0.35


class TestQueryCodeMemo:
    def test_memoizes_per_k(self, rng):
        from repro.msa import QueryCodeMemo
        from repro.msa.kmer import kmer_codes

        seq = random_sequence(150, rng)
        memo = QueryCodeMemo(seq)
        a = memo.codes_for(5)
        b = memo.codes_for(5)
        assert a is b
        assert memo.n_extractions == 1
        assert np.array_equal(a, np.unique(kmer_codes(seq, 5)))
        memo.codes_for(6)
        assert memo.n_extractions == 2

    def test_search_suite_extracts_codes_once(self, proteome, suite, monkeypatch):
        # Four libraries at one shared k: exactly one kmer_codes +
        # unique pass per query, not one per library.
        import repro.msa.search as search_mod

        created = []
        real = search_mod.QueryCodeMemo

        def tracking(encoded):
            memo = real(encoded)
            created.append(memo)
            return memo

        monkeypatch.setattr(search_mod, "QueryCodeMemo", tracking)
        record = next(iter(proteome))
        search_suite(record, suite)
        assert len(created) == 1
        assert created[0].n_extractions == 1
