"""Library construction and deduplication tests."""

import pytest

from repro.msa import build_library

from repro.msa.databases import LibraryEntry, SequenceLibrary
from repro.sequences import encode



@pytest.fixture(scope="module")
def small_library(universe):
    fids = [universe.family(i).family_id for i in range(40)]
    return build_library(
        universe,
        "testlib",
        fids,
        seed=5,
        members_per_multiplicity=0.5,
        duplicate_rate=1.0,
    )


class TestBuildLibrary:
    def test_clusters_group_duplicates(self, small_library):
        by_cluster = {}
        for e in small_library.entries:
            by_cluster.setdefault(e.cluster_id, []).append(e)
        sizes = [len(v) for v in by_cluster.values()]
        assert max(sizes) > 1  # duplicates exist
        # Duplicates are near-identical to their cluster head.
        for entries in by_cluster.values():
            if len(entries) < 2:
                continue
            head = entries[0].encoded
            for dup in entries[1:]:
                if dup.encoded.size == head.size:
                    assert float((dup.encoded == head).mean()) > 0.95

    def test_zero_multiplicity_families_absent(self, universe, small_library):
        present = {e.family_id for e in small_library.entries} - {None}
        for fid in present:
            assert universe.family(fid).library_multiplicity > 0

    def test_branches_present(self, small_library):
        branches = {e.entry_id.split("_b")[1][0] for e in small_library.entries
                    if "_b" in e.entry_id}
        assert "0" in branches
        assert branches & {"1", "2"}

    def test_deterministic(self, universe):
        fids = [universe.family(i).family_id for i in range(10)]
        a = build_library(universe, "det", fids, seed=2)
        b = build_library(universe, "det", fids, seed=2)
        assert [e.entry_id for e in a.entries] == [e.entry_id for e in b.entries]


class TestDedup:
    def test_dedup_removes_only_duplicates(self, small_library):
        reduced = small_library.deduplicated()
        assert len(reduced) < len(small_library)
        full_clusters = {e.cluster_id for e in small_library.entries}
        red_clusters = {e.cluster_id for e in reduced.entries}
        assert red_clusters == full_clusters  # one rep per cluster survives
        assert len(reduced.entries) == len(red_clusters)

    def test_dedup_scales_bytes(self, small_library):
        reduced = small_library.deduplicated()
        ratio = len(reduced) / len(small_library)
        assert reduced.modeled_bytes == pytest.approx(
            small_library.modeled_bytes * ratio, rel=0.01, abs=1
        )

    def test_dedup_idempotent(self, small_library):
        once = small_library.deduplicated()
        twice = once.deduplicated()
        assert len(once) == len(twice)


class TestIndexLifecycle:
    def test_index_lazy_and_cached(self, universe):
        lib = SequenceLibrary(
            "tiny",
            [
                LibraryEntry("a", encode("ACDEFGHIKLMNPQ"), 1, 0.1, True, "a"),
            ],
            modeled_bytes=10,
        )
        idx1 = lib.index
        assert lib.index is idx1
        assert idx1.n_sequences == 1
