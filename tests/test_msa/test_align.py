"""Sequence alignment tests."""

import numpy as np
import pytest

from repro.msa import global_align, pairwise_identity
from repro.sequences import encode, mutate_sequence, random_sequence


def test_identical_sequences_full_identity(rng):
    seq = random_sequence(120, rng)
    aln = global_align(seq, seq)
    assert aln.identity == pytest.approx(1.0)
    assert aln.n_aligned == 120
    assert (aln.pairs[:, 0] == aln.pairs[:, 1]).all()


def test_empty_rejected():
    with pytest.raises(ValueError):
        global_align(np.empty(0, dtype=np.uint8), encode("ACD"))


def test_positive_gap_rejected(rng):
    seq = random_sequence(10, rng)
    with pytest.raises(ValueError):
        global_align(seq, seq, gap_penalty=1.0)


def test_substitutions_reduce_identity(rng):
    seq = random_sequence(300, rng)
    mut = mutate_sequence(seq, rng, 0.3, indel_rate=0.0)
    identity = pairwise_identity(seq, mut)
    assert 0.6 < identity < 0.85


def test_indels_handled(rng):
    seq = random_sequence(200, rng)
    # Delete a 10-residue block: alignment should recover the rest.
    deleted = np.concatenate([seq[:50], seq[60:]])
    aln = global_align(seq, deleted)
    assert aln.identity > 0.95
    assert aln.n_aligned >= 185


def test_unrelated_low_identity(rng):
    a = random_sequence(200, rng)
    b = random_sequence(200, rng)
    assert pairwise_identity(a, b) < 0.35


def test_alignment_pairs_monotone(rng):
    a = random_sequence(80, rng)
    b = mutate_sequence(a, rng, 0.2, indel_rate=0.05)
    aln = global_align(a, b)
    assert (np.diff(aln.pairs[:, 0]) > 0).all()
    assert (np.diff(aln.pairs[:, 1]) > 0).all()


def test_score_symmetric_identity(rng):
    a = random_sequence(150, rng)
    b = mutate_sequence(a, rng, 0.25, indel_rate=0.0)
    assert pairwise_identity(a, b) == pytest.approx(
        pairwise_identity(b, a), abs=0.03
    )
