"""Sequence alignment tests."""

import numpy as np
import pytest

from repro.msa import global_align, pairwise_identity
from repro.sequences import encode, mutate_sequence, random_sequence


def test_identical_sequences_full_identity(rng):
    seq = random_sequence(120, rng)
    aln = global_align(seq, seq)
    assert aln.identity == pytest.approx(1.0)
    assert aln.n_aligned == 120
    assert (aln.pairs[:, 0] == aln.pairs[:, 1]).all()


def test_empty_rejected():
    with pytest.raises(ValueError):
        global_align(np.empty(0, dtype=np.uint8), encode("ACD"))


def test_positive_gap_rejected(rng):
    seq = random_sequence(10, rng)
    with pytest.raises(ValueError):
        global_align(seq, seq, gap_penalty=1.0)


def test_substitutions_reduce_identity(rng):
    seq = random_sequence(300, rng)
    mut = mutate_sequence(seq, rng, 0.3, indel_rate=0.0)
    identity = pairwise_identity(seq, mut)
    assert 0.6 < identity < 0.85


def test_indels_handled(rng):
    seq = random_sequence(200, rng)
    # Delete a 10-residue block: alignment should recover the rest.
    deleted = np.concatenate([seq[:50], seq[60:]])
    aln = global_align(seq, deleted)
    assert aln.identity > 0.95
    assert aln.n_aligned >= 185


def test_unrelated_low_identity(rng):
    a = random_sequence(200, rng)
    b = random_sequence(200, rng)
    assert pairwise_identity(a, b) < 0.35


def test_alignment_pairs_monotone(rng):
    a = random_sequence(80, rng)
    b = mutate_sequence(a, rng, 0.2, indel_rate=0.05)
    aln = global_align(a, b)
    assert (np.diff(aln.pairs[:, 0]) > 0).all()
    assert (np.diff(aln.pairs[:, 1]) > 0).all()


def test_score_symmetric_identity(rng):
    a = random_sequence(150, rng)
    b = mutate_sequence(a, rng, 0.25, indel_rate=0.0)
    assert pairwise_identity(a, b) == pytest.approx(
        pairwise_identity(b, a), abs=0.03
    )


def _reference_traceback(q, t, gap_penalty):
    """The seed's np.isclose-based traceback, kept as the regression
    oracle for the plain-float-comparison fast path."""
    from repro.msa.align import MATCH_SCORE, MISMATCH_SCORE

    q = np.asarray(q, dtype=np.int16)
    t = np.asarray(t, dtype=np.int16)
    l1, l2 = q.size, t.size
    s = np.where(q[:, None] == t[None, :], MATCH_SCORE, MISMATCH_SCORE)
    g = gap_penalty
    j_idx = np.arange(l2 + 1, dtype=np.float64)
    h = np.zeros((l1 + 1, l2 + 1), dtype=np.float64)
    h[0, :] = g * j_idx
    h[:, 0] = g * np.arange(l1 + 1, dtype=np.float64)
    for i in range(1, l1 + 1):
        m = np.empty(l2 + 1)
        m[0] = h[i, 0]
        m[1:] = np.maximum(h[i - 1, :-1] + s[i - 1], h[i - 1, 1:] + g)
        h[i] = np.maximum.accumulate(m - g * j_idx) + g * j_idx
        h[i, 0] = g * i
    pairs = []
    i, j = l1, l2
    while i > 0 and j > 0:
        here = h[i, j]
        if np.isclose(here, h[i - 1, j - 1] + s[i - 1, j - 1]):
            pairs.append((i - 1, j - 1))
            i -= 1
            j -= 1
        elif np.isclose(here, h[i - 1, j] + g):
            i -= 1
        else:
            j -= 1
    pairs.reverse()
    pair_arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    identity = (
        float((q[pair_arr[:, 0]] == t[pair_arr[:, 1]]).mean())
        if pair_arr.shape[0]
        else 0.0
    )
    return pair_arr, float(h[l1, l2]), identity


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 17, 101])
def test_traceback_matches_isclose_reference(seed):
    """The precomputed-tolerance traceback reproduces the seed's
    np.isclose traceback exactly: same pairs, score, and identity."""
    from repro.msa.align import GAP_PENALTY

    rng = np.random.default_rng(seed)
    a = random_sequence(int(rng.integers(20, 250)), rng)
    b = mutate_sequence(a, rng, float(rng.uniform(0.0, 0.5)), indel_rate=0.05)
    aln = global_align(a, b)
    ref_pairs, ref_score, ref_identity = _reference_traceback(a, b, GAP_PENALTY)
    assert aln.score == ref_score
    assert aln.identity == ref_identity
    assert (aln.pairs == ref_pairs).all()
