"""K-mer index tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msa import KmerIndex, kmer_codes
from repro.sequences import encode, mutate_sequence, random_sequence


def test_kmer_codes_count():
    seq = encode("ACDEFGHIKL")
    codes = kmer_codes(seq, k=5)
    assert codes.size == 6


def test_kmer_codes_short_sequence_empty():
    assert kmer_codes(encode("ACD"), k=5).size == 0


def test_kmer_codes_deterministic_and_positional():
    a = kmer_codes(encode("ACDEFG"), k=3)
    b = kmer_codes(encode("ACDEFG"), k=3)
    assert (a == b).all()
    # shifted window -> different code unless sequence repeats
    assert a[0] != a[1]


def test_identical_kmers_share_codes():
    codes = kmer_codes(encode("ACDACD"), k=3)
    assert codes[0] == codes[3]


class TestKmerIndex:
    def _build(self, seqs):
        idx = KmerIndex()
        for i, s in enumerate(seqs):
            idx.add(i, s)
        idx.freeze()
        return idx

    def test_self_containment_is_one(self, rng):
        seq = random_sequence(200, rng)
        idx = self._build([seq])
        assert idx.containment(seq)[0] == pytest.approx(1.0)

    def test_unrelated_containment_near_zero(self, rng):
        a = random_sequence(300, rng)
        b = random_sequence(300, rng)
        idx = self._build([b])
        assert idx.containment(a)[0] < 0.01

    def test_homolog_containment_tracks_identity(self, rng):
        ancestor = random_sequence(400, rng)
        close = mutate_sequence(ancestor, rng, 0.1, indel_rate=0.0)
        far = mutate_sequence(ancestor, rng, 0.5, indel_rate=0.0)
        idx = self._build([close, far])
        sims = idx.containment(ancestor)
        assert sims[0] > sims[1] > 0.0

    def test_requires_consecutive_ids(self, rng):
        idx = KmerIndex()
        idx.add(0, random_sequence(50, rng))
        with pytest.raises(ValueError):
            idx.add(2, random_sequence(50, rng))

    def test_frozen_rejects_add(self, rng):
        idx = self._build([random_sequence(50, rng)])
        with pytest.raises(RuntimeError):
            idx.add(1, random_sequence(50, rng))

    def test_count_hits_shape(self, rng):
        seqs = [random_sequence(100, rng) for _ in range(5)]
        idx = self._build(seqs)
        hits = idx.count_hits(seqs[0])
        assert hits.shape == (5,)
        assert hits[0] == idx.kmer_count(0)

    def test_count_hits_many_matches_single(self, rng):
        seqs = [random_sequence(int(rng.integers(30, 200)), rng) for _ in range(20)]
        idx = self._build(seqs)
        queries = [mutate_sequence(seqs[i % 20], rng, 0.2) for i in range(7)]
        queries.append(encode("ACD"))  # shorter than k: zero row
        matrix = idx.count_hits_many(queries)
        assert matrix.shape == (len(queries), 20)
        for row, q in zip(matrix, queries):
            assert (row == idx.count_hits(q)).all()
        assert (matrix[-1] == 0).all()

    def test_count_hits_many_precomputed_codes(self, rng):
        seqs = [random_sequence(80, rng) for _ in range(6)]
        idx = self._build(seqs)
        queries = [random_sequence(120, rng) for _ in range(4)]
        codes = [idx.query_codes(q) for q in queries]
        direct = idx.count_hits_many(queries)
        precomp = idx.count_hits_many(codes, precomputed_codes=True)
        assert (direct == precomp).all()

    def test_count_hits_many_empty_inputs(self, rng):
        idx = self._build([random_sequence(60, rng)])
        assert idx.count_hits_many([]).shape == (0, 1)
        empty_idx = KmerIndex()
        empty_idx.freeze()
        assert empty_idx.count_hits(random_sequence(60, rng)).shape == (0,)
        assert empty_idx.count_hits_many([random_sequence(60, rng)]).shape == (1, 0)

    def test_count_hits_codes_ignores_foreign_codes(self, rng):
        idx = self._build([random_sequence(90, rng)])
        junk = np.array([-7, 10**12, 0], dtype=np.int64)
        assert idx.count_hits_codes(junk).shape == (1,)

    def test_empty_index_vocab_positions(self, rng):
        # Regression: the searchsorted fallback used to clamp positions
        # to ``size - 1 == -1`` on an empty vocabulary and fault on the
        # gather.  An empty index has no LUT (k=6 would not either), so
        # this hits the fallback directly.
        idx = KmerIndex()
        idx.freeze()
        codes = np.array([0, 17, 10**9], dtype=np.int64)
        pos, matched = idx._vocab_positions(codes)
        assert pos.size == 0
        assert matched.shape == (3,) and not matched.any()

    def test_empty_index_public_surfaces(self, rng):
        query = random_sequence(80, rng)
        idx = KmerIndex()
        idx.freeze()
        assert idx.count_hits(query).shape == (0,)
        assert idx.count_hits_many([query]).shape == (1, 0)
        assert idx.jaccard(query).shape == (0,)
        assert idx.containment(query).shape == (0,)

    def test_pickle_roundtrip(self, rng):
        import pickle

        seqs = [random_sequence(100, rng) for _ in range(6)]
        idx = self._build(seqs)
        clone = pickle.loads(pickle.dumps(idx))
        query = mutate_sequence(seqs[2], rng, 0.2)
        assert (clone.count_hits(query) == idx.count_hits(query)).all()
        assert (clone.containment(query) == idx.containment(query)).all()
        # The dense LUT is derived state: dropped from the pickle,
        # rebuilt on arrival.
        assert (clone._lut is None) == (idx._lut is None)
        if idx._lut is not None:
            assert (clone._lut == idx._lut).all()

    def test_pickle_freezes_pending_sequences(self, rng):
        import pickle

        seqs = [random_sequence(60, rng) for _ in range(3)]
        idx = KmerIndex()
        for i, s in enumerate(seqs):
            idx.add(i, s)  # not frozen yet
        clone = pickle.loads(pickle.dumps(idx))
        assert clone.n_sequences == 3
        assert clone.containment(seqs[1])[1] == pytest.approx(1.0)

    def test_pickle_empty_index(self, rng):
        import pickle

        clone = pickle.loads(pickle.dumps(KmerIndex()))
        assert clone.n_sequences == 0
        assert clone.count_hits(random_sequence(40, rng)).shape == (0,)

    @given(rate=st.floats(0.0, 0.6), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_containment_inverts_to_identity(self, rate, seed):
        rng = np.random.default_rng(seed)
        ancestor = random_sequence(600, rng)
        mutant = mutate_sequence(ancestor, rng, rate, indel_rate=0.0)
        idx = KmerIndex()
        idx.add(0, mutant)
        idx.freeze()
        containment = float(idx.containment(ancestor)[0])
        estimated = containment ** (1 / 5) if containment > 0 else 0.0
        true_identity = float((ancestor == mutant).mean())
        if true_identity > 0.5:
            assert estimated == pytest.approx(true_identity, abs=0.12)


def _dict_count_hits(library, query, k):
    """The seed's dict-of-lists implementation, as the reference oracle."""
    postings: dict[int, list[int]] = {}
    for seq_id, seq in enumerate(library):
        for code in np.unique(kmer_codes(seq, k)).tolist():
            postings.setdefault(code, []).append(seq_id)
    counts = np.zeros(len(library), dtype=np.int64)
    for code in np.unique(kmer_codes(query, k)).tolist():
        for seq_id in postings.get(code, ()):
            counts[seq_id] += 1
    return counts


# k=5 exercises the dense lookup-table path, k=6 the searchsorted
# fallback (span > _LUT_MAX_SPAN).
@given(
    seed=st.integers(0, 10_000),
    n_seqs=st.integers(1, 12),
    k=st.sampled_from([5, 6]),
)
@settings(max_examples=25, deadline=None)
def test_csr_count_hits_matches_dict_reference(seed, n_seqs, k):
    rng = np.random.default_rng(seed)
    library = [
        random_sequence(int(rng.integers(3, 120)), rng) for _ in range(n_seqs)
    ]
    queries = [
        mutate_sequence(library[int(rng.integers(0, n_seqs))], rng, 0.3),
        random_sequence(int(rng.integers(3, 120)), rng),
    ]
    idx = KmerIndex(k=k)
    for i, seq in enumerate(library):
        idx.add(i, seq)
    idx.freeze()
    expected = [_dict_count_hits(library, q, k) for q in queries]
    for q, ref in zip(queries, expected):
        assert (idx.count_hits(q) == ref).all()
    matrix = idx.count_hits_many(queries)
    for row, ref in zip(matrix, expected):
        assert (row == ref).all()
