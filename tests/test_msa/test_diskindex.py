"""Sharded on-disk k-mer index: bit-identity, pickling, quarantine."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msa import (
    DiskKmerIndex,
    KmerIndex,
    attach_suite_index,
    build_disk_index,
    ensure_disk_index,
)
from repro.msa.diskindex import (
    DEFAULT_SHARDS,
    IndexCorruptError,
    shard_boundaries,
)
from repro.sequences import mutate_sequence, random_sequence
from repro.sequences.alphabet import ALPHABET_SIZE
from repro.telemetry.metrics import MetricsRegistry, use_metrics


def _build_mem(seqs, k=5):
    idx = KmerIndex(k=k)
    for i, s in enumerate(seqs):
        idx.add(i, s)
    idx.freeze()
    return idx


def _build_disk(tmp_path, seqs, k=5, n_shards=DEFAULT_SHARDS, name="lib"):
    mem = _build_mem(seqs, k=k)
    out = build_disk_index(
        mem,
        tmp_path / f"{name}.artifact",
        library_name=name,
        fingerprint="f" * 64,
        n_shards=n_shards,
    )
    return mem, DiskKmerIndex.open(out)


class TestShardBoundaries:
    def test_shape_and_monotonicity(self, rng):
        idx = _build_mem([random_sequence(200, rng) for _ in range(10)])
        for n in (1, 2, 4, 7):
            b = shard_boundaries(idx, n)
            assert b.size == n + 1
            assert b[0] == 0 and b[-1] == ALPHABET_SIZE**idx.k
            assert (np.diff(b) > 0).all()

    def test_empty_vocabulary_falls_back_to_even_grid(self):
        idx = KmerIndex()
        idx.freeze()
        b = shard_boundaries(idx, 4)
        assert b.size == 5
        assert (np.diff(b) > 0).all()

    def test_more_shards_than_span_clamps(self):
        idx = KmerIndex(k=1)
        idx.freeze()
        b = shard_boundaries(idx, 10_000)
        assert b.size <= ALPHABET_SIZE + 1


class TestBitIdentity:
    def test_matches_memory_index(self, rng, tmp_path):
        seqs = [random_sequence(int(rng.integers(30, 200)), rng) for _ in range(20)]
        mem, disk = _build_disk(tmp_path, seqs)
        queries = [mutate_sequence(seqs[i % 20], rng, 0.2) for i in range(8)]
        queries.append(random_sequence(150, rng))
        assert (disk.count_hits_many(queries) == mem.count_hits_many(queries)).all()
        q = queries[0]
        assert (disk.count_hits(q) == mem.count_hits(q)).all()
        assert (disk.jaccard(q) == mem.jaccard(q)).all()
        assert (disk.containment(q) == mem.containment(q)).all()

    def test_shard_edge_codes(self, rng, tmp_path):
        # Synthetic code batches sitting exactly on every boundary value
        # (and one before/after each): routing must place each code in
        # exactly one shard, so counts still match the monolith.
        seqs = [random_sequence(120, rng) for _ in range(8)]
        mem, disk = _build_disk(tmp_path, seqs, n_shards=5)
        edges = disk.boundaries
        probe = np.unique(
            np.clip(
                np.concatenate([edges - 1, edges, edges + 1]),
                0,
                int(edges[-1]) - 1,
            )
        )
        assert (disk.count_hits_codes(probe) == mem.count_hits_codes(probe)).all()

    def test_empty_shards(self, rng, tmp_path):
        # One short sequence yields a tiny, concentrated vocabulary; the
        # even-grid fallback then produces shards that own no codes.
        seqs = [random_sequence(12, rng)]
        mem, disk = _build_disk(tmp_path, seqs, n_shards=8)
        assert any(s.codes.size == 0 for s in disk._shards)
        q = random_sequence(80, rng)
        assert (disk.count_hits(q) == mem.count_hits(q)).all()
        assert (disk.count_hits(seqs[0]) == mem.count_hits(seqs[0])).all()

    def test_empty_vocabulary_index(self, rng, tmp_path):
        # All sequences shorter than k: no k-mers anywhere.
        seqs = [random_sequence(3, rng) for _ in range(4)]
        mem, disk = _build_disk(tmp_path, seqs)
        q = random_sequence(60, rng)
        assert (disk.count_hits(q) == 0).all()
        assert (disk.count_hits(q) == mem.count_hits(q)).all()
        assert disk.count_hits_many([q, q]).shape == (2, 4)

    def test_zero_sequence_index(self, rng, tmp_path):
        mem, disk = _build_disk(tmp_path, [])
        q = random_sequence(60, rng)
        assert disk.count_hits(q).shape == (0,)
        assert disk.count_hits_many([q]).shape == (1, 0)

    def test_k6_searchsorted_fallback(self, rng, tmp_path):
        # k=6 span exceeds _LUT_MAX_SPAN: shards carry no LUT and route
        # through the binary-search path.
        seqs = [random_sequence(100, rng) for _ in range(6)]
        mem, disk = _build_disk(tmp_path, seqs, k=6)
        assert all(s.lut is None for s in disk._shards)
        queries = [mutate_sequence(seqs[i], rng, 0.3) for i in range(6)]
        assert (disk.count_hits_many(queries) == mem.count_hits_many(queries)).all()

    @given(
        seed=st.integers(0, 10_000),
        n_seqs=st.integers(0, 10),
        n_shards=st.integers(1, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_libraries_and_shard_counts(
        self, seed, n_seqs, n_shards, tmp_path_factory
    ):
        # The acceptance property: for random libraries and shard
        # counts, the sharded mmap index reproduces the in-memory CSR
        # results bit-for-bit.  k=3 keeps artifact builds fast.
        rng = np.random.default_rng(seed)
        tmp = tmp_path_factory.mktemp("prop")
        seqs = [
            random_sequence(int(rng.integers(2, 80)), rng)
            for _ in range(n_seqs)
        ]
        mem, disk = _build_disk(
            tmp, seqs, k=3, n_shards=n_shards, name=f"lib{seed}"
        )
        queries = [
            mutate_sequence(seqs[int(rng.integers(0, n_seqs))], rng, 0.3)
            if n_seqs
            else random_sequence(40, rng),
            random_sequence(int(rng.integers(2, 80)), rng),
        ]
        assert (
            disk.count_hits_many(queries) == mem.count_hits_many(queries)
        ).all()


class TestPickle:
    def test_ships_path_not_postings(self, rng, tmp_path):
        seqs = [random_sequence(300, rng) for _ in range(40)]
        _, disk = _build_disk(tmp_path, seqs)
        blob = pickle.dumps(disk)
        # The payload is a manifest path, so it must be orders of
        # magnitude smaller than the artifact it re-attaches to.
        assert len(blob) < 512
        assert disk.nbytes > 10 * len(blob)

    def test_roundtrip_reattaches_and_matches(self, rng, tmp_path):
        seqs = [random_sequence(100, rng) for _ in range(10)]
        _, disk = _build_disk(tmp_path, seqs)
        with use_metrics(MetricsRegistry()) as registry:
            clone = pickle.loads(pickle.dumps(disk))
            assert registry.counter_values()["msa.index.attach"] == 1.0
            assert registry.counter_values().get("msa.index.rebuild", 0) == 0
        q = mutate_sequence(seqs[3], rng, 0.2)
        assert (clone.count_hits(q) == disk.count_hits(q)).all()
        assert clone.path == disk.path
        assert clone.fingerprint == disk.fingerprint


class TestArtifactLifecycle:
    def test_build_refuses_existing_dir(self, rng, tmp_path):
        seqs = [random_sequence(50, rng)]
        mem = _build_mem(seqs)
        out = tmp_path / "a"
        build_disk_index(mem, out, library_name="a", fingerprint="x" * 64)
        with pytest.raises(FileExistsError):
            build_disk_index(mem, out, library_name="a", fingerprint="x" * 64)

    def test_open_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text('{"schema": "nope/9"}')
        with pytest.raises(IndexCorruptError):
            DiskKmerIndex.open(bad)

    def test_verify_catches_flipped_bytes(self, rng, tmp_path):
        seqs = [random_sequence(100, rng) for _ in range(5)]
        _, disk = _build_disk(tmp_path, seqs)
        ids_file = next(disk.path.glob("shard*.ids.npy"))
        raw = bytearray(ids_file.read_bytes())
        raw[-1] ^= 0xFF
        ids_file.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptError):
            DiskKmerIndex.open(disk.path, verify=True)
        # Structural open alone does not hash, so it still succeeds.
        DiskKmerIndex.open(disk.path, verify=False)


class TestEnsureDiskIndex:
    def test_builds_then_reopens_without_rebuild(self, suite, tmp_path):
        lib = suite.libraries[0]
        with use_metrics(MetricsRegistry()) as registry:
            first = ensure_disk_index(lib, tmp_path)
            built = registry.counter_values().get("msa.index.rebuild", 0)
        assert first.fingerprint == lib.fingerprint()
        # Second campaign: artifact exists and verifies — the happy path
        # must not construct any in-memory index.
        with use_metrics(MetricsRegistry()) as registry:
            again = ensure_disk_index(lib, tmp_path)
            values = registry.counter_values()
        assert built >= 0  # first run may reuse the suite's lazy index
        assert values.get("msa.index.rebuild", 0) == 0
        assert values["msa.index.attach"] == 1.0
        assert again.path == first.path

    def test_quarantines_and_rebuilds_corrupt_artifact(self, rng, tmp_path):
        from repro.msa.databases import LibraryEntry, SequenceLibrary

        entries = [
            LibraryEntry(
                entry_id=f"e{i}",
                encoded=random_sequence(80, rng),
                family_id=None,
                divergence=0.0,
                annotated=False,
            )
            for i in range(6)
        ]
        lib = SequenceLibrary("qlib", entries, modeled_bytes=1000)
        disk = ensure_disk_index(lib, tmp_path)
        reference = disk.count_hits_many([e.encoded for e in entries])
        # Corrupt one shard file in place.
        victim = next(disk.path.glob("shard*.ids.npy"))
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with use_metrics(MetricsRegistry()) as registry:
            rebuilt = ensure_disk_index(lib, tmp_path)
            corrupt = registry.counter_values()["msa.index.corrupt"]
        assert corrupt == 1.0
        quarantined = list(tmp_path.glob("*.corrupt0"))
        assert len(quarantined) == 1
        assert rebuilt.path.exists()
        assert (
            rebuilt.count_hits_many([e.encoded for e in entries]) == reference
        ).all()

    def test_fingerprint_mismatch_quarantines(self, rng, tmp_path):
        from repro.msa.databases import LibraryEntry, SequenceLibrary

        def make(seed):
            r = np.random.default_rng(seed)
            entries = [
                LibraryEntry(
                    entry_id=f"e{i}",
                    encoded=random_sequence(60, r),
                    family_id=None,
                    divergence=0.0,
                    annotated=False,
                )
                for i in range(3)
            ]
            return SequenceLibrary("qlib", entries, modeled_bytes=1000)

        a, b = make(1), make(2)
        disk_a = ensure_disk_index(a, tmp_path)
        # Force b's artifact dir to collide with a's stale content.
        stale = tmp_path / f"qlib.{b.fingerprint()[:12]}"
        disk_a.path.rename(stale)
        with use_metrics(MetricsRegistry()) as registry:
            disk_b = ensure_disk_index(b, tmp_path)
            assert registry.counter_values()["msa.index.corrupt"] == 1.0
        assert disk_b.fingerprint == b.fingerprint()


class TestSuiteIntegration:
    def test_attach_suite_index(self, suite, tmp_path):
        attached = attach_suite_index(suite, tmp_path)
        assert len(attached) == len(suite.libraries)
        for lib, disk in zip(suite.libraries, attached):
            assert lib.index is disk
            assert isinstance(lib.index, DiskKmerIndex)
            assert disk.fingerprint == lib.fingerprint()
        # Reset the suite's libraries back to lazy in-memory indexes so
        # the session-scoped fixture is unchanged for other tests.
        for lib in suite.libraries:
            lib._index = None

    def test_fingerprint_does_not_build_index(self, rng):
        from repro.msa.databases import LibraryEntry, SequenceLibrary

        entries = [
            LibraryEntry(
                entry_id="e0",
                encoded=random_sequence(50, rng),
                family_id=None,
                divergence=0.0,
                annotated=False,
            )
        ]
        lib = SequenceLibrary("fp", entries, modeled_bytes=10)
        lib.fingerprint()
        assert lib._index is None

    def test_attach_index_rejects_wrong_size(self, rng, tmp_path):
        from repro.msa.databases import LibraryEntry, SequenceLibrary

        entries = [
            LibraryEntry(
                entry_id=f"e{i}",
                encoded=random_sequence(50, rng),
                family_id=None,
                divergence=0.0,
                annotated=False,
            )
            for i in range(2)
        ]
        lib = SequenceLibrary("sz", entries, modeled_bytes=10)
        _, foreign = _build_disk(
            tmp_path, [random_sequence(50, rng) for _ in range(5)]
        )
        with pytest.raises(ValueError):
            lib.attach_index(foreign)

    def test_attach_index_rejects_wrong_fingerprint(self, rng, tmp_path):
        from repro.msa.databases import LibraryEntry, SequenceLibrary

        entries = [
            LibraryEntry(
                entry_id=f"e{i}",
                encoded=random_sequence(50, rng),
                family_id=None,
                divergence=0.0,
                annotated=False,
            )
            for i in range(2)
        ]
        lib = SequenceLibrary("fpz", entries, modeled_bytes=10)
        _, foreign = _build_disk(
            tmp_path, [random_sequence(50, rng) for _ in range(2)]
        )
        assert foreign.n_sequences == len(entries)
        with pytest.raises(ValueError):
            lib.attach_index(foreign)  # fingerprint "fff..." != lib's
