"""Shared fixtures: one small consistent universe/proteome/suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.sequences import SequenceUniverse, synthetic_proteome

#: Scale used for the shared fixtures: keeps the suite small enough for
#: unit tests while exercising real search/predict paths.
FIXTURE_SCALE = 0.02


@pytest.fixture(scope="session")
def universe() -> SequenceUniverse:
    return SequenceUniverse(seed=7)


@pytest.fixture(scope="session")
def proteome(universe):
    return synthetic_proteome(
        "D_vulgaris", universe=universe, seed=7, scale=FIXTURE_SCALE
    )


@pytest.fixture(scope="session")
def suite(universe):
    return build_suite(universe, ["D_vulgaris"], seed=7, scale=FIXTURE_SCALE)


@pytest.fixture(scope="session")
def factory(universe) -> NativeFactory:
    return NativeFactory(universe)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
