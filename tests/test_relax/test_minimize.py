"""Minimiser and MM-system preparation tests."""

import numpy as np
import pytest

from repro.relax import minimize_system, prepare_system
from repro.relax.forcefield import ForceField


@pytest.fixture()
def noisy_structure(factory, proteome):
    rec = min(proteome, key=lambda r: r.length)
    native = factory.native(rec)
    rng = np.random.default_rng(8)
    return native.with_coordinates(
        native.ca + rng.normal(0, 1.0, native.ca.shape)
    )


class TestPrepareSystem:
    def test_particle_layout(self, noisy_structure):
        system = prepare_system(noisy_structure)
        n = len(noisy_structure)
        assert system.particles.shape == (2 * n, 3)
        np.testing.assert_array_equal(system.ca, noisy_structure.ca)
        assert system.n_heavy_atoms > 4 * n
        assert system.n_hydrogens > 0

    def test_reference_is_snapshot(self, noisy_structure):
        system = prepare_system(noisy_structure)
        np.testing.assert_array_equal(system.reference, system.particles)
        moved = system.with_particles(system.particles + 1.0)
        np.testing.assert_array_equal(moved.reference, system.reference)

    def test_cb_noise_reproducible(self, noisy_structure):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        a = prepare_system(noisy_structure, rng=rng1)
        b = prepare_system(noisy_structure, rng=rng2)
        np.testing.assert_array_equal(a.particles, b.particles)

    def test_to_structure_preserves_metadata(self, noisy_structure):
        system = prepare_system(noisy_structure.with_plddt(np.full(len(noisy_structure), 80.0)))
        out = system.to_structure(model_name="relaxed")
        assert out.model_name == "relaxed"
        assert out.plddt is not None


class TestMinimize:
    def test_energy_decreases_to_convergence(self, noisy_structure):
        system = prepare_system(noisy_structure)
        result = minimize_system(system)
        assert result.final_energy < result.initial_energy
        assert result.converged
        assert result.n_rounds >= 1

    def test_reminimisation_changes_little(self, noisy_structure):
        system = prepare_system(noisy_structure)
        once = minimize_system(system)
        twice = minimize_system(once.system.with_particles(once.system.particles))
        # Re-minimising a minimised system recovers a tiny fraction of
        # the original drop and barely moves the coordinates — the
        # mechanism behind the paper's "extra AF2 passes are
        # unnecessary" finding.
        assert twice.energy_drop < 0.02 * once.energy_drop
        disp = np.linalg.norm(
            twice.system.particles - once.system.particles, axis=1
        )
        assert np.median(disp) < 0.2

    def test_custom_tolerance(self, noisy_structure):
        system = prepare_system(noisy_structure)
        tight = minimize_system(system, energy_tolerance=0.01, max_rounds=50)
        loose = minimize_system(system, energy_tolerance=100.0)
        assert tight.final_energy <= loose.final_energy + 1e-6
        assert tight.n_steps >= loose.n_steps

    def test_gradient_consistency_across_rounds(self, noisy_structure):
        # The frozen CB frame is refreshed each round; energies must be
        # comparable across the rebuild (no jumps upward).
        system = prepare_system(noisy_structure)
        result = minimize_system(system)
        ff = ForceField(result.system)
        final_e = ff.energy(result.system.particles)
        assert final_e <= result.initial_energy
