"""Protocol-level relaxation tests: the paper's §4.4 claims in miniature."""

import numpy as np
import pytest

from repro.fold import NativeFactory, PredictionConfig, SurrogateFoldModel
from repro.msa import generate_features
from repro.relax import (
    AlphaFoldRelaxProtocol,
    SinglePassRelaxProtocol,
    minimize_system,
    prepare_system,
    relax_structure,
)
from repro.structure import specs_score, tm_score


@pytest.fixture(scope="module")
def predictions(universe, proteome, suite):
    """A handful of unrelaxed model structures plus their natives."""
    factory = NativeFactory(universe)
    model = SurrogateFoldModel(factory, 2)
    cfg = PredictionConfig(max_recycles=3)
    out = []
    for rec in list(proteome)[:6]:
        features = generate_features(rec, suite)
        pred = model.predict(features, cfg)
        out.append((pred.structure, factory.native(rec)))
    return out


def test_minimize_converges(predictions):
    structure, _ = predictions[0]
    result = minimize_system(prepare_system(structure))
    assert result.converged
    assert result.final_energy <= result.initial_energy
    assert result.n_steps > 0


def test_single_pass_removes_all_clashes(predictions):
    for structure, _ in predictions:
        outcome = SinglePassRelaxProtocol(device="gpu").run(structure)
        assert outcome.violations_after.n_clashes == 0
        assert outcome.n_minimizations == 1


def test_relaxation_reduces_bumps(predictions):
    before = after = 0
    for structure, _ in predictions:
        outcome = SinglePassRelaxProtocol().run(structure)
        before += outcome.violations_before.n_bumps
        after += outcome.violations_after.n_bumps
    assert after < before


def test_tm_score_never_decreases_materially(predictions):
    for structure, native in predictions:
        outcome = relax_structure(structure, "gpu")
        tm_before = tm_score(structure.ca, native.ca)
        tm_after = tm_score(outcome.structure.ca, native.ca)
        assert tm_after >= tm_before - 0.01


def test_specs_preserved(predictions):
    for structure, native in predictions:
        outcome = relax_structure(structure, "cpu")
        s_before = specs_score(structure.ca, native.ca)
        s_after = specs_score(outcome.structure.ca, native.ca)
        assert s_after >= s_before - 0.02


def test_af2_protocol_equivalent_quality(predictions):
    # The paper's central §4.4 claim: the AF2 loop and the single pass
    # recover equivalent model quality.
    structure, native = predictions[1]
    ours = SinglePassRelaxProtocol().run(structure)
    af2 = AlphaFoldRelaxProtocol().run(structure)
    assert af2.violations_after.n_clashes == 0
    tm_ours = tm_score(ours.structure.ca, native.ca)
    tm_af2 = tm_score(af2.structure.ca, native.ca)
    assert tm_af2 == pytest.approx(tm_ours, abs=0.02)


def test_af2_protocol_costs_at_least_one_pass(predictions):
    structure, _ = predictions[2]
    af2 = AlphaFoldRelaxProtocol().run(structure)
    ours = SinglePassRelaxProtocol().run(structure)
    assert af2.n_minimizations >= ours.n_minimizations
    assert af2.total_steps >= ours.total_steps


def test_outcome_bookkeeping(predictions):
    structure, _ = predictions[0]
    outcome = relax_structure(structure, "gpu")
    assert outcome.device == "gpu"
    assert outcome.n_heavy_atoms > len(structure) * 4
    assert outcome.n_hydrogens > 0
    assert outcome.structure.record_id == structure.record_id
    # pLDDT metadata must survive relaxation (it goes into the PDB).
    assert outcome.structure.plddt is not None


def test_relax_structure_dispatch_validates():
    with pytest.raises(ValueError):
        relax_structure(None, "tpu")


def test_coordinates_move_only_slightly(predictions):
    # Restraints keep the relaxed model near the prediction: small
    # perturbations only (paper: "only small perturbations ... desired").
    structure, _ = predictions[3]
    outcome = relax_structure(structure, "gpu")
    disp = np.linalg.norm(outcome.structure.ca - structure.ca, axis=1)
    assert np.median(disp) < 1.0
    assert disp.max() < 5.0
