"""Fused force-field kernel vs the reference implementation (hypothesis).

Two invariants the fast path must never lose:

* **reference equivalence** — energies and gradients match
  :class:`ReferenceForceField` at ``rtol <= 1e-9``, at the build point
  and anywhere inside the Verlet contract (every particle within half
  the 0.5 A skin of the build coordinates);
* **neighbour superset** — the pruned Verlet list still contains every
  pair that is actually inside its repulsion radius, for any
  coordinates within the contract, so reusing the list cannot miss an
  active contact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relax import minimize_system, prepare_system
from repro.relax.forcefield import (
    _CA_REPULSION_RADIUS,
    _CB_REPULSION_RADIUS,
    NEIGHBOR_SKIN,
    ForceField,
    ReferenceForceField,
)
from repro.structure.protein import Structure


def _random_system(n_residues: int, seed: int):
    """A random compact-ish chain with CA spacing ~3.8 A plus noise."""
    rng = np.random.default_rng(seed)
    steps = rng.normal(size=(n_residues, 3))
    steps /= np.linalg.norm(steps, axis=1, keepdims=True) + 1e-12
    ca = np.cumsum(steps * 3.8, axis=0)
    ca += rng.normal(0.0, 0.7, size=ca.shape)  # wrinkles -> some contacts
    structure = Structure(
        record_id=f"prop-{seed}",
        encoded=np.zeros(n_residues, dtype=np.int8),
        ca=ca,
    )
    return prepare_system(structure, rng=rng)


def _contract_perturbation(rng, shape, max_step: float) -> np.ndarray:
    """Per-particle displacements with Euclidean norm <= max_step."""
    delta = rng.normal(0.0, max_step / 2.0, size=shape)
    norms = np.linalg.norm(delta, axis=1, keepdims=True)
    return delta * np.minimum(1.0, max_step / np.maximum(norms, 1e-12))


@settings(max_examples=25, deadline=None)
@given(
    n_residues=st.integers(min_value=2, max_value=48),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_fast_matches_reference_within_verlet_contract(n_residues, seed):
    system = _random_system(n_residues, seed)
    fast = ForceField(system)
    ref = ReferenceForceField(system)
    rng = np.random.default_rng(seed + 1)
    # Build point plus two perturbed points inside the skin contract.
    points = [system.particles]
    for _ in range(2):
        delta = _contract_perturbation(
            rng, system.particles.shape, NEIGHBOR_SKIN / 2.0 * 0.96
        )
        points.append(system.particles + delta)
    for x in points:
        e_fast, g_fast = fast.energy_and_gradient(x)
        e_ref, g_ref = ref.energy_and_gradient(x)
        assert e_fast == pytest.approx(e_ref, rel=1e-9, abs=1e-9)
        np.testing.assert_allclose(g_fast, g_ref, rtol=1e-9, atol=1e-9)


def _eligible_radius(i: int, j: int, n: int) -> float | None:
    """Repulsion radius for particle pair (i, j), None if excluded."""
    both_ca = i < n and j < n
    res_i = i if i < n else i - n
    res_j = j if j < n else j - n
    sep = abs(res_j - res_i)
    if both_ca:
        return _CA_REPULSION_RADIUS if sep >= 3 else None
    return _CB_REPULSION_RADIUS if sep >= 2 else None


@settings(max_examples=20, deadline=None)
@given(
    n_residues=st.integers(min_value=2, max_value=32),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_reused_list_is_superset_of_active_pairs(n_residues, seed):
    system = _random_system(n_residues, seed)
    ff = ForceField(system)
    rng = np.random.default_rng(seed + 2)
    delta = _contract_perturbation(
        rng, system.particles.shape, NEIGHBOR_SKIN / 2.0 * 0.96
    )
    x = system.particles + delta
    # Moving within the contract must not trigger a rebuild...
    assert ff.ensure_neighbors(x) is False
    listed = {tuple(p) for p in ff._pairs}
    # ...yet every pair actually inside its radius must be listed.
    n = system.n_residues
    n_particles = x.shape[0]
    for i in range(n_particles):
        for j in range(i + 1, n_particles):
            radius = _eligible_radius(i, j, n)
            if radius is None:
                continue
            if np.linalg.norm(x[j] - x[i]) < radius:
                assert (i, j) in listed, (i, j)


def test_ensure_neighbors_rebuilds_when_skin_spent():
    system = _random_system(12, 5)
    ff = ForceField(system)
    assert ff.n_rebuilds == 1
    x = system.particles.copy()
    assert ff.ensure_neighbors(x) is False  # zero displacement
    assert ff.n_reuses == 1
    x[3] += np.array([NEIGHBOR_SKIN, 0.0, 0.0])  # one particle > skin/2
    assert ff.ensure_neighbors(x) is True
    assert ff.n_rebuilds == 2


def test_minimize_reports_verlet_counters():
    system = _random_system(30, 9)
    result = minimize_system(system)
    assert result.n_neighbor_rebuilds >= 1
    # Construction builds once; every round either rebuilds or reuses.
    assert (
        result.n_neighbor_rebuilds + result.n_neighbor_reuses
        == result.n_rounds + 1
    )


def test_gradient_buffer_is_not_aliased():
    """Two evaluations must not clobber each other's gradients."""
    system = _random_system(10, 3)
    ff = ForceField(system)
    x1 = system.particles
    x2 = system.particles + 0.05
    _, g1 = ff.energy_and_gradient(x1)
    g1_snapshot = g1.copy()
    _, g2 = ff.energy_and_gradient(x2)
    assert g2 is not g1
    np.testing.assert_array_equal(g1, g1_snapshot)
