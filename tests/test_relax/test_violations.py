"""Tests for clash/bump detection."""

import numpy as np
import pytest

from repro.relax import ViolationReport, count_violations, is_clashed, violating_pairs
from repro.structure import Structure


def _line_chain(n, spacing=3.8):
    coords = np.zeros((n, 3))
    coords[:, 0] = np.arange(n) * spacing
    return coords


def test_straight_chain_clean():
    report = count_violations(_line_chain(50))
    assert report == ViolationReport(0, 0)
    assert report.clean


def test_single_bump_detected():
    coords = _line_chain(10)
    coords[9] = coords[0] + np.array([0.0, 3.0, 0.0])  # 3.0 A from residue 0
    report = count_violations(coords)
    assert report.n_bumps == 1
    assert report.n_clashes == 0


def test_single_clash_detected():
    coords = _line_chain(10)
    coords[9] = coords[0] + np.array([0.0, 1.0, 0.0])
    report = count_violations(coords)
    assert report.n_clashes == 1
    # clashes are tallied separately from bumps
    assert report.n_bumps == 0


def test_adjacent_residues_excluded():
    # Consecutive and i+2 residues can be close without violating.
    coords = _line_chain(5, spacing=3.0)
    assert count_violations(coords) == ViolationReport(0, 0)


def test_min_separation_boundary():
    # |i-j| == 3 counts; |i-j| == 2 does not.
    coords = _line_chain(6, spacing=100.0)
    coords[3] = coords[0] + np.array([0.0, 2.0, 0.0])
    assert count_violations(coords).n_bumps + count_violations(coords).n_clashes == 1
    coords2 = _line_chain(6, spacing=100.0)
    coords2[2] = coords2[0] + np.array([0.0, 2.0, 0.0])
    assert count_violations(coords2) == ViolationReport(0, 0)


def test_clean_thresholds():
    assert ViolationReport(4, 50).clean
    assert not ViolationReport(5, 0).clean
    assert not ViolationReport(0, 51).clean


def test_is_clashed_on_structure():
    coords = _line_chain(60)
    # stack 10 residues onto residue 0 -> many clashes
    coords[50:] = coords[0] + np.linspace(0, 1, 10)[:, None] * 0.1
    enc = np.zeros(60, dtype=np.uint8)
    s = Structure(record_id="x", encoded=enc, ca=coords)
    assert is_clashed(s)


def test_violating_pairs_shape_validation():
    with pytest.raises(ValueError):
        violating_pairs(np.zeros((5, 2)))


def test_violating_pairs_small_input():
    assert violating_pairs(np.zeros((1, 3))).shape == (0, 2)


def test_natives_are_clean(factory, proteome):
    # Violation-free natives are a design invariant: model error is the
    # only source of clashes in the pipeline.
    total = 0
    for rec in list(proteome)[:8]:
        report = count_violations(factory.native(rec))
        total += report.n_clashes + report.n_bumps
    assert total <= 2  # allow a stray bump across 8 structures
