"""Batched relaxation (:func:`relax_many`) vs the serial protocol loop."""

import numpy as np
import pytest

from repro.fold import NativeFactory, PredictionConfig, SurrogateFoldModel
from repro.msa import generate_features
from repro.relax import SinglePassRelaxProtocol, relax_many
from repro.relax.batch import _as_mapping


@pytest.fixture(scope="module")
def structures(universe, proteome, suite):
    factory = NativeFactory(universe)
    model = SurrogateFoldModel(factory, 1)
    cfg = PredictionConfig(max_recycles=3)
    out = {}
    for rec in list(proteome)[:5]:
        pred = model.predict(generate_features(rec, suite), cfg)
        out[rec.record_id] = pred.structure
    return out


def test_batched_matches_serial(structures):
    """Worker threads and dispatch order must not change any outcome."""
    serial = {
        key: SinglePassRelaxProtocol(device="gpu").run(s)
        for key, s in structures.items()
    }
    batch = relax_many(structures, device="gpu", n_workers=4)
    assert set(batch.outcomes) == set(serial)
    for key, expected in serial.items():
        got = batch.outcomes[key]
        np.testing.assert_array_equal(got.structure.ca, expected.structure.ca)
        assert got.violations_before == expected.violations_before
        assert got.violations_after == expected.violations_after
        assert got.final_energy == expected.final_energy
        assert got.total_steps == expected.total_steps
        assert got.converged == expected.converged


def test_worker_count_invariance(structures):
    one = relax_many(structures, device="gpu", n_workers=1)
    four = relax_many(structures, device="gpu", n_workers=4)
    for key in structures:
        np.testing.assert_array_equal(
            one.outcomes[key].structure.ca, four.outcomes[key].structure.ca
        )


def test_iterable_input_keyed_by_record_id(structures):
    batch = relax_many(list(structures.values()), device="gpu")
    assert set(batch.outcomes) == set(structures)


def test_as_mapping_disambiguates_duplicates(structures):
    first = next(iter(structures.values()))
    mapping = _as_mapping([first, first])
    assert len(mapping) == 2
    assert first.record_id in mapping


def test_batch_result_accounting(structures):
    batch = relax_many(structures, device="gpu")
    assert batch.walltime_seconds > 0
    assert batch.models_per_second > 0
    clashes, bumps = batch.total_violations_after()
    assert clashes == 0
    assert bumps >= 0
    assert len(batch.execution.records) == len(structures)
    assert all(r.ok for r in batch.execution.records)
