"""Force field: analytic gradient checks and term behaviour."""

import numpy as np
import pytest

from repro.relax import ForceField, ForceFieldParams, prepare_system


@pytest.fixture()
def small_system(factory, proteome):
    rec = min(proteome, key=lambda r: r.length)
    native = factory.native(rec)
    rng = np.random.default_rng(3)
    noisy = native.with_coordinates(native.ca + rng.normal(0, 0.8, native.ca.shape))
    return prepare_system(noisy, rng=rng)


def test_gradient_matches_finite_differences(small_system):
    ff = ForceField(small_system)
    x = small_system.particles.copy()
    e0, g = ff.energy_and_gradient(x)
    rng = np.random.default_rng(0)
    h = 1e-6
    for _ in range(10):
        i = rng.integers(0, x.shape[0])
        k = rng.integers(0, 3)
        xp = x.copy()
        xp[i, k] += h
        num = (ff.energy(xp) - e0) / h
        assert num == pytest.approx(g[i, k], rel=2e-3, abs=2e-3)


def test_energy_nonnegative_terms(small_system):
    ff = ForceField(small_system)
    # At the reference coordinates the restraint term is zero, so the
    # energy equals bonded+geometry+repulsion, all nonnegative.
    assert ff.energy(small_system.particles) >= 0.0


def test_restraint_pulls_back(small_system):
    ff = ForceField(small_system)
    shifted = small_system.particles + 1.0
    e_ref = ff.energy(small_system.particles)
    # Refresh the neighbour list (and frozen CB frame) at the shifted
    # coordinates so the only term that differs is the restraint.
    ff.rebuild_neighbors(shifted)
    e_shift = ff.energy(shifted)
    # Rigid shift changes only the restraint term: k * N * |d|^2.
    n = small_system.particles.shape[0]
    expected = ff.params.k_restraint * n * 3.0
    assert e_shift - e_ref == pytest.approx(expected, rel=1e-9)


def test_shape_mismatch_raises(small_system):
    ff = ForceField(small_system)
    with pytest.raises(ValueError):
        ff.energy(small_system.particles[:-1])


def test_clash_raises_energy(small_system):
    ff = ForceField(small_system)
    x = small_system.particles.copy()
    e0 = ff.energy(x)
    # Slam residue 0 onto residue 10 -> excluded-volume penalty.
    n = small_system.n_residues
    x[0] = x[min(10, n - 1)] + 0.3
    ff.rebuild_neighbors(x)
    assert ff.energy(x) > e0


def test_params_defaults_match_paper():
    p = ForceFieldParams()
    assert p.k_restraint == 10.0  # kcal/mol/A^2, paper §3.2.3
