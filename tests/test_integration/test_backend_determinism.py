"""Cross-backend determinism: threaded and process campaigns agree.

The executor backend is an operational choice, not a scientific one —
the same campaign run on threads and on processes must produce
bit-identical stage results, and a resumed process campaign must report
the same simulated node-hours as the uninterrupted run (the paper's
accounting cannot depend on where the workers lived or whether the
job was restarted).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProteomePipeline
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.runstate import RunState
from repro.sequences import SequenceUniverse, synthetic_proteome


def make_pipeline(**kwargs) -> ProteomePipeline:
    return ProteomePipeline(
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
        compute_workers=3,
        **kwargs,
    )


@pytest.fixture(scope="module")
def mini():
    uni = SequenceUniverse(33)
    prot = synthetic_proteome("P_mercurii", universe=uni, seed=33, scale=0.002)
    suite = build_suite(uni, ["P_mercurii"], seed=33, scale=0.002)
    return prot, suite, NativeFactory(uni)


@pytest.fixture(scope="module")
def threaded_run(mini):
    prot, suite, factory = mini
    return make_pipeline(executor_backend="threaded").run(prot, suite, factory)


@pytest.fixture(scope="module")
def process_run(mini):
    prot, suite, factory = mini
    return make_pipeline(executor_backend="process").run(prot, suite, factory)


class TestBackendsAgree:
    def test_feature_stage_bit_identical(self, threaded_run, process_run):
        a = threaded_run.feature_stage.features
        b = process_run.feature_stage.features
        assert a.keys() == b.keys()
        for rid in a:
            assert a[rid].msa_depth == b[rid].msa_depth
            assert a[rid].effective_depth == b[rid].effective_depth
            assert a[rid].n_templates == b[rid].n_templates
            assert (
                a[rid].best_template_identity == b[rid].best_template_identity
            )

    def test_inference_stage_bit_identical(self, threaded_run, process_run):
        a = threaded_run.inference_stage.top_models
        b = process_run.inference_stage.top_models
        assert a.keys() == b.keys()
        for rid in a:
            assert a[rid].model_name == b[rid].model_name
            assert a[rid].ptms == b[rid].ptms
            assert a[rid].mean_plddt == b[rid].mean_plddt
            np.testing.assert_array_equal(a[rid].structure.ca, b[rid].structure.ca)

    def test_relax_stage_bit_identical(self, threaded_run, process_run):
        a = threaded_run.relax_stage.outcomes
        b = process_run.relax_stage.outcomes
        assert a.keys() == b.keys()
        for rid in a:
            np.testing.assert_array_equal(a[rid].structure.ca, b[rid].structure.ca)
            assert a[rid].violations_after == b[rid].violations_after

    def test_node_hours_identical(self, threaded_run, process_run):
        assert (
            threaded_run.total_node_hours == process_run.total_node_hours
        )

    def test_no_failures_either_backend(self, threaded_run, process_run):
        for run in (threaded_run, process_run):
            for stage in (run.feature_stage, run.relax_stage):
                assert stage.execution is not None
                assert stage.execution.n_failed == 0
                assert stage.execution.lost_keys() == []


class TestResumeInvariance:
    def test_resumed_process_campaign_matches(
        self, mini, process_run, tmp_path
    ):
        """A process campaign resumed over a complete ledger recomputes
        nothing and reports the same results and node-hours."""
        prot, suite, factory = mini

        state = RunState(tmp_path / "state")
        first = make_pipeline(
            executor_backend="process", run_state=state
        ).run(prot, suite, factory)
        state.close()

        state = RunState(tmp_path / "state")
        assert state.resumed
        second = make_pipeline(
            executor_backend="process", run_state=state
        ).run(prot, suite, factory)
        state.close()

        assert second.feature_stage.skipped_resume == len(prot)
        assert second.total_node_hours == first.total_node_hours
        assert second.total_node_hours == process_run.total_node_hours
        for rid in first.inference_stage.top_models:
            np.testing.assert_array_equal(
                first.inference_stage.top_models[rid].structure.ca,
                second.inference_stage.top_models[rid].structure.ca,
            )
