"""Schedule parity: streaming and barrier campaigns agree bit-for-bit.

The streaming scheduler dissolves the three stage barriers into one
dependency-driven dataflow — an operational change only.  These tests
pin the PR's core claims: identical science on both schedules and both
executor backends, schedule-invariant node-hour accounting, a strictly
shorter simulated campaign (makespan *and* time-to-first-structure),
cross-schedule resume over one shared ledger, and task→stage span
nesting that survives the stages interleaving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProteomePipeline
from repro.fold import NativeFactory
from repro.msa import build_suite
from repro.runstate import RunState
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.telemetry import Tracer, use_tracer


def make_pipeline(**kwargs) -> ProteomePipeline:
    return ProteomePipeline(
        feature_nodes=4,
        inference_nodes=2,
        relax_nodes=1,
        compute_workers=3,
        **kwargs,
    )


@pytest.fixture(scope="module")
def mini():
    uni = SequenceUniverse(33)
    prot = synthetic_proteome("P_mercurii", universe=uni, seed=33, scale=0.002)
    suite = build_suite(uni, ["P_mercurii"], seed=33, scale=0.002)
    return prot, suite, NativeFactory(uni)


@pytest.fixture(scope="module")
def barrier_run(mini):
    prot, suite, factory = mini
    return make_pipeline(schedule="barrier").run(prot, suite, factory)


@pytest.fixture(scope="module")
def streaming_run(mini):
    prot, suite, factory = mini
    return make_pipeline(schedule="streaming").run(prot, suite, factory)


@pytest.fixture(scope="module")
def streaming_process_run(mini):
    prot, suite, factory = mini
    return make_pipeline(
        schedule="streaming", executor_backend="process"
    ).run(prot, suite, factory)


class TestSchedulesAgree:
    def test_schedules_are_labelled(self, barrier_run, streaming_run):
        assert barrier_run.schedule == "barrier"
        assert barrier_run.streaming_simulation is None
        assert streaming_run.schedule == "streaming"
        assert streaming_run.streaming_simulation is not None

    def test_feature_stage_bit_identical(self, barrier_run, streaming_run):
        a = barrier_run.feature_stage.features
        b = streaming_run.feature_stage.features
        assert a.keys() == b.keys()
        for rid in a:
            assert a[rid].msa_depth == b[rid].msa_depth
            assert a[rid].effective_depth == b[rid].effective_depth
            assert a[rid].n_templates == b[rid].n_templates

    def test_inference_stage_bit_identical(self, barrier_run, streaming_run):
        a = barrier_run.inference_stage.top_models
        b = streaming_run.inference_stage.top_models
        assert a.keys() == b.keys()
        for rid in a:
            assert a[rid].model_name == b[rid].model_name
            assert a[rid].ptms == b[rid].ptms
            np.testing.assert_array_equal(
                a[rid].structure.ca, b[rid].structure.ca
            )

    def test_relax_stage_bit_identical(self, barrier_run, streaming_run):
        a = barrier_run.relax_stage.outcomes
        b = streaming_run.relax_stage.outcomes
        assert a.keys() == b.keys()
        for rid in a:
            np.testing.assert_array_equal(
                a[rid].structure.ca, b[rid].structure.ca
            )
            assert a[rid].final_energy == b[rid].final_energy

    def test_node_hours_schedule_invariant(self, barrier_run, streaming_run):
        assert (
            streaming_run.total_node_hours == barrier_run.total_node_hours
        )

    def test_process_backend_matches_threaded(
        self, streaming_run, streaming_process_run
    ):
        a = streaming_run.relax_stage.outcomes
        b = streaming_process_run.relax_stage.outcomes
        assert a.keys() == b.keys()
        for rid in a:
            np.testing.assert_array_equal(
                a[rid].structure.ca, b[rid].structure.ca
            )
            assert a[rid].final_energy == b[rid].final_energy
        assert (
            streaming_process_run.total_node_hours
            == streaming_run.total_node_hours
        )

    def test_no_failures(self, streaming_run, streaming_process_run):
        for run in (streaming_run, streaming_process_run):
            for stage in (run.feature_stage, run.relax_stage):
                assert stage.execution is not None
                assert stage.execution.n_failed == 0


class TestStreamingWins:
    def test_makespan_strictly_shorter(self, barrier_run, streaming_run):
        assert (
            streaming_run.campaign_walltime_seconds
            < barrier_run.campaign_walltime_seconds
        )

    def test_first_structure_lands_earlier(self, barrier_run, streaming_run):
        assert (
            streaming_run.time_to_first_structure_seconds
            < barrier_run.time_to_first_structure_seconds
        )

    def test_bubble_accounting_present(self, barrier_run, streaming_run):
        # Both schedules account their bubbles; dissolving the barriers
        # must not *create* idle time.
        assert barrier_run.bubble_seconds >= 0.0
        assert streaming_run.bubble_seconds >= 0.0
        assert streaming_run.bubble_seconds <= barrier_run.bubble_seconds


class TestCrossScheduleResume:
    def test_streaming_resumes_a_barrier_ledger(self, mini, tmp_path):
        """The ledger speaks bare keys: a campaign recorded under the
        barrier schedule restores fully under streaming — zero
        recomputation in either direction."""
        prot, suite, factory = mini
        n = len(prot)

        state = RunState(tmp_path / "state")
        make_pipeline(schedule="barrier", run_state=state).run(
            prot, suite, factory
        )
        state.close()

        state = RunState(tmp_path / "state")
        assert state.resumed
        resumed = make_pipeline(schedule="streaming", run_state=state).run(
            prot, suite, factory
        )
        state.close()

        assert resumed.feature_stage.skipped_resume == n
        assert resumed.inference_stage.skipped_resume == 5 * n
        assert resumed.relax_stage.skipped_resume == n
        assert resumed.schedule == "streaming"


class TestSpanNesting:
    def test_wall_task_spans_nest_under_their_stage(self, mini):
        """Interleaved execution, untangled trace: every wall-clock task
        span parents to the stage span its key prefix names."""
        prot, suite, factory = mini
        tr = Tracer()
        with use_tracer(tr):
            make_pipeline(schedule="streaming").run(prot, suite, factory)

        stage_spans = {
            s.span_id: s.name for s in tr.spans if s.category == "stage"
        }
        assert set(stage_spans.values()) >= {"features", "inference", "relax"}
        stage_for_prefix = {
            "feature": "features",
            "inference": "inference",
            "relax": "relax",
        }
        wall_tasks = [
            s
            for s in tr.spans
            if s.category == "task" and s.attrs.get("clock") != "sim"
        ]
        assert len(wall_tasks) >= 7 * len(prot)
        for span in wall_tasks:
            prefix = span.name.partition("/")[0]
            assert stage_spans.get(span.parent_id) == stage_for_prefix[prefix]
