"""End-to-end integration: the full pipeline on a tiny proteome,
including the real threaded dataflow executor and FASTA/PDB hand-offs
between stages (the paper's decoupled-stage deployment in miniature).
"""

import numpy as np
import pytest

from repro.core import ProteomePipeline, get_preset
from repro.dataflow import ThreadedExecutor
from repro.fold import NativeFactory, default_model_bank
from repro.msa import build_suite, generate_features
from repro.relax import count_violations, relax_structure
from repro.sequences import (
    SequenceUniverse,
    read_fasta,
    synthetic_proteome,
    write_fasta,
)
from repro.structure import read_pdb, tm_score, write_pdb


@pytest.fixture(scope="module")
def tiny():
    uni = SequenceUniverse(29)
    prot = synthetic_proteome("P_mercurii", universe=uni, seed=29, scale=0.003)
    suite = build_suite(uni, ["P_mercurii"], seed=29, scale=0.003)
    return uni, prot, suite


def test_fasta_handoff_between_stages(tiny, tmp_path):
    """Stage decoupling: sequences written by one stage, read by the next."""
    _, prot, suite = tiny
    fasta = tmp_path / "targets.fasta"
    write_fasta(list(prot), fasta)
    records = read_fasta(fasta)
    assert len(records) == len(prot)
    bundle = generate_features(records[0], suite)
    assert bundle.record_id == prot[0].record_id


def test_threaded_executor_runs_real_predictions(tiny):
    """The real (non-simulated) dataflow path executes the surrogate."""
    uni, prot, suite = tiny
    factory = NativeFactory(uni)
    bank = default_model_bank(factory)
    config = get_preset("reduced_db").config()
    features = {r.record_id: generate_features(r, suite) for r in prot[:4]}

    def task(payload):
        record_id, model_index = payload
        return bank[model_index].predict(features[record_id], config)

    items = [
        (f"{rid}/m{m}", (rid, m), features[rid].length)
        for rid in features
        for m in range(5)
    ]
    result = ThreadedExecutor(n_workers=4).map(task, items)
    assert result.n_failed == 0
    assert len(result.results) == 20
    # Rank per target exactly as the pipeline would.
    for rid in features:
        preds = [result.results[f"{rid}/m{m}"] for m in range(5)]
        top = max(preds, key=lambda p: p.ptms)
        assert top.structure.record_id == rid


def test_pipeline_to_pdb_roundtrip(tiny, tmp_path):
    uni, prot, suite = tiny
    factory = NativeFactory(uni)
    pipeline = ProteomePipeline(
        preset_name="genome", feature_nodes=2, inference_nodes=1, relax_nodes=1
    )
    result = pipeline.run(prot[:3], suite, factory)
    for rid, outcome in result.relax_stage.outcomes.items():
        path = tmp_path / f"{rid}.pdb"
        write_pdb(outcome.structure, path)
        back = read_pdb(path)
        assert back.sequence == outcome.structure.sequence
        assert count_violations(back).n_clashes == 0


def test_quality_chain_consistency(tiny):
    """Prediction -> relaxation preserves the truth chain: the relaxed
    model scores the same against the hidden native."""
    uni, prot, suite = tiny
    factory = NativeFactory(uni)
    bank = default_model_bank(factory)
    config = get_preset("genome").config()
    rec = prot[0]
    pred = bank[2].predict(generate_features(rec, suite), config)
    native = factory.native(rec)
    assert pred.true_tm == pytest.approx(
        tm_score(pred.structure.ca, native.ca), abs=1e-9
    )
    relaxed = relax_structure(pred.structure, "gpu")
    assert tm_score(relaxed.structure.ca, native.ca) >= pred.true_tm - 0.01


def test_deterministic_pipeline(tiny):
    """Two identical pipeline runs agree exactly."""
    uni, prot, suite = tiny
    p1 = ProteomePipeline(feature_nodes=2, inference_nodes=1, relax_nodes=1)
    p2 = ProteomePipeline(feature_nodes=2, inference_nodes=1, relax_nodes=1)
    r1 = p1.run(prot[:2], suite, NativeFactory(uni))
    r2 = p2.run(prot[:2], suite, NativeFactory(uni))
    for rid in r1.inference_stage.top_models:
        a = r1.inference_stage.top_models[rid]
        b = r2.inference_stage.top_models[rid]
        assert a.ptms == b.ptms
        np.testing.assert_array_equal(a.structure.ca, b.structure.ca)
    assert (
        r1.inference_stage.simulation.walltime_seconds
        == r2.inference_stage.simulation.walltime_seconds
    )
