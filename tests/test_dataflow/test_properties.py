"""Property-based invariants of the dataflow executors (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import TaskSpec, make_workers, simulate_dataflow

durations_strategy = st.lists(
    st.floats(0.01, 500.0), min_size=1, max_size=120
)
workers_strategy = st.integers(1, 12)


def _tasks(durations):
    return [
        TaskSpec(key=f"t{i}", payload=float(d), size_hint=float(d))
        for i, d in enumerate(durations)
    ]


@given(durations=durations_strategy, n_workers=workers_strategy)
@settings(max_examples=60, deadline=None)
def test_all_tasks_complete_exactly_once(durations, n_workers):
    result = simulate_dataflow(
        _tasks(durations),
        make_workers(1, n_workers),
        lambda t: float(t.payload),
        task_overhead=0.0,
        startup=0.0,
    )
    keys = [r.key for r in result.records]
    assert sorted(keys) == sorted(f"t{i}" for i in range(len(durations)))


@given(durations=durations_strategy, n_workers=workers_strategy)
@settings(max_examples=60, deadline=None)
def test_makespan_bounds(durations, n_workers):
    """Makespan is sandwiched by the standard list-scheduling bounds."""
    result = simulate_dataflow(
        _tasks(durations),
        make_workers(1, n_workers),
        lambda t: float(t.payload),
        task_overhead=0.0,
        startup=0.0,
    )
    total = sum(durations)
    lower = max(max(durations), total / n_workers)
    assert result.makespan_seconds >= lower - 1e-6
    # Graham's bound for any list schedule: (2 - 1/m) * OPT.
    assert result.makespan_seconds <= (2 - 1 / n_workers) * lower + 1e-6


@given(durations=durations_strategy, n_workers=workers_strategy)
@settings(max_examples=40, deadline=None)
def test_no_worker_overlap(durations, n_workers):
    """A worker never runs two tasks at once."""
    result = simulate_dataflow(
        _tasks(durations),
        make_workers(1, n_workers),
        lambda t: float(t.payload),
        task_overhead=0.0,
        startup=0.0,
    )
    by_worker = {}
    for r in result.records:
        by_worker.setdefault(r.worker_id, []).append((r.start, r.end))
    for intervals in by_worker.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9


@given(durations=durations_strategy)
@settings(max_examples=30, deadline=None)
def test_more_workers_never_slower(durations):
    tasks = _tasks(durations)
    walls = []
    for n in (1, 2, 4, 8):
        result = simulate_dataflow(
            tasks,
            make_workers(1, n),
            lambda t: float(t.payload),
            task_overhead=0.0,
            startup=0.0,
        )
        walls.append(result.makespan_seconds)
    # Descending-order list scheduling (LPT) is monotone in worker count.
    for a, b in zip(walls, walls[1:]):
        assert b <= a + 1e-6


@given(
    durations=st.lists(st.floats(0.5, 50.0), min_size=2, max_size=60),
    overhead=st.floats(0.0, 5.0),
)
@settings(max_examples=30, deadline=None)
def test_overhead_extends_makespan(durations, overhead):
    tasks = _tasks(durations)
    workers = make_workers(1, 3)
    base = simulate_dataflow(
        tasks, workers, lambda t: float(t.payload),
        task_overhead=0.0, startup=0.0,
    )
    slowed = simulate_dataflow(
        tasks, workers, lambda t: float(t.payload),
        task_overhead=overhead, startup=0.0,
    )
    assert slowed.makespan_seconds >= base.makespan_seconds - 1e-9
