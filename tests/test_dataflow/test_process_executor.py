"""ProcessExecutor: multiprocessing backend of the dataflow engine.

Covers the contract shared with :class:`ThreadedExecutor` (results,
retries, highmem gating, unschedulable drain, callbacks) plus what only
a process pool can express: shared-memory payload transport, worker
kill -9 detection with requeue, parent-side callback/metric/span
execution, and the all-workers-dead drain.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.dataflow import (
    FaultInjector,
    ProcessExecutor,
    RetryPolicy,
    TaskSpec,
    ThreadedExecutor,
)
from repro.telemetry.metrics import MetricsRegistry, get_metrics, use_metrics
from repro.telemetry.tracer import Tracer, use_tracer


# -- module-level task functions (must pickle by reference) -------------------
def _double(payload):
    return payload * 2


def _echo(payload):
    return payload


def _double_array(payload):
    return {"out": payload["x"] * 2.0}


def _boom(payload):
    raise ValueError(f"bad payload {payload}")


def _flaky_until_attempt_3(spec):
    if spec.attempt < 3:
        raise RuntimeError(f"flaky attempt {spec.attempt}")
    return spec.key


def _suicide_on_first_attempt(spec):
    if spec.attempt == 1 and spec.key.startswith("victim"):
        os.kill(os.getpid(), signal.SIGKILL)
    return f"{spec.key}@{spec.attempt}"


def _always_suicide(spec):
    os.kill(os.getpid(), signal.SIGKILL)


def _count_and_echo(payload):
    get_metrics().counter("test.worker.widgets").inc()
    return payload


_INIT_VALUE = {}


def _remember_init(value):
    _INIT_VALUE["v"] = value


def _read_init(payload):
    return (_INIT_VALUE.get("v"), os.getpid())


def _tasks(n, prefix="t", **kwargs):
    return [
        TaskSpec(key=f"{prefix}{i}", size_hint=float(i % 7 + 1), **kwargs)
        for i in range(n)
    ]


class TestBasics:
    def test_results_match_threaded(self):
        items = [(f"k{i}", i, float(i)) for i in range(20)]
        threaded = ThreadedExecutor(n_workers=4).map(_double, items)
        process = ProcessExecutor(n_workers=4).map(_double, items)
        assert process.results == threaded.results
        assert process.n_failed == 0
        assert process.lost_keys() == []
        assert len(process.records) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=2, highmem_workers=3)

    def test_bad_item_shape(self):
        with pytest.raises(ValueError):
            ProcessExecutor(n_workers=1).map(_double, [("key-only",)])

    def test_uses_multiple_processes(self):
        res = ProcessExecutor(n_workers=4).map(
            _read_init, [(f"k{i}", i, 1.0) for i in range(32)]
        )
        pids = {pid for (_, pid) in res.results.values()}
        assert len(pids) > 1
        assert os.getpid() not in pids

    def test_large_arrays_roundtrip_through_shm(self):
        rng = np.random.default_rng(3)
        items = [
            (f"k{i}", {"x": rng.normal(size=(128, 64))}, float(i))
            for i in range(8)
        ]
        res = ProcessExecutor(n_workers=2).map(_double_array, items)
        assert res.n_failed == 0
        for key, payload, _ in items:
            assert np.array_equal(res.results[key]["out"], payload["x"] * 2.0)

    def test_task_exception_is_isolated(self):
        res = ProcessExecutor(n_workers=2).map(
            _boom, [("a", 1, 1.0)]
        )
        assert res.n_failed == 1
        (record,) = res.records
        assert not record.ok and "ValueError: bad payload 1" in record.error

    def test_initializer_runs_in_every_worker(self):
        res = ProcessExecutor(n_workers=3).map(
            _read_init,
            [(f"k{i}", i, 1.0) for i in range(24)],
            initializer=_remember_init,
            initargs=("sentinel-42",),
        )
        values = {v for (v, _pid) in res.results.values()}
        assert values == {"sentinel-42"}


class TestFaultTolerance:
    def test_retry_recovers_with_highmem_escalation(self):
        tasks = _tasks(30)
        injector = FaultInjector(rate=0.3, seed=5)
        ex = ProcessExecutor(n_workers=4, highmem_workers=1)
        hm_ids = {w.worker_id for w in ex.workers if w.highmem}
        res = ex.map(
            _echo,
            tasks,
            failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
        )
        assert res.lost_keys() == []
        injected = set(injector.injected_keys(tasks))
        assert injected
        for key in injected:
            attempts = sorted(
                (r for r in res.records if r.key == key),
                key=lambda r: r.attempt,
            )
            assert attempts[-1].ok
            if len(attempts) > 1:
                assert attempts[-1].worker_id in hm_ids

    def test_n_failed_counts_distinct_keys(self):
        res = ProcessExecutor(n_workers=2).map(
            _flaky_until_attempt_3,
            _tasks(4),
            pass_spec=True,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
        )
        # Every key failed twice then recovered: 12 records, 8 failed
        # attempts, but n_failed counts keys.
        assert len(res.records) == 12
        assert sum(1 for r in res.records if not r.ok) == 8
        assert res.n_failed == 4
        assert res.lost_keys() == []

    def test_highmem_gating(self):
        tasks = _tasks(4, requires_highmem=True)
        ex = ProcessExecutor(n_workers=3, highmem_workers=1)
        hm_ids = {w.worker_id for w in ex.workers if w.highmem}
        res = ex.map(_echo, tasks)
        assert res.lost_keys() == []
        assert {r.worker_id for r in res.records} <= hm_ids

    def test_unschedulable_drain(self):
        tasks = _tasks(2) + _tasks(2, prefix="hm", requires_highmem=True)
        res = ProcessExecutor(n_workers=2, highmem_workers=0).map(
            _echo, tasks
        )
        assert sorted(res.lost_keys()) == ["hm0", "hm1"]
        drained = [r for r in res.records if not r.ok]
        assert len(drained) == 2
        assert all("NoEligibleWorker" in r.error for r in drained)

    def test_deferred_backoff_does_not_park_slot(self):
        # One worker; the injected key backs off ~0.5 s.  The other
        # tasks must complete during that window, not after it.
        def fail_once(task, worker):
            if task.key == "slow" and task.attempt == 1:
                return "RuntimeError: injected"
            return None

        tasks = [TaskSpec(key="slow", size_hint=9.0)] + _tasks(4)
        t0 = time.perf_counter()
        res = ProcessExecutor(n_workers=1).map(
            _echo,
            tasks,
            failure_fn=fail_once,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_seconds=0.5, backoff_factor=1.0
            ),
        )
        assert res.lost_keys() == []
        retry = max(
            (r for r in res.records if r.key == "slow"),
            key=lambda r: r.attempt,
        )
        others_done = max(
            r.end for r in res.records if r.key != "slow"
        )
        assert retry.ok and retry.attempt == 2
        assert others_done < retry.start
        assert time.perf_counter() - t0 < 5.0


class TestWorkerLoss:
    def test_killed_worker_task_is_requeued(self):
        specs = [TaskSpec(key="victim", size_hint=10.0)] + _tasks(6)
        res = ProcessExecutor(n_workers=2).map(
            _suicide_on_first_attempt,
            specs,
            pass_spec=True,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
        )
        assert res.lost_keys() == []
        victim = sorted(
            (r for r in res.records if r.key == "victim"),
            key=lambda r: r.attempt,
        )
        assert len(victim) == 2
        assert not victim[0].ok and "WorkerLost" in victim[0].error
        assert victim[1].ok
        assert res.results["victim"] == "victim@2"

    def test_worker_loss_counts_on_metrics(self):
        with use_metrics(MetricsRegistry()) as registry:
            ProcessExecutor(n_workers=2).map(
                _suicide_on_first_attempt,
                [TaskSpec(key="victim", size_hint=1.0)] + _tasks(2),
                pass_spec=True,
                retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            )
            values = registry.counter_values()
        assert values["dataflow.worker.lost"] == 1
        assert values["dataflow.task.failures"] == 1
        assert values["dataflow.task.retries"] == 1

    def test_all_workers_dead_drains_loudly(self):
        # Every task kills its worker; with the pool gone the leftovers
        # must drain as failed records, not hang the parent.
        res = ProcessExecutor(n_workers=2).map(
            _always_suicide,
            _tasks(6),
            pass_spec=True,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
        )
        assert len(res.lost_keys()) == 6
        assert all(not r.ok for r in res.records)
        assert any("no live worker processes remain" in r.error for r in res.records)


class TestParentSideBookkeeping:
    def test_on_complete_runs_in_parent(self):
        seen = []

        def on_complete(record, value):
            seen.append((record.key, record.ok, value, os.getpid()))

        res = ProcessExecutor(n_workers=2).map(
            _double, [(f"k{i}", i, 1.0) for i in range(6)],
            on_complete=on_complete,
        )
        assert len(seen) == 6
        assert {pid for (_, _, _, pid) in seen} == {os.getpid()}
        assert {(k, v) for (k, _, v, _) in seen} == {
            (f"k{i}", i * 2) for i in range(6)
        }
        assert res.n_failed == 0

    def test_callback_errors_surface_after_drain(self):
        def on_complete(record, value):
            raise RuntimeError("ledger offline")

        with pytest.raises(RuntimeError, match="on_complete callback failed"):
            ProcessExecutor(n_workers=2).map(
                _double, [("a", 1, 1.0), ("b", 2, 1.0)],
                on_complete=on_complete,
            )

    def test_worker_metric_deltas_merge_into_parent(self):
        with use_metrics(MetricsRegistry()) as registry:
            ProcessExecutor(n_workers=2).map(
                _count_and_echo, [(f"k{i}", i, 1.0) for i in range(10)]
            )
            values = registry.counter_values()
        assert values["test.worker.widgets"] == 10

    def test_task_spans_recorded_in_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("stage", "unit", ambient=True) as stage:
                ProcessExecutor(n_workers=2).map(
                    _double, [(f"k{i}", i, 1.0) for i in range(4)]
                )
        task_spans = [s for s in tracer.spans if s.category == "task"]
        assert len(task_spans) == 4
        assert {s.name for s in task_spans} == {f"k{i}" for i in range(4)}
        assert all(s.parent_id == stage.span_id for s in task_spans)
        assert all(s.end is not None and s.end >= s.start for s in task_spans)
        assert all(s.attrs["ok"] for s in task_spans)
