"""Shared-memory payload codec: roundtrips, thresholds, reclamation."""

import dataclasses
import glob
from collections import namedtuple

import numpy as np
import pytest

from repro.dataflow.shm import (
    DEFAULT_MIN_SHM_BYTES,
    EncodedPayload,
    ShmRef,
    decode_payload,
    encode_payload,
    unlink_segment,
)


def _live_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


Point = namedtuple("Point", ["xyz", "label"])


@dataclasses.dataclass
class Inner:
    arr: np.ndarray
    tag: str


@dataclasses.dataclass(frozen=True)
class Outer:
    inner: Inner
    weights: np.ndarray
    scale: float


class TestRoundtrip:
    def test_large_array_moves_to_segment(self):
        arr = np.arange(4096, dtype=np.float64)
        enc = encode_payload({"x": arr})
        assert enc.segment is not None
        assert enc.nbytes == arr.nbytes
        assert isinstance(enc.skeleton["x"], ShmRef)
        out = decode_payload(enc)
        assert np.array_equal(out["x"], arr)
        assert out["x"].dtype == arr.dtype

    def test_small_arrays_ride_skeleton(self):
        arr = np.arange(4, dtype=np.int32)
        enc = encode_payload({"x": arr})
        assert enc.segment is None
        assert decode_payload(enc)["x"] is arr

    def test_non_encoded_payload_passes_through(self):
        # A worker may receive a payload that never went through
        # encode_payload (e.g. None for key-only tasks).
        assert decode_payload(None) is None
        assert decode_payload({"a": 1}) == {"a": 1}

    def test_nested_containers(self):
        before = _live_segments()
        big = np.random.default_rng(0).normal(size=(64, 64))
        obj = {
            "list": [big, {"deep": big * 2}],
            "tuple": (big + 1,),
            "named": Point(xyz=big - 1, label="p"),
            "scalar": 42,
        }
        out = decode_payload(encode_payload(obj))
        assert np.array_equal(out["list"][0], big)
        assert np.array_equal(out["list"][1]["deep"], big * 2)
        assert np.array_equal(out["tuple"][0], big + 1)
        assert isinstance(out["named"], Point)
        assert np.array_equal(out["named"].xyz, big - 1)
        assert out["scalar"] == 42
        assert _live_segments() == before  # consumed -> unlinked

    def test_dataclass_roundtrip(self):
        big = np.full((100, 100), 3.5)
        obj = Outer(inner=Inner(arr=big, tag="t"), weights=big * 2, scale=0.5)
        enc = encode_payload(obj)
        assert enc.segment is not None
        out = decode_payload(enc)
        assert isinstance(out, Outer) and isinstance(out.inner, Inner)
        assert np.array_equal(out.inner.arr, big)
        assert np.array_equal(out.weights, big * 2)
        assert out.scale == 0.5 and out.inner.tag == "t"

    def test_equal_arrays_get_distinct_slots(self):
        # Two byte-identical arrays must decode independently — a
        # placeholder collision would alias them to one offset.
        big = np.ones(1024, dtype=np.float64)
        enc = encode_payload([big, big.copy()])
        refs = enc.skeleton
        assert refs[0] != refs[1]
        out = decode_payload(enc)
        assert np.array_equal(out[0], big) and np.array_equal(out[1], big)
        assert enc.nbytes == 2 * big.nbytes

    def test_empty_and_zero_size_arrays(self):
        obj = {"empty": np.empty(0), "big": np.zeros(2048)}
        out = decode_payload(encode_payload(obj))
        assert out["empty"].size == 0
        assert np.array_equal(out["big"], np.zeros(2048))

    def test_object_dtype_stays_inline(self):
        arr = np.array([{"a": 1}] * 1000, dtype=object)
        enc = encode_payload(arr)
        assert enc.segment is None

    def test_noncontiguous_array(self):
        base = np.arange(10000, dtype=np.float64).reshape(100, 100)
        view = base[::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        out = decode_payload(encode_payload({"v": view}))
        assert np.array_equal(out["v"], view)

    def test_min_bytes_threshold(self):
        arr = np.arange(64, dtype=np.float64)  # 512 bytes
        assert encode_payload({"x": arr}).segment is None
        assert encode_payload({"x": arr}, min_bytes=256).segment is not None
        assert arr.nbytes < DEFAULT_MIN_SHM_BYTES


class TestReclamation:
    def test_unlink_segment_reclaims_orphan(self):
        enc = encode_payload(np.zeros(4096))
        assert enc.segment is not None
        unlink_segment(enc.segment)
        # Attaching now must fail — the segment is gone.
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=enc.segment)

    def test_unlink_segment_tolerates_missing(self):
        unlink_segment(None)
        unlink_segment("psm_does_not_exist_xyz")

    def test_decode_after_orphan_cleanup_raises(self):
        enc = encode_payload(np.zeros(4096))
        unlink_segment(enc.segment)
        with pytest.raises(FileNotFoundError):
            decode_payload(enc)

    def test_no_segment_leak_across_many_messages(self):
        before = _live_segments()
        for i in range(20):
            decode_payload(encode_payload({"x": np.full(1024, float(i))}))
        assert _live_segments() == before


class TestEncodedPayload:
    def test_plain_payload_wraps_verbatim(self):
        enc = encode_payload([1, 2, 3])
        assert isinstance(enc, EncodedPayload)
        assert enc.segment is None and enc.nbytes == 0
        assert enc.skeleton == [1, 2, 3]
