"""Shared-memory payload codec: roundtrips, thresholds, reclamation."""

import dataclasses
import glob
from collections import namedtuple

import numpy as np
import pytest

from repro.dataflow.shm import (
    DEFAULT_MIN_SHM_BYTES,
    EncodedPayload,
    MmapRef,
    ShmRef,
    decode_payload,
    encode_payload,
    unlink_segment,
)


def _live_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


Point = namedtuple("Point", ["xyz", "label"])


@dataclasses.dataclass
class Inner:
    arr: np.ndarray
    tag: str


@dataclasses.dataclass(frozen=True)
class Outer:
    inner: Inner
    weights: np.ndarray
    scale: float


class TestRoundtrip:
    def test_large_array_moves_to_segment(self):
        arr = np.arange(4096, dtype=np.float64)
        enc = encode_payload({"x": arr})
        assert enc.segment is not None
        assert enc.nbytes == arr.nbytes
        assert isinstance(enc.skeleton["x"], ShmRef)
        out = decode_payload(enc)
        assert np.array_equal(out["x"], arr)
        assert out["x"].dtype == arr.dtype

    def test_small_arrays_ride_skeleton(self):
        arr = np.arange(4, dtype=np.int32)
        enc = encode_payload({"x": arr})
        assert enc.segment is None
        assert decode_payload(enc)["x"] is arr

    def test_non_encoded_payload_passes_through(self):
        # A worker may receive a payload that never went through
        # encode_payload (e.g. None for key-only tasks).
        assert decode_payload(None) is None
        assert decode_payload({"a": 1}) == {"a": 1}

    def test_nested_containers(self):
        before = _live_segments()
        big = np.random.default_rng(0).normal(size=(64, 64))
        obj = {
            "list": [big, {"deep": big * 2}],
            "tuple": (big + 1,),
            "named": Point(xyz=big - 1, label="p"),
            "scalar": 42,
        }
        out = decode_payload(encode_payload(obj))
        assert np.array_equal(out["list"][0], big)
        assert np.array_equal(out["list"][1]["deep"], big * 2)
        assert np.array_equal(out["tuple"][0], big + 1)
        assert isinstance(out["named"], Point)
        assert np.array_equal(out["named"].xyz, big - 1)
        assert out["scalar"] == 42
        assert _live_segments() == before  # consumed -> unlinked

    def test_dataclass_roundtrip(self):
        big = np.full((100, 100), 3.5)
        obj = Outer(inner=Inner(arr=big, tag="t"), weights=big * 2, scale=0.5)
        enc = encode_payload(obj)
        assert enc.segment is not None
        out = decode_payload(enc)
        assert isinstance(out, Outer) and isinstance(out.inner, Inner)
        assert np.array_equal(out.inner.arr, big)
        assert np.array_equal(out.weights, big * 2)
        assert out.scale == 0.5 and out.inner.tag == "t"

    def test_equal_arrays_get_distinct_slots(self):
        # Two byte-identical arrays must decode independently — a
        # placeholder collision would alias them to one offset.
        big = np.ones(1024, dtype=np.float64)
        enc = encode_payload([big, big.copy()])
        refs = enc.skeleton
        assert refs[0] != refs[1]
        out = decode_payload(enc)
        assert np.array_equal(out[0], big) and np.array_equal(out[1], big)
        assert enc.nbytes == 2 * big.nbytes

    def test_empty_and_zero_size_arrays(self):
        obj = {"empty": np.empty(0), "big": np.zeros(2048)}
        out = decode_payload(encode_payload(obj))
        assert out["empty"].size == 0
        assert np.array_equal(out["big"], np.zeros(2048))

    def test_object_dtype_stays_inline(self):
        arr = np.array([{"a": 1}] * 1000, dtype=object)
        enc = encode_payload(arr)
        assert enc.segment is None

    def test_noncontiguous_array(self):
        base = np.arange(10000, dtype=np.float64).reshape(100, 100)
        view = base[::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        out = decode_payload(encode_payload({"v": view}))
        assert np.array_equal(out["v"], view)

    def test_min_bytes_threshold(self):
        arr = np.arange(64, dtype=np.float64)  # 512 bytes
        assert encode_payload({"x": arr}).segment is None
        assert encode_payload({"x": arr}, min_bytes=256).segment is not None
        assert arr.nbytes < DEFAULT_MIN_SHM_BYTES


class TestFileBackedArrays:
    def _memmap(self, tmp_path, shape=(256, 64), name="a.npy"):
        file = tmp_path / name
        np.save(file, np.arange(np.prod(shape), dtype=np.float64).reshape(shape))
        return np.load(file, mmap_mode="r")

    def test_readonly_plain_array_roundtrips(self):
        # Regression: a non-writable ndarray must neither crash the
        # encoder nor lose its contents — it copies into the segment
        # like any other array.
        arr = np.arange(4096, dtype=np.float64)
        arr.setflags(write=False)
        enc = encode_payload({"x": arr})
        assert enc.segment is not None
        out = decode_payload(enc)
        assert np.array_equal(out["x"], arr)

    def test_memmap_never_copies(self, tmp_path):
        # File-backed arrays travel as MmapRef placeholders: no shm
        # segment, no bytes duplicated — the receiver re-maps the file.
        mm = self._memmap(tmp_path)
        enc = encode_payload({"x": mm})
        assert enc.segment is None and enc.nbytes == 0
        assert enc.has_file_refs
        assert isinstance(enc.skeleton["x"], MmapRef)
        out = decode_payload(enc)
        assert isinstance(out["x"], np.memmap)
        assert not out["x"].flags["WRITEABLE"]
        assert np.array_equal(out["x"], mm)

    def test_memmap_below_shm_threshold_still_file_ref(self, tmp_path):
        mm = self._memmap(tmp_path, shape=(4,), name="tiny.npy")
        assert mm.nbytes < DEFAULT_MIN_SHM_BYTES
        enc = encode_payload({"x": mm})
        assert enc.segment is None and enc.has_file_refs
        assert np.array_equal(decode_payload(enc)["x"], mm)

    def test_memmap_view_effective_offset(self, tmp_path):
        # A contiguous view inherits the ROOT's .offset/.filename; the
        # ref must carry the view's displacement into the file, or the
        # receiver maps the wrong bytes.
        mm = self._memmap(tmp_path)
        view = mm[100:200]
        assert view.flags["C_CONTIGUOUS"]
        enc = encode_payload({"v": view})
        ref = enc.skeleton["v"]
        assert isinstance(ref, MmapRef)
        assert ref.offset > mm.offset  # displaced past the npy header
        out = decode_payload(enc)
        assert np.array_equal(out["v"], view)

    def test_strided_memmap_view_falls_back_to_copy(self, tmp_path):
        mm = self._memmap(tmp_path)
        view = mm[::2, ::2]
        assert not view.flags["C_CONTIGUOUS"]
        enc = encode_payload({"v": view})
        assert not enc.has_file_refs
        assert np.array_equal(decode_payload(enc)["v"], view)

    def test_mixed_payload(self, tmp_path):
        # Memmaps ride as file refs while big plain arrays still move
        # through the segment, in the same message.
        mm = self._memmap(tmp_path)
        big = np.random.default_rng(3).normal(size=(50, 100))
        enc = encode_payload({"mm": mm, "big": big, "n": 7})
        assert enc.segment is not None
        assert enc.nbytes == big.nbytes
        assert enc.has_file_refs
        assert isinstance(enc.skeleton["mm"], MmapRef)
        out = decode_payload(enc)
        assert np.array_equal(out["mm"], mm)
        assert np.array_equal(out["big"], big)
        assert out["n"] == 7

    def test_memmap_survives_pipe_pickle(self, tmp_path):
        # The skeleton (with MmapRefs inside) is what actually crosses
        # the pipe — it must pickle small and decode on the other side.
        import pickle

        mm = self._memmap(tmp_path)
        enc = encode_payload([mm, {"nested": mm[10:20]}])
        blob = pickle.dumps(enc)
        assert len(blob) < 1024  # refs only, no array bytes
        out = decode_payload(pickle.loads(blob))
        assert np.array_equal(out[0], mm)
        assert np.array_equal(out[1]["nested"], mm[10:20])


class TestReclamation:
    def test_unlink_segment_reclaims_orphan(self):
        enc = encode_payload(np.zeros(4096))
        assert enc.segment is not None
        unlink_segment(enc.segment)
        # Attaching now must fail — the segment is gone.
        with pytest.raises(FileNotFoundError):
            from multiprocessing import shared_memory

            shared_memory.SharedMemory(name=enc.segment)

    def test_unlink_segment_tolerates_missing(self):
        unlink_segment(None)
        unlink_segment("psm_does_not_exist_xyz")

    def test_decode_after_orphan_cleanup_raises(self):
        enc = encode_payload(np.zeros(4096))
        unlink_segment(enc.segment)
        with pytest.raises(FileNotFoundError):
            decode_payload(enc)

    def test_no_segment_leak_across_many_messages(self):
        before = _live_segments()
        for i in range(20):
            decode_payload(encode_payload({"x": np.full(1024, float(i))}))
        assert _live_segments() == before


class TestEncodedPayload:
    def test_plain_payload_wraps_verbatim(self):
        enc = encode_payload([1, 2, 3])
        assert isinstance(enc, EncodedPayload)
        assert enc.segment is None and enc.nbytes == 0
        assert enc.skeleton == [1, 2, 3]
