"""Dataflow tests: queue ordering, simulated engine, threaded engine."""

import numpy as np
import pytest

from repro.dataflow import (
    TaskQueue,
    TaskSpec,
    ThreadedExecutor,
    extract_gantt,
    load_task_csv,
    make_workers,
    render_ascii_gantt,
    simulate_dataflow,
    summarize_records,
)


def _tasks(sizes):
    return [TaskSpec(key=f"t{i}", size_hint=s) for i, s in enumerate(sizes)]


class TestTaskQueue:
    def test_fifo(self):
        q = TaskQueue()
        q.submit_many(_tasks([1, 2, 3]))
        assert [q.pop().key for _ in range(3)] == ["t0", "t1", "t2"]
        assert q.pop() is None

    def test_sort_descending(self):
        q = TaskQueue()
        q.submit_many(_tasks([5, 100, 20]))
        q.sort_descending()
        assert [t.size_hint for t in q.tasks] == [100, 20, 5]

    def test_sort_deterministic_on_ties(self):
        q = TaskQueue()
        q.submit_many([TaskSpec(key=k, size_hint=7) for k in "cba"])
        q.sort_descending()
        assert [t.key for t in q.tasks] == ["a", "b", "c"]

    def test_shuffle(self):
        q = TaskQueue()
        q.submit_many(_tasks(range(50)))
        q.shuffle(np.random.default_rng(0))
        assert [t.key for t in q.tasks] != [f"t{i}" for i in range(50)]

    def test_skipped_highmem_task_served_next_in_order(self):
        """A highmem task skipped by a standard worker must still go to
        the *next* highmem worker, ahead of younger highmem tasks."""
        q = TaskQueue()
        q.submit_many(
            [
                TaskSpec(key="std-0"),
                TaskSpec(key="hm-0", requires_highmem=True),
                TaskSpec(key="std-1"),
                TaskSpec(key="hm-1", requires_highmem=True),
            ]
        )
        std, hm = make_workers(2, 1, highmem_nodes=1)
        assert not std.highmem and hm.highmem
        # Standard worker skips hm-0 without consuming it.
        assert q.pop(std).key == "std-0"
        assert q.pop(hm).key == "hm-0"  # oldest overall it can run
        assert q.pop(std).key == "std-1"
        assert q.pop(std) is None  # only hm-1 left; ineligible
        assert q.pop(hm).key == "hm-1"
        assert q.pop(hm) is None

    def test_highmem_worker_respects_global_fifo(self):
        """An unconstrained worker drains both lanes in submission order."""
        q = TaskQueue()
        keys = ["a", "b", "c", "d", "e"]
        q.submit_many(
            [
                TaskSpec(key=k, requires_highmem=(k in "bd"))
                for k in keys
            ]
        )
        hm = make_workers(1, 1, highmem_nodes=1)[0]
        assert [q.pop(hm).key for _ in range(5)] == keys

    def test_len_and_tasks_span_both_lanes(self):
        q = TaskQueue()
        q.submit_many(
            [TaskSpec(key="s"), TaskSpec(key="h", requires_highmem=True)]
        )
        assert len(q) == 2
        assert [t.key for t in q.tasks] == ["s", "h"]
        q.sort_descending()
        assert len(q) == 2


class TestWorkers:
    def test_one_per_gpu(self):
        workers = make_workers(n_nodes=3, workers_per_node=6)
        assert len(workers) == 18
        assert len({w.worker_id for w in workers}) == 18

    def test_highmem_flagging(self):
        workers = make_workers(4, 2, highmem_nodes=1)
        hm = [w for w in workers if w.highmem]
        assert len(hm) == 2
        assert all(w.node_id == 3 for w in hm)

    def test_short_id(self):
        w = make_workers(1, 1)[0]
        assert len(w.short_id) == 6


class TestSimulatedDataflow:
    def test_work_conservation(self):
        tasks = _tasks([10, 20, 30, 40])
        workers = make_workers(1, 2)
        res = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint, task_overhead=0.0, startup=0.0
        )
        assert len(res.records) == 4
        busy = sum(r.duration for r in res.records)
        assert busy == pytest.approx(100.0)

    def test_single_worker_serial(self):
        tasks = _tasks([5, 5, 5])
        res = simulate_dataflow(
            tasks, make_workers(1, 1), lambda t: 5.0, task_overhead=0.0, startup=0.0
        )
        assert res.makespan_seconds == pytest.approx(15.0)

    def test_sorted_beats_random_on_skewed_load(self):
        sizes = [1.0] * 200 + [120.0] * 5
        tasks = _tasks(sizes)
        workers = make_workers(2, 4)
        sorted_run = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint, task_overhead=0.0, startup=0.0
        )
        random_runs = [
            simulate_dataflow(
                tasks,
                workers,
                lambda t: t.size_hint,
                sort_descending=False,
                rng=np.random.default_rng(s),
                task_overhead=0.0,
                startup=0.0,
            )
            for s in range(5)
        ]
        mean_random = np.mean([r.makespan_seconds for r in random_runs])
        # Greedy longest-first should beat the average random order.
        assert sorted_run.makespan_seconds <= mean_random

    def test_finish_spread_small_when_sorted(self):
        rng = np.random.default_rng(2)
        sizes = rng.lognormal(3, 1, size=500)
        res = simulate_dataflow(
            _tasks(sizes), make_workers(4, 6), lambda t: t.size_hint,
            task_overhead=0.0, startup=0.0,
        )
        assert res.finish_spread_seconds() < 0.15 * res.makespan_seconds

    def test_failure_fn(self):
        tasks = _tasks([10, 10])
        res = simulate_dataflow(
            tasks,
            make_workers(1, 1),
            lambda t: t.size_hint,
            failure_fn=lambda t, w: "OOM" if t.key == "t0" else None,
            task_overhead=0.0,
            startup=0.0,
        )
        failed = [r for r in res.records if not r.ok]
        assert len(failed) == 1 and failed[0].error == "OOM"
        assert failed[0].duration < 10.0

    def test_requires_workers(self):
        with pytest.raises(ValueError):
            simulate_dataflow(_tasks([1]), [], lambda t: 1.0)

    def test_utilization_bounds(self):
        res = simulate_dataflow(
            _tasks([3] * 30), make_workers(1, 3), lambda t: 3.0,
            task_overhead=0.0, startup=0.0,
        )
        assert 0.9 < res.utilization() <= 1.0


class TestThreadedExecutor:
    def test_real_execution(self):
        ex = ThreadedExecutor(n_workers=4)
        result = ex.map(lambda x: x * 2, [(f"k{i}", i, float(i)) for i in range(20)])
        assert result.results == {f"k{i}": i * 2 for i in range(20)}
        assert result.n_failed == 0

    def test_exceptions_isolated(self):
        ex = ThreadedExecutor(n_workers=2)

        def work(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        result = ex.map(work, [(f"k{i}", i, 1.0) for i in range(6)])
        assert result.n_failed == 1
        assert "k3" not in result.results
        failed = [r for r in result.records if not r.ok][0]
        assert "boom" in failed.error

    def test_csv_roundtrip(self, tmp_path):
        ex = ThreadedExecutor(n_workers=2)
        result = ex.map(lambda x: x, [(f"k{i}", i, 1.0) for i in range(5)])
        path = tmp_path / "stats.csv"
        result.write_csv(path)
        back = load_task_csv(path)
        assert {r.key for r in back} == {f"k{i}" for i in range(5)}

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(0)


class TestReporting:
    def _sim(self):
        return simulate_dataflow(
            _tasks([10, 5, 8, 2, 9, 4]), make_workers(1, 2),
            lambda t: t.size_hint, task_overhead=0.0, startup=0.0,
        )

    def test_gantt_lanes(self):
        res = self._sim()
        lanes = extract_gantt(res.records)
        assert len(lanes) == 2
        assert sum(lane.n_tasks for lane in lanes) == 6
        for lane in lanes:
            starts = [s for s, _ in lane.intervals]
            assert starts == sorted(starts)

    def test_gantt_sampling(self):
        res = simulate_dataflow(
            _tasks([1] * 100), make_workers(5, 6), lambda t: 1.0,
            task_overhead=0.0, startup=0.0,
        )
        lanes = extract_gantt(res.records, max_workers=10)
        assert len(lanes) == 10

    def test_ascii_gantt(self):
        res = self._sim()
        art = render_ascii_gantt(extract_gantt(res.records), width=40)
        assert "#" in art
        assert len(art.splitlines()) == 2

    def test_summary(self):
        res = self._sim()
        s = summarize_records(res.records)
        assert s["n_tasks"] == 6
        assert s["n_failed"] == 0
        assert s["makespan"] > 0
        assert summarize_records([])["n_tasks"] == 0

    def test_summary_attempt_latency_and_lost_keys(self):
        res = self._sim()
        s = summarize_records(res.records)
        assert s["lost_keys"] == []
        assert list(s["attempt_latency"]) == ["1"]
        first = s["attempt_latency"]["1"]
        assert first["n"] == 6
        assert first["p50"] <= first["p95"] <= first["max"]
        assert first["mean"] == pytest.approx(
            sum(r.duration for r in res.records) / 6
        )
        empty = summarize_records([])
        assert empty["lost_keys"] == [] and empty["attempt_latency"] == {}
