"""Dependency-driven scheduling: TaskQueue edges, pools, and chains.

The streaming scheduler's substrate: tasks held until predecessors
complete, promotion/poisoning on completion/failure, pool routing to
heterogeneous workers, enqueue-time finalization, and the executor-level
chain semantics both backends must share — dependency injection, the
SkippedDependency cascade when an upstream task exhausts its retries,
and the queue-pressure metrics.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.dataflow import (
    ProcessExecutor,
    RetryPolicy,
    TaskQueue,
    ThreadedExecutor,
)
from repro.dataflow.scheduler import TaskSpec, WorkerInfo
from repro.dataflow.simulated import UNSCHEDULED_WORKER_ID
from repro.telemetry import MetricsRegistry, use_metrics

#: Generous wall-clock guard for the no-deadlock assertions: a hung
#: executor fails the test instead of hanging the suite.
DEADLOCK_TIMEOUT_S = 120.0


def worker(pool: str = "", highmem: bool = False) -> WorkerInfo:
    return WorkerInfo(
        worker_id=f"w-{pool or 'any'}-{highmem}",
        node_id=0,
        gpu_id=0,
        highmem=highmem,
        pool=pool,
    )


def spec(key: str, **kw) -> TaskSpec:
    return TaskSpec(key=key, payload=key, size_hint=1.0, **kw)


class TestTaskQueueDependencies:
    def test_task_held_until_dependency_completes(self):
        q = TaskQueue()
        q.submit_many([spec("a"), spec("b", depends_on=("a",))])
        assert q.pop().key == "a"
        assert q.pop() is None  # b is blocked, not schedulable
        assert q.mark_complete("a") == 1  # promotes b
        assert q.pop().key == "b"

    def test_diamond_promotes_only_when_all_edges_resolve(self):
        q = TaskQueue()
        q.submit_many(
            [
                spec("root"),
                spec("left", depends_on=("root",)),
                spec("right", depends_on=("root",)),
                spec("join", depends_on=("left", "right")),
            ]
        )
        q.pop()
        q.mark_complete("root")
        assert {q.pop().key, q.pop().key} == {"left", "right"}
        q.mark_complete("left")
        assert q.pop() is None
        q.mark_complete("right")
        assert q.pop().key == "join"

    def test_failed_dependency_poisons_all_mode_descendants(self):
        q = TaskQueue()
        q.submit_many(
            [
                spec("a"),
                spec("b", depends_on=("a",)),
                spec("c", depends_on=("b",)),
            ]
        )
        q.pop()
        q.mark_failed("a")
        poisoned = q.reap_poisoned()
        assert {s.key for s, _ in poisoned} == {"b", "c"}
        assert all(failed == ("a",) or failed == ("b",) for _, failed in poisoned)
        assert q.pop() is None

    def test_resolved_mode_runs_on_partial_failure(self):
        q = TaskQueue()
        q.submit_many(
            [
                spec("m1"),
                spec("m2"),
                spec("pick", depends_on=("m1", "m2"), dep_mode="resolved"),
            ]
        )
        q.pop(), q.pop()
        q.mark_complete("m1")
        assert q.pop() is None  # m2 still pending: not yet terminal
        q.mark_failed("m2")
        assert q.reap_poisoned() == []  # one edge survived
        assert q.pop().key == "pick"

    def test_resolved_mode_poisoned_only_when_every_edge_fails(self):
        q = TaskQueue()
        q.submit_many(
            [
                spec("m1"),
                spec("m2"),
                spec("pick", depends_on=("m1", "m2"), dep_mode="resolved"),
            ]
        )
        q.pop(), q.pop()
        q.mark_failed("m1")
        assert q.reap_poisoned() == []
        q.mark_failed("m2")
        [(poisoned, failed)] = q.reap_poisoned()
        assert poisoned.key == "pick"
        assert failed == ("m1", "m2")

    def test_satisfy_preresolves_dependencies(self):
        q = TaskQueue()
        q.satisfy("a")
        q.submit(spec("b", depends_on=("a",)))
        assert q.pop().key == "b"

    def test_drain_blocked_reports_missing_edges(self):
        q = TaskQueue()
        q.submit(spec("b", depends_on=("never",)))
        [(blocked, missing)] = q.drain_blocked()
        assert blocked.key == "b"
        assert missing == ("never",)

    def test_pool_routing(self):
        q = TaskQueue()
        q.submit_many([spec("c", pool="cpu"), spec("g", pool="gpu")])
        assert q.pop(worker("gpu")).key == "g"
        assert q.pop(worker("gpu")) is None  # cpu task never leaks to gpu
        assert q.pop(worker("cpu")).key == "c"
        q.submit(spec("c2", pool="cpu"))
        assert q.pop(worker("")).key == "c2"  # pool-less takes anything

    def test_finalize_runs_at_promotion_with_resolved_results(self):
        resolved: dict[str, object] = {}

        def finalize(task: TaskSpec) -> TaskSpec:
            if resolved.get(task.depends_on[0] if task.depends_on else None):
                return TaskSpec(
                    key=task.key,
                    payload=task.payload,
                    size_hint=task.size_hint,
                    depends_on=task.depends_on,
                    requires_highmem=True,
                )
            return task

        q = TaskQueue(finalize=finalize)
        q.submit_many([spec("a"), spec("b", depends_on=("a",))])
        q.pop()
        resolved["a"] = "big-bundle"
        q.mark_complete("a")
        assert q.pop(worker()) is None  # escalated: needs a highmem worker
        promoted = q.pop(worker(highmem=True))
        assert promoted.key == "b" and promoted.requires_highmem


# -- Executor chains (module-level functions: picklable for process) ---------
def chain_task(task_spec):
    """feature/x doubles its payload; sink/x sums its dependency + payload."""
    payload, deps = task_spec.payload
    if task_spec.key.startswith("feature/"):
        if payload == "boom":
            raise RuntimeError("injected feature failure")
        return payload * 2
    return deps[task_spec.depends_on[0]] + payload


def chain_specs(n: int = 3) -> list[TaskSpec]:
    out = []
    for i in range(n):
        out.append(TaskSpec(key=f"feature/{i}", payload=i, size_hint=1.0))
        out.append(
            TaskSpec(
                key=f"sink/{i}",
                payload=100,
                size_hint=1.0,
                depends_on=(f"feature/{i}",),
            )
        )
    return out


BACKENDS = {
    "threaded": lambda **kw: ThreadedExecutor(**kw),
    "process": lambda **kw: ProcessExecutor(**kw),
}


def run_guarded(fn):
    """Run ``fn`` under a deadlock guard; a hang fails, never blocks."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(fn).result(timeout=DEADLOCK_TIMEOUT_S)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestExecutorChains:
    def test_dependency_injection_and_ordering(self, backend):
        ex = BACKENDS[backend](n_workers=2)
        result = run_guarded(
            lambda: ex.map(
                chain_task, chain_specs(3), pass_spec=True, inject_deps=True
            )
        )
        assert result.results == {
            "feature/0": 0, "sink/0": 100,
            "feature/1": 2, "sink/1": 102,
            "feature/2": 4, "sink/2": 104,
        }
        end_of = {r.key: r.end for r in result.records}
        for i in range(3):
            assert end_of[f"feature/{i}"] <= end_of[f"sink/{i}"]

    def test_retry_exhausted_feature_skips_descendants(self, backend):
        """Satellite: a feature that exhausts retries poisons exactly its
        own chain with SkippedDependency records — no deadlock, and the
        other chains complete untouched."""
        specs = chain_specs(2) + [
            TaskSpec(key="feature/bad", payload="boom", size_hint=1.0),
            TaskSpec(
                key="sink/bad",
                payload=100,
                size_hint=1.0,
                depends_on=("feature/bad",),
            ),
            TaskSpec(
                key="grandchild/bad",
                payload=1,
                size_hint=1.0,
                depends_on=("sink/bad",),
            ),
        ]
        ex = BACKENDS[backend](n_workers=2)
        result = run_guarded(
            lambda: ex.map(
                chain_task,
                specs,
                pass_spec=True,
                inject_deps=True,
                retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            )
        )
        # Healthy chains are untouched.
        for i in range(2):
            assert result.results[f"sink/{i}"] == 100 + 2 * i
        # The bad feature really ran (and retried); its descendants never
        # did — they carry synthetic SkippedDependency records.
        bad_attempts = [r for r in result.records if r.key == "feature/bad"]
        assert len(bad_attempts) == 2 and not any(r.ok for r in bad_attempts)
        for key, upstream in (
            ("sink/bad", "feature/bad"),
            ("grandchild/bad", "sink/bad"),
        ):
            [skipped] = [r for r in result.records if r.key == key]
            assert not skipped.ok
            assert skipped.worker_id == UNSCHEDULED_WORKER_ID
            assert skipped.error.startswith("SkippedDependency")
            assert upstream in skipped.error
            assert key not in result.results

    def test_queue_pressure_metrics_observed(self, backend):
        reg = MetricsRegistry()
        ex = BACKENDS[backend](n_workers=2)
        with use_metrics(reg):
            run_guarded(
                lambda: ex.map(
                    chain_task,
                    chain_specs(3),
                    pass_spec=True,
                    inject_deps=True,
                )
            )
        snapshot = reg.snapshot()
        assert "dataflow.queue.depth" in snapshot["gauges"]
        wait = snapshot["histograms"]["dataflow.task.wait_seconds"]
        assert wait["count"] == 6  # one dispatch-wait sample per task
        assert wait["min"] >= 0.0


class TestPooledExecutors:
    def test_threaded_pools_route_tasks(self):
        ex = ThreadedExecutor(pools={"cpu": 1, "gpu": 1})
        specs = [
            TaskSpec(key=f"{pool}/{i}", payload=i, size_hint=1.0, pool=pool)
            for pool in ("cpu", "gpu")
            for i in range(3)
        ]
        result = run_guarded(
            lambda: ex.map(lambda p: p, specs, pass_spec=False)
        )
        assert len(result.results) == 6
        pool_of = {w.worker_id: w.pool for w in ex.workers}
        for r in result.records:
            assert pool_of[r.worker_id] == r.key.partition("/")[0]

    def test_highmem_slot_lands_in_last_pool(self):
        ex = ThreadedExecutor(pools={"cpu": 2, "gpu": 2}, highmem_workers=1)
        highmem = [w for w in ex.workers if w.highmem]
        assert len(highmem) == 1 and highmem[0].pool == "gpu"
