"""ThreadedExecutor completion callbacks and idle-wait discipline."""

from __future__ import annotations

import threading
import time

import pytest

from repro.dataflow import RetryPolicy, ThreadedExecutor
from repro.dataflow.scheduler import TaskSpec
from repro.dataflow.simulated import UNSCHEDULED_WORKER_ID


def oom_on_first_attempt(task, worker):
    return "OutOfMemoryError: injected" if task.attempt == 1 else None


class TestOnComplete:
    def test_every_attempt_reported(self):
        """The callback sees failed attempts (value None) and retries."""
        seen = []
        lock = threading.Lock()

        def on_complete(record, value):
            with lock:
                seen.append((record.key, record.attempt, record.ok, value))

        ex = ThreadedExecutor(n_workers=2, highmem_workers=1)
        result = ex.map(
            lambda p: p * 10,
            [("a", 1, 1.0), ("b", 2, 1.0)],
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            failure_fn=oom_on_first_attempt,
            on_complete=on_complete,
        )
        assert result.results == {"a": 10, "b": 20}
        assert sorted(seen) == [
            ("a", 1, False, None),
            ("a", 2, True, 10),
            ("b", 1, False, None),
            ("b", 2, True, 20),
        ]

    def test_unschedulable_drain_reported(self):
        """Tasks no worker can take still reach the ledger callback."""
        seen = []
        ex = ThreadedExecutor(n_workers=2, highmem_workers=0)
        result = ex.map(
            lambda p: p,
            [
                TaskSpec(key="std", payload=1, size_hint=1.0),
                TaskSpec(
                    key="hm", payload=2, size_hint=1.0, requires_highmem=True
                ),
            ],
            on_complete=lambda r, v: seen.append((r.key, r.worker_id, r.ok, v)),
        )
        assert result.results == {"std": 1}
        assert ("hm", UNSCHEDULED_WORKER_ID, False, None) in seen
        assert [s for s in seen if s[0] == "std" and s[2] and s[3] == 1]

    def test_callback_failure_is_loud_after_drain(self):
        """A throwing callback surfaces as one error once the run drains."""
        completed = []

        def flaky(record, value):
            completed.append(record.key)
            if record.key == "bad":
                raise OSError("disk full")

        ex = ThreadedExecutor(n_workers=2)
        with pytest.raises(RuntimeError, match="bad: OSError: disk full"):
            ex.map(
                lambda p: p,
                [("good", 1, 1.0), ("bad", 2, 1.0), ("also-good", 3, 1.0)],
                on_complete=flaky,
            )
        # The run drained first: every task still executed and reported.
        assert sorted(completed) == ["also-good", "bad", "good"]


class TestIdleWait:
    def test_idle_workers_block_untimed(self, monkeypatch):
        """Idle workers must wait on the condition with no timeout.

        Regression: the worker loop used ``cond.wait(timeout=0.05)`` —
        a 20 Hz poll per idle worker.  Completion/requeue already
        notifies the condition, so an escalated straggler is picked up
        purely by notification; this pins that no wait carries a
        timeout while such a straggler resolves.
        """
        timeouts = []
        original_wait = threading.Condition.wait

        def spying_wait(self, timeout=None):
            timeouts.append(timeout)
            return original_wait(self, timeout)

        monkeypatch.setattr(threading.Condition, "wait", spying_wait)

        def slow_double(payload):
            time.sleep(0.2)
            return payload * 2

        ex = ThreadedExecutor(n_workers=2, highmem_workers=1)
        result = ex.map(
            slow_double,
            [("straggler", 21, 1.0)],
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_seconds=0.0, escalate_on_oom=True
            ),
            failure_fn=oom_on_first_attempt,
        )
        # The retry escalated to the single highmem worker; the other
        # worker had nothing left and idled on the condition meanwhile.
        assert result.results == {"straggler": 42}
        assert [r.ok for r in result.records] == [False, True]
        assert result.records[-1].attempt == 2
        assert timeouts, "expected at least one idle wait"
        assert all(t is None for t in timeouts)
