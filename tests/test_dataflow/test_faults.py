"""Fault-tolerance tests: retries, highmem escalation, injection."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    FaultInjector,
    RetryPolicy,
    TaskSpec,
    ThreadedExecutor,
    is_oom_error,
    load_task_csv,
    make_workers,
    simulate_dataflow,
    straggler_duration_fn,
    summarize_records,
    write_task_csv,
)


def _tasks(n, prefix="t", **kwargs):
    return [
        TaskSpec(key=f"{prefix}{i}", size_hint=float(i % 7 + 1), **kwargs)
        for i in range(n)
    ]


class TestOomClassifier:
    def test_exception_names(self):
        assert is_oom_error("OutOfMemoryError: t0 needs 91.2 GiB")
        assert is_oom_error("MemoryError: allocation failed")
        assert is_oom_error("OOM (injected): t3 exceeded worker memory")
        assert is_oom_error("worker killed: out of memory")

    def test_non_oom(self):
        assert not is_oom_error("RuntimeError: boom")
        assert not is_oom_error("ValueError: bad input")
        assert not is_oom_error("")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1.0)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1) and policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_backoff_grows(self):
        policy = RetryPolicy(backoff_seconds=2.0, backoff_factor=3.0)
        assert policy.backoff_for(1) == 2.0
        assert policy.backoff_for(2) == 6.0
        assert policy.backoff_for(3) == 18.0

    def test_oom_escalates_to_highmem(self):
        policy = RetryPolicy()
        task = TaskSpec(key="t", size_hint=1.0)
        respawn = policy.next_task(task, "OutOfMemoryError: too big")
        assert respawn.attempt == 2
        assert respawn.requires_highmem

    def test_non_oom_retries_in_place(self):
        policy = RetryPolicy()
        task = TaskSpec(key="t", size_hint=1.0)
        respawn = policy.next_task(task, "RuntimeError: flaky network")
        assert respawn.attempt == 2
        assert not respawn.requires_highmem

    def test_escalation_can_be_disabled(self):
        policy = RetryPolicy(escalate_on_oom=False)
        respawn = policy.next_task(
            TaskSpec(key="t", size_hint=1.0), "OOM killed"
        )
        assert not respawn.requires_highmem


class TestFaultInjector:
    def test_deterministic(self):
        tasks = _tasks(500)
        a = FaultInjector(rate=0.05, seed=7).injected_keys(tasks)
        b = FaultInjector(rate=0.05, seed=7).injected_keys(tasks)
        assert a == b and 0 < len(a) < 100

    def test_seed_changes_selection(self):
        tasks = _tasks(500)
        a = FaultInjector(rate=0.05, seed=7).injected_keys(tasks)
        b = FaultInjector(rate=0.05, seed=8).injected_keys(tasks)
        assert a != b

    def test_rate_extremes(self):
        tasks = _tasks(50)
        assert FaultInjector(rate=0.0).injected_keys(tasks) == []
        assert len(FaultInjector(rate=1.0).injected_keys(tasks)) == 50
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)

    def test_spares_highmem_workers(self):
        injector = FaultInjector(rate=1.0, seed=0)
        task = _tasks(1)[0]
        std, hm = make_workers(2, 1, highmem_nodes=1)
        assert injector(task, std) is not None
        assert is_oom_error(injector(task, std))
        assert injector(task, hm) is None

    def test_spare_highmem_off(self):
        injector = FaultInjector(rate=1.0, seed=0, spare_highmem=False)
        hm = make_workers(1, 1, highmem_nodes=1)[0]
        assert injector(_tasks(1)[0], hm) is not None

    def test_straggler_injection(self):
        base = lambda t: 10.0  # noqa: E731
        slowed = straggler_duration_fn(base, rate=0.2, slowdown=5.0, seed=3)
        tasks = _tasks(200)
        durations = [slowed(t) for t in tasks]
        assert set(durations) == {10.0, 50.0}
        n_slow = sum(1 for d in durations if d == 50.0)
        assert 10 < n_slow < 80  # ~20% of 200, deterministic
        with pytest.raises(ValueError):
            straggler_duration_fn(base, rate=0.2, slowdown=0.5)


class TestMemoryAwareDispatch:
    def test_pop_gates_highmem_tasks(self):
        from repro.dataflow import TaskQueue

        q = TaskQueue()
        q.submit(TaskSpec(key="big", size_hint=9.0, requires_highmem=True))
        q.submit(TaskSpec(key="small", size_hint=1.0))
        std, hm = make_workers(2, 1, highmem_nodes=1)
        assert q.pop(std).key == "small"
        assert q.pop(std) is None  # big stays queued for a 2 TB node
        assert q.pop(hm).key == "big"

    def test_highmem_tasks_only_on_highmem_workers(self):
        workers = make_workers(4, 3, highmem_nodes=1)
        hm_ids = {w.worker_id for w in workers if w.highmem}
        tasks = _tasks(30) + _tasks(10, prefix="h", requires_highmem=True)
        res = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint,
            task_overhead=0.0, startup=0.0,
        )
        assert res.n_failed == 0
        for r in res.records:
            if r.key.startswith("h"):
                assert r.worker_id in hm_ids

    def test_unrunnable_tasks_fail_not_stall(self):
        workers = make_workers(2, 2)  # no highmem anywhere
        tasks = _tasks(4, prefix="h", requires_highmem=True) + _tasks(4)
        res = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint,
            task_overhead=0.0, startup=0.0,
        )
        failed = [r for r in res.records if not r.ok]
        assert len(failed) == 4
        assert all("NoEligibleWorker" in r.error for r in failed)
        assert sorted(res.lost_keys()) == ["h0", "h1", "h2", "h3"]


class TestSimulatedRetries:
    def test_exact_failure_count_without_retries(self):
        tasks = _tasks(200)
        injector = FaultInjector(rate=0.05, seed=7)
        injected = set(injector.injected_keys(tasks))
        res = simulate_dataflow(
            tasks, make_workers(4, 6), lambda t: t.size_hint,
            failure_fn=injector, task_overhead=0.0, startup=0.0,
        )
        assert res.n_failed == len(injected) > 0
        assert set(res.lost_keys()) == injected

    def test_retry_recovers_all_injected_ooms(self):
        tasks = _tasks(200)
        injector = FaultInjector(rate=0.05, seed=7)
        injected = set(injector.injected_keys(tasks))
        workers = make_workers(4, 6, highmem_nodes=1)
        hm_ids = {w.worker_id for w in workers if w.highmem}
        res = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint,
            failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=5.0),
            task_overhead=0.0, startup=0.0,
        )
        assert res.lost_keys() == []
        # every injected task that failed recovered on a highmem worker,
        # with the failed and ok attempts as distinct records
        for key in injected:
            attempts = sorted(
                (r for r in res.records if r.key == key),
                key=lambda r: r.attempt,
            )
            assert attempts[-1].ok
            for earlier in attempts[:-1]:
                assert not earlier.ok and is_oom_error(earlier.error)
            if len(attempts) > 1:
                assert attempts[-1].worker_id in hm_ids

    def test_retry_exhaustion(self):
        tasks = _tasks(5)
        injector = FaultInjector(rate=1.0, seed=1, spare_highmem=False)
        res = simulate_dataflow(
            tasks, make_workers(2, 2, highmem_nodes=1),
            lambda t: t.size_hint,
            failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=3),
            task_overhead=0.0, startup=0.0,
        )
        assert len(res.records) == 15  # 5 tasks x 3 attempts
        # n_failed counts distinct keys, not attempts: 5 tasks failed,
        # however many attempts each burned.
        assert res.n_failed == 5
        assert sum(1 for r in res.records if not r.ok) == 15
        assert len(res.lost_keys()) == 5
        for key in (t.key for t in tasks):
            attempts = sorted(
                r.attempt for r in res.records if r.key == key
            )
            assert attempts == [1, 2, 3]

    def test_backoff_delays_recovery(self):
        tasks = _tasks(10)
        injector = FaultInjector(rate=1.0, seed=0)
        workers = make_workers(2, 1, highmem_nodes=1)
        fast = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint, failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.0),
            task_overhead=0.0, startup=0.0,
        )
        slow = simulate_dataflow(
            tasks, workers, lambda t: t.size_hint, failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=100.0),
            task_overhead=0.0, startup=0.0,
        )
        assert fast.lost_keys() == [] and slow.lost_keys() == []
        assert slow.makespan_seconds > fast.makespan_seconds

    def test_summary_counts_retries(self):
        tasks = _tasks(50)
        injector = FaultInjector(rate=0.2, seed=2)
        res = simulate_dataflow(
            tasks, make_workers(2, 2, highmem_nodes=1),
            lambda t: t.size_hint, failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=3),
            task_overhead=0.0, startup=0.0,
        )
        summary = summarize_records(res.records)
        assert summary["n_lost"] == 0
        assert summary["n_retried"] == summary["n_failed"] > 0
        # retried attempts get their own latency percentiles
        assert "2" in summary["attempt_latency"]
        n_retried_attempts = sum(
            stats["n"]
            for attempt, stats in summary["attempt_latency"].items()
            if attempt != "1"
        )
        assert n_retried_attempts == summary["n_retried"]

    def test_summary_surfaces_lost_keys(self):
        tasks = _tasks(6, requires_highmem=True)
        res = simulate_dataflow(
            tasks, make_workers(1, 2), lambda t: t.size_hint,
            task_overhead=0.0, startup=0.0,
        )
        summary = summarize_records(res.records)
        assert summary["n_lost"] == 6
        assert summary["lost_keys"] == sorted(t.key for t in tasks)


class TestThreadedRetries:
    def test_injected_ooms_recover(self):
        ex = ThreadedExecutor(n_workers=4, highmem_workers=1)
        items = [(f"t{i}", i, 1.0) for i in range(50)]
        res = ex.map(
            lambda x: x * 2,
            items,
            failure_fn=FaultInjector(rate=0.1, seed=3),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert res.lost_keys() == []
        assert res.results == {f"t{i}": i * 2 for i in range(50)}
        assert res.n_failed == sum(1 for r in res.records if r.attempt > 1) > 0

    def test_exception_retry_exhaustion(self):
        ex = ThreadedExecutor(n_workers=2)

        def work(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        res = ex.map(
            work,
            [(f"k{i}", i, 1.0) for i in range(6)],
            retry_policy=RetryPolicy(max_attempts=2),
        )
        assert res.lost_keys() == ["k3"]
        assert sorted(r.attempt for r in res.records if r.key == "k3") == [1, 2]
        assert "k3" not in res.results

    def test_highmem_gating(self):
        ex = ThreadedExecutor(n_workers=4, highmem_workers=2)
        hm_ids = {w.worker_id for w in ex.workers if w.highmem}
        tasks = [
            TaskSpec(key=f"h{i}", payload=i, size_hint=1.0, requires_highmem=True)
            for i in range(8)
        ] + [TaskSpec(key=f"t{i}", payload=i, size_hint=1.0) for i in range(8)]
        res = ex.map(lambda x: x, tasks)
        assert res.n_failed == 0
        for r in res.records:
            if r.key.startswith("h"):
                assert r.worker_id in hm_ids

    def test_unrunnable_tasks_drain_as_failed(self):
        ex = ThreadedExecutor(n_workers=2)  # no highmem workers
        tasks = [
            TaskSpec(key="big", payload=0, size_hint=9.0, requires_highmem=True),
            TaskSpec(key="small", payload=1, size_hint=1.0),
        ]
        res = ex.map(lambda x: x, tasks)
        assert res.lost_keys() == ["big"]
        failed = [r for r in res.records if not r.ok]
        assert len(failed) == 1 and "NoEligibleWorker" in failed[0].error

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(n_workers=2, highmem_workers=3)
        with pytest.raises(ValueError):
            ThreadedExecutor(n_workers=2, highmem_workers=-1)

    def test_n_failed_counts_distinct_keys(self):
        def flaky(spec):
            if spec.attempt < 3:
                raise RuntimeError(f"flaky attempt {spec.attempt}")
            return spec.key

        res = ThreadedExecutor(n_workers=2).map(
            flaky,
            _tasks(4),
            pass_spec=True,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.0),
        )
        # Every key failed twice then recovered: 12 records, 8 failed
        # attempts, but n_failed counts keys with >= 1 failed attempt.
        assert len(res.records) == 12
        assert sum(1 for r in res.records if not r.ok) == 8
        assert res.n_failed == 4
        assert res.lost_keys() == []

    def test_deferred_backoff_does_not_park_slot(self):
        # One worker; the injected key backs off ~0.5 s.  The other
        # tasks must complete during that window, not after it.
        def fail_once(task, worker):
            if task.key == "slow" and task.attempt == 1:
                return "RuntimeError: injected"
            return None

        tasks = [TaskSpec(key="slow", size_hint=9.0)] + _tasks(4)
        t0 = time.perf_counter()
        res = ThreadedExecutor(n_workers=1).map(
            lambda x: x,
            tasks,
            failure_fn=fail_once,
            retry_policy=RetryPolicy(
                max_attempts=2, backoff_seconds=0.5, backoff_factor=1.0
            ),
        )
        assert res.lost_keys() == []
        retry = max(
            (r for r in res.records if r.key == "slow"),
            key=lambda r: r.attempt,
        )
        others_done = max(r.end for r in res.records if r.key != "slow")
        assert retry.ok and retry.attempt == 2
        assert others_done < retry.start
        assert time.perf_counter() - t0 < 5.0


class TestCsvSchema:
    def test_attempts_roundtrip(self, tmp_path):
        tasks = _tasks(30)
        injector = FaultInjector(rate=0.2, seed=5)
        res = simulate_dataflow(
            tasks, make_workers(2, 2, highmem_nodes=1),
            lambda t: t.size_hint, failure_fn=injector,
            retry_policy=RetryPolicy(max_attempts=3),
            task_overhead=0.0, startup=0.0,
        )
        path = tmp_path / "stats.csv"
        write_task_csv(res.records, path)
        back = load_task_csv(path)
        assert [(r.key, r.attempt, r.ok) for r in back] == [
            (r.key, r.attempt, r.ok) for r in res.records
        ]

    def test_writers_agree(self, tmp_path):
        """Threaded, simulated and client CSVs share one schema."""
        from repro.dataflow import Client, SchedulerService, TASK_CSV_COLUMNS

        ex = ThreadedExecutor(n_workers=2)
        threaded = ex.map(lambda x: x, [(f"k{i}", i, 1.0) for i in range(4)])
        t_path = tmp_path / "threaded.csv"
        threaded.write_csv(t_path)

        sim = simulate_dataflow(
            _tasks(4), make_workers(1, 2), lambda t: t.size_hint,
            task_overhead=0.0, startup=0.0,
        )
        s_path = tmp_path / "sim.csv"
        write_task_csv(sim.records, s_path)

        svc = SchedulerService(tmp_path / "sched.json")
        svc.spawn_workers(1, 2)
        client = Client(svc.scheduler_file).connect(svc)
        c_path = tmp_path / "client.csv"
        client.map(
            lambda x: x, [(f"k{i}", i, 1.0) for i in range(4)],
            stats_csv=c_path,
        )
        svc.close()

        header = ",".join(TASK_CSV_COLUMNS)
        for path in (t_path, s_path, c_path):
            assert path.read_text().splitlines()[0] == header
            for record in load_task_csv(path):
                assert record.ok and record.attempt == 1

    def test_boolean_formats_unified(self, tmp_path):
        ex = ThreadedExecutor(n_workers=1)
        res = ex.map(
            lambda x: 1 / x, [("bad", 0, 1.0), ("good", 1, 1.0)]
        )
        path = tmp_path / "stats.csv"
        res.write_csv(path)
        body = path.read_text()
        assert "true" in body and "false" in body
        assert "True" not in body and "False" not in body
        back = {r.key: r.ok for r in load_task_csv(path)}
        assert back == {"bad": False, "good": True}


@given(
    n_std=st.integers(1, 6),
    n_hm=st.integers(0, 3),
    flags=st.lists(st.booleans(), min_size=1, max_size=40),
    use_retries=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_property_highmem_never_on_standard_worker(
    n_std, n_hm, flags, use_retries
):
    """No ``requires_highmem`` task ever runs on a standard worker —
    regardless of pool mix, task mix, or retry policy."""
    workers = make_workers(n_std + n_hm, 1, highmem_nodes=n_hm)
    hm_ids = {w.worker_id for w in workers if w.highmem}
    tasks = [
        TaskSpec(key=f"t{i}", size_hint=float(i + 1), requires_highmem=flag)
        for i, flag in enumerate(flags)
    ]
    policy = RetryPolicy(max_attempts=2) if use_retries else None
    res = simulate_dataflow(
        tasks,
        workers,
        lambda t: t.size_hint,
        failure_fn=FaultInjector(rate=0.3, seed=11),
        retry_policy=policy,
        task_overhead=0.0,
        startup=0.0,
    )
    requires = {t.key for t in tasks if t.requires_highmem}
    for r in res.records:
        if r.key in requires and r.worker_id != "unscheduled":
            assert r.worker_id in hm_ids
    # conservation: every key still resolves (ok or failed), never lost silently
    assert {r.key for r in res.records} == {t.key for t in tasks}
