"""Client/futures/scheduler-file tests (the §3.3 deployment protocol)."""

import json

import pytest

from repro.dataflow import Client, SchedulerService, load_task_csv


@pytest.fixture()
def service(tmp_path):
    svc = SchedulerService(tmp_path / "scheduler.json")
    svc.spawn_workers(n_nodes=1, workers_per_node=3)
    yield svc
    svc.close()


def test_scheduler_file_written(tmp_path):
    svc = SchedulerService(tmp_path / "sched.json")
    info = json.loads((tmp_path / "sched.json").read_text())
    assert info["type"] == "repro-scheduler"
    assert info["address"] == svc.address
    svc.close()
    assert not (tmp_path / "sched.json").exists()


def test_client_requires_scheduler_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        Client(tmp_path / "missing.json")


def test_client_rejects_foreign_file(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"type": "dask-scheduler", "address": "x"}))
    with pytest.raises(ValueError):
        Client(path)


def test_map_and_gather(service, tmp_path):
    client = Client(service.scheduler_file).connect(service)
    futures = client.map(
        lambda x: x * x, [(f"k{i}", i, float(i)) for i in range(12)]
    )
    assert all(f.done() for f in futures)
    assert Client.gather(futures) == [i * i for i in range(12)]


def test_worker_registration_required(tmp_path):
    svc = SchedulerService(tmp_path / "s.json")
    client = Client(svc.scheduler_file).connect(svc)
    with pytest.raises(RuntimeError):
        client.map(lambda x: x, [("k", 1, 1.0)])
    svc.close()


def test_unconnected_client_raises(service):
    client = Client(service.scheduler_file)
    with pytest.raises(RuntimeError):
        client.map(lambda x: x, [("k", 1, 1.0)])


def test_failures_surface_in_futures(service):
    client = Client(service.scheduler_file).connect(service)

    def work(x):
        if x == 2:
            raise ValueError("bad input")
        return x

    futures = client.map(work, [(f"k{i}", i, 1.0) for i in range(4)])
    by_key = {f.key: f for f in futures}
    assert by_key["k1"].result() == 1
    assert "bad input" in (by_key["k2"].exception() or "")
    with pytest.raises(RuntimeError):
        by_key["k2"].result()


def test_stats_csv_streaming(service, tmp_path):
    client = Client(service.scheduler_file).connect(service)
    csv_path = tmp_path / "stats.csv"
    client.map(
        lambda x: x, [(f"k{i}", i, 1.0) for i in range(6)], stats_csv=csv_path
    )
    records = load_task_csv(csv_path)
    assert len(records) == 6
    assert all(r.ok for r in records)


def test_duplicate_keys_rejected(service):
    client = Client(service.scheduler_file).connect(service)
    with pytest.raises(ValueError):
        client.map(lambda x: x, [("same", 1, 1.0), ("same", 2, 2.0)])


def test_mismatched_service_rejected(tmp_path):
    a = SchedulerService(tmp_path / "a.json")
    b = SchedulerService(tmp_path / "b.json")
    with pytest.raises(ValueError):
        Client(a.scheduler_file).connect(b)
    a.close()
    b.close()
