"""Kill-and-resume: the acceptance test for durable campaign state.

A campaign with a ``RunState`` is killed mid-inference (a patched model
head starts throwing after N successes — the in-process stand-in for a
node failure taking the job down).  Resuming against the same state
directory must

* recompute **zero** ledgered task keys (counted search/predict calls),
* produce results **bit-identical** to an uninterrupted run,
* account every skip on ``<stage>.task.skipped_resume`` and the
  provenance manifest.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core import ProteomePipeline
from repro.fold import NativeFactory
from repro.fold.model import SurrogateFoldModel
from repro.msa import build_suite
from repro.runstate import RunState
from repro.sequences import SequenceUniverse, synthetic_proteome
from repro.telemetry import TelemetrySession

N_MODELS = 5
CRASH_AFTER = 6  # successful inference tasks before the injected failure


def make_pipeline(**kwargs) -> ProteomePipeline:
    return ProteomePipeline(
        feature_nodes=4, inference_nodes=2, relax_nodes=1, **kwargs
    )


@pytest.fixture(scope="module")
def mini():
    uni = SequenceUniverse(21)
    prot = synthetic_proteome(
        "P_mercurii", universe=uni, seed=21, scale=0.002
    )
    suite = build_suite(uni, ["P_mercurii"], seed=21, scale=0.002)
    return uni, prot, suite, NativeFactory(uni)


@pytest.fixture(scope="module")
def reference(mini):
    """The uninterrupted run every resumed run must match bit-for-bit."""
    _, prot, suite, factory = mini
    return make_pipeline().run(prot, suite, factory)


@pytest.fixture(scope="module")
def crashed(mini, tmp_path_factory):
    """Run with durable state, crash mid-inference; yield the state dir."""
    _, prot, suite, factory = mini
    state_dir = tmp_path_factory.mktemp("campaign-state")
    state = RunState(state_dir)
    pipeline = make_pipeline(run_state=state)

    original = SurrogateFoldModel.predict
    lock = threading.Lock()
    progress = {"ok": 0, "tripped": False}

    def failing_predict(self, bundle, config):
        with lock:
            if progress["tripped"]:
                raise RuntimeError("InjectedNodeFailure: allocation died")
        out = original(self, bundle, config)
        with lock:
            progress["ok"] += 1
            if progress["ok"] >= CRASH_AFTER:
                progress["tripped"] = True
        return out

    SurrogateFoldModel.predict = failing_predict
    try:
        with pytest.raises(RuntimeError, match="inference stage"):
            pipeline.run(prot, suite, factory)
    finally:
        SurrogateFoldModel.predict = original
        state.close()
    return state_dir


@pytest.fixture(scope="module")
def resumed(mini, crashed):
    """Resume the crashed campaign, counting every real compute call."""
    _, prot, suite, factory = mini
    state = RunState(crashed)
    assert state.resumed
    ledgered_inference = set(state.ledger.completed("inference"))

    import repro.msa.features as features_mod

    calls = {"search": 0, "predict": 0}
    original_search = features_mod.search_suite
    original_predict = SurrogateFoldModel.predict
    lock = threading.Lock()

    def counting_search(*args, **kwargs):
        with lock:
            calls["search"] += 1
        return original_search(*args, **kwargs)

    def counting_predict(self, bundle, config):
        with lock:
            calls["predict"] += 1
        return original_predict(self, bundle, config)

    features_mod.search_suite = counting_search
    SurrogateFoldModel.predict = counting_predict
    try:
        result = make_pipeline(run_state=state).run(prot, suite, factory)
    finally:
        features_mod.search_suite = original_search
        SurrogateFoldModel.predict = original_predict
        state.close()
    return result, calls, ledgered_inference


def assert_science_identical(a, b) -> None:
    """Every scientific output of two campaign runs is bit-identical."""
    assert set(a.feature_stage.features) == set(b.feature_stage.features)
    for rid, fa in a.feature_stage.features.items():
        fb = b.feature_stage.features[rid]
        assert fa.msa_depth == fb.msa_depth
        assert fa.effective_depth == fb.effective_depth
        assert fa.n_templates == fb.n_templates
        assert fa.best_template_identity == fb.best_template_identity
        assert np.array_equal(fa.record.encoded, fb.record.encoded)
    assert a.inference_stage.oom_failures == b.inference_stage.oom_failures
    assert set(a.inference_stage.predictions) == set(
        b.inference_stage.predictions
    )
    for rid, preds_a in a.inference_stage.predictions.items():
        preds_b = b.inference_stage.predictions[rid]
        assert [p.model_name for p in preds_a] == [
            p.model_name for p in preds_b
        ]
        for pa, pb in zip(preds_a, preds_b):
            assert pa.ptms == pb.ptms
            assert pa.mean_plddt == pb.mean_plddt
            assert pa.n_recycles == pb.n_recycles
            assert np.array_equal(pa.structure.ca, pb.structure.ca)
    assert set(a.relax_stage.outcomes) == set(b.relax_stage.outcomes)
    for rid, oa in a.relax_stage.outcomes.items():
        ob = b.relax_stage.outcomes[rid]
        assert np.array_equal(oa.structure.ca, ob.structure.ca)
        assert oa.final_energy == ob.final_energy
        assert oa.total_steps == ob.total_steps
        assert oa.converged == ob.converged
    assert a.total_node_hours == b.total_node_hours


class TestCrash:
    def test_partial_ledger_survives_the_kill(self, mini, crashed):
        _, prot, _, _ = mini
        state = RunState(crashed)
        try:
            assert state.ledger.completed("feature") == {
                r.record_id for r in prot
            }
            done = state.ledger.completed("inference")
            total = N_MODELS * len(prot)
            assert 0 < len(done) < total
            # Every ledgered-ok key has its artifact (write-ahead order).
            for key in done:
                assert state.store.has("inference", key)
            assert state.ledger.completed("relax") == set()
        finally:
            state.close()


class TestResume:
    def test_results_bit_identical_to_uninterrupted(self, reference, resumed):
        result, _, _ = resumed
        assert_science_identical(reference, result)

    def test_zero_recomputation_of_ledgered_keys(self, mini, resumed):
        _, prot, _, _ = mini
        result, calls, ledgered = resumed
        assert calls["search"] == 0  # whole feature stage restored
        assert calls["predict"] == N_MODELS * len(prot) - len(ledgered)

    def test_skipped_accounting(self, mini, resumed):
        _, prot, _, _ = mini
        result, _, ledgered = resumed
        assert result.feature_stage.skipped_resume == len(prot)
        assert result.inference_stage.skipped_resume == len(ledgered)
        assert result.relax_stage.skipped_resume == 0
        assert result.feature_stage.stage_metrics[
            "feature.task.skipped_resume"
        ] == len(prot)

    def test_second_resume_skips_everything(
        self, mini, reference, resumed, crashed, tmp_path
    ):
        """Re-running a finished campaign recomputes nothing at all."""
        _, prot, suite, factory = mini
        state = RunState(crashed)
        original = SurrogateFoldModel.predict

        def exploding_predict(self, bundle, config):
            raise AssertionError("resumed run must not re-run inference")

        SurrogateFoldModel.predict = exploding_predict
        session = TelemetrySession(tmp_path / "telemetry")
        try:
            result = make_pipeline(run_state=state, telemetry=session).run(
                prot, suite, factory
            )
        finally:
            SurrogateFoldModel.predict = original
            state.close()
        assert_science_identical(reference, result)
        assert result.inference_stage.skipped_resume == N_MODELS * len(prot)
        assert result.relax_stage.skipped_resume == len(
            result.relax_stage.outcomes
        )
        manifest = json.loads(
            (tmp_path / "telemetry" / "manifest.json").read_text()
        )
        assert manifest["resume"]["enabled"] is True
        assert manifest["resume"]["resumed"] is True
        assert manifest["resume"]["skipped"] == {
            "features": len(prot),
            "inference": N_MODELS * len(prot),
            "relax": len(result.relax_stage.outcomes),
        }
