"""Artifact-store semantics: atomic publication, corrupt self-repair."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.runstate import STORE_SCHEMA, ArtifactStore, RunState
from repro.telemetry.metrics import MetricsRegistry, use_metrics


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = {"coords": np.arange(12.0).reshape(4, 3)}
        store.put("inference", "t1/model_1", payload)
        assert store.has("inference", "t1/model_1")
        out = store.get("inference", "t1/model_1")
        assert np.array_equal(out["coords"], payload["coords"])
        assert store.get("inference", "absent") is None
        assert store.n_entries("inference") == 1

    def test_keys_with_slashes_hash_to_filenames(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put("inference", "rec/model_3", 42)
        assert path.parent == tmp_path / "inference"
        assert "/" not in path.name
        assert dict(store.entries("inference")) == {"rec/model_3": 42}

    def test_schema_marker(self, tmp_path):
        ArtifactStore(tmp_path)
        marker = tmp_path / "store.json"
        assert marker.exists()
        ArtifactStore(tmp_path)  # reopening validates, not rewrites
        marker.write_text('{"schema": "other/1"}')
        with pytest.raises(ValueError, match="not a"):
            ArtifactStore(tmp_path)

    def test_entry_payload_schema(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put("relax", "t9", "value")
        payload = pickle.loads(path.read_bytes())
        assert payload["schema"] == STORE_SCHEMA
        assert payload["stage"] == "relax"
        assert payload["key"] == "t9"

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put("relax", "t1", {"x": 1})
        path.write_bytes(b"\x80garbage not a pickle")
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert store.get("relax", "t1") is None
        assert not path.exists()  # slot self-repaired
        assert registry.counter_values()["runstate.store.corrupt"] == 1

    def test_key_mismatch_is_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.put("relax", "t1", 1)
        # A payload whose embedded key disagrees with its filename.
        path.write_bytes(
            pickle.dumps(
                {"schema": STORE_SCHEMA, "stage": "relax", "key": "t2",
                 "value": 1}
            )
        )
        with use_metrics(MetricsRegistry()):
            assert store.get("relax", "t1") is None
        assert not path.exists()

    def test_concurrent_puts_never_tear(self, tmp_path):
        """Racing writers of one key always publish a complete pickle."""
        store = ArtifactStore(tmp_path)
        blob = np.arange(4096.0)
        stop = threading.Event()
        errors: list[str] = []

        def writer(tag: int) -> None:
            while not stop.is_set():
                store.put("inference", "hot-key", (tag, blob))

        def reader() -> None:
            while not stop.is_set():
                out = store.get("inference", "hot-key")
                if out is not None and not np.array_equal(out[1], blob):
                    errors.append("torn artifact observed")

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for t in threads:
            t.join()
        stop_timer.cancel()
        assert errors == []
        assert store.get("inference", "hot-key") is not None
        leftovers = list((tmp_path / "inference").glob("*.tmp"))
        assert leftovers == []


class TestRunState:
    def test_restore_requires_ledger_and_artifact(self, tmp_path):
        state = RunState(tmp_path)
        cb = state.on_complete("inference")

        class FakeRecord:
            key, attempt, ok, error = "t1", 1, True, ""

        cb(FakeRecord(), {"pred": 7})
        assert state.restore("inference", ["t1", "t2"]) == {"t1": {"pred": 7}}
        state.close()

        reopened = RunState(tmp_path)
        assert reopened.resumed
        assert reopened.restore("inference", ["t1"]) == {"t1": {"pred": 7}}
        reopened.close()

    def test_ledgered_key_with_missing_artifact_recomputes(self, tmp_path):
        state = RunState(tmp_path)
        state.ledger.record("inference", "ghost", ok=True)
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert state.restore("inference", ["ghost"]) == {}
        assert (
            registry.counter_values()["runstate.restore.missing_artifact"] == 1
        )
        state.close()

    def test_failed_records_ledgered_without_artifact(self, tmp_path):
        state = RunState(tmp_path)
        cb = state.on_complete("inference")

        class FailedRecord:
            key, attempt, ok, error = "t1", 1, False, "OOM"

        cb(FailedRecord(), None)
        assert not state.store.has("inference", "t1")
        assert state.ledger.completed("inference") == set()
        assert len(state.ledger) == 1
        state.close()
